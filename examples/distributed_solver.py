#!/usr/bin/env python
"""A distributed CG solve surviving failures via multilevel C/R.

The full stack in one script: an 8-rank slab-decomposed conjugate-gradient
solver (halo exchanges + allreduce collectives, the real HPCCG
communication pattern) runs under coordinated multilevel checkpointing
with the NDP drain daemon compressing checkpoints to a throttled global
I/O store.  We crash it twice — once recovering from node-local NVM, once
after total node loss recovering from the compressed I/O copies — and
verify the final solution matches an uninterrupted run.

Run:  python examples/distributed_solver.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.ckpt import IOStore, LocalStore, MultilevelCheckpointer
from repro.compression import make_codec
from repro.parallel import CoordinatedRun, DistributedStencilCG

GRID, RANKS, ITERS = 24, 8, 10


def main() -> None:
    # Reference: the same solve with no failures, no checkpointing.
    ref = DistributedStencilCG(grid=GRID, ranks=RANKS, seed=11)
    ref.run(ITERS)
    reference = ref.assemble(ref.x)
    print(f"{RANKS}-rank CG on a {GRID}^3 grid, {ITERS} iterations")
    print(f"reference residual: {ref.residual_norm():.3e}")
    print(f"halo traffic so far: {ref.comm.bytes_sent / 1e6:.1f} MB, "
          f"{ref.comm.messages_sent} messages\n")

    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        local = LocalStore(root / "nvm", capacity=3)
        io = IOStore(root / "pfs", throttle_bps=80e6)
        with MultilevelCheckpointer(
            "cg", local, io, mode="ndp", codec=make_codec("gzip", 1)
        ) as cr:
            solver = DistributedStencilCG(grid=GRID, ranks=RANKS, seed=11)
            run = CoordinatedRun(solver, cr, checkpoint_every=2)

            # -- crash 1: process dies, NVM survives ------------------------
            outcome = run.run(iterations=6, crash_at=5)
            print(f"crash at iteration {outcome.crashed_at}: recovered "
                  f"checkpoint {outcome.recovered_from} from "
                  f"'{outcome.recovery_level}', redid "
                  f"{outcome.iterations - 6} iteration(s)")

            # -- crash 2: the node is lost, NVM contents gone ----------------
            assert cr.flush_to_io(60)
            cr.local.wipe("cg")
            result = cr.restart()
            print(f"node loss: recovered checkpoint {result.ckpt_id} from "
                  f"'{result.level}' ({len(result.payloads)} compressed rank files)")
            solver.restore_payloads(result.payloads)
            remaining = ITERS - int(result.positions[0])
            run.run(iterations=remaining)

            final = solver.assemble(solver.x)
            ok = np.allclose(final, reference, rtol=1e-9)
            print(f"\nfinal solution matches the uninterrupted run: {ok}")
            print(f"checkpointer metrics: {cr.metrics.summary()}")
            print(f"drain stats: {cr.daemon.stats.checkpoints_drained} drained, "
                  f"compression factor {cr.daemon.stats.achieved_factor:.1%}")
            assert ok


if __name__ == "__main__":
    main()
