#!/usr/bin/env python
"""Quickstart: evaluate C/R configurations on the projected exascale system.

Five minutes with the analytic core: build the paper's Table 4 scenario,
evaluate the baseline and NDP configurations, and print the overhead
breakdowns behind the paper's 51% -> 78% headline.

Run:  python examples/quickstart.py
"""

from repro import core

def main() -> None:
    # The paper's projected exascale node: 30 min MTTI, 112 GB checkpoints,
    # 15 GB/s local NVM, a 100 MB/s per-node share of global I/O.
    params = core.paper_parameters()
    print("Scenario:")
    print(f"  MTTI                {params.mtti / 60:.0f} min")
    print(f"  checkpoint size     {params.checkpoint_size / 1e9:.0f} GB")
    print(f"  local commit time   {params.local_commit_time:.1f} s")
    print(f"  I/O commit (raw)    {params.io_commit_time() / 60:.1f} min")
    print(f"  I/O commit (gzip-1) {params.io_commit_time(core.HOST_GZIP1) / 60:.1f} min")
    print()

    # Evaluate the ladder of configurations the paper compares.
    results = [
        core.io_only(params),
        core.io_only(params, core.HOST_GZIP1),
        core.optimal_host(params),
        core.optimal_host(params, core.HOST_GZIP1),
        core.multilevel_ndp(params),
        core.multilevel_ndp(params, core.NDP_GZIP1),
    ]
    print(f"{'configuration':42s} {'progress':>9s} {'ckpt':>7s} {'restore':>8s} {'rerun':>7s}")
    for r in results:
        b = r.breakdown
        print(
            f"{r.config:42s} {r.efficiency:9.1%} {b.checkpoint:7.1%} "
            f"{b.restore:8.1%} {b.rerun:7.1%}"
        )
    print()

    # The headline: average over p_local in {20..80}% at the 73% factor.
    host, ndp = [], []
    for p in (0.2, 0.4, 0.6, 0.8):
        pp = params.with_(p_local_recovery=p)
        host.append(core.optimal_host(pp, core.HOST_GZIP1).efficiency)
        ndp.append(core.multilevel_ndp(pp, core.NDP_GZIP1).efficiency)
    h, n = sum(host) / 4, sum(ndp) / 4
    print(f"Average multilevel+compression efficiency: host {h:.0%} -> NDP {n:.0%}")
    print(f"That is a {n / h - 1:.0%} application speedup from offloading I/O-level")
    print("checkpointing to near-data processing (paper: 51% -> 78%, >50% speedup).")


if __name__ == "__main__":
    main()
