#!/usr/bin/env python
"""Compression study workflow: measure, explain, and provision.

The Section-5 pipeline end to end on live data: generate calibrated proxy
checkpoints for three mini-apps, measure two codecs on them, explain the
factors with entropy analysis, quantify the consecutive-checkpoint delta
headroom (the paper's future work), and derive the NDP core provisioning
from the *measured* numbers (Table 3's methodology on your own data).

Run:  python examples/compression_analysis.py
"""

from repro.compression import (
    BlockDeduper,
    analyze,
    make_codec,
    run_study,
    sizing_inputs,
    xor_delta,
)
from repro.core import paper_parameters, select_utility, sizing_table
from repro.workloads import checkpoint_chunks, rank_apps

APPS = ("HPCCG", "miniFE", "miniSMAC2D")


def main() -> None:
    codecs = [make_codec("gzip", 1), make_codec("gzip", 6)]

    # -- 1. measure --------------------------------------------------------------
    print("Measuring gzip(1)/gzip(6) on calibrated proxy checkpoints (2 ranks each):")
    datasets = {app: checkpoint_chunks(app, ranks=2) for app in APPS}
    study = run_study(datasets, codecs)
    for app in APPS:
        m1 = study.results[app]["gzip(1)"]
        m6 = study.results[app]["gzip(6)"]
        print(
            f"  {app:11s} gzip(1): {m1.factor:6.1%} at {m1.compress_speed / 1e6:6.1f} MB/s"
            f"   gzip(6): {m6.factor:6.1%} at {m6.compress_speed / 1e6:6.1f} MB/s"
        )

    # -- 2. explain with entropy ---------------------------------------------------
    print("\nWhy do the factors differ?  Order-0 entropy of the checkpoint bytes:")
    for app in APPS:
        rep = analyze(datasets[app][0])
        gz = study.results[app]["gzip(1)"].factor
        print(
            f"  {app:11s} entropy {rep.entropy:5.2f} bits/byte "
            f"(order-0 bound {rep.order0_bound:5.1%}), zero bytes {rep.zero_fraction:5.1%}, "
            f"achieved {gz:5.1%}"
        )
    print("  -> low-entropy quantized solver state compresses well; the CFD's")
    print("     dense mantissas leave little for any codec.")

    # -- 3. delta headroom (the paper's future work) --------------------------------
    print("\nConsecutive-checkpoint delta headroom (XOR vs previous, 4 KiB dedup):")
    import zlib

    for app in APPS:
        (a,) = rank_apps(app, ranks=1, seed=2, warmup_steps=3, calibrated=False)
        first = a.checkpoint_bytes()
        a.run(1)
        second = a.checkpoint_bytes()
        raw = 1 - len(zlib.compress(second, 1)) / len(second)
        delta = xor_delta(first, second)
        dfac = 1 - len(zlib.compress(delta, 1)) / len(delta)
        dd = BlockDeduper(4096)
        dd.push(first)
        dedup = dd.push(second).dedup_factor
        print(f"  {app:11s} raw gzip(1) {raw:6.1%}   XOR-delta gzip(1) {dfac:6.1%}   dedup {dedup:6.1%}")

    # -- 4. provision the NDP from measured data --------------------------------------
    print("\nNDP provisioning from the *measured* study (Table 3 methodology):")
    params = paper_parameters()
    sizings = sizing_table(sizing_inputs("measured", study), params)
    for s in sizings:
        print(
            f"  {s.utility:9s} requires {s.required_speed / 1e6:5.0f} MB/s -> "
            f"{s.cores:3d} core(s), I/O checkpoint every {s.checkpoint_interval:5.0f} s"
        )
    pick = select_utility(sizings, max_cores=8)
    print(f"  selection (<=8 cores): {pick.utility}")
    print("\nNote: measured speeds are this machine's; the paper's own Section 5")
    print("re-measures for the same reason rather than reusing prior studies.")


if __name__ == "__main__":
    main()
