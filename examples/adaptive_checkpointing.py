#!/usr/bin/env python
"""Adaptive checkpoint intervals from an online MTTI estimate.

A facility rarely knows its MTTI in advance.  This example runs the
discrete-event simulator in a closed loop with the library's
:class:`~repro.ckpt.schedule.AdaptiveScheduler`: the scheduler starts from
a (wrong) prior, observes the failures the simulation injects, re-estimates
the MTTI, and re-derives Daly's optimal interval — converging toward the
efficiency of an oracle that knew the MTTI all along.

Run:  python examples/adaptive_checkpointing.py
"""

import numpy as np

from repro.ckpt import AdaptiveScheduler, DalyIntervalAdvisor, OnlineMTTIEstimator
from repro.core import paper_parameters, multilevel_ndp
from repro.simulation import SimConfig, simulate

TRUE_MTTI = 900.0  # the machine actually fails every 15 minutes
WRONG_PRIOR = 7200.0  # ...but operations assumed 2 hours


def efficiency_at_interval(tau: float, seed: int) -> float:
    """Simulated NDP-mode efficiency at a fixed local interval."""
    params = paper_parameters().with_(mtti=TRUE_MTTI, local_interval=tau)
    res = simulate(
        SimConfig(params=params, strategy="ndp", work=TRUE_MTTI * 60, seed=seed)
    )
    return res.efficiency


def main() -> None:
    params = paper_parameters().with_(mtti=TRUE_MTTI)
    sched = AdaptiveScheduler(
        estimator=OnlineMTTIEstimator(prior_mtti=WRONG_PRIOR, prior_weight=2.0),
        advisor=DalyIntervalAdvisor(
            commit_time=params.local_commit_time, min_interval=30.0, max_interval=3600.0
        ),
    )
    oracle_tau = params.with_(local_interval=None).tau

    print(f"True MTTI {TRUE_MTTI:.0f}s; operations prior {WRONG_PRIOR:.0f}s")
    print(f"Oracle (Daly at true MTTI) interval: {oracle_tau:.0f}s\n")

    # Feed the scheduler the failure history a simulated campaign produces.
    rng = np.random.default_rng(3)
    print(f"{'failures seen':>14s} {'MTTI estimate':>14s} {'interval':>9s}")
    observed = 0
    while observed < 64:
        gap = float(rng.exponential(TRUE_MTTI))
        sched.tick(gap)
        sched.notify_failure()
        observed += 1
        if observed in (1, 2, 4, 8, 16, 32, 64):
            print(
                f"{observed:14d} {sched.estimator.mtti:12.0f} s "
                f"{sched.current_interval:8.0f}s"
            )

    # What did the adaptation buy?  Compare simulated efficiency at the
    # prior-derived, adapted, and oracle intervals.
    prior_tau = DalyIntervalAdvisor(commit_time=params.local_commit_time).recommend(
        WRONG_PRIOR
    )
    adapted_tau = sched.current_interval
    print("\nSimulated NDP-mode efficiency at each interval policy (3 seeds):")
    for label, tau in (
        ("prior (wrong MTTI)", prior_tau),
        ("adapted (online)", adapted_tau),
        ("oracle (true MTTI)", oracle_tau),
    ):
        effs = [efficiency_at_interval(tau, seed) for seed in range(3)]
        print(f"  {label:20s} tau={tau:6.0f}s -> {np.mean(effs):6.1%}")

    model = multilevel_ndp(
        params.with_(local_interval=adapted_tau), rerun_accounting="staleness"
    ).efficiency
    print(f"\nAnalytic model (staleness accounting) at the adapted interval: {model:.1%}")
    print("The online estimate converges within a few tens of failures and")
    print("recovers nearly all of the oracle's efficiency.")


if __name__ == "__main__":
    main()
