#!/usr/bin/env python
"""Capacity planning: size the NVM and NDP of your own exascale machine.

A facility-planning scenario built on the public API: project a machine
from a petascale base, derive its C/R requirements, and answer the two
procurement questions the paper's analysis enables:

1. How much node-local NVM bandwidth do we need for a target progress
   rate — with and without NDP offload?
2. Which compression codec and how many NDP cores should the smart NVM
   ship with?

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.compression import PAPER_UTILITY_AVERAGES
from repro.core import (
    NDP_GZIP1,
    NO_COMPRESSION,
    checkpoint_requirements,
    multilevel_ndp,
    optimal_host,
    paper_parameters,
    project_exascale,
    select_utility,
    sizing_table,
)
from repro.core.configs import CompressionSpec
from repro.core.units import gb_per_s, minutes


def main() -> None:
    # -- 1. project the machine -------------------------------------------------
    machine = project_exascale()
    req = checkpoint_requirements(machine, target_efficiency=0.90)
    print(f"Projected machine: {machine.node_count:,} nodes, "
          f"{machine.system_memory_bytes / 1e15:.0f} PB memory, "
          f"MTTI {machine.system_mtti / 60:.0f} min")
    print(f"90% progress with single-level C/R needs {req.node_bandwidth / 1e9:.1f} GB/s "
          f"per node ({req.system_bandwidth / 1e15:.2f} PB/s aggregate)\n")

    params = paper_parameters().with_(
        mtti=machine.system_mtti,
        checkpoint_size=machine.checkpoint_size(0.8),
        io_bandwidth=machine.io_bandwidth_per_node,
    )

    # -- 2. NVM bandwidth sweep: what do we actually have to buy? -----------------
    print("NVM bandwidth needed for a target progress rate (p_local = 85%):")
    print(f"{'NVM BW':>9s} {'host+comp':>10s} {'NDP+comp':>9s}")
    for bw_gbps in (1, 2, 4, 8, 15, 30):
        p = params.with_(local_bandwidth=gb_per_s(bw_gbps), local_interval=None)
        host = optimal_host(p, NDP_GZIP1.with_factor(0.728))
        ndp = multilevel_ndp(p, NDP_GZIP1)
        print(f"{bw_gbps:7d} GB/s {host.efficiency:10.1%} {ndp.efficiency:9.1%}")
    print("-> with NDP, a ~2 GB/s NVM already beats a 15 GB/s NVM without it.\n")

    # -- 3. codec + core-count selection for the smart NVM -------------------------
    print("NDP provisioning per candidate codec (Table 3 methodology):")
    sizings = sizing_table(dict(PAPER_UTILITY_AVERAGES), params)
    for s in sizings:
        print(f"  {s.utility:9s} {s.cores:4d} cores -> I/O ckpt every {s.checkpoint_interval:5.0f} s")
    pick = select_utility(sizings, max_cores=4)
    print(f"Selected: {pick.utility} with {pick.cores} NDP cores "
          f"(I/O checkpoint interval {pick.checkpoint_interval:.0f} s)\n")

    # -- 4. what MTTI does this plan tolerate? --------------------------------------
    spec = pick.as_spec(decompress_rate=gb_per_s(16))
    print("Progress rate of the selected design vs failure rate:")
    for mtti_min in (10, 20, 30, 60):
        p = params.with_(mtti=minutes(mtti_min))
        eff = multilevel_ndp(p, spec).efficiency
        base = optimal_host(p, NO_COMPRESSION).efficiency
        print(f"  MTTI {mtti_min:3d} min: NDP design {eff:6.1%}  (plain multilevel {base:6.1%})")

    # -- 5. sensitivity: how robust is the pick to the compression factor? ------------
    factors = np.linspace(0.3, 0.9, 7)
    effs = [
        multilevel_ndp(
            params,
            CompressionSpec(
                factor=float(f),
                compress_rate=spec.compress_rate,
                decompress_rate=spec.decompress_rate,
            ),
        ).efficiency
        for f in factors
    ]
    print("\nSensitivity to the application's actual compression factor:")
    for f, e in zip(factors, effs):
        print(f"  factor {f:4.0%}: progress {e:6.1%}")
    print("\nThe plan degrades gracefully: even incompressible (factor ~30%)")
    print("checkpoints keep the NDP design above the host-side alternative.")


if __name__ == "__main__":
    main()
