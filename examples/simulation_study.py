#!/usr/bin/env python
"""Monte-Carlo study with the discrete-event simulator.

Runs the C/R simulator over many seeds per strategy using the batch
machinery (:func:`repro.simulation.mc_run`), compares against the analytic
model, makes the NDP-vs-host claim *statistically* via a paired
common-random-numbers test, replays an adversarial failure trace, and
prints an operational timeline.

Run:  python examples/simulation_study.py
"""

from repro.core import NDP_GZIP1, NO_COMPRESSION, multilevel_host, multilevel_ndp, paper_parameters
from repro.simulation import (
    SimConfig,
    TimelineRecorder,
    compare_strategies,
    default_work,
    mc_run,
    render_ascii,
    simulate,
)

SEEDS = range(8)
MTTIS = 80.0  # work target per run, in MTTIs


def main() -> None:
    params = paper_parameters()
    work = default_work(params, MTTIS)
    print(f"{len(list(SEEDS))} seeds x {MTTIS:.0f} MTTIs of work per configuration\n")

    cases = [
        ("host r=15 + gzip(1)",
         SimConfig(params=params, strategy="host", ratio=15, compression=NDP_GZIP1, work=work),
         multilevel_host(params, 15, NDP_GZIP1, rerun_accounting="staleness")),
        ("NDP, no compression",
         SimConfig(params=params, strategy="ndp", compression=NO_COMPRESSION, work=work),
         multilevel_ndp(params, rerun_accounting="staleness")),
        ("NDP + gzip(1)",
         SimConfig(params=params, strategy="ndp", compression=NDP_GZIP1, work=work),
         multilevel_ndp(params, NDP_GZIP1, rerun_accounting="staleness")),
    ]
    print(f"{'configuration':24s} {'sim eff (95% CI)':>22s} {'model':>7s}")
    for label, cfg, model in cases:
        # jobs=None: fan seeds over one worker per core — bit-identical
        # to the serial path, just faster on multi-core machines.
        mc = mc_run(cfg, SEEDS, jobs=None)
        print(f"{label:24s} {mc.mean:10.3f} +- {mc.ci95:6.3f} {model.efficiency:7.3f}")

    # The headline claim, statistically: paired under common failures.
    paired = compare_strategies(cases[0][1], cases[2][1], seeds=SEEDS, jobs=None)
    print(
        f"\nPaired NDP-vs-host difference: {paired.mean_diff:+.3f} "
        f"+- {paired.ci95_diff:.3f} (95% CI) -> "
        f"{'significant' if paired.significant else 'not significant'}"
    )

    # Failure-trace replay: the same number of failures, placed either just
    # before each checkpoint commits (maximum lost work) or right after
    # (minimum).  Distributional models cannot answer this; replay can.
    cycle = params.cycle_time
    replay_work = params.mtti * 5

    def replay(times):
        return simulate(
            SimConfig(
                params=params,
                strategy="ndp",
                compression=NDP_GZIP1,
                work=replay_work,
                failure_times=times,
            )
        ).efficiency

    worst = replay(tuple((i + 1) * 8 * cycle - 0.5 for i in range(6)))
    best = replay(tuple((i + 1) * 8 * cycle - 0.9 * cycle for i in range(6)))
    print(
        f"\nTrace replay, 6 failures each: just-before-commit placement "
        f"{worst:.3f} vs just-after {best:.3f} — same failure count, "
        f"{best - worst:.1%} of efficiency decided by placement alone."
    )

    # A short operational timeline (fails once, recovers, drains resume).
    print("\nOperational timeline (NDP + gzip(1), first 2500 s, one seed):")
    tr = TimelineRecorder(horizon=2500)
    simulate(
        SimConfig(
            params=params.with_(mtti=900.0),  # denser failures for the demo
            strategy="ndp",
            compression=NDP_GZIP1,
            work=2500.0,
            seed=5,
            trace=tr,
        )
    )
    print(render_ascii(tr, width=100, t_end=2500))


if __name__ == "__main__":
    main()
