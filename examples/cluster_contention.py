#!/usr/bin/env python
"""Shared-I/O contention at cluster scale.

The paper's model treats the 10 TB/s global I/O as a fixed 100 MB/s
per-node share.  This example uses the N-node coordinated simulation with
a genuinely *shared* processor-sharing pipe to answer three operational
questions the per-node model cannot:

1. Does system efficiency actually stay put as the machine grows at a
   fixed per-node share?  (Yes — which is why the paper can model
   per-node.)
2. Does staggering the nodes' drains help?  (No, for symmetric load —
   fair sharing makes phase irrelevant.)
3. How much PFS headroom is there — what if the pipe is undersized by 2x?

Run:  python examples/cluster_contention.py
"""

from repro.core import NDP_GZIP1, multilevel_ndp, paper_parameters
from repro.simulation import ClusterConfig, simulate_cluster

MTTIS = 80.0


def run(label, **kw):
    params = kw.pop("params", paper_parameters())
    cfg = ClusterConfig(
        params=params,
        compression=NDP_GZIP1,
        work=params.mtti * MTTIS,
        seed=11,
        **kw,
    )
    res = simulate_cluster(cfg)
    print(
        f"  {label:34s} eff={res.efficiency:6.3f}  pipe util={res.pipe_utilization:5.2f}  "
        f"I/O snapshots={res.io_snapshots:5d}  I/O recoveries={res.recoveries_io}"
    )
    return res


def main() -> None:
    params = paper_parameters()
    model = multilevel_ndp(
        params, NDP_GZIP1, rerun_accounting="staleness", pause_during_local=False
    )
    print(f"Per-node analytic model: efficiency {model.efficiency:.3f}\n")

    print("1. Share invariance (pipe capacity = N x 100 MB/s):")
    for n in (1, 4, 16):
        run(f"{n} node(s)", nodes=n)

    print("\n2. Drain scheduling (8 nodes):")
    run("synchronized drains", nodes=8)
    run("staggered drains", nodes=8, stagger=True)
    run("recovery contends with drains", nodes=8, pause_drains_on_recovery=False)

    print("\n3. Undersized PFS (8 nodes, per-node share halved / doubled):")
    for share_mb, label in ((50, "50 MB/s per node (half)"),
                            (100, "100 MB/s per node (paper)"),
                            (200, "200 MB/s per node (double)")):
        p = params.with_(io_bandwidth=share_mb * 1e6)
        run(label, nodes=8, params=p)

    print("\nReading: efficiency is flat in N (per-node modeling is sound); "
          "staggering is\nneutral; halving the PFS mostly costs I/O-recovery "
          "rerun distance, not steady-state\nthroughput — the NDP drain just "
          "falls further behind the checkpoint stream.")


if __name__ == "__main__":
    main()
