#!/usr/bin/env python
"""Checkpoint a live molecular-dynamics run, crash it, and restore it.

A four-rank CoMD-proxy Lennard-Jones simulation runs under the multilevel
C/R runtime in NDP mode: every step's state is committed to the local-NVM
store while the background drain daemon compresses checkpoints with
gzip(1) and ships them to a bandwidth-throttled global-I/O store.  We then

1. "crash" the application (discard the in-memory state),
2. restore from the local level and verify the physics is bit-identical,
3. destroy the node's local storage (the failure mode multilevel
   checkpointing exists for) and restore from the compressed I/O copy,
4. compare the host-visible checkpoint cost of NDP mode against host mode
   pushing the same checkpoints to I/O synchronously.

Run:  python examples/md_checkpointing.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.ckpt import IOStore, LocalStore, MultilevelCheckpointer
from repro.compression import make_codec
from repro.workloads import CoMDProxy, deserialize_state, serialize_state

RANKS = 4
STEPS = 6
THROTTLE = 40e6  # 40 MB/s "per-node global I/O share"


def make_ranks(seed: int = 7) -> list[CoMDProxy]:
    """Four independently-seeded MD domains (one per 'MPI rank')."""
    return [CoMDProxy(n_atoms=512, seed=seed + r) for r in range(RANKS)]


def run_with_cr(mode: str, root: Path) -> tuple[float, MultilevelCheckpointer, list[CoMDProxy]]:
    """Advance the MD system, checkpointing each step; returns host-blocked time."""
    local = LocalStore(root / f"{mode}-nvm", capacity=3)
    io = IOStore(root / f"{mode}-pfs", throttle_bps=THROTTLE)
    cr = MultilevelCheckpointer(
        f"comd-{mode}",
        local,
        io,
        mode=mode,
        codec=make_codec("gzip", 1),
        io_every=2,  # host mode: every 2nd checkpoint goes to I/O
    ).start()
    ranks = make_ranks()
    blocked = 0.0
    for step in range(STEPS):
        for app in ranks:
            app.step()
        payloads = {r: serialize_state(app.state()) for r, app in enumerate(ranks)}
        t0 = time.perf_counter()
        cr.checkpoint(payloads, position=float(step + 1))
        blocked += time.perf_counter() - t0
    return blocked, cr, ranks


def main() -> None:
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)

        print(f"Running {RANKS}-rank LJ molecular dynamics for {STEPS} steps under NDP-mode C/R...")
        blocked_ndp, cr, ranks = run_with_cr("ndp", root)
        energies = [app.kinetic_energy() for app in ranks]
        print(f"  per-rank kinetic energies: {[f'{e:.3f}' for e in energies]}")

        # -- crash and restore from local ------------------------------------
        print("\nCrash! discarding in-memory state and restoring...")
        result = cr.restart()
        print(f"  recovered checkpoint {result.ckpt_id} from the '{result.level}' level")
        restored = make_ranks()  # freshly constructed (wrong) state
        for r, app in enumerate(restored):
            app.restore(deserialize_state(result.payloads[r]))
        ok = all(
            np.array_equal(a.pos, b.pos) and np.array_equal(a.vel, b.vel)
            for a, b in zip(ranks, restored)
        )
        print(f"  restored state bit-identical to pre-crash state: {ok}")
        assert ok

        # -- node loss: recover from the compressed I/O copy -------------------
        print("\nNode failure: local NVM contents lost; recovering from global I/O...")
        cr.flush_to_io(timeout=60)
        cr.local.wipe(cr.app_id)
        result_io = cr.restart()
        print(
            f"  recovered checkpoint {result_io.ckpt_id} from the "
            f"'{result_io.level}' level (decompressed {RANKS} rank files)"
        )
        assert result_io.level == "io"
        for r, app in enumerate(make_ranks()):
            app.restore(deserialize_state(result_io.payloads[r]))
        cr.close()

        # -- the point of the paper, live -------------------------------------
        print("\nComparing host-visible checkpoint cost (same data, same stores):")
        blocked_host, cr_host, _ = run_with_cr("host", root)
        cr_host.close()
        print(f"  host mode (synchronous I/O pushes): {blocked_host:6.2f} s blocked")
        print(f"  NDP mode (background drain)       : {blocked_ndp:6.2f} s blocked")
        print(
            f"  -> the NDP daemon hides {1 - blocked_ndp / blocked_host:.0%} of the "
            "checkpointing cost from the application"
        )

        # -- measured vs model: the drift report ------------------------------
        from repro.core.configs import CRParameters
        from repro.obs.demo import calibrate_codec, calibrate_local_bandwidth
        from repro.obs.drift import drain_drift

        sample = serialize_state(make_ranks()[0].state())
        spec = calibrate_codec(make_codec("gzip", 1), sample)
        params = CRParameters(
            checkpoint_size=float(RANKS * len(sample)),
            local_bandwidth=calibrate_local_bandwidth(root, sample),
            io_bandwidth=THROTTLE,
        )
        print()
        print(drain_drift(cr.daemon.stats, params, spec).render())


if __name__ == "__main__":
    main()
