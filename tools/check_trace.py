#!/usr/bin/env python
"""Validate a JSON-lines trace file against the repro span schema.

Every line must be a JSON object carrying the five core span fields
(``lane``, ``start``, ``end``, ``kind``, ``label``) with well-typed
values and ``end >= start``; the optional runtime fields (``attrs``,
``span``, ``parent``, ``pid``, ``thread``, and the request-tree fields
``trace_id``/``ctx``/``ctx_parent``/``links``) are type-checked too, and
unknown fields are rejected.  Both live-runtime traces (``repro trace``,
``REPRO_TRACE=...``) and exported simulator timelines conform.

On top of the per-record schema, the file's *request trees* are checked
as a whole: every span carrying request-tree fields must name a
``trace_id`` and a ``ctx`` id, every ``ctx_parent`` must resolve to a
span of the same trace (across process boundaries — resolution is by id,
not emission order), and every ``links`` entry must resolve to a span
somewhere in the file.  Orphans are reported with their file and line.

Usage::

    PYTHONPATH=src python tools/check_trace.py TRACE.jsonl \\
        [--min-records N] [--min-traces N]

Exit status 0 when the file validates (and holds at least
``--min-records`` records / ``--min-traces`` request trees with no
orphan spans), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.trace import (  # noqa: E402
    TraceSchemaError,
    validate_record,
    validate_request_trees,
)


def load_records(path: str) -> tuple[list[dict], list[int]]:
    """Parse + schema-validate every line; returns (records, line numbers).

    Raises :class:`TraceSchemaError` with a 1-based line number on the
    first malformed line.
    """
    records: list[dict] = []
    lines: list[int] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as exc:
                raise TraceSchemaError(f"line {lineno}: invalid JSON: {exc}") from None
            try:
                validate_record(rec)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"line {lineno}: {exc}") from None
            records.append(rec)
            lines.append(lineno)
    return records, lines


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="JSON-lines trace file")
    parser.add_argument(
        "--min-records",
        type=int,
        default=0,
        metavar="N",
        help="fail unless the file holds at least N valid records",
    )
    parser.add_argument(
        "--min-traces",
        type=int,
        default=0,
        metavar="N",
        help="fail unless the file holds at least N distinct request trees",
    )
    args = parser.parse_args(argv)
    try:
        records, lines = load_records(args.path)
    except OSError as exc:
        print(f"check_trace: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    except TraceSchemaError as exc:
        print(f"check_trace: {args.path}: {exc}", file=sys.stderr)
        return 1
    if len(records) < args.min_records:
        print(
            f"check_trace: {args.path}: only {len(records)} records "
            f"(need >= {args.min_records})",
            file=sys.stderr,
        )
        return 1
    report = validate_request_trees(records)
    for idx, reason in report["orphans"]:
        print(f"check_trace: {args.path}:{lines[idx]}: orphan span: {reason}", file=sys.stderr)
    if report["orphans"]:
        print(
            f"check_trace: {args.path}: {len(report['orphans'])} orphan span(s) "
            f"across {report['traces']} request tree(s)",
            file=sys.stderr,
        )
        return 1
    if report["traces"] < args.min_traces:
        print(
            f"check_trace: {args.path}: only {report['traces']} request trees "
            f"(need >= {args.min_traces})",
            file=sys.stderr,
        )
        return 1
    print(
        f"check_trace: {args.path}: {len(records)} records OK "
        f"({report['traces']} request trees, {report['spans']} tree spans, "
        f"{report['roots']} roots)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
