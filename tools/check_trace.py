#!/usr/bin/env python
"""Validate a JSON-lines trace file against the repro span schema.

Every line must be a JSON object carrying the five core span fields
(``lane``, ``start``, ``end``, ``kind``, ``label``) with well-typed
values and ``end >= start``; the optional runtime fields (``attrs``,
``span``, ``parent``, ``pid``, ``thread``) are type-checked too, and
unknown fields are rejected.  Both live-runtime traces (``repro trace``,
``REPRO_TRACE=...``) and exported simulator timelines conform.

Usage::

    PYTHONPATH=src python tools/check_trace.py TRACE.jsonl [--min-records N]

Exit status 0 when the file validates (and holds at least
``--min-records`` records), 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.trace import TraceSchemaError, validate_file  # noqa: E402


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("path", help="JSON-lines trace file")
    parser.add_argument(
        "--min-records",
        type=int,
        default=0,
        metavar="N",
        help="fail unless the file holds at least N valid records",
    )
    args = parser.parse_args(argv)
    try:
        count = validate_file(args.path)
    except OSError as exc:
        print(f"check_trace: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    except TraceSchemaError as exc:
        print(f"check_trace: {args.path}: {exc}", file=sys.stderr)
        return 1
    if count < args.min_records:
        print(
            f"check_trace: {args.path}: only {count} records "
            f"(need >= {args.min_records})",
            file=sys.stderr,
        )
        return 1
    print(f"check_trace: {args.path}: {count} records OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
