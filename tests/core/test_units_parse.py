"""Human-quantity parsing helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.units import (
    GIB,
    fmt_bytes,
    parse_bytes,
    parse_time,
)


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("112GB", 112e9),
            ("30.5 MB", 30.5e6),
            ("4096", 4096.0),
            ("1KiB", 1024.0),
            ("2gib", 2 * GIB),
            ("14 PB", 14e15),
            ("0.5tb", 5e11),
            ("100b", 100.0),
        ],
    )
    def test_cases(self, text, expected):
        assert parse_bytes(text) == pytest.approx(expected)

    def test_bad_inputs(self):
        for bad in ("", "GB", "12 parsecs", "1.2.3GB"):
            with pytest.raises(ValueError):
                parse_bytes(bad)

    @given(st.floats(min_value=0.001, max_value=999.0))
    @settings(max_examples=50, deadline=None)
    def test_property_fmt_parse_round_trip(self, gb):
        nbytes = gb * 1e9
        assert parse_bytes(fmt_bytes(nbytes)) == pytest.approx(nbytes, rel=0.01)


class TestParseTime:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("30min", 1800.0),
            ("9 s", 9.0),
            ("2.5h", 9000.0),
            ("1d", 86400.0),
            ("5y", 5 * 365.25 * 86400),
            ("42", 42.0),
            ("15m", 900.0),
        ],
    )
    def test_cases(self, text, expected):
        assert parse_time(text) == pytest.approx(expected)

    def test_bad_inputs(self):
        for bad in ("", "min", "3 fortnights"):
            with pytest.raises(ValueError):
                parse_time(bad)
