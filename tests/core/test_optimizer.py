"""Ratio / interval optimizers over the performance model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import HOST_GZIP1, NO_COMPRESSION, paper_parameters
from repro.core.units import minutes
from repro.core.model import multilevel_host
from repro.core.optimizer import (
    golden_section_max,
    optimal_host,
    optimal_local_interval,
    optimal_ratio,
    sweep_ratio,
)


class TestSweep:
    def test_sweep_returns_one_point_per_ratio(self, params):
        pts = sweep_ratio(params, [1, 8, 64])
        assert [p.ratio for p in pts] == [1, 8, 64]
        assert all(0 <= p.efficiency <= 1 for p in pts)

    def test_sweep_matches_direct_evaluation(self, params):
        pt = sweep_ratio(params, [16])[0]
        direct = multilevel_host(params, 16)
        assert pt.efficiency == direct.efficiency


class TestOptimalRatio:
    def test_is_global_optimum_vs_linear_scan(self, params):
        best = optimal_ratio(params)
        scan = max(
            range(1, 200), key=lambda r: multilevel_host(params, r).efficiency
        )
        assert multilevel_host(params, best).efficiency == pytest.approx(
            multilevel_host(params, scan).efficiency, rel=1e-9
        )

    def test_compression_lowers_optimal_ratio(self, params):
        plain = optimal_ratio(params)
        comp = optimal_ratio(params, HOST_GZIP1)
        assert comp < plain

    def test_higher_p_local_raises_optimal_ratio(self, params):
        lo = optimal_ratio(params.with_(p_local_recovery=0.2))
        hi = optimal_ratio(params.with_(p_local_recovery=0.96))
        assert hi > lo

    def test_optimal_host_uses_best_ratio(self, params):
        res = optimal_host(params)
        assert res.ratio == optimal_ratio(params)


class TestGoldenSection:
    def test_finds_parabola_maximum(self):
        x = golden_section_max(lambda t: -(t - 3.7) ** 2, 0.0, 10.0)
        assert x == pytest.approx(3.7, abs=1e-2)

    def test_invalid_bracket_rejected(self):
        with pytest.raises(ValueError):
            golden_section_max(lambda t: t, 5.0, 1.0)


class TestLocalInterval:
    def test_default_is_daly_seed(self, params):
        tau = optimal_local_interval(params)
        assert 100.0 < tau < 250.0

    def test_refined_interval_does_not_hurt(self, params):
        def evaluate(p):
            return multilevel_host(p, 20)

        tau = optimal_local_interval(params, evaluate)
        refined = multilevel_host(params.with_(local_interval=tau), 20).efficiency
        seeded = multilevel_host(
            params.with_(local_interval=optimal_local_interval(params)), 20
        ).efficiency
        assert refined >= seeded - 1e-6


class TestOptimalRatioProperty:
    """optimal_ratio must equal the exhaustive-sweep argmax (Figure 5's
    construction) across paper-configuration variations, not just the
    Table 4 defaults — the memoized bracket/ternary search is an
    optimization of the sweep, never an approximation of it."""

    @given(
        mtti_minutes=st.floats(min_value=5.0, max_value=240.0),
        p_local=st.floats(min_value=0.05, max_value=0.99),
        spec=st.sampled_from([NO_COMPRESSION, HOST_GZIP1,
                              HOST_GZIP1.with_factor(0.1),
                              HOST_GZIP1.with_factor(0.7)]),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_exhaustive_argmax(self, mtti_minutes, p_local, spec):
        p = paper_parameters().with_(
            mtti=minutes(mtti_minutes), p_local_recovery=p_local
        )
        best = optimal_ratio(p, spec, max_ratio=300)
        scan_eff = max(
            multilevel_host(p, r, spec).efficiency for r in range(1, 301)
        )
        assert multilevel_host(p, best, spec).efficiency == pytest.approx(
            scan_eff, rel=1e-12
        )


class TestSharedMemo:
    """sweep_ratio/optimal_ratio/optimal_host share one scenario memo, so
    the fig4 -> fig5 pipeline never re-evaluates a bracketed ratio."""

    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        from repro.core import optimizer

        optimizer.clear_cache()
        yield
        optimizer.clear_cache()

    @pytest.fixture
    def counted(self, monkeypatch):
        from repro.core import optimizer

        calls: list[int] = []
        real = optimizer.multilevel_host

        def counting(params, ratio, *a, **kw):
            calls.append(ratio)
            return real(params, ratio, *a, **kw)

        monkeypatch.setattr(optimizer, "multilevel_host", counting)
        return calls

    def test_sweep_then_optimal_reuses_evaluations(self, counted):
        from repro.core import optimizer

        p = paper_parameters().with_(p_local_recovery=0.85)
        optimizer.sweep_ratio(p, range(1, 65))
        assert len(counted) == 64
        # A repeated sweep and the bracketed search both hit the memo:
        # every ratio the optimizer probes was already swept.
        optimizer.sweep_ratio(p, range(1, 65))
        assert len(counted) == 64
        best = optimizer.optimal_ratio(p, max_ratio=64)
        assert len(counted) == 64
        assert 1 <= best <= 64

    def test_clear_cache_forces_reevaluation(self, counted):
        from repro.core import optimizer

        p = paper_parameters()
        optimizer.sweep_ratio(p, [8])
        optimizer.sweep_ratio(p, [8])
        assert len(counted) == 1
        optimizer.clear_cache()
        optimizer.sweep_ratio(p, [8])
        assert len(counted) == 2

    def test_distinct_scenarios_not_conflated(self, counted):
        from repro.core import optimizer

        p = paper_parameters()
        a = optimizer.sweep_ratio(p, [8])[0]
        b = optimizer.sweep_ratio(p, [8], HOST_GZIP1)[0]
        c = optimizer.sweep_ratio(p, [8], rerun_accounting="staleness")[0]
        d = optimizer.sweep_ratio(p.with_(p_local_recovery=0.5), [8])[0]
        assert len(counted) == 4
        assert len({x.efficiency for x in (a, b, c, d)}) == 4

    def test_memoized_results_equal_direct_model(self):
        from repro.core import optimizer

        p = paper_parameters()
        pt = optimizer.sweep_ratio(p, [12])[0]
        again = optimizer.sweep_ratio(p, [12])[0]
        assert pt.result is again.result  # served from the memo
        assert pt.result == multilevel_host(p, 12)

    def test_clear_cache_exported_from_core(self):
        from repro.core import clear_cache

        clear_cache()
