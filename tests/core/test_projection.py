"""Exascale projection (Table 1) and derived requirements (Section 3.3)."""

import pytest

from repro.core import projection
from repro.core.units import GB, PB, minutes, years


class TestTitanBase:
    def test_titan_parameters(self):
        t = projection.TITAN
        assert t.node_count == 18_688
        assert t.node_memory_bytes == pytest.approx(38 * GB)
        assert t.system_peak_flops == pytest.approx(26.9e15, rel=0.01)
        assert t.system_mtti == minutes(160)

    def test_titan_system_memory(self):
        assert projection.TITAN.system_memory_bytes == pytest.approx(0.71 * PB, rel=0.01)


class TestExascaleProjection:
    def test_table1_projected_column(self):
        e = projection.EXASCALE
        assert e.node_count == 100_000
        assert e.node_peak_flops == pytest.approx(10e12)
        assert e.system_peak_flops == pytest.approx(1e18)
        assert e.node_memory_bytes == pytest.approx(140 * GB)
        assert e.system_memory_bytes == pytest.approx(14 * PB)
        assert e.io_bandwidth == pytest.approx(10e12)
        assert e.system_mtti == minutes(30)

    def test_per_node_io_share_is_100mbps(self):
        assert projection.EXASCALE.io_bandwidth_per_node == pytest.approx(100e6)

    def test_checkpoint_size_80pct(self):
        assert projection.EXASCALE.checkpoint_size(0.8) == pytest.approx(112 * GB)

    def test_checkpoint_size_validates_fraction(self):
        with pytest.raises(ValueError):
            projection.EXASCALE.checkpoint_size(0.0)
        with pytest.raises(ValueError):
            projection.EXASCALE.checkpoint_size(1.5)

    def test_custom_projection(self):
        m = projection.project_exascale(target_flops=2e18, mtti_round_to=None)
        assert m.node_count == 200_000
        # More nodes => lower MTTI (without the optimistic rounding).
        raw_1e18 = projection.project_exascale(mtti_round_to=None)
        assert m.system_mtti == pytest.approx(raw_1e18.system_mtti / 2)


class TestMTTI:
    def test_raw_socket_mttf_projection(self):
        # 5-year socket MTTF over 100k nodes ~ 26.28 minutes.
        mtti = projection.mtti_from_socket_mttf(100_000, round_to=None)
        assert mtti == pytest.approx(26.28 * 60, rel=0.01)

    def test_optimistic_rounding_only_rounds_up(self):
        up = projection.mtti_from_socket_mttf(100_000, round_to=minutes(30))
        assert up == minutes(30)
        # A round_to below the raw value leaves the raw value intact.
        same = projection.mtti_from_socket_mttf(100_000, round_to=minutes(10))
        assert same == pytest.approx(26.28 * 60, rel=0.01)

    def test_mtti_scales_inversely_with_nodes(self):
        m1 = projection.mtti_from_socket_mttf(10_000, round_to=None)
        m2 = projection.mtti_from_socket_mttf(20_000, round_to=None)
        assert m1 == pytest.approx(2 * m2)

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            projection.mtti_from_socket_mttf(0)


class TestRequirements:
    def test_section_3_3_numbers(self):
        req = projection.checkpoint_requirements()
        # Commit ~9 s, period ~3 min, ~12.4 GB/s/node, ~1.24 PB/s system.
        assert 7.0 < req.commit_time < 11.0
        assert 150.0 < req.checkpoint_period < 210.0
        assert req.node_bandwidth == pytest.approx(12.44e9, rel=0.2)
        assert req.system_bandwidth == pytest.approx(1.244e15, rel=0.2)

    def test_requirement_outpaces_global_io(self):
        req = projection.checkpoint_requirements()
        assert req.system_bandwidth > 50 * projection.EXASCALE.io_bandwidth


class TestProjectionTable:
    def test_rows_cover_table1(self):
        rows = projection.projection_table()
        names = [r["parameter"] for r in rows]
        assert names == [
            "Node Count",
            "System Peak",
            "Node Peak",
            "System Memory",
            "Node Memory",
            "Interconnect BW",
            "I/O Bandwidth",
            "System MTTI",
        ]

    def test_factors_match_paper(self):
        rows = {r["parameter"]: r["factor"] for r in projection.projection_table()}
        assert rows["Node Count"] == pytest.approx(5.35, abs=0.01)
        assert rows["I/O Bandwidth"] == pytest.approx(10.0)
        assert rows["Node Memory"] == pytest.approx(3.68, abs=0.01)
        assert rows["System MTTI"] == pytest.approx(1 / 5.33, abs=0.01)
