"""OverheadBreakdown invariants and views."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.breakdown import OverheadBreakdown


def make(compute=0.8, cl=0.05, cio=0.05, rl=0.01, rio=0.02, rul=0.03, ruio=0.04):
    return OverheadBreakdown(
        compute=compute,
        checkpoint_local=cl,
        checkpoint_io=cio,
        restore_local=rl,
        restore_io=rio,
        rerun_local=rul,
        rerun_io=ruio,
    )


class TestInvariants:
    def test_total_sums_to_one(self):
        assert make().total == pytest.approx(1.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            OverheadBreakdown(compute=1.2)
        with pytest.raises(ValueError):
            OverheadBreakdown(compute=0.5, rerun_io=-0.1)

    def test_efficiency_alias(self):
        assert make().efficiency == make().compute

    def test_aggregates(self):
        b = make()
        assert b.checkpoint == pytest.approx(0.10)
        assert b.restore == pytest.approx(0.03)
        assert b.rerun == pytest.approx(0.07)
        assert b.overhead == pytest.approx(0.2)


class TestViews:
    def test_normalized_to_compute(self):
        norm = make().normalized_to_compute()
        assert norm["compute"] == pytest.approx(1.0)
        assert norm["checkpoint_local"] == pytest.approx(0.05 / 0.8)

    def test_normalized_rejects_zero_compute(self):
        b = OverheadBreakdown(compute=0.0, rerun_io=1.0)
        with pytest.raises(ValueError):
            b.normalized_to_compute()

    def test_as_dict_covers_components(self):
        d = make().as_dict()
        assert set(d) == set(OverheadBreakdown.component_names())

    def test_scaled_to_wall_time(self):
        secs = make().scaled_to(1000.0)
        assert secs["compute"] == pytest.approx(800.0)
        assert sum(secs.values()) == pytest.approx(1000.0)


@given(
    st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=7, max_size=7).filter(
        lambda xs: sum(xs) > 0
    )
)
def test_property_fraction_normalization(xs):
    # Any non-negative weights normalized by their sum form a valid breakdown.
    total = sum(xs)
    b = OverheadBreakdown(*[x / total for x in xs])
    assert b.total == pytest.approx(1.0)
    assert 0.0 <= b.overhead <= 1.0 + 1e-9
