"""Metamorphic properties of the performance model.

Rather than asserting point values, these tests assert *relations* that
must hold between model evaluations under input transformations — the
strongest kind of regression net for analytic code.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import NDP_GZIP1, CompressionSpec, paper_parameters
from repro.core.model import io_only, multilevel_host, multilevel_ndp

scenario = st.fixed_dictionaries(
    {
        "mtti": st.floats(min_value=600.0, max_value=36_000.0),
        "size": st.floats(min_value=5e9, max_value=300e9),
        "p": st.floats(min_value=0.05, max_value=0.99),
    }
)


def params_of(s):
    return paper_parameters().with_(
        mtti=s["mtti"],
        checkpoint_size=s["size"],
        p_local_recovery=s["p"],
        local_interval=None,
    )


class TestMonotonicity:
    @given(s=scenario, factor=st.floats(min_value=1.1, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_longer_mtti_never_hurts(self, s, factor):
        a = multilevel_ndp(params_of(s), NDP_GZIP1).efficiency
        b = multilevel_ndp(
            params_of(s).with_(mtti=s["mtti"] * factor), NDP_GZIP1
        ).efficiency
        assert b >= a - 1e-9

    @given(s=scenario, factor=st.floats(min_value=1.1, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_bigger_checkpoints_never_help(self, s, factor):
        a = multilevel_ndp(params_of(s), NDP_GZIP1).efficiency
        b = multilevel_ndp(
            params_of(s).with_(checkpoint_size=s["size"] * factor), NDP_GZIP1
        ).efficiency
        assert b <= a + 1e-9

    @given(s=scenario, factor=st.floats(min_value=1.1, max_value=8.0))
    @settings(max_examples=60, deadline=None)
    def test_more_io_bandwidth_never_hurts_ndp(self, s, factor):
        base = params_of(s)
        a = multilevel_ndp(base, NDP_GZIP1).efficiency
        b = multilevel_ndp(
            base.with_(io_bandwidth=base.io_bandwidth * factor), NDP_GZIP1
        ).efficiency
        assert b >= a - 1e-9

    @given(s=scenario)
    @settings(max_examples=60, deadline=None)
    def test_higher_compression_factor_never_hurts_ndp(self, s):
        base = params_of(s)
        lo = multilevel_ndp(base, NDP_GZIP1.with_factor(0.3)).efficiency
        hi = multilevel_ndp(base, NDP_GZIP1.with_factor(0.8)).efficiency
        assert hi >= lo - 1e-9


class TestScaleInvariance:
    @given(s=scenario, k=st.floats(min_value=0.25, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_joint_time_scaling(self, s, k):
        """Scaling every time quantity (MTTI, commit times via size) by k
        leaves efficiency unchanged — the model has no absolute clock."""
        base = params_of(s)
        scaled = base.with_(
            mtti=base.mtti * k,
            checkpoint_size=base.checkpoint_size * k,  # scales both commits
        )
        comp = CompressionSpec(
            factor=NDP_GZIP1.factor,
            compress_rate=NDP_GZIP1.compress_rate,
            decompress_rate=NDP_GZIP1.decompress_rate,
        )
        a = multilevel_ndp(base, comp)
        # For exact invariance the compression rates must scale too (they
        # are bandwidths, i.e. inverse times at fixed size).
        comp_scaled = CompressionSpec(
            factor=comp.factor,
            compress_rate=comp.compress_rate,
            decompress_rate=comp.decompress_rate,
        )
        b = multilevel_ndp(scaled, comp_scaled)
        # sizes scale the compression time linearly; so do the commit
        # times and MTTI: the ratio structure is preserved exactly.
        assert b.efficiency == pytest.approx(a.efficiency, rel=1e-9)


class TestDominance:
    @given(s=scenario, ratio=st.integers(min_value=1, max_value=200))
    @settings(max_examples=80, deadline=None)
    def test_ndp_never_loses_to_host_at_matched_compression(self, s, ratio):
        """Removing blocking I/O work cannot make things worse: for every
        scenario and every host ratio, NDP at the same compression is at
        least as efficient (up to the model's cycle quantization)."""
        p = params_of(s)
        host = multilevel_host(p, ratio, NDP_GZIP1).efficiency
        ndp = multilevel_ndp(p, NDP_GZIP1).efficiency
        assert ndp >= host - 0.01

    @given(s=scenario)
    @settings(max_examples=60, deadline=None)
    def test_multilevel_beats_io_only_when_local_recovers(self, s):
        """The local tier pays off exactly when it serves recoveries.

        This is the paper's own Figure 6 structure: at low p_local,
        host-multilevel *loses* to I/O-Only (the local writes are pure
        overhead and the rare I/O snapshots stretch rerun), while at high
        p_local it wins decisively.  Assert the winning half of the
        relation, scoped away from MTTI-criticality where the two
        configurations' mathematical treatments differ
        (docs/MODELING.md §3).
        """
        from hypothesis import assume

        from repro.core.optimizer import optimal_host

        p = params_of({**s, "p": max(s["p"], 0.8)})
        host = optimal_host(p, NDP_GZIP1).efficiency
        assume(host > 0.3)  # comfortably sub-critical
        assert host >= io_only(p, NDP_GZIP1).efficiency - 0.02

    def test_low_p_local_reverses_the_comparison(self):
        """The complementary half, pinned at the paper's own data point:
        Figure 6 shows Local(20%)+I/O-Host far below I/O-Only."""
        from repro.core.optimizer import optimal_host

        p = paper_parameters().with_(p_local_recovery=0.2)
        assert optimal_host(p).efficiency < io_only(p).efficiency
