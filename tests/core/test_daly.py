"""Daly's analytic model: intervals, wall time, efficiency, inversions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import daly


class TestIntervals:
    def test_young_matches_closed_form(self):
        assert daly.young_interval(9.0, 1800.0) == pytest.approx(np.sqrt(2 * 9 * 1800))

    def test_daly_close_to_young_when_delta_small(self):
        y = daly.young_interval(1.0, 1e6)
        d = daly.daly_interval(1.0, 1e6)
        assert abs(d - y) / y < 0.01

    def test_daly_caps_at_mtti_when_delta_large(self):
        # delta >= 2M: checkpointing dominated by interrupts.
        assert daly.daly_interval(5000.0, 1800.0) == 1800.0

    def test_daly_vectorized(self):
        deltas = np.array([1.0, 10.0, 100.0])
        out = daly.daly_interval(deltas, 1800.0)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)  # longer commits -> longer intervals

    def test_scalar_in_scalar_out(self):
        assert isinstance(daly.daly_interval(9.0, 1800.0), float)
        assert isinstance(daly.young_interval(9.0, 1800.0), float)


class TestWallTime:
    def test_no_failures_limit(self):
        # M -> infinity: wall time -> work * (1 + delta/tau).
        t = daly.expected_wall_time(1000.0, 100.0, 10.0, 1e12)
        assert t == pytest.approx(1000.0 * 1.1, rel=1e-4)

    def test_linear_in_work(self):
        t1 = daly.expected_wall_time(100.0, 50.0, 5.0, 1800.0)
        t2 = daly.expected_wall_time(200.0, 50.0, 5.0, 1800.0)
        assert t2 == pytest.approx(2 * t1)

    def test_restart_defaults_to_delta(self):
        explicit = daly.expected_wall_time(100.0, 50.0, 5.0, 1800.0, restart=5.0)
        implicit = daly.expected_wall_time(100.0, 50.0, 5.0, 1800.0)
        assert explicit == implicit

    def test_failures_increase_wall_time(self):
        healthy = daly.expected_wall_time(100.0, 50.0, 5.0, 1e9)
        failing = daly.expected_wall_time(100.0, 50.0, 5.0, 600.0)
        assert failing > healthy


class TestEfficiency:
    def test_efficiency_in_unit_interval(self):
        e = daly.efficiency(150.0, 7.5, 1800.0)
        assert 0 < e < 1

    def test_optimal_beats_suboptimal(self):
        opt = daly.optimal_efficiency(7.5, 1800.0)
        assert opt >= daly.efficiency(30.0, 7.5, 1800.0)
        assert opt >= daly.efficiency(1500.0, 7.5, 1800.0)

    def test_order_argument(self):
        e_daly = daly.optimal_efficiency(100.0, 1800.0, order="daly")
        e_young = daly.optimal_efficiency(100.0, 1800.0, order="young")
        # The higher-order interval can only help (or tie).
        assert e_daly >= e_young - 1e-9

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            daly.optimal_efficiency(1.0, 10.0, order="cubic")

    @given(st.floats(min_value=1.5, max_value=1e5))
    @settings(max_examples=50, deadline=None)
    def test_efficiency_depends_only_on_ratio(self, ratio):
        # Scale invariance: (delta, M) and (10*delta, 10*M) agree.
        e1 = daly.optimal_efficiency(1.0, ratio)
        e2 = daly.optimal_efficiency(10.0, 10.0 * ratio)
        assert float(e1) == pytest.approx(float(e2), rel=1e-9)

    @given(
        st.floats(min_value=1.0, max_value=1e4),
        st.floats(min_value=1.01, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_efficiency_monotone_in_m_over_delta(self, ratio, step):
        lo = daly.efficiency_vs_m_over_delta(ratio)
        hi = daly.efficiency_vs_m_over_delta(ratio * step)
        assert float(hi) >= float(lo) - 1e-12


class TestFigure1Curve:
    def test_vectorized_curve_monotone(self):
        ratios = np.logspace(0, 4, 40)
        effs = daly.efficiency_vs_m_over_delta(ratios)
        assert np.all(np.diff(effs) > 0)
        assert effs[0] < 0.1 and effs[-1] > 0.98

    def test_rejects_nonpositive_ratio(self):
        with pytest.raises(ValueError):
            daly.efficiency_vs_m_over_delta(np.array([1.0, -2.0]))

    def test_paper_anchor_90pct_at_200(self):
        # Section 3.3: commit time ~ M/200 for 90% progress.
        e = daly.efficiency_vs_m_over_delta(200.0)
        assert float(e) == pytest.approx(0.9, abs=0.01)


class TestInversion:
    def test_required_delta_round_trips(self):
        m = 1800.0
        delta = daly.required_delta_for_efficiency(0.9, m)
        assert float(daly.optimal_efficiency(delta, m)) == pytest.approx(0.9, abs=1e-4)

    def test_paper_section33_values(self):
        # M = 30 min, target 90%: delta ~ 9 s, period ~ M/10.
        m = 1800.0
        delta = daly.required_delta_for_efficiency(0.9, m)
        assert 7.0 < delta < 11.0
        frac = daly.optimal_interval_fraction(0.9, m)
        assert frac == pytest.approx(0.1, abs=0.02)

    def test_higher_target_needs_smaller_delta(self):
        d90 = daly.required_delta_for_efficiency(0.90, 1800.0)
        d99 = daly.required_delta_for_efficiency(0.99, 1800.0)
        assert d99 < d90

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            daly.required_delta_for_efficiency(1.5, 1800.0)
        with pytest.raises(ValueError):
            daly.required_delta_for_efficiency(0.0, 1800.0)
