"""Vectorized sweeps must match the scalar model element-for-element."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import NDP_GZIP1, NO_COMPRESSION, CRParameters
from repro.core.model import multilevel_host, multilevel_ndp
from repro.core.optimizer import optimal_ratio
from repro.core.sweeps import (
    SweepGrid,
    host_breakdown_grid,
    host_efficiency_grid,
    ndp_efficiency_grid,
    optimal_host_grid,
)


def scalar_params(mtti, size, bw_l, bw_io, p):
    return CRParameters(
        mtti=mtti,
        checkpoint_size=size,
        local_bandwidth=bw_l,
        io_bandwidth=bw_io,
        local_interval=None,  # sweeps use Daly-optimal per element
        p_local_recovery=p,
    )


def grid_of(mtti, size, bw_l=15e9, bw_io=100e6, p=0.85):
    return SweepGrid(
        mtti=mtti,
        checkpoint_size=size,
        local_bandwidth=bw_l,
        io_bandwidth=bw_io,
        p_local=p,
    )


class TestAgainstScalarModel:
    @pytest.mark.parametrize("accounting", ["paper", "staleness"])
    @pytest.mark.parametrize("comp", [NO_COMPRESSION, NDP_GZIP1], ids=["raw", "gzip"])
    def test_ndp_matches_scalar(self, accounting, comp):
        mttis = np.array([900.0, 1800.0, 5400.0])
        sizes = np.array([14e9, 112e9])
        grid = grid_of(mttis[:, None], sizes[None, :])
        effs = ndp_efficiency_grid(grid, comp, accounting)
        assert effs.shape == (3, 2)
        for i, m in enumerate(mttis):
            for j, s in enumerate(sizes):
                scalar = multilevel_ndp(
                    scalar_params(m, s, 15e9, 100e6, 0.85), comp, accounting
                )
                assert effs[i, j] == pytest.approx(scalar.efficiency, rel=1e-9)

    @pytest.mark.parametrize("ratio", [1, 8, 40])
    def test_host_matches_scalar(self, ratio):
        mttis = np.array([1800.0, 3600.0])
        grid = grid_of(mttis, 112e9)
        effs = host_efficiency_grid(grid, ratio, NDP_GZIP1)
        for i, m in enumerate(mttis):
            scalar = multilevel_host(
                scalar_params(m, 112e9, 15e9, 100e6, 0.85), ratio, NDP_GZIP1
            )
            assert effs[i] == pytest.approx(scalar.efficiency, rel=1e-9)

    def test_infeasible_maps_to_zero(self):
        grid = grid_of(30.0, 112e9)  # 30 s MTTI: hopeless
        assert ndp_efficiency_grid(grid) == 0.0

    @given(
        mtti=st.floats(min_value=300.0, max_value=36000.0),
        size=st.floats(min_value=1e9, max_value=500e9),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_pointwise_equivalence(self, mtti, size, p):
        grid = grid_of(mtti, size, p=p)
        vec = float(ndp_efficiency_grid(grid, NDP_GZIP1))
        scalar = multilevel_ndp(
            scalar_params(mtti, size, 15e9, 100e6, p), NDP_GZIP1
        ).efficiency
        assert vec == pytest.approx(scalar, rel=1e-9, abs=1e-12)


class TestOptimalHostGrid:
    def test_matches_scalar_optimizer(self):
        mttis = np.array([1800.0, 5400.0])
        grid = grid_of(mttis, 112e9)
        ratios, effs = optimal_host_grid(grid, NDP_GZIP1)
        for i, m in enumerate(mttis):
            params = scalar_params(m, 112e9, 15e9, 100e6, 0.85)
            r = optimal_ratio(params, NDP_GZIP1)
            assert ratios[i] == r
            assert effs[i] == pytest.approx(
                multilevel_host(params, r, NDP_GZIP1).efficiency, rel=1e-9
            )

    def test_grid_shapes(self):
        grid = grid_of(
            np.linspace(900, 9000, 5)[:, None], np.linspace(14e9, 112e9, 4)[None, :]
        )
        ratios, effs = optimal_host_grid(grid, NDP_GZIP1, max_ratio=128)
        assert ratios.shape == (5, 4)
        assert effs.shape == (5, 4)
        assert np.all(ratios >= 1)
        assert np.all((effs >= 0) & (effs <= 1))

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            host_efficiency_grid(grid_of(1800.0, 112e9), 0)


class TestBandwidthAxisBroadcast:
    """Regression: the ratio axis must broadcast against *all* grid fields.

    ``optimal_host_grid`` used to derive its leading-axis reshape from the
    broadcast of only ``mtti``/``checkpoint_size``/``p_local``; a grid
    sweeping only a bandwidth axis then paired the ratio axis elementwise
    with the bandwidth axis (or failed to broadcast outright)."""

    def test_io_bandwidth_only_sweep_matches_scalar(self):
        bws = np.array([50e6, 100e6, 400e6])
        grid = grid_of(1800.0, 112e9, bw_io=bws)
        ratios, effs = optimal_host_grid(grid, NDP_GZIP1, max_ratio=64)
        assert ratios.shape == (3,)
        assert effs.shape == (3,)
        for i, bw in enumerate(bws):
            params = scalar_params(1800.0, 112e9, 15e9, bw, 0.85)
            r = optimal_ratio(params, NDP_GZIP1, max_ratio=64)
            assert ratios[i] == r
            assert effs[i] == pytest.approx(
                multilevel_host(params, r, NDP_GZIP1).efficiency, rel=1e-9
            )

    def test_bandwidth_sweep_same_length_as_ratio_range(self):
        """The silent-corruption case: len(bw axis) == max_ratio broadcasts
        without error pre-fix but pairs ratio k with bandwidth k."""
        bws = np.linspace(50e6, 400e6, 4)
        grid = grid_of(1800.0, 112e9, bw_io=bws)
        ratios, effs = optimal_host_grid(grid, NDP_GZIP1, max_ratio=4)
        assert effs.shape == (4,)
        for i, bw in enumerate(bws):
            params = scalar_params(1800.0, 112e9, 15e9, bw, 0.85)
            best = max(
                range(1, 5),
                key=lambda r: multilevel_host(params, r, NDP_GZIP1).efficiency,
            )
            assert ratios[i] == best

    def test_local_bandwidth_only_sweep(self):
        grid = grid_of(1800.0, 112e9, bw_l=np.array([2e9, 15e9]))
        ratios, effs = optimal_host_grid(grid, NDP_GZIP1, max_ratio=32)
        assert ratios.shape == (2,)
        assert np.all(effs > 0)


#: A deliberately non-trivial engine: partial factor, finite rates slow
#: enough that both the compress-bound and stream-bound branches of the
#: max() in the commit/restore times are exercised across the domain.
CUSTOM_SPEC = NDP_GZIP1.__class__(
    factor=0.5, compress_rate=300e6, decompress_rate=2e9, name="custom"
)


class TestPropertyStalenessAccounting:
    """Element-for-element equivalence under the simulator-matching
    "staleness" rerun accounting and a non-trivial compression spec —
    the property the module docstring promises."""

    @given(
        mtti=st.floats(min_value=300.0, max_value=36000.0),
        size=st.floats(min_value=1e9, max_value=500e9),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_ndp_staleness_pointwise(self, mtti, size, p):
        grid = grid_of(mtti, size, p=p)
        vec = float(ndp_efficiency_grid(grid, CUSTOM_SPEC, "staleness"))
        scalar = multilevel_ndp(
            scalar_params(mtti, size, 15e9, 100e6, p), CUSTOM_SPEC, "staleness"
        ).efficiency
        assert vec == pytest.approx(scalar, rel=1e-9, abs=1e-12)

    @given(
        mtti=st.floats(min_value=300.0, max_value=36000.0),
        size=st.floats(min_value=1e9, max_value=500e9),
        p=st.floats(min_value=0.0, max_value=1.0),
        ratio=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_host_staleness_pointwise(self, mtti, size, p, ratio):
        grid = grid_of(mtti, size, p=p)
        vec = float(host_efficiency_grid(grid, ratio, CUSTOM_SPEC, "staleness"))
        scalar = multilevel_host(
            scalar_params(mtti, size, 15e9, 100e6, p), ratio, CUSTOM_SPEC, "staleness"
        ).efficiency
        assert vec == pytest.approx(scalar, rel=1e-9, abs=1e-12)


class TestMonotonicityProperties:
    def test_efficiency_rises_with_mtti(self):
        grid = grid_of(np.linspace(600, 9000, 30), 112e9)
        effs = ndp_efficiency_grid(grid, NDP_GZIP1)
        assert np.all(np.diff(effs) >= -1e-12)

    def test_efficiency_falls_with_size(self):
        grid = grid_of(1800.0, np.linspace(10e9, 200e9, 30))
        effs = ndp_efficiency_grid(grid, NDP_GZIP1)
        assert np.all(np.diff(effs) <= 1e-12)

    def test_efficiency_rises_with_p_local(self):
        grid = grid_of(1800.0, 112e9, p=np.linspace(0.05, 0.99, 20))
        effs = ndp_efficiency_grid(grid, NDP_GZIP1)
        assert np.all(np.diff(effs) >= -1e-12)


class TestFixedIntervalAndRestartOverhead:
    """The figure-4/5 harness pins tau and adds a per-recovery restart
    overhead; both SweepGrid fields must reproduce the scalar model."""

    def test_fixed_interval_matches_scalar(self):
        params = CRParameters(
            mtti=1800.0,
            checkpoint_size=112e9,
            local_bandwidth=15e9,
            io_bandwidth=100e6,
            local_interval=150.0,
            p_local_recovery=0.85,
        )
        grid = SweepGrid(
            mtti=1800.0,
            checkpoint_size=112e9,
            local_bandwidth=15e9,
            io_bandwidth=100e6,
            p_local=0.85,
            local_interval=150.0,
        )
        for ratio in (1, 8, 40):
            assert float(host_efficiency_grid(grid, ratio)) == pytest.approx(
                multilevel_host(params, ratio).efficiency, rel=1e-12
            )
        assert float(ndp_efficiency_grid(grid)) == pytest.approx(
            multilevel_ndp(params).efficiency, rel=1e-12
        )

    def test_restart_overhead_matches_scalar(self):
        params = CRParameters(
            mtti=1800.0,
            checkpoint_size=112e9,
            local_bandwidth=15e9,
            io_bandwidth=100e6,
            local_interval=None,
            p_local_recovery=0.85,
            restart_overhead=30.0,
        )
        grid = grid_of(1800.0, 112e9)
        grid = SweepGrid(**{**grid.__dict__, "restart_overhead": 30.0})
        assert float(host_efficiency_grid(grid, 8, NDP_GZIP1)) == pytest.approx(
            multilevel_host(params, 8, NDP_GZIP1).efficiency, rel=1e-12
        )
        assert float(ndp_efficiency_grid(grid, NDP_GZIP1)) == pytest.approx(
            multilevel_ndp(params, NDP_GZIP1).efficiency, rel=1e-12
        )

    def test_rejects_nonpositive_interval(self):
        grid = SweepGrid(
            mtti=1800.0,
            checkpoint_size=112e9,
            local_bandwidth=15e9,
            io_bandwidth=100e6,
            p_local=0.85,
            local_interval=0.0,
        )
        with pytest.raises(ValueError):
            host_efficiency_grid(grid, 8)


class TestHostBreakdownGrid:
    """host_breakdown_grid must be *bit-identical* to the scalar model's
    OverheadBreakdown — figure 4 swaps its per-ratio loop for this."""

    def scalar(self, ratio, comp=NO_COMPRESSION, accounting="paper", **kw):
        params = CRParameters(
            mtti=kw.get("mtti", 1800.0),
            checkpoint_size=kw.get("size", 112e9),
            local_bandwidth=15e9,
            io_bandwidth=100e6,
            local_interval=kw.get("interval"),
            p_local_recovery=kw.get("p", 0.85),
            restart_overhead=kw.get("r0", 0.0),
        )
        return multilevel_host(params, ratio, comp, accounting)

    def grid(self, **kw):
        return SweepGrid(
            mtti=kw.get("mtti", 1800.0),
            checkpoint_size=kw.get("size", 112e9),
            local_bandwidth=15e9,
            io_bandwidth=100e6,
            p_local=kw.get("p", 0.85),
            local_interval=kw.get("interval"),
            restart_overhead=kw.get("r0", 0.0),
        )

    @pytest.mark.parametrize("accounting", ["paper", "staleness"])
    @pytest.mark.parametrize(
        "comp", [NO_COMPRESSION, NDP_GZIP1, CUSTOM_SPEC], ids=["raw", "gzip", "custom"]
    )
    def test_bit_identical_to_scalar(self, comp, accounting):
        ratios = np.array([1.0, 2.0, 8.0, 64.0, 256.0])
        cols = host_breakdown_grid(
            self.grid(interval=150.0, r0=30.0), ratios, comp, accounting
        )
        for i, r in enumerate(ratios):
            res = self.scalar(int(r), comp, accounting, interval=150.0, r0=30.0)
            assert float(cols["efficiency"][i]) == res.efficiency
            for name in res.breakdown.component_names():
                assert float(cols[name][i]) == getattr(res.breakdown, name), name

    def test_daly_interval_bit_identical(self):
        cols = host_breakdown_grid(self.grid(), np.array([12.0]))
        res = self.scalar(12)
        assert float(cols["efficiency"][0]) == res.efficiency
        for name in res.breakdown.component_names():
            assert float(cols[name][0]) == getattr(res.breakdown, name), name

    def test_infeasible_element_matches_scalar_zero_breakdown(self):
        # 30 s MTTI against a 112 GB checkpoint: per-failure cost >= MTTI.
        cols = host_breakdown_grid(self.grid(mtti=30.0), np.array([8.0]))
        res = self.scalar(8, mtti=30.0)
        assert res.efficiency == 0.0
        assert float(cols["efficiency"][0]) == 0.0
        assert float(cols["compute"][0]) == 0.0
        assert float(cols["checkpoint_local"][0]) == 0.0
        assert float(cols["checkpoint_io"][0]) == 0.0
        for name in res.breakdown.component_names():
            assert float(cols[name][0]) == getattr(res.breakdown, name), name

    def test_broadcast_shape_covers_grid_and_ratio_axes(self):
        ratios = np.arange(1.0, 9.0).reshape(-1, 1)
        cols = host_breakdown_grid(self.grid(p=np.linspace(0.2, 0.96, 5)), ratios)
        for arr in cols.values():
            assert arr.shape == (8, 5)

    @given(
        mtti=st.floats(min_value=300.0, max_value=36000.0),
        size=st.floats(min_value=1e9, max_value=500e9),
        p=st.floats(min_value=0.0, max_value=1.0),
        ratio=st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_components_sum_to_one_when_feasible(
        self, mtti, size, p, ratio
    ):
        cols = host_breakdown_grid(self.grid(mtti=mtti, size=size, p=p), float(ratio))
        res = self.scalar(ratio, mtti=mtti, size=size, p=p)
        assert float(cols["efficiency"]) == res.efficiency
        for name in res.breakdown.component_names():
            assert float(cols[name]) == getattr(res.breakdown, name), name
