"""NDP provisioning analysis — exact Table 3 regeneration."""

import pytest

from repro.compression.study import PAPER_UTILITY_AVERAGES
from repro.core.configs import paper_parameters
from repro.core.ndp_sizing import select_utility, size_ndp, sizing_table

#: Table 3 as printed: (required MB/s, cores, interval s).
PAPER_TABLE3 = {
    "gzip(1)": (367, 4, 305),
    "gzip(6)": (395, 8, 283),
    "bzip2(1)": (407, 34, 275),
    "bzip2(9)": (421, 41, 266),
    "xz(1)": (515, 21, 217),
    "xz(6)": (596, 125, 188),
    "lz4(1)": (283, 1, 395),
}


@pytest.fixture
def sizings(params):
    return {s.utility: s for s in sizing_table(dict(PAPER_UTILITY_AVERAGES), params)}


class TestTable3:
    @pytest.mark.parametrize("utility", sorted(PAPER_TABLE3))
    def test_required_speed(self, sizings, utility):
        speed_mbps, _, _ = PAPER_TABLE3[utility]
        assert sizings[utility].required_speed / 1e6 == pytest.approx(
            speed_mbps, rel=0.02
        )

    @pytest.mark.parametrize("utility", sorted(PAPER_TABLE3))
    def test_core_count(self, sizings, utility):
        _, cores, _ = PAPER_TABLE3[utility]
        assert sizings[utility].cores == cores

    @pytest.mark.parametrize("utility", sorted(PAPER_TABLE3))
    def test_checkpoint_interval(self, sizings, utility):
        _, _, interval = PAPER_TABLE3[utility]
        assert sizings[utility].checkpoint_interval == pytest.approx(
            interval, rel=0.02
        )


class TestSizingMechanics:
    def test_higher_factor_needs_higher_speed(self, params):
        a = size_ndp("a", 0.5, 100e6, params)
        b = size_ndp("b", 0.8, 100e6, params)
        assert b.required_speed > a.required_speed

    def test_interval_shrinks_with_factor(self, params):
        a = size_ndp("a", 0.5, 100e6, params)
        b = size_ndp("b", 0.8, 100e6, params)
        assert b.checkpoint_interval < a.checkpoint_interval

    def test_at_least_one_core(self, params):
        s = size_ndp("fast", 0.1, 1e12, params)
        assert s.cores == 1

    def test_invalid_inputs(self, params):
        with pytest.raises(ValueError):
            size_ndp("x", 1.0, 1e8, params)
        with pytest.raises(ValueError):
            size_ndp("x", 0.5, 0.0, params)

    def test_as_spec_provisions_cores_times_thread(self, params):
        s = size_ndp("gzip(1)", 0.728, 110.1e6, params)
        spec = s.as_spec(decompress_rate=16e9)
        assert spec.compress_rate == pytest.approx(s.cores * 110.1e6)
        assert spec.factor == 0.728


class TestSelection:
    def test_paper_choice_gzip1_at_4_cores(self, sizings):
        chosen = select_utility(list(sizings.values()), max_cores=4)
        assert chosen.utility == "gzip(1)"

    def test_relaxed_budget_prefers_gzip6(self, sizings):
        chosen = select_utility(list(sizings.values()), max_cores=8)
        assert chosen.utility == "gzip(6)"

    def test_single_core_budget_forces_lz4(self, sizings):
        chosen = select_utility(list(sizings.values()), max_cores=1)
        assert chosen.utility == "lz4(1)"

    def test_unsatisfiable_budget(self, sizings):
        with pytest.raises(ValueError):
            select_utility(list(sizings.values()), max_cores=0)
