"""The multilevel C/R performance model — including paper-shape regressions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import model
from repro.core.configs import (
    HOST_GZIP1,
    NDP_GZIP1,
    NO_COMPRESSION,
    paper_parameters,
)


class TestSingleLevel:
    def test_local_only_hits_90pct_design_point(self, params):
        # The system is provisioned so single-level-to-local reaches ~90%.
        res = model.single_level(params, level="local")
        assert res.efficiency == pytest.approx(0.90, abs=0.02)

    def test_io_only_is_poor(self, params):
        res = model.io_only(params)
        assert 0.05 < res.efficiency < 0.25

    def test_io_only_compression_helps(self, params):
        plain = model.io_only(params).efficiency
        comp = model.io_only(params, HOST_GZIP1).efficiency
        assert comp > 2 * plain

    def test_breakdown_sums_to_one(self, params):
        b = model.io_only(params).breakdown
        assert b.total == pytest.approx(1.0, abs=1e-9)

    def test_io_components_on_io_side(self, params):
        b = model.io_only(params).breakdown
        assert b.checkpoint_local == 0.0
        assert b.rerun_local == 0.0
        assert b.checkpoint_io > 0 and b.rerun_io > 0

    def test_local_components_on_local_side(self, params):
        b = model.single_level(params, level="local").breakdown
        assert b.checkpoint_io == 0.0
        assert b.checkpoint_local > 0

    def test_unknown_level_rejected(self, params):
        with pytest.raises(ValueError):
            model.single_level(params, level="tape")

    def test_explicit_tau_respected(self, params):
        res = model.io_only(params, tau=500.0)
        assert res.tau == 500.0


class TestMultilevelHost:
    def test_ratio_one_required(self, params):
        with pytest.raises(ValueError):
            model.multilevel_host(params, 0)

    def test_breakdown_sums_to_one(self, params):
        b = model.multilevel_host(params, 20).breakdown
        assert b.total == pytest.approx(1.0, abs=1e-9)

    def test_beats_io_only(self, params):
        assert (
            model.multilevel_host(params, 20).efficiency
            > model.io_only(params).efficiency
        )

    def test_compression_helps(self, params):
        plain = model.multilevel_host(params, 20).efficiency
        comp = model.multilevel_host(params, 20, HOST_GZIP1).efficiency
        assert comp > plain

    def test_interior_optimum_in_ratio(self, params):
        effs = [model.multilevel_host(params, r).efficiency for r in (1, 24, 500)]
        assert effs[1] > effs[0] and effs[1] > effs[2]

    def test_higher_p_local_helps(self, params):
        lo = model.multilevel_host(params.with_(p_local_recovery=0.2), 20).efficiency
        hi = model.multilevel_host(params.with_(p_local_recovery=0.96), 20).efficiency
        assert hi > lo

    def test_staleness_accounting_strictly_worse(self, params):
        a = model.multilevel_host(params, 20, rerun_accounting="paper")
        b = model.multilevel_host(params, 20, rerun_accounting="staleness")
        assert b.efficiency < a.efficiency

    def test_unknown_accounting_rejected(self, params):
        with pytest.raises(ValueError):
            model.multilevel_host(params, 20, rerun_accounting="magic")

    def test_infeasible_configuration_reports_zero(self, params):
        # Tiny MTTI: recovery costs exceed the MTTI, no forward progress.
        bad = params.with_(mtti=30.0)
        res = model.multilevel_host(bad, 50)
        assert res.efficiency == 0.0
        assert math.isinf(res.slowdown)
        assert not res.feasible


class TestNDPInterval:
    def test_uncompressed_interval(self, params):
        n, interval, t_raw = model.ndp_io_interval(params)
        assert t_raw == pytest.approx(1120.0)
        # 1120 s of drain at ~95% duty cycle -> 8 cycles of 157.47 s.
        assert n == 8
        assert interval == pytest.approx(n * params.cycle_time)

    def test_compressed_interval(self, params):
        n, interval, t_raw = model.ndp_io_interval(params, NDP_GZIP1)
        assert t_raw == pytest.approx(112e9 * 0.272 / 100e6, rel=1e-3)
        assert n == 3  # ~305 s of drain -> 3 cycles

    def test_pause_increases_interval(self, params):
        n_pause, _, _ = model.ndp_io_interval(params, pause_during_local=True)
        n_free, _, _ = model.ndp_io_interval(params, pause_during_local=False)
        assert n_pause >= n_free

    def test_compression_rate_bound(self, params):
        # An NDP slower than I/O demands becomes the bottleneck.
        slow = NDP_GZIP1.with_factor(0.728)
        slow = type(slow)(
            factor=0.728, compress_rate=50e6, decompress_rate=16e9, name="slow"
        )
        _, _, t_raw = model.ndp_io_interval(params, slow)
        assert t_raw == pytest.approx(112e9 / 50e6)


class TestMultilevelNDP:
    def test_beats_host_at_same_compression(self, params):
        host = model.multilevel_host(params, 15, HOST_GZIP1).efficiency
        ndp = model.multilevel_ndp(params, NDP_GZIP1).efficiency
        assert ndp > host

    def test_no_checkpoint_io_component(self, params):
        b = model.multilevel_ndp(params, NDP_GZIP1).breakdown
        assert b.checkpoint_io == 0.0

    def test_breakdown_sums_to_one(self, params):
        b = model.multilevel_ndp(params).breakdown
        assert b.total == pytest.approx(1.0, abs=1e-9)

    def test_compression_reduces_rerun_io(self, params):
        plain = model.multilevel_ndp(params).breakdown.rerun_io
        comp = model.multilevel_ndp(params, NDP_GZIP1).breakdown.rerun_io
        assert comp < plain

    def test_ratio_reflects_drain_cadence(self, params):
        res = model.multilevel_ndp(params, NDP_GZIP1)
        n, interval, _ = model.ndp_io_interval(params, NDP_GZIP1)
        assert res.ratio == n
        assert res.io_interval == pytest.approx(interval)


class TestPaperShapeRegressions:
    """Quantitative anchors from the paper's evaluation (tolerant bands)."""

    def test_figure7_ndp_rerun_io_band(self, params):
        p = params.with_(p_local_recovery=0.96)
        ndp = model.multilevel_ndp(p).breakdown.rerun_io
        ndpc = model.multilevel_ndp(p, NDP_GZIP1).breakdown.rerun_io
        assert ndp == pytest.approx(0.012, abs=0.006)  # paper: 1.2%
        assert ndpc == pytest.approx(0.006, abs=0.004)  # paper: 0.6%

    def test_figure8_anchor_112gb(self, params):
        # Paper: HC ~65%, NC ~87% at 112 GB, p_local 85%.
        from repro.core.optimizer import optimal_host

        hc = optimal_host(params, HOST_GZIP1).efficiency
        nc = model.multilevel_ndp(params, NDP_GZIP1).efficiency
        assert hc == pytest.approx(0.65, abs=0.07)
        assert nc == pytest.approx(0.87, abs=0.03)

    def test_section_6_3_headline(self, params):
        from repro.core.optimizer import optimal_host

        host, ndp = [], []
        for p in (0.2, 0.4, 0.6, 0.8):
            pp = params.with_(p_local_recovery=p)
            host.append(optimal_host(pp, HOST_GZIP1).efficiency)
            ndp.append(model.multilevel_ndp(pp, NDP_GZIP1).efficiency)
        assert sum(host) / 4 == pytest.approx(0.51, abs=0.05)  # paper: 51%
        assert sum(ndp) / 4 == pytest.approx(0.78, abs=0.04)  # paper: 78%

    def test_ndp_without_compression_vs_host_with(self, params):
        # Section 6.3 claims NDP-without-compression beats host-multilevel-
        # with-compression on average.  In our model the claim holds
        # pointwise at high p_local but host+compression's cheap compressed
        # I/O *restores* win at low p_local, leaving the averages within a
        # few points (documented deviation in EXPERIMENTS.md).  Assert the
        # robust parts: NDP-no-comp always beats host-no-comp, wins
        # decisively at p_local >= 60%, and the averages stay close.
        from repro.core.optimizer import optimal_host

        ndp, host_c = [], []
        for p in (0.2, 0.4, 0.6, 0.8):
            pp = params.with_(p_local_recovery=p)
            ndp_eff = model.multilevel_ndp(pp).efficiency
            ndp.append(ndp_eff)
            host_c.append(optimal_host(pp, HOST_GZIP1).efficiency)
            assert ndp_eff > optimal_host(pp).efficiency  # vs host no-comp
            if p >= 0.6:
                assert ndp_eff > host_c[-1] - 0.01  # ~tie at 60%, win at 80%
        assert ndp[-1] > host_c[-1] + 0.05
        assert abs(sum(ndp) / 4 - sum(host_c) / 4) < 0.10


class TestDescribe:
    def test_includes_key_quantities(self, params):
        text = model.multilevel_ndp(params, NDP_GZIP1).describe()
        assert "Local + I/O-NDP" in text
        assert "87" in text  # the efficiency
        assert "compression" in text
        assert "every 3 local" in text

    def test_infeasible_flagged(self, params):
        bad = params.with_(mtti=30.0)
        text = model.multilevel_host(bad, 50).describe()
        assert "INFEASIBLE" in text

    def test_no_compression_line_when_uncompressed(self, params):
        text = model.multilevel_ndp(params).describe()
        assert "compression " not in text


@given(
    p_local=st.floats(min_value=0.0, max_value=1.0),
    ratio=st.integers(min_value=1, max_value=400),
    factor=st.floats(min_value=0.0, max_value=0.95),
)
@settings(max_examples=60, deadline=None)
def test_property_efficiency_bounded(p_local, ratio, factor):
    """Any admissible configuration yields efficiency in [0, 1]."""
    params = paper_parameters().with_(p_local_recovery=p_local)
    comp = NO_COMPRESSION if factor == 0 else HOST_GZIP1.with_factor(factor)
    for res in (
        model.multilevel_host(params, ratio, comp),
        model.multilevel_ndp(params, comp),
    ):
        assert 0.0 <= res.efficiency <= 1.0
        assert res.breakdown.total == pytest.approx(1.0, abs=1e-6)
