"""CRParameters / CompressionSpec derived quantities and validation."""

import math

import pytest

from repro.core.configs import (
    HOST_GZIP1,
    NDP_GZIP1,
    NO_COMPRESSION,
    CompressionSpec,
    CRParameters,
    paper_parameters,
)


class TestCompressionSpec:
    def test_ratio_from_factor(self):
        spec = CompressionSpec(0.728, 1e8, 1e9)
        assert spec.ratio == pytest.approx(1 / 0.272)

    def test_compressed_size(self):
        spec = CompressionSpec(0.75, 1e8, 1e9)
        assert spec.compressed_size(112e9) == pytest.approx(28e9)

    def test_with_factor_preserves_rates(self):
        new = HOST_GZIP1.with_factor(0.5)
        assert new.factor == 0.5
        assert new.compress_rate == HOST_GZIP1.compress_rate

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            CompressionSpec(1.0, 1e8, 1e9)
        with pytest.raises(ValueError):
            CompressionSpec(-0.1, 1e8, 1e9)

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            CompressionSpec(0.5, 0.0, 1e9)

    def test_no_compression_sentinel(self):
        assert NO_COMPRESSION.factor == 0.0
        assert math.isinf(NO_COMPRESSION.compress_rate)

    def test_paper_engine_rates(self):
        assert HOST_GZIP1.compress_rate == pytest.approx(640e6)  # 64 x 10 MB/s
        assert NDP_GZIP1.compress_rate == pytest.approx(440.4e6)  # 4 x 110.1 MB/s
        assert NDP_GZIP1.decompress_rate == pytest.approx(16e9)


class TestCRParameters:
    def test_paper_defaults(self, params):
        assert params.mtti == 1800.0
        assert params.checkpoint_size == 112e9
        assert params.local_interval == 150.0
        assert params.p_local_recovery == 0.85

    def test_local_commit_time(self, params):
        assert params.local_commit_time == pytest.approx(112 / 15, rel=1e-6)

    def test_io_commit_time_uncompressed_is_18_67_min(self, params):
        assert params.io_commit_time() == pytest.approx(1120.0)

    def test_io_commit_time_with_compression_is_io_bound(self, params):
        # gzip(1): 640 MB/s compression vs 100 MB/s I/O on 30.46 GB.
        t = params.io_commit_time(HOST_GZIP1)
        assert t == pytest.approx(112e9 * 0.272 / 100e6)
        assert t > 112e9 / HOST_GZIP1.compress_rate  # write is the bottleneck

    def test_io_commit_time_compression_bound(self, params):
        slow = CompressionSpec(0.9, compress_rate=50e6, decompress_rate=1e9)
        t = params.io_commit_time(slow)
        assert t == pytest.approx(112e9 / 50e6)  # producer-bound

    def test_io_restore_time_decompression_overlapped(self, params):
        t = params.io_restore_time(NDP_GZIP1)
        # Stream-bound: 30.46 GB at 100 MB/s, not 112 GB / 16 GB/s.
        assert t == pytest.approx(112e9 * 0.272 / 100e6)

    def test_tau_explicit_vs_daly(self, params):
        assert params.tau == 150.0
        auto = params.with_(local_interval=None)
        assert 100.0 < auto.tau < 250.0
        assert auto.tau != 150.0

    def test_cycle_time(self, params):
        assert params.cycle_time == pytest.approx(150.0 + 112 / 15)

    def test_with_functional_update(self, params):
        p2 = params.with_(mtti=3600.0)
        assert p2.mtti == 3600.0
        assert params.mtti == 1800.0  # original untouched

    @pytest.mark.parametrize(
        "field,value",
        [
            ("mtti", -1.0),
            ("checkpoint_size", 0.0),
            ("local_bandwidth", 0.0),
            ("io_bandwidth", -5.0),
            ("local_interval", 0.0),
            ("p_local_recovery", 1.5),
            ("restart_overhead", -1.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            paper_parameters().with_(**{field: value})
