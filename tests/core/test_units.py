"""Unit-conversion helpers."""

import pytest

from repro.core import units


def test_decimal_data_units():
    assert units.gb(1) == 1e9
    assert units.mb(112_000) == units.gb(112)
    assert units.tb(10) == 1e13
    assert units.pb(14) == 14e15
    assert units.kb(1) == 1e3


def test_binary_units_differ_from_decimal():
    assert units.gib(1) == 2**30
    assert units.gib(1) > units.gb(1)


def test_time_units():
    assert units.minutes(30) == 1800
    assert units.hours(2) == 7200
    assert units.days(1) == 86400
    assert units.years(1) == pytest.approx(365.25 * 86400)


def test_inverse_conversions():
    assert units.to_minutes(units.minutes(42)) == pytest.approx(42)
    assert units.to_gb(units.gb(112)) == pytest.approx(112)
    assert units.to_mb(units.mb(100)) == pytest.approx(100)


def test_bandwidth_helpers():
    assert units.mb_per_s(100) == 1e8
    assert units.gb_per_s(15) == 1.5e10
    assert units.tb_per_s(10) == 1e13


def test_fmt_bytes_selects_scale():
    assert units.fmt_bytes(112e9) == "112.00 GB"
    assert units.fmt_bytes(14e15) == "14.00 PB"
    assert units.fmt_bytes(512) == "512 B"


def test_fmt_time_selects_scale():
    assert units.fmt_time(1120).endswith("min")
    assert units.fmt_time(9) == "9.00 s"
    assert units.fmt_time(7200).endswith("h")
    assert units.fmt_time(200000).endswith("d")


def test_fmt_rate():
    assert units.fmt_rate(100e6) == "100.00 MB/s"
