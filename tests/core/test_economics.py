"""The cost model: structure must hold across unit-price assumptions."""

import pytest

from repro.core.configs import paper_parameters
from repro.core.economics import (
    ConfigurationCost,
    CostModel,
    _baseline_comparison,
    cheapest_for_target,
    price_configuration,
)
from repro.core.model import multilevel_ndp


class TestCostModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(nvm_per_gbps=-1.0)
        with pytest.raises(ValueError):
            CostModel(nodes=0)

    def test_configuration_cost_arithmetic(self):
        c = ConfigurationCost("x", efficiency=0.8, nvm_cost=10.0, ndp_cost=5.0, pfs_cost=85.0)
        assert c.total == 100.0
        assert c.cost_per_efficiency == pytest.approx(100.0 / 80.0)

    def test_zero_efficiency_infinite_cost(self):
        c = ConfigurationCost("x", efficiency=0.0, nvm_cost=1, ndp_cost=0, pfs_cost=0)
        assert c.cost_per_efficiency == float("inf")


class TestPricing:
    def test_components_scale_with_prices(self, params):
        res = multilevel_ndp(params)
        cheap = price_configuration("a", params, res, CostModel(), ndp_cores=4)
        pricey = price_configuration(
            "a", params, res, CostModel(nvm_per_gbps=300.0), ndp_cores=4
        )
        assert pricey.nvm_cost == pytest.approx(2 * cheap.nvm_cost)
        assert pricey.pfs_cost == cheap.pfs_cost

    def test_ndp_cores_priced_per_node(self, params):
        res = multilevel_ndp(params)
        prices = CostModel(ndp_core=50.0, nodes=1000)
        c = price_configuration("a", params, res, prices, ndp_cores=4)
        assert c.ndp_cost == 50.0 * 4 * 1000


class TestSubstitutionClaim:
    @pytest.mark.parametrize("pfs_price", [10_000.0, 100_000.0, 1_000_000.0])
    @pytest.mark.parametrize("core_price", [10.0, 50.0, 150.0])
    def test_ndp_build_cheaper_and_not_worse(self, pfs_price, core_price):
        """The Fig. 8/9 substitution (2 GB/s NVM + NDP vs 15 GB/s NVM +
        host compression) is cheaper at plausible component prices, with
        equal-or-better efficiency.  (NDP cores are wimpy embedded cores;
        well below the cost of 13 GB/s of NVM bandwidth.)"""
        prices = CostModel(pfs_per_gbps=pfs_price, ndp_core=core_price)
        host, ndp = _baseline_comparison(paper_parameters(), prices)
        assert ndp.total < host.total
        assert ndp.efficiency > host.efficiency - 0.02
        assert ndp.cost_per_efficiency < host.cost_per_efficiency

    def test_cost_per_efficiency_robust_to_extreme_core_price(self):
        """Even when NDP cores are absurdly expensive ($500 each — more
        than the NVM bandwidth they replace), NDP still delivers more
        efficiency per dollar."""
        prices = CostModel(ndp_core=500.0)
        host, ndp = _baseline_comparison(paper_parameters(), prices)
        assert ndp.cost_per_efficiency < host.cost_per_efficiency


class TestCheapestForTarget:
    def test_ndp_reaches_targets_host_cannot(self, params):
        prices = CostModel()
        host, ndp = cheapest_for_target(0.88, prices, params)
        assert ndp is not None
        # host+compression caps below 0.88 on this grid (blocking
        # compression rate); see ablation-io-budget.
        assert host is None or ndp.total <= host.total

    def test_ndp_cheaper_at_reachable_target(self, params):
        host, ndp = cheapest_for_target(0.70, CostModel(), params)
        assert host is not None and ndp is not None
        assert ndp.total < host.total

    def test_unreachable_target_returns_none(self, params):
        host, ndp = cheapest_for_target(0.999, CostModel(), params)
        assert host is None and ndp is None
