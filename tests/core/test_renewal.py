"""The absorbing-chain renewal model."""

import pytest

from repro.core.configs import NDP_GZIP1, NO_COMPRESSION
from repro.core.model import multilevel_host, multilevel_ndp
from repro.core.renewal import (
    PhaseChain,
    renewal_multilevel_host,
    renewal_multilevel_ndp,
)
from repro.core.renewal import _Phase  # noqa: PLC2701 - tested directly


class TestPhaseChain:
    def test_no_failures_limit(self):
        """With MTTI -> infinity the chain returns the nominal time."""
        phases = [_Phase(10.0, {"compute": 10.0}), _Phase(2.0, {"checkpoint_local": 2.0})]
        chain = PhaseChain(phases, mtti=1e15, p_local=1.0, restore_local=1.0, restore_io=5.0)
        total, cats = chain.solve()
        assert total == pytest.approx(12.0, rel=1e-9)
        assert cats["compute"] == pytest.approx(10.0, rel=1e-6)
        assert cats["checkpoint_local"] == pytest.approx(2.0, rel=1e-6)

    def test_failures_inflate_time(self):
        phases = [_Phase(100.0, {"compute": 100.0})]
        healthy = PhaseChain(phases, 1e12, 1.0, 1.0, 1.0).solve()[0]
        failing = PhaseChain(phases, 200.0, 1.0, 1.0, 1.0).solve()[0]
        assert failing > healthy

    def test_single_phase_geometric_closed_form(self):
        """One phase, local-only recovery with zero restore: the chain
        must reproduce the memoryless closed form
        E[T] = M*(e^{s/M} - 1)."""
        import math

        s, m = 120.0, 300.0
        chain = PhaseChain([_Phase(s, {"compute": s})], m, 1.0, 0.0, 0.0)
        total, _ = chain.solve()
        assert total == pytest.approx(m * math.expm1(s / m), rel=1e-9)

    def test_io_recovery_restarts_period(self):
        """p_local=0 with free restores: every failure rewinds to state 0,
        so a 2-phase period costs more than 2 independent 1-phase runs."""
        m = 150.0
        one = PhaseChain([_Phase(100.0, {"compute": 100.0})], m, 0.0, 0.0, 0.0).solve()[0]
        two = PhaseChain(
            [_Phase(100.0, {"compute": 100.0}), _Phase(100.0, {"compute": 100.0})],
            m,
            0.0,
            0.0,
            0.0,
        ).solve()[0]
        assert two > 2 * one

    def test_validation(self):
        with pytest.raises(ValueError):
            PhaseChain([], 100.0, 0.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            PhaseChain([_Phase(1.0, {"compute": 1.0})], -1.0, 0.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            PhaseChain([_Phase(1.0, {"compute": 1.0})], 1.0, 1.5, 1.0, 1.0)


class TestAgainstExpectedValueModel:
    """The two analytic methods must agree in benign regimes and bracket
    consistently in failure-heavy ones."""

    def test_agree_when_failures_rare(self, params):
        p = params.with_(mtti=1e6)
        ev = multilevel_ndp(p, NDP_GZIP1, rerun_accounting="staleness")
        rc = renewal_multilevel_ndp(p, NDP_GZIP1)
        assert rc.efficiency == pytest.approx(ev.efficiency, abs=0.005)

    def test_paper_operating_point_close(self, params):
        ev = multilevel_ndp(params, NDP_GZIP1, rerun_accounting="staleness")
        rc = renewal_multilevel_ndp(params, NDP_GZIP1)
        assert rc.efficiency == pytest.approx(ev.efficiency, abs=0.05)

    def test_renewal_upper_bounds_expected_value(self, params):
        # Renewal's I/O rollback target ignores drain lag => optimistic.
        for p_local in (0.5, 0.85, 0.96):
            p = params.with_(p_local_recovery=p_local)
            ev = multilevel_ndp(p, rerun_accounting="staleness").efficiency
            rc = renewal_multilevel_ndp(p).efficiency
            assert rc >= ev - 1e-9

    def test_host_variant_close(self, params):
        ev = multilevel_host(params, 15, NDP_GZIP1, rerun_accounting="staleness")
        rc = renewal_multilevel_host(params, 15, NDP_GZIP1)
        assert rc.efficiency == pytest.approx(ev.efficiency, abs=0.06)


class TestModelResults:
    def test_breakdown_sums_to_one(self, params):
        for res in (
            renewal_multilevel_ndp(params, NDP_GZIP1),
            renewal_multilevel_host(params, 10, NO_COMPRESSION),
        ):
            assert res.breakdown.total == pytest.approx(1.0, abs=1e-6)

    def test_ndp_has_no_checkpoint_io(self, params):
        res = renewal_multilevel_ndp(params, NDP_GZIP1)
        assert res.breakdown.checkpoint_io == 0.0

    def test_host_pays_checkpoint_io(self, params):
        res = renewal_multilevel_host(params, 10, NDP_GZIP1)
        assert res.breakdown.checkpoint_io > 0.02

    def test_compression_helps(self, params):
        plain = renewal_multilevel_ndp(params).efficiency
        comp = renewal_multilevel_ndp(params, NDP_GZIP1).efficiency
        assert comp > plain

    def test_ratio_validation(self, params):
        with pytest.raises(ValueError):
            renewal_multilevel_host(params, 0)

    def test_io_interval_matches_drain_cadence(self, params):
        from repro.core.model import ndp_io_interval

        res = renewal_multilevel_ndp(params, NDP_GZIP1)
        n, interval, _ = ndp_io_interval(params, NDP_GZIP1)
        assert res.ratio == n
        assert res.io_interval == pytest.approx(interval)
