"""Stateful chaos testing of the C/R runtime.

A hypothesis state machine drives the multilevel checkpointer through a
random interleaving of checkpoints, crashes (NVM wipes), file corruption,
drain flushes and restarts, maintaining a model of what data every
committed checkpoint held.  Invariants:

* a restart never returns wrong data — whatever checkpoint id it picks,
  the payloads match what was committed under that id;
* after a flush, destroying local storage still leaves the application
  recoverable from I/O;
* corruption is never silently returned (the reader either falls back to
  an older intact checkpoint or raises NoCheckpointError).
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, precondition, rule
from hypothesis import strategies as st

from repro.ckpt import IOStore, LocalStore, MultilevelCheckpointer, NoCheckpointError
from repro.compression.codecs import make_codec

GZIP = make_codec("gzip", 1)


class CheckpointChaos(RuleBasedStateMachine):
    """Random operation interleavings against a live checkpointer."""

    @initialize()
    def setup(self):
        import tempfile
        from pathlib import Path

        self._tmp = tempfile.TemporaryDirectory()
        root = Path(self._tmp.name)
        self.local = LocalStore(root / "nvm", capacity=3)
        self.io = IOStore(root / "pfs")
        self.cr = MultilevelCheckpointer(
            "chaos", self.local, self.io, mode="ndp", codec=GZIP
        ).start()
        self.committed: dict[int, dict[int, bytes]] = {}
        self.corrupted: dict[str, set[int]] = {"local": set(), "io": set()}
        self.rng = np.random.default_rng(0)
        self.position = 0

    def teardown(self):
        self.cr.close(flush=False)
        self._tmp.cleanup()

    # -- operations ----------------------------------------------------------------

    @rule(ranks=st.integers(min_value=1, max_value=3))
    def checkpoint(self, ranks):
        self.position += 1
        payloads = {
            r: self.rng.integers(0, 4, 20_000, dtype=np.uint8).tobytes()
            for r in range(ranks)
        }
        cid = self.cr.checkpoint(payloads, position=float(self.position))
        self.committed[cid] = payloads

    @precondition(lambda self: self.committed)
    @rule()
    def flush(self):
        assert self.cr.flush_to_io(30)

    @precondition(lambda self: self.committed)
    @rule()
    def wipe_local(self):
        self.cr.flush_to_io(30)  # quiesce the drain before destroying NVM
        self.local.wipe("chaos")
        self.corrupted["local"].clear()  # nothing left to be corrupt

    @precondition(lambda self: self.committed)
    @rule(which=st.sampled_from(["local", "io"]))
    def corrupt_newest(self, which):
        store = self.local if which == "local" else self.io
        ids = store.committed("chaos")
        if not ids:
            return
        target = ids[-1]
        cdir = store._ckpt_dir("chaos", target)
        for f in cdir.glob("rank_*.ctx"):
            blob = bytearray(f.read_bytes())
            blob[-1] ^= 0xFF
            f.write_bytes(blob)
        self.corrupted[which].add(target)

    @precondition(lambda self: self.committed)
    @rule()
    def restart(self):
        try:
            result = self.cr.restart()
        except NoCheckpointError:
            assert not self._recoverable_ids(), "recovery gave up too early"
            return
        # Never returns corrupted/mismatched data.
        expected = self.committed[result.ckpt_id]
        assert set(result.payloads) == set(expected)
        for r, blob in result.payloads.items():
            assert blob == expected[r], f"ckpt {result.ckpt_id} rank {r} data mismatch"

    # -- invariants -------------------------------------------------------------------

    @invariant()
    def local_capacity_respected(self):
        committed = self.local.committed("chaos")
        locked = self.local.locked("chaos")
        assert len(committed) <= self.local.capacity + len(locked) + 1

    def _recoverable_ids(self):
        """Ids with at least one intact copy on some store."""
        ok_local = set(self.local.committed("chaos")) - self.corrupted["local"]
        ok_io = set(self.io.committed("chaos")) - self.corrupted["io"]
        return (ok_local | ok_io) & set(self.committed)


CheckpointChaos.TestCase.settings = settings(
    max_examples=12, stateful_step_count=12, deadline=None
)
TestCheckpointChaos = CheckpointChaos.TestCase
