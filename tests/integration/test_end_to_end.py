"""End-to-end: live mini-apps under the C/R runtime, crash and recover."""

import numpy as np
import pytest

from repro.ckpt import IOStore, LocalStore, MultilevelCheckpointer
from repro.compression.codecs import make_codec
from repro.workloads import deserialize_state, make_app, serialize_state

GZIP = make_codec("gzip", 1)


@pytest.fixture
def cr(tmp_path):
    local = LocalStore(tmp_path / "nvm", capacity=3)
    io = IOStore(tmp_path / "pfs")
    c = MultilevelCheckpointer("e2e", local, io, mode="ndp", codec=GZIP).start()
    yield c
    c.close(flush=False)


APPS = ["HPCCG", "miniAero", "miniSMAC2D"]
KW = {"HPCCG": {"grid": 10}, "miniAero": {"grid": 24}, "miniSMAC2D": {"grid": 24}}


@pytest.mark.parametrize("name", APPS)
def test_crash_restore_resume_identical(name, cr):
    """Run, checkpoint, keep running, crash, restore, re-run: the restored
    trajectory must bitwise-match the original."""
    app = make_app(name, seed=2, **KW[name])
    app.run(2)
    cr.checkpoint({0: serialize_state(app.state())}, position=2.0)
    app.run(3)
    final_direct = {k: v.copy() for k, v in app.state().items()}

    # Crash: rebuild from storage.
    res = cr.restart()
    assert res.positions[0] == 2.0
    fresh = make_app(name, seed=2, **KW[name])
    fresh.restore(deserialize_state(res.payloads[0]))
    fresh.run(3)
    final_restored = fresh.state()
    for k in final_direct:
        assert np.allclose(final_direct[k], final_restored[k]), f"{name}.{k}"


def test_io_level_recovery_after_node_loss(cr):
    """Checkpoint, drain to I/O, lose the node's NVM, recover compressed."""
    app = make_app("miniAero", seed=4, grid=24)
    app.run(2)
    blob = serialize_state(app.state())
    cr.checkpoint({0: blob}, position=1.0)
    assert cr.flush_to_io(30)
    cr.local.wipe("e2e")
    res = cr.restart()
    assert res.level == "io"
    assert res.payloads[0] == blob


def test_multi_rank_coordinated_checkpoint(cr):
    """All ranks of a coordinated checkpoint restore to the same position."""
    ranks = {r: make_app("HPCCG", seed=10 + r, grid=10) for r in range(3)}
    for step in range(1, 4):
        for app in ranks.values():
            app.step()
        cr.checkpoint(
            {r: serialize_state(a.state()) for r, a in ranks.items()},
            position=float(step),
        )
    res = cr.restart()
    assert set(res.payloads) == {0, 1, 2}
    assert set(res.positions.values()) == {3.0}


def test_checkpoint_stream_survives_many_cycles(cr):
    """Capacity-3 local store over 8 checkpoints: old ones evicted, the
    newest always recoverable, the drain keeps I/O populated."""
    app = make_app("miniSMAC2D", seed=1, grid=24)
    for step in range(1, 9):
        app.step()
        cr.checkpoint({0: serialize_state(app.state())}, position=float(step))
    res = cr.restart()
    assert res.ckpt_id == 8
    assert cr.flush_to_io(30)
    assert len(cr.io.committed("e2e")) >= 1
