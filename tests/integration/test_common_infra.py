"""Experiment infrastructure: TextTable, ExperimentResult, sensitivity set."""

import pytest

from repro.core.configs import paper_parameters
from repro.experiments.common import (
    SENSITIVITY_CONFIGS,
    ExperimentResult,
    TextTable,
    fig6_compression,
    sensitivity_result,
)


class TestTextTable:
    def test_render_alignment(self):
        t = TextTable(["name", "value"])
        t.add_row(["a", 1])
        t.add_row(["longer-name", 22.5])
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-+-" in lines[1]
        assert len(lines) == 4
        # Columns align: every '|' in the same position.
        pipes = {line.index("|") for line in (lines[0], lines[2], lines[3])}
        assert len(pipes) == 1

    def test_wrong_cell_count_rejected(self):
        t = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_empty_table_renders_headers(self):
        t = TextTable(["only", "headers"])
        out = t.render()
        assert "only" in out and "headers" in out


class TestExperimentResult:
    def test_str_renders_title_and_text(self):
        r = ExperimentResult(experiment="x", title="My Title", text="body")
        s = str(r)
        assert "My Title" in s and "body" in s


class TestSensitivityConfigs:
    def test_five_paper_configurations(self):
        assert list(SENSITIVITY_CONFIGS) == [
            "L-15GBps + I/O-HC",
            "L-15GBps + I/O-N",
            "L-15GBps + I/O-NC",
            "L-2GBps + I/O-N",
            "L-2GBps + I/O-NC",
        ]

    @pytest.mark.parametrize("label", list(SENSITIVITY_CONFIGS))
    def test_each_evaluates(self, label):
        res = sensitivity_result(label, paper_parameters())
        assert 0 < res.efficiency < 1
        bw, mode, _ = SENSITIVITY_CONFIGS[label]
        assert res.params.local_bandwidth == bw
        if mode == "ndp":
            assert res.breakdown.checkpoint_io == 0.0

    def test_fig6_compression_engines(self):
        host = fig6_compression(0.5, "host")
        ndp = fig6_compression(0.5, "ndp")
        assert host.factor == ndp.factor == 0.5
        assert host.compress_rate > ndp.compress_rate  # 64 cores vs 4


class TestStoreUsage:
    def test_usage_counts_committed_only(self, tmp_path, small_blob):
        from repro.ckpt.backends import LocalStore
        from repro.ckpt.format import make_header

        store = LocalStore(tmp_path, capacity=4)
        h = make_header("a", 0, 1, small_blob)
        store.stage_rank_file("a", 1, 0, h, small_blob)
        assert store.usage("a") == 0  # staged, not committed
        store.commit_checkpoint("a", 1)
        assert store.usage("a") > len(small_blob)  # payload + framing

    def test_usage_shrinks_on_eviction(self, tmp_path, small_blob):
        from repro.ckpt.backends import LocalStore
        from repro.ckpt.format import make_header

        store = LocalStore(tmp_path, capacity=1)
        for cid in (1, 2):
            store.write_checkpoint(
                "a", cid, {0: (make_header("a", 0, cid, small_blob), small_blob)}
            )
        one = store.usage("a")
        assert one > 0
        # Capacity 1: usage equals a single checkpoint's footprint.
        store.write_checkpoint(
            "a", 3, {0: (make_header("a", 0, 3, small_blob), small_blob)}
        )
        assert store.usage("a") == one
