"""Cross-validation: the analytic model vs the discrete-event simulator.

The staleness-mode analytic model and the simulator implement the same
operational rules through entirely different machinery; statistical
agreement on efficiency and on the breakdown structure is the fidelity
evidence for the figures (which the analytic model generates).
"""

import pytest

from repro.core.configs import NDP_GZIP1, NO_COMPRESSION
from repro.core.model import multilevel_host, multilevel_ndp, single_level
from repro.simulation import SimConfig, default_work, simulate

#: Long Monte-Carlo runs (hundreds of simulated failures per case).
pytestmark = pytest.mark.slow

WORK_MTTIS = 150.0


def run_sim(params, **kw):
    defaults = dict(params=params, work=default_work(params, WORK_MTTIS), seed=17)
    defaults.update(kw)
    return simulate(SimConfig(**defaults))


class TestEfficiencyAgreement:
    def test_ndp_uncompressed(self, params):
        sim = run_sim(params, strategy="ndp")
        mod = multilevel_ndp(params, rerun_accounting="staleness")
        assert sim.efficiency == pytest.approx(mod.efficiency, abs=0.05)

    def test_ndp_compressed(self, params):
        sim = run_sim(params, strategy="ndp", compression=NDP_GZIP1)
        mod = multilevel_ndp(params, NDP_GZIP1, rerun_accounting="staleness")
        assert sim.efficiency == pytest.approx(mod.efficiency, abs=0.04)

    def test_host_multilevel(self, params):
        sim = run_sim(params, strategy="host", ratio=15, compression=NDP_GZIP1)
        mod = multilevel_host(params, 15, NDP_GZIP1, rerun_accounting="staleness")
        assert sim.efficiency == pytest.approx(mod.efficiency, abs=0.05)

    def test_io_only_at_fixed_tau(self, params):
        # Same tau in both: the closed form and the simulator agree tightly.
        sim = run_sim(
            params,
            strategy="io-only",
            compression=NDP_GZIP1,
            work=default_work(params, 60),
        )
        mod = single_level(params, NDP_GZIP1, level="io", tau=params.tau)
        assert sim.efficiency == pytest.approx(mod.efficiency, abs=0.06)

    def test_local_only_near_design_point(self, params):
        sim = run_sim(params, strategy="local-only")
        mod = single_level(params, level="local", tau=params.tau)
        assert sim.efficiency == pytest.approx(mod.efficiency, abs=0.03)


class TestStructuralAgreement:
    def test_checkpoint_local_fraction(self, params):
        sim = run_sim(params, strategy="ndp")
        mod = multilevel_ndp(params, rerun_accounting="staleness")
        assert sim.breakdown.checkpoint_local == pytest.approx(
            mod.breakdown.checkpoint_local, abs=0.01
        )

    def test_ordering_preserved_across_configs(self, params):
        """The model's config ranking must match the simulator's."""
        sims = {
            "host": run_sim(params, strategy="host", ratio=15, compression=NDP_GZIP1),
            "ndp": run_sim(params, strategy="ndp", compression=NO_COMPRESSION),
            "ndp+c": run_sim(params, strategy="ndp", compression=NDP_GZIP1),
        }
        mods = {
            "host": multilevel_host(params, 15, NDP_GZIP1, rerun_accounting="staleness"),
            "ndp": multilevel_ndp(params, rerun_accounting="staleness"),
            "ndp+c": multilevel_ndp(params, NDP_GZIP1, rerun_accounting="staleness"),
        }
        sim_order = sorted(sims, key=lambda k: sims[k].efficiency)
        mod_order = sorted(mods, key=lambda k: mods[k].efficiency)
        assert sim_order == mod_order

    def test_io_interval_matches_drain_cadence(self, params):
        """Simulated drain completions per wall time track the model's
        I/O checkpoint interval."""
        sim = run_sim(params, strategy="ndp", compression=NDP_GZIP1)
        mod = multilevel_ndp(params, NDP_GZIP1)
        sim_interval = sim.wall_time / sim.io_checkpoints
        # Failures disrupt some drains; allow a generous band.
        assert sim_interval == pytest.approx(mod.io_interval, rel=0.35)


class TestSensitivityDirections:
    """The simulator must reproduce the model's sensitivity *directions*."""

    def test_more_failures_lower_efficiency(self, params):
        fast = run_sim(params.with_(mtti=900.0), strategy="ndp",
                       work=default_work(params, 80))
        slow = run_sim(params.with_(mtti=3600.0), strategy="ndp",
                       work=default_work(params, 80))
        assert slow.efficiency > fast.efficiency

    def test_smaller_checkpoint_higher_efficiency(self, params):
        small = run_sim(params.with_(checkpoint_size=14e9), strategy="ndp",
                        work=default_work(params, 80))
        large = run_sim(params.with_(checkpoint_size=112e9), strategy="ndp",
                        work=default_work(params, 80))
        assert small.efficiency > large.efficiency

    def test_higher_p_local_higher_efficiency(self, params):
        lo = run_sim(params.with_(p_local_recovery=0.3), strategy="ndp",
                     work=default_work(params, 80))
        hi = run_sim(params.with_(p_local_recovery=0.95), strategy="ndp",
                     work=default_work(params, 80))
        assert hi.efficiency > lo.efficiency
