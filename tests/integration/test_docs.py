"""Documentation correctness: the README's code blocks must run.

Stale docs are the fastest way to lose a downstream user; these tests
execute the README's Python snippets (lightly adapted where they reference
placeholder paths) against the real package.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def _python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_blocks(self):
        blocks = _python_blocks()
        assert len(blocks) >= 2

    def test_quickstart_block_executes(self, capsys):
        """The first python block (analytic quickstart) runs verbatim."""
        block = _python_blocks()[0]
        exec(compile(block, "<README quickstart>", "exec"), {})
        out = capsys.readouterr().out
        assert "%" in out  # prints efficiencies

    def test_runtime_block_executes(self, tmp_path):
        """The runtime block runs with its placeholder paths/functions
        substituted."""
        block = _python_blocks()[1]
        block = block.replace("/nvme/ckpt", str(tmp_path / "nvm"))
        block = block.replace("/pfs/ckpt", str(tmp_path / "pfs"))
        namespace = {
            "n_steps": 3,
            "rank": 0,
            "compute_step": lambda *a: b"state-bytes" * 100,
            "serialize": lambda s: s,
            "deserialize": lambda b: b,
        }
        exec(compile(block, "<README runtime>", "exec"), namespace)
        assert namespace["state"] == b"state-bytes" * 100

    def test_claimed_efficiencies_match_model(self):
        """The README quotes ~66% / ~87% in quickstart comments; keep the
        comments honest."""
        from repro import core

        params = core.paper_parameters()
        host = core.optimal_host(params, core.HOST_GZIP1).efficiency
        ndp = core.multilevel_ndp(params, core.NDP_GZIP1).efficiency
        assert host == pytest.approx(0.66, abs=0.04)
        assert ndp == pytest.approx(0.87, abs=0.02)

    def test_headline_numbers_in_readme_are_current(self):
        """The 51% -> 78% headline the README leads with is what the model
        produces (within the scorecard band)."""
        from repro.experiments import fig6

        res = fig6.run()
        assert abs(res.headline["avg_host_compression"] - 0.51) < 0.05
        assert abs(res.headline["avg_ndp_compression"] - 0.78) < 0.04
