"""Every experiment runs and reproduces the paper's headline shapes."""

import pytest

from repro.experiments import REGISTRY, run_experiment
from repro.experiments import ablations, fig1, fig6, fig7, fig8, fig9, table1, table3


class TestRegistry:
    def test_all_paper_exhibits_registered(self):
        for exp in (
            "figure1",
            "table1",
            "table2",
            "table3",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
        ):
            assert exp in REGISTRY

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")


class TestFigure1:
    def test_headline(self):
        res = fig1.run(points=15)
        assert res.headline["m_over_delta_for_90pct"] == pytest.approx(200, rel=0.1)
        assert len(res.rows) == 15
        assert "M/delta" in res.text


class TestTable1:
    def test_matches_paper_column(self):
        res = table1.run()
        assert res.headline["node_count"] == 100_000
        assert res.headline["mtti_minutes"] == 30.0
        assert res.headline["node_memory_gb"] == pytest.approx(140.0)
        assert 7 < res.headline["commit_time_s"] < 11


class TestTable3:
    def test_paper_mode_exact(self):
        res = table3.run(source="paper")
        rows = {r["utility"]: r for r in res.rows}
        for utility, (speed, cores, interval) in table3.PAPER_REFERENCE.items():
            assert rows[utility]["cores"] == cores
            assert rows[utility]["required_speed"] / 1e6 == pytest.approx(
                speed, rel=0.02
            )
            assert rows[utility]["interval"] == pytest.approx(interval, rel=0.02)

    def test_selection_is_gzip1(self):
        res = table3.run()
        assert res.headline["chosen_cores"] == 4


class TestFigure4:
    def test_interior_optimum(self):
        res = run_experiment("figure4")
        effs = [r["compute"] for r in res.rows]
        best = max(range(len(effs)), key=effs.__getitem__)
        assert 0 < best < len(effs) - 1  # not at either end

    def test_monotone_component_trends(self):
        res = run_experiment("figure4")
        ck = [r["checkpoint_io"] for r in res.rows]
        ru = [r["rerun_io"] for r in res.rows if r["compute"] > 0]
        assert all(a >= b - 1e-9 for a, b in zip(ck, ck[1:]))  # ckpt-I/O falls
        assert all(a <= b + 1e-9 for a, b in zip(ru, ru[1:]))  # rerun-I/O rises


class TestFigure5:
    def test_structure(self):
        res = run_experiment("figure5", p_locals=(0.2, 0.8))
        for row in res.rows:
            # Host ratio grows with p_local; NDP column is a single value.
            assert row["host_ratios"][0.8] >= row["host_ratios"][0.2]
        # Higher factor => lower host ratio at fixed p_local.
        by_factor = sorted(res.rows, key=lambda r: r["factor"])
        ratios = [r["host_ratios"][0.8] for r in by_factor]
        assert ratios[0] >= ratios[-1]


class TestFigure6:
    def test_headline_band(self):
        res = fig6.run()
        assert res.headline["avg_host_compression"] == pytest.approx(0.51, abs=0.05)
        assert res.headline["avg_ndp_compression"] == pytest.approx(0.78, abs=0.04)

    def test_ndp_wins_everywhere(self):
        res = fig6.run(p_locals=(0.4, 0.8))
        rows = {r["config"]: r for r in res.rows}
        for p in ("40%", "80%"):
            host = rows[f"Local({p}) + I/O-Host + comp"]
            ndp = rows[f"Local({p}) + I/O-NDP + comp"]
            for app in ("CoMD", "miniFE", "miniSMAC2D", "average"):
                assert ndp[app] > host[app]


class TestFigure7:
    def test_rerun_io_bands(self):
        res = fig7.run()
        h = res.headline
        assert h["Local + I/O-N"] == pytest.approx(0.012, abs=0.006)
        assert h["Local + I/O-NC"] == pytest.approx(0.006, abs=0.004)
        assert h["Local + I/O-H"] > h["Local + I/O-HC"] > h["Local + I/O-N"]

    def test_ndp_has_no_checkpoint_io(self):
        res = fig7.run()
        for row in res.rows:
            if "I/O-N" in row["config"]:
                assert row["checkpoint_io"] == 0.0


class TestFigure8:
    def test_anchors_and_trends(self):
        res = fig8.run()
        assert res.headline["nc15_at_80pct"] == pytest.approx(0.87, abs=0.03)
        assert res.headline["hc15_at_80pct"] == pytest.approx(0.65, abs=0.07)
        # NDP gain grows with checkpoint size.
        gains = [
            r["L-15GBps + I/O-NC"] - r["L-15GBps + I/O-HC"] for r in res.rows
        ]
        assert gains[-1] > gains[0]

    def test_2gbps_ndp_competitive_with_15gbps_host(self):
        res = fig8.run()
        for r in res.rows:
            assert r["L-2GBps + I/O-NC"] > r["L-15GBps + I/O-HC"] - 0.06


class TestFigure9:
    def test_gain_shrinks_with_mtti(self):
        res = fig9.run()
        assert res.headline["gain_at_min_mtti"] > res.headline["gain_at_max_mtti"]

    def test_efficiency_rises_with_mtti(self):
        res = fig9.run()
        for label in ("L-15GBps + I/O-NC", "L-15GBps + I/O-HC"):
            series = [r[label] for r in res.rows]
            assert series == sorted(series)


class TestFigure2:
    def test_annotations_derive_from_sizing(self):
        res = run_experiment("figure2")
        assert res.headline["ndp_cores"] == 4
        assert "440.4 MB/s" in res.text
        lz4 = run_experiment("figure2", utility="lz4(1)")
        assert lz4.headline["ndp_cores"] == 1


class TestTable4:
    def test_all_rows_present(self):
        res = run_experiment("table4")
        assert len(res.rows) == 9
        params = {r["parameter"] for r in res.rows}
        assert "System MTTI" in params
        assert res.headline["ndp_rate_mbps"] == pytest.approx(440.4, abs=0.1)


class TestScorecard:
    def test_every_claim_passes(self):
        res = run_experiment("scorecard")
        failed = [r["statement"] for r in res.rows if not r["pass"]]
        assert not failed, failed
        assert res.headline["passed"] == res.headline["total"] >= 19


class TestEconomics:
    def test_substitution_priced_cheaper(self):
        res = run_experiment("ablation-economics")
        assert res.headline["substitution_saving"] > 1.0


class TestIOBudget:
    def test_ndp_needs_least_bandwidth(self):
        res = run_experiment("ablation-io-budget", targets=(0.75,))
        (row,) = res.rows
        assert row["NDP + compression"] < row["NDP"] < row["Host multilevel"]


class TestIntervalAblation:
    def test_model_only_fast_path(self):
        res = run_experiment(
            "ablation-interval", with_simulation=False, taus=(60.0, 150.0, 600.0)
        )
        assert res.headline["loss_at_150"] < 0.02
        assert all("sim" not in r for r in res.rows)


class TestHeatmapExtension:
    def test_advantage_positive_everywhere(self):
        res = run_experiment("figure89-heatmap", resolution=10)
        assert res.headline["min_advantage"] > -0.02
        assert res.headline["peak_advantage"] > 0.10

    def test_peak_in_hard_corner(self):
        # The advantage must grow toward short MTTI and large checkpoints.
        res = run_experiment("figure89-heatmap", resolution=10)
        by_key = {(r["mtti_s"], r["size_bytes"]): r["advantage"] for r in res.rows}
        mttis = sorted({k[0] for k in by_key})
        sizes = sorted({k[1] for k in by_key})
        assert by_key[(mttis[0], sizes[-1])] > by_key[(mttis[-1], sizes[0])]


class TestFailureDistributionAblation:
    def test_ndp_advantage_survives_all_shapes(self):
        res = run_experiment("ablation-failure-dist", mttis=60.0, shapes=(0.6, 1.0))
        assert res.headline["min_advantage"] > 0.05
        for row in res.rows:
            assert row["ndp"] > row["host"]


class TestMethodsComparison:
    def test_bracket_structure(self):
        res = run_experiment("ablation-methods", mttis=60.0)
        for row in res.rows:
            assert row["expected_value"] <= row["renewal"] + 1e-9


class TestClusterExperiment:
    def test_share_invariance(self):
        res = run_experiment("ablation-cluster", node_counts=(1, 4), mttis=40.0)
        assert res.headline["efficiency_spread"] < 0.08


class TestAblations:
    def test_rerun_accounting(self):
        res = ablations.rerun_accounting()
        for row in res.rows:
            assert row["staleness"] <= row["paper"] + 1e-9

    def test_daly_order(self):
        res = ablations.daly_order()
        for row in res.rows:
            assert row["daly"] >= row["young"] - 1e-9

    def test_delta_compression_helps_slow_apps(self):
        res = ablations.delta_compression(apps=("HPCCG",), steps_between=1)
        (row,) = res.rows
        # One CG iteration changes little: the XOR delta must compress
        # better than the raw checkpoint.
        assert row["delta_factor"] > row["raw_factor"]

    def test_ndp_pause(self):
        res = ablations.ndp_pause()
        for row in res.rows:
            assert row["no_pause"] >= row["pause"] - 1e-9
