"""The command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure6" in out
        assert "table2  (slow)" in out


class TestExperiment:
    def test_runs_named_experiment(self, capsys):
        assert main(["experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Exascale Projection" in out
        assert "100,000" in out

    def test_overrides_forwarded(self, capsys):
        assert main(["experiment", "figure9", "-o", "mttis_min=(30, 60)"]) == 0
        out = capsys.readouterr().out
        assert "60 min" in out
        assert "90 min" not in out

    def test_string_override(self, capsys):
        assert main(["experiment", "table2", "-o", "source=paper"]) == 0
        assert "Table 2 (paper" in capsys.readouterr().out

    def test_bad_override_format(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table1", "-o", "nonsense"])

    def test_unknown_experiment_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["experiment", "figure42"])


class TestAll:
    def test_all_skip_slow(self, capsys):
        assert main(["all", "--skip-slow"]) == 0
        out = capsys.readouterr().out
        assert "skipping table2" in out
        assert "Figure 6" in out


class TestJsonExport:
    def test_writes_structured_result(self, tmp_path, capsys):
        out = tmp_path / "fig9.json"
        assert main(["experiment", "figure9", "--json", str(out)]) == 0
        import json

        data = json.loads(out.read_text())
        assert data["experiment"] == "figure9"
        assert len(data["rows"]) == 5
        assert "gain_at_min_mtti" in data["headline"]


class TestReport:
    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "-o", str(out), "--skip-slow"]) == 0
        body = out.read_text()
        assert body.startswith("# repro")
        assert "## Figure 6" in body
        assert "## Table 1" in body
        # Slow experiments excluded.
        assert "Table 2 (measured)" not in body


class TestTrace:
    def test_wraps_command_and_writes_jsonl(self, tmp_path, capsys):
        from repro.obs import trace as obs_trace

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--out", str(out), "experiment", "table1"]) == 0
        assert not obs_trace.enabled()  # disabled again on the way out
        assert "trace:" in capsys.readouterr().err
        # table1 is analytic-only; the file must exist and validate even
        # if no instrumented path ran.
        obs_trace.validate_file(out)

    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_rejects_self_nesting(self):
        with pytest.raises(SystemExit):
            main(["trace", "trace", "list"])


class TestMetrics:
    def test_prints_drift_tables(self, tmp_path, capsys):
        import json

        out = tmp_path / "drift.json"
        assert main(
            ["metrics", "--steps", "2", "--no-breakdown", "--json", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "compress rate" in text
        assert "drain rate" in text
        assert "blocked local s/ckpt" in text
        data = json.loads(out.read_text())
        assert {"params", "compression", "reports", "metrics"} <= set(data)

    def test_prometheus_export(self, capsys):
        assert main(["metrics", "--steps", "2", "--no-breakdown", "--prometheus"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE ndp_bytes_in gauge" in text
