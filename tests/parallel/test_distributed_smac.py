"""The distributed 2-D flow solver vs its single-domain reference."""

import numpy as np
import pytest

from repro.parallel import DistributedSMAC2D
from repro.workloads.miniapps import MiniSMAC2DProxy


class TestDecomposition:
    def test_ranks_must_divide_grid(self):
        with pytest.raises(ValueError):
            DistributedSMAC2D(grid=50, ranks=3)

    def test_initialization_matches_single_domain(self):
        s = MiniSMAC2DProxy(grid=48, seed=3)
        d = DistributedSMAC2D(grid=48, ranks=4, seed=3)
        assert np.array_equal(s.u, d.assemble(d.u))
        assert np.array_equal(s.v, d.assemble(d.v))


class TestDistributedRoll:
    @pytest.mark.parametrize("shift", [1, -1])
    def test_roll0_matches_numpy(self, shift, rng):
        d = DistributedSMAC2D(grid=16, ranks=4, seed=0)
        full = rng.standard_normal((16, 16))
        rolled = d.assemble(d._roll0(d._split(full), shift))
        assert np.array_equal(rolled, np.roll(full, shift, axis=0))

    def test_non_unit_shift_rejected(self):
        d = DistributedSMAC2D(grid=16, ranks=4, seed=0)
        with pytest.raises(ValueError):
            d._roll0(d.u, 2)


class TestDynamics:
    def test_bitwise_identical_to_single_domain(self):
        s = MiniSMAC2DProxy(grid=48, seed=3)
        d = DistributedSMAC2D(grid=48, ranks=4, seed=3)
        for _ in range(4):
            s.step()
            d.step()
        assert np.array_equal(s.u, d.assemble(d.u))
        assert np.array_equal(s.v, d.assemble(d.v))
        assert np.array_equal(s.pressure, d.assemble(d.pressure))
        assert s.max_divergence() == pytest.approx(d.max_divergence(), rel=1e-12)

    def test_rank_count_invariance(self):
        a = DistributedSMAC2D(grid=48, ranks=2, seed=5)
        b = DistributedSMAC2D(grid=48, ranks=8, seed=5)
        a.run(3)
        b.run(3)
        assert np.array_equal(a.assemble(a.u), b.assemble(b.u))

    def test_fields_stay_finite(self):
        d = DistributedSMAC2D(grid=32, ranks=4, seed=1)
        d.run(10)
        for field in (d.u, d.v, d.pressure):
            assert np.isfinite(d.assemble(field)).all()

    def test_communication_heavy_pattern(self):
        # Predictor (3 field ops x 2 exchanges... ) + 8 sweeps + corrector:
        # each step must do many halo exchanges — at least 10.
        d = DistributedSMAC2D(grid=32, ranks=4, seed=1)
        before = d.comm.messages_sent
        d.step()
        exchanges = (d.comm.messages_sent - before) / (2 * d.ranks)
        assert exchanges >= 10


class TestCheckpointing:
    def test_payload_round_trip_resumes_identically(self):
        d = DistributedSMAC2D(grid=32, ranks=4, seed=2)
        d.run(2)
        payloads = d.checkpoint_payloads()
        d.run(3)
        final = d.assemble(d.u).copy()

        fresh = DistributedSMAC2D(grid=32, ranks=4, seed=2)
        fresh.restore_payloads(payloads)
        fresh.run(3)
        assert np.array_equal(fresh.assemble(fresh.u), final)

    def test_rank_state_shapes(self):
        d = DistributedSMAC2D(grid=32, ranks=4, seed=0)
        state = d.rank_state(1)
        assert state["u"].shape == (8, 32)
        with pytest.raises(ValueError):
            d.rank_state(9)

    def test_with_coordinated_run(self, tmp_path):
        from repro.ckpt import IOStore, LocalStore, MultilevelCheckpointer
        from repro.parallel import CoordinatedRun

        local = LocalStore(tmp_path / "nvm", capacity=3)
        io = IOStore(tmp_path / "pfs")
        with MultilevelCheckpointer("smac", local, io, mode="ndp") as cr:
            ref = DistributedSMAC2D(grid=32, ranks=4, seed=7)
            ref.run(6)
            reference = ref.assemble(ref.u).copy()

            solver = DistributedSMAC2D(grid=32, ranks=4, seed=7)
            run = CoordinatedRun(solver, cr, checkpoint_every=2)
            outcome = run.run(iterations=6, crash_at=3)
            assert outcome.recovered_from == 2
            assert np.array_equal(solver.assemble(solver.u), reference)
