"""The distributed MD solver vs its single-domain reference."""

import numpy as np
import pytest

from repro.parallel import Communicator, DistributedLJMD
from repro.workloads.miniapps import CoMDProxy


class TestDecomposition:
    def test_ranks_must_divide_atoms(self):
        with pytest.raises(ValueError):
            DistributedLJMD(n_atoms=100, ranks=3)

    def test_initialization_matches_single_domain(self):
        s = CoMDProxy(n_atoms=216, seed=9)
        d = DistributedLJMD(n_atoms=216, ranks=4, seed=9)
        assert np.allclose(s.pos, d.assemble(d.pos))
        assert np.allclose(s.vel, d.assemble(d.vel))
        assert np.allclose(s.force, d.assemble(d.force))


class TestDynamics:
    def test_trajectory_matches_single_domain(self):
        s = CoMDProxy(n_atoms=216, seed=9)
        d = DistributedLJMD(n_atoms=216, ranks=4, seed=9)
        for _ in range(5):
            s.step()
            d.step()
        assert np.allclose(s.pos, d.assemble(d.pos), rtol=1e-9, atol=1e-10)
        assert s.kinetic_energy() == pytest.approx(d.kinetic_energy(), rel=1e-9)

    def test_rank_count_invariance(self):
        a = DistributedLJMD(n_atoms=216, ranks=2, seed=4)
        b = DistributedLJMD(n_atoms=216, ranks=8, seed=4)
        a.run(3)
        b.run(3)
        assert np.allclose(a.assemble(a.pos), b.assemble(b.pos), rtol=1e-9)

    def test_positions_stay_in_box(self):
        d = DistributedLJMD(n_atoms=128, ranks=4, seed=1)
        d.run(8)
        full = d.assemble(d.pos)
        assert (full >= 0).all() and (full < d.box).all()

    def test_allgather_traffic_per_step(self):
        d = DistributedLJMD(n_atoms=128, ranks=4, seed=1)
        before = d.comm.messages_sent
        d.step()
        # One allgather per force evaluation: 2*(size-1) tree messages.
        assert d.comm.messages_sent - before == 2 * 3


class TestAllgather:
    def test_concatenates_in_rank_order(self):
        comm = Communicator(3)
        arrays = [np.full((2, 1), r, dtype=float) for r in range(3)]
        full = comm.allgather_concat(arrays)
        assert np.array_equal(full.ravel(), [0, 0, 1, 1, 2, 2])

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Communicator(2).allgather_concat([np.zeros(1)])


class TestCheckpointing:
    def test_payload_round_trip_resumes_identically(self):
        d = DistributedLJMD(n_atoms=128, ranks=4, seed=5)
        d.run(2)
        payloads = d.checkpoint_payloads()
        d.run(3)
        final = d.assemble(d.pos).copy()

        fresh = DistributedLJMD(n_atoms=128, ranks=4, seed=5)
        fresh.restore_payloads(payloads)
        fresh.run(3)
        assert np.array_equal(fresh.assemble(fresh.pos), final)

    def test_works_with_coordinated_run(self, tmp_path):
        from repro.ckpt import IOStore, LocalStore, MultilevelCheckpointer
        from repro.parallel import CoordinatedRun

        local = LocalStore(tmp_path / "nvm", capacity=3)
        io = IOStore(tmp_path / "pfs")
        with MultilevelCheckpointer("md", local, io, mode="ndp") as cr:
            ref = DistributedLJMD(n_atoms=128, ranks=4, seed=6)
            ref.run(6)
            reference = ref.assemble(ref.pos).copy()

            solver = DistributedLJMD(n_atoms=128, ranks=4, seed=6)
            run = CoordinatedRun(solver, cr, checkpoint_every=2)
            outcome = run.run(iterations=6, crash_at=5)
            assert outcome.recovered_from == 4
            assert np.array_equal(solver.assemble(solver.pos), reference)
