"""The distributed Euler solver vs its single-domain reference."""

import numpy as np
import pytest

from repro.parallel import DistributedAero, SlabDecomposition
from repro.parallel.comm import Communicator
from repro.workloads.miniapps import MiniAeroProxy


class TestSlabDecomposition:
    def test_split_assemble_round_trip(self, rng):
        slabs = SlabDecomposition(12, Communicator(4))
        full = rng.standard_normal((12, 5))
        assert np.array_equal(slabs.assemble(slabs.split(full)), full)

    def test_extent_validation(self):
        with pytest.raises(ValueError):
            SlabDecomposition(10, Communicator(3))
        slabs = SlabDecomposition(12, Communicator(4))
        with pytest.raises(ValueError):
            slabs.split(np.zeros((10, 5)))

    @pytest.mark.parametrize("shift", [1, -1])
    def test_roll0_matches_numpy_3d(self, shift, rng):
        # The aero solver rolls (rows, cols) fields; check a 3-D field
        # too — roll0 is axis-0 generic.
        slabs = SlabDecomposition(8, Communicator(2))
        full = rng.standard_normal((8, 4, 3))
        out = slabs.assemble(slabs.roll0(slabs.split(full), shift))
        assert np.array_equal(out, np.roll(full, shift, axis=0))


class TestAgainstSingleDomain:
    def test_bitwise_identical_fields(self):
        s = MiniAeroProxy(grid=48, seed=6)
        d = DistributedAero(grid=48, ranks=4, seed=6)
        for _ in range(5):
            s.step()
            d.step()
        assert np.array_equal(s.rho, d.slabs.assemble(d.rho))
        assert np.array_equal(s.mx, d.slabs.assemble(d.mx))
        assert np.array_equal(s.my, d.slabs.assemble(d.my))
        assert np.array_equal(s.energy, d.slabs.assemble(d.energy))

    def test_global_cfl_agreement(self):
        """The distributed dt must equal the single-domain dt — the two
        directional maxima are reduced separately (they can live on
        different ranks)."""
        s = MiniAeroProxy(grid=48, seed=6)
        d = DistributedAero(grid=48, ranks=6, seed=6)
        p = s._pressure()
        u, v = s.mx / s.rho, s.my / s.rho
        c = np.sqrt(s.gamma * p / s.rho)
        smax_single = float((np.abs(u) + c).max() + (np.abs(v) + c).max()) + 1e-12
        assert d._global_smax() == pytest.approx(smax_single, rel=1e-14)

    def test_rank_count_invariance(self):
        a = DistributedAero(grid=48, ranks=2, seed=1)
        b = DistributedAero(grid=48, ranks=8, seed=1)
        a.run(3)
        b.run(3)
        assert np.array_equal(a.slabs.assemble(a.rho), b.slabs.assemble(b.rho))

    def test_mass_conserved(self):
        d = DistributedAero(grid=32, ranks=4, seed=2)
        m0 = d.total_mass()
        d.run(10)
        assert d.total_mass() == pytest.approx(m0, rel=1e-6)

    def test_density_positive(self):
        d = DistributedAero(grid=32, ranks=4, seed=2)
        d.run(15)
        assert (d.slabs.assemble(d.rho) > 0).all()


class TestCheckpointing:
    def test_payload_round_trip_resumes_identically(self):
        d = DistributedAero(grid=32, ranks=4, seed=5)
        d.run(2)
        payloads = d.checkpoint_payloads()
        d.run(3)
        final = d.slabs.assemble(d.rho).copy()

        fresh = DistributedAero(grid=32, ranks=4, seed=5)
        fresh.restore_payloads(payloads)
        fresh.run(3)
        assert np.array_equal(fresh.slabs.assemble(fresh.rho), final)

    def test_with_coordinated_run(self, tmp_path):
        from repro.ckpt import IOStore, LocalStore, MultilevelCheckpointer
        from repro.parallel import CoordinatedRun

        local = LocalStore(tmp_path / "nvm", capacity=3)
        io = IOStore(tmp_path / "pfs")
        with MultilevelCheckpointer("aero", local, io, mode="ndp") as cr:
            ref = DistributedAero(grid=32, ranks=4, seed=8)
            ref.run(6)
            reference = ref.slabs.assemble(ref.energy).copy()

            solver = DistributedAero(grid=32, ranks=4, seed=8)
            run = CoordinatedRun(solver, cr, checkpoint_every=2)
            outcome = run.run(iterations=6, crash_at=5)
            assert outcome.recovered_from == 4
            assert np.array_equal(solver.slabs.assemble(solver.energy), reference)

    def test_restore_validates_rank_set(self):
        d = DistributedAero(grid=32, ranks=4, seed=0)
        with pytest.raises(ValueError):
            d.restore_payloads({0: b""})
