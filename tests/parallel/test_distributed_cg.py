"""The distributed CG solver vs its single-domain reference."""

import numpy as np
import pytest

from repro.parallel import DistributedStencilCG
from repro.workloads.miniapps import _StencilCG


class _SingleCG(_StencilCG):
    name = "reference"


class TestDecomposition:
    def test_ranks_must_divide_grid(self):
        with pytest.raises(ValueError):
            DistributedStencilCG(grid=10, ranks=3)

    def test_split_assemble_round_trip(self):
        d = DistributedStencilCG(grid=12, ranks=4, seed=1)
        full = np.arange(12**3, dtype=float).reshape(12, 12, 12)
        assert np.array_equal(d.assemble(d._split(full)), full)

    def test_rhs_matches_single_domain(self):
        s = _SingleCG(grid=12, seed=7)
        d = DistributedStencilCG(grid=12, ranks=3, seed=7)
        assert np.array_equal(s.b, d.assemble(d.b))


class TestMatvec:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 6])
    def test_bitwise_identical_to_global(self, ranks, rng):
        d = DistributedStencilCG(grid=12, ranks=ranks, seed=0)
        full = rng.standard_normal((12, 12, 12))
        dist = d.assemble(d.matvec(d._split(full)))
        assert np.array_equal(dist, d._matvec_global(full))

    def test_exchange_traffic_per_matvec(self):
        d = DistributedStencilCG(grid=12, ranks=4, seed=0)
        before = d.comm.bytes_sent
        d.matvec(d.x)
        per_rank_plane = 12 * 12 * 8
        assert d.comm.bytes_sent - before == 4 * 2 * per_rank_plane


class TestCGTrajectory:
    def test_matches_single_domain_before_convergence(self):
        s = _SingleCG(grid=12, seed=4)
        d = DistributedStencilCG(grid=12, ranks=3, seed=4)
        for _ in range(5):
            s.step()
            d.step()
            assert np.allclose(s.x, d.assemble(d.x), rtol=1e-9, atol=1e-12)
        assert s.residual_norm() == pytest.approx(d.residual_norm(), abs=1e-12)

    def test_residual_decreases(self):
        d = DistributedStencilCG(grid=12, ranks=4, seed=2)
        r0 = d.residual_norm()
        d.run(4)
        assert d.residual_norm() < r0

    def test_rank_count_does_not_change_answer(self):
        a = DistributedStencilCG(grid=12, ranks=2, seed=3)
        b = DistributedStencilCG(grid=12, ranks=6, seed=3)
        a.run(5)
        b.run(5)
        assert np.allclose(a.assemble(a.x), b.assemble(b.x), rtol=1e-9)

    def test_converged_solver_holds(self):
        d = DistributedStencilCG(grid=6, ranks=2, seed=1)
        d.run(50)  # far past convergence
        x_before = d.assemble(d.x).copy()
        d.step()
        assert np.array_equal(d.assemble(d.x), x_before)

    def test_smooth_rhs_mode(self):
        d = DistributedStencilCG(grid=12, ranks=3, seed=1, smooth_rhs=True)
        d.run(3)
        assert d.residual_norm() < 1.0


class TestCheckpointState:
    def test_rank_state_shapes(self):
        d = DistributedStencilCG(grid=12, ranks=4, seed=0)
        state = d.rank_state(2)
        assert set(state) == {"x", "r", "p", "b"}
        assert state["x"].shape == (3, 12, 12)

    def test_rank_validation(self):
        d = DistributedStencilCG(grid=12, ranks=4, seed=0)
        with pytest.raises(ValueError):
            d.rank_state(4)

    def test_payload_round_trip_resumes_identically(self):
        d = DistributedStencilCG(grid=12, ranks=3, seed=5)
        d.run(2)
        payloads = d.checkpoint_payloads()
        d.run(3)
        final = d.assemble(d.x).copy()

        fresh = DistributedStencilCG(grid=12, ranks=3, seed=5)
        fresh.restore_payloads(payloads)
        fresh.run(3)
        assert np.allclose(fresh.assemble(fresh.x), final, rtol=1e-12, atol=1e-15)

    def test_restore_validates_rank_set(self):
        d = DistributedStencilCG(grid=12, ranks=3, seed=0)
        with pytest.raises(ValueError):
            d.restore_payloads({0: b""})
