"""The in-process SPMD communicator."""

import numpy as np
import pytest

from repro.parallel.comm import Communicator


class TestHaloExchange:
    def test_periodic_neighbours(self):
        comm = Communicator(3)
        slabs = [np.full((2, 4), fill_value=r, dtype=float) for r in range(3)]
        lower, upper = comm.exchange_halos(slabs)
        # Rank r's lower halo is rank (r-1)'s last plane; upper is (r+1)'s first.
        assert lower[0][0] == 2.0  # wraps to rank 2
        assert upper[2][0] == 0.0  # wraps to rank 0
        assert lower[1][0] == 0.0
        assert upper[1][0] == 2.0

    def test_halos_are_copies(self):
        comm = Communicator(2)
        slabs = [np.zeros((2, 2)), np.ones((2, 2))]
        lower, _ = comm.exchange_halos(slabs)
        lower[0][...] = 99.0
        assert slabs[1][-1, 0] == 1.0  # source untouched

    def test_traffic_accounted(self):
        comm = Communicator(4)
        slabs = [np.zeros((3, 8)) for _ in range(4)]
        comm.exchange_halos(slabs)
        assert comm.messages_sent == 8
        assert comm.bytes_sent == 4 * 2 * 8 * 8  # 2 planes of 8 doubles each

    def test_wrong_slab_count(self):
        with pytest.raises(ValueError):
            Communicator(3).exchange_halos([np.zeros((1, 1))])


class TestCollectives:
    def test_allreduce_sum(self):
        comm = Communicator(4)
        assert comm.allreduce_sum([1.0, 2.0, 3.0, 4.0]) == 10.0

    def test_allreduce_max(self):
        comm = Communicator(3)
        assert comm.allreduce_max([-1.0, 5.0, 2.0]) == 5.0

    def test_gather(self):
        comm = Communicator(3)
        assert comm.gather(["a", "b", "c"]) == ["a", "b", "c"]

    def test_gather_validates_root(self):
        with pytest.raises(ValueError):
            Communicator(2).gather([1, 2], root=5)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            Communicator(0)
        with pytest.raises(ValueError):
            Communicator(3).allreduce_sum([1.0])

    def test_alltoall_concat(self):
        comm = Communicator(2)
        per_rank = [
            [np.array([0.0]), np.array([1.0])],  # rank 0's contributions
            [np.array([10.0]), np.array([11.0])],  # rank 1's
        ]
        out = comm.alltoall_concat(per_rank)
        assert np.array_equal(out[0], [0.0, 10.0])
        assert np.array_equal(out[1], [1.0, 11.0])
