"""The coordinated C/R driver with fault injection."""

import numpy as np
import pytest

from repro.ckpt import IOStore, LocalStore, MultilevelCheckpointer
from repro.compression.codecs import make_codec
from repro.parallel import CoordinatedRun, DistributedStencilCG


@pytest.fixture
def cr(tmp_path):
    local = LocalStore(tmp_path / "nvm", capacity=3)
    io = IOStore(tmp_path / "pfs")
    c = MultilevelCheckpointer(
        "spmd", local, io, mode="ndp", codec=make_codec("gzip", 1)
    ).start()
    yield c
    c.close(flush=False)


class TestFailureFreeRun:
    def test_checkpoint_cadence(self, cr):
        solver = DistributedStencilCG(grid=12, ranks=3, seed=1)
        run = CoordinatedRun(solver, cr, checkpoint_every=2)
        outcome = run.run(iterations=6)
        assert outcome.checkpoints == 3
        assert outcome.crashed_at is None
        assert cr.local.latest("spmd") == 3

    def test_cadence_validation(self, cr):
        solver = DistributedStencilCG(grid=12, ranks=3, seed=1)
        with pytest.raises(ValueError):
            CoordinatedRun(solver, cr, checkpoint_every=0)


class TestCrashRecovery:
    def test_crash_resumes_and_reaches_same_answer(self, cr):
        # Reference: uninterrupted run.
        ref = DistributedStencilCG(grid=12, ranks=3, seed=2)
        ref.run(8)
        reference = ref.assemble(ref.x).copy()

        solver = DistributedStencilCG(grid=12, ranks=3, seed=2)
        run = CoordinatedRun(solver, cr, checkpoint_every=2)
        outcome = run.run(iterations=8, crash_at=5)
        assert outcome.crashed_at == 5
        assert outcome.recovered_from == 4  # newest checkpoint before 5
        assert outcome.recovery_level == "local"
        # Total iterations = 8 + 1 lost (ran 5, rolled to 4, redid 5..8).
        assert outcome.iterations == 9
        assert np.allclose(solver.assemble(solver.x), reference, rtol=1e-9)

    def test_crash_recovery_from_io_level(self, cr):
        ref = DistributedStencilCG(grid=12, ranks=3, seed=3)
        ref.run(6)
        reference = ref.assemble(ref.x).copy()

        solver = DistributedStencilCG(grid=12, ranks=3, seed=3)
        run = CoordinatedRun(solver, cr, checkpoint_every=2)
        partial = run.run(iterations=4)
        assert partial.checkpoints == 2
        assert cr.flush_to_io(30)
        cr.local.wipe("spmd")  # node loss: only the drained copies remain

        result = cr.restart()
        assert result.level == "io"
        solver.restore_payloads(result.payloads)
        solver.run(6 - int(result.positions[0]))
        assert np.allclose(solver.assemble(solver.x), reference, rtol=1e-9)
