"""The from-scratch LZ4 block codec: round-trip, format rules, fuzzing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import lz4


class TestRoundTrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"ab",
            b"hello world",
            b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
            b"abcabcabcabcabcabcabcabcabcabc" * 20,
            bytes(1000),
            bytes(range(256)) * 8,
        ],
        ids=["empty", "one", "two", "short", "run", "periodic", "zeros", "cycle"],
    )
    def test_basic_cases(self, data):
        assert lz4.decompress(lz4.compress(data)) == data

    def test_expected_size_check(self):
        comp = lz4.compress(b"hello hello hello hello")
        with pytest.raises(lz4.LZ4DecodeError, match="decoded size"):
            lz4.decompress(comp, expected_size=5)

    def test_random_binary(self, rng):
        data = rng.integers(0, 256, 50_000, dtype=np.uint8).tobytes()
        comp = lz4.compress(data)
        assert lz4.decompress(comp, len(data)) == data
        # Incompressible data must not blow up: bounded expansion.
        assert len(comp) <= len(data) + len(data) // 255 + 16

    def test_low_entropy_compresses(self, rng):
        data = rng.integers(0, 4, 100_000, dtype=np.uint8).tobytes()
        comp = lz4.compress(data)
        assert len(comp) < len(data)
        assert lz4.decompress(comp, len(data)) == data

    def test_long_match_run(self):
        # Exercise extended match-length encoding (>= 19 + 255 bytes).
        data = b"x" * 5000 + b"tail"
        comp = lz4.compress(data)
        assert len(comp) < 60
        assert lz4.decompress(comp) == data

    def test_long_literal_run(self, rng):
        # Exercise extended literal-length encoding (>= 15 literals).
        data = rng.integers(0, 256, 400, dtype=np.uint8).tobytes()
        assert lz4.decompress(lz4.compress(data)) == data

    def test_overlapping_copy_rle(self):
        # offset < match length forces the byte-by-byte overlap path.
        data = b"ab" * 2000
        comp = lz4.compress(data)
        assert lz4.decompress(comp) == data


class TestFormatRules:
    def test_short_inputs_stored_as_literals(self):
        # Below mfLimit no matches are allowed: output = token + literals.
        data = b"abcabcabcabc"  # 12 bytes < 13
        comp = lz4.compress(data)
        assert comp[1:] == data  # single literal sequence

    def test_empty_block_token(self):
        assert lz4.compress(b"") == b"\x00"
        assert lz4.decompress(b"\x00") == b""


class TestMalformedInput:
    def test_empty_input_rejected(self):
        with pytest.raises(lz4.LZ4DecodeError):
            lz4.decompress(b"")

    def test_truncated_literals(self):
        with pytest.raises(lz4.LZ4DecodeError, match="literals"):
            lz4.decompress(b"\x50abc")  # claims 5 literals, has 3

    def test_missing_offset(self):
        # 1 literal + match with only one of the two offset bytes present.
        with pytest.raises(lz4.LZ4DecodeError, match="offset"):
            lz4.decompress(b"\x11a\x01")

    def test_end_after_literals_is_final_sequence(self):
        # Input exhausted right after a sequence's literals: treated as the
        # final literals-only sequence (lenient, like the reference codec).
        assert lz4.decompress(b"\x11a") == b"a"

    def test_zero_offset_rejected(self):
        bad = b"\x11a\x00\x00"
        with pytest.raises(lz4.LZ4DecodeError, match="zero"):
            lz4.decompress(bad)

    def test_offset_beyond_output_rejected(self):
        bad = b"\x11a\x09\x00"
        with pytest.raises(lz4.LZ4DecodeError, match="exceeds"):
            lz4.decompress(bad)

    def test_unterminated_length_run(self):
        bad = b"\xf0" + b"\xff" * 3
        with pytest.raises(lz4.LZ4DecodeError):
            lz4.decompress(bad)

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_fuzz_decompress_never_crashes(self, blob):
        """Arbitrary bytes either decode or raise LZ4DecodeError — never
        an unexpected exception type."""
        try:
            lz4.decompress(blob)
        except lz4.LZ4DecodeError:
            pass


@given(st.binary(max_size=4096))
@settings(max_examples=150, deadline=None)
def test_property_round_trip(data):
    """compress |> decompress is the identity for arbitrary bytes."""
    assert lz4.decompress(lz4.compress(data), len(data)) == data


@given(
    st.integers(min_value=0, max_value=255),
    st.integers(min_value=1, max_value=8000),
)
@settings(max_examples=50, deadline=None)
def test_property_constant_runs(byte, length):
    """Constant runs round-trip and compress to O(log n) output."""
    data = bytes([byte]) * length
    comp = lz4.compress(data)
    assert lz4.decompress(comp, length) == data
    if length > 64:
        assert len(comp) < length // 4
