"""Throughput/factor measurement."""

import pytest

from repro.compression.codecs import make_codec
from repro.compression.measure import measure_codec, scale_threads


class TestMeasure:
    def test_measurement_fields(self, small_blob):
        m = measure_codec(make_codec("gzip", 1), [small_blob])
        assert m.codec == "gzip(1)"
        assert m.input_bytes == len(small_blob)
        assert 0 < m.output_bytes < m.input_bytes
        assert m.compress_speed > 0
        assert m.decompress_speed > 0

    def test_factor_consistent_with_sizes(self, small_blob):
        m = measure_codec(make_codec("gzip", 1), [small_blob])
        assert m.factor == pytest.approx(1 - m.output_bytes / m.input_bytes)

    def test_chunked_measurement_sums(self, small_blob):
        m = measure_codec(make_codec("gzip", 1), [small_blob, small_blob])
        assert m.input_bytes == 2 * len(small_blob)

    def test_empty_chunks_skipped(self, small_blob):
        m = measure_codec(make_codec("gzip", 1), [b"", small_blob])
        assert m.input_bytes == len(small_blob)

    def test_all_empty_rejected(self):
        with pytest.raises(ValueError):
            measure_codec(make_codec("gzip", 1), [b""])

    def test_verification_catches_broken_codec(self, small_blob):
        broken = make_codec("gzip", 1)
        object.__setattr__(broken, "_decompress", lambda d: b"wrong")
        with pytest.raises(AssertionError):
            measure_codec(broken, [small_blob], verify=True)


class TestThreadScaling:
    def test_linear_by_default(self):
        assert scale_threads(110.1e6, 4) == pytest.approx(440.4e6)

    def test_derating(self):
        assert scale_threads(100e6, 4, efficiency=0.5) == pytest.approx(200e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_threads(1e6, 0)
        with pytest.raises(ValueError):
            scale_threads(1e6, 2, efficiency=1.5)
