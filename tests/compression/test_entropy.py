"""Entropy analysis of checkpoint data."""

import numpy as np
import pytest
import zlib
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.entropy import (
    analyze,
    block_entropy_profile,
    byte_entropy,
    entropy_factor_bound,
)


class TestByteEntropy:
    def test_constant_data_zero_entropy(self):
        assert byte_entropy(b"\x42" * 1000) == 0.0

    def test_uniform_random_near_eight(self, rng):
        data = rng.integers(0, 256, 200_000, dtype=np.uint8).tobytes()
        assert byte_entropy(data) == pytest.approx(8.0, abs=0.01)

    def test_two_symbol_alphabet_one_bit(self, rng):
        data = rng.integers(0, 2, 100_000, dtype=np.uint8).tobytes()
        assert byte_entropy(data) == pytest.approx(1.0, abs=0.01)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            byte_entropy(b"")

    @given(st.binary(min_size=1, max_size=4096))
    @settings(max_examples=100, deadline=None)
    def test_property_bounds(self, data):
        h = byte_entropy(data)
        assert 0.0 <= h <= 8.0 + 1e-9


class TestFactorBound:
    def test_random_data_no_headroom(self, rng):
        data = rng.integers(0, 256, 100_000, dtype=np.uint8).tobytes()
        assert entropy_factor_bound(data) < 0.01

    def test_gzip_respects_order0_bound_on_iid_data(self, rng):
        """For i.i.d. data (no structure to exploit) gzip cannot beat the
        order-0 bound by more than framing noise."""
        data = rng.integers(0, 4, 100_000, dtype=np.uint8).tobytes()
        bound = entropy_factor_bound(data)
        achieved = 1.0 - len(zlib.compress(data, 9)) / len(data)
        assert achieved <= bound + 0.02

    def test_structured_data_beats_order0_bound(self):
        """Repetitive data with a flat byte histogram: order-0 sees
        nothing, gzip sees everything."""
        data = bytes(range(256)) * 400
        assert entropy_factor_bound(data) < 0.01
        achieved = 1.0 - len(zlib.compress(data, 6)) / len(data)
        assert achieved > 0.9


class TestBlockProfile:
    def test_profile_length(self):
        profile = block_entropy_profile(bytes(10_000), block_size=1024)
        assert len(profile) == 10
        assert np.all(profile == 0.0)

    def test_heterogeneous_buffer(self, rng):
        data = bytes(8192) + rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()
        profile = block_entropy_profile(data, block_size=4096)
        assert profile[0] == 0.0
        assert profile[-1] > 7.5

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            block_entropy_profile(b"abc" * 100, block_size=16)


class TestAnalyze:
    def test_report_fields(self, rng):
        data = bytes(4096) + rng.integers(0, 256, 4096, dtype=np.uint8).tobytes()
        rep = analyze(data)
        assert rep.nbytes == 8192
        assert rep.zero_fraction == pytest.approx(0.5, abs=0.01)
        assert rep.block_entropy_min == 0.0
        assert rep.block_entropy_max > 7.0
        assert 0 <= rep.order0_bound <= 1

    def test_calibrated_checkpoint_consistent(self):
        """A calibrated proxy checkpoint's achieved gzip factor must be
        explainable: no more than order-0 bound + structural headroom,
        and the quantized mantissas must show low block entropy."""
        from repro.workloads import calibrated_app

        app = calibrated_app("HPCCG", seed=0)
        app.run(3)
        blob = app.checkpoint_bytes()
        rep = analyze(blob)
        achieved = 1.0 - len(zlib.compress(blob, 1)) / len(blob)
        # Heavily quantized state: the byte histogram alone explains most
        # of the factor (entropy coder headroom).
        assert rep.order0_bound > achieved - 0.35
        assert rep.entropy < 4.0
