"""Delta encoding / dedup (the paper's future-work extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.delta import (
    BlockDeduper,
    apply_xor_delta,
    xor_delta,
    zero_rle,
    zero_rle_decode,
)


class TestXorDelta:
    def test_identical_inputs_give_zero_delta(self):
        data = b"checkpoint contents" * 10
        delta = xor_delta(data, data)
        assert delta == bytes(len(data))

    def test_round_trip(self, rng):
        prev = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
        curr = rng.integers(0, 256, 5000, dtype=np.uint8).tobytes()
        assert apply_xor_delta(prev, xor_delta(prev, curr)) == curr

    def test_growing_checkpoint(self):
        prev = b"abcd"
        curr = b"abcdEXTRA"
        delta = xor_delta(prev, curr)
        assert delta[:4] == bytes(4)
        assert delta[4:] == b"EXTRA"
        assert apply_xor_delta(prev, delta) == curr

    def test_shrinking_checkpoint(self):
        prev = b"abcdefgh"
        curr = b"abcd"
        assert apply_xor_delta(prev, xor_delta(prev, curr)) == curr

    def test_sparse_change_mostly_zero(self, rng):
        prev = bytearray(rng.integers(0, 256, 4096, dtype=np.uint8).tobytes())
        curr = bytearray(prev)
        curr[100] ^= 0xFF
        delta = xor_delta(bytes(prev), bytes(curr))
        assert sum(1 for b in delta if b != 0) == 1


class TestZeroRLE:
    def test_round_trip_simple(self):
        data = b"ab" + bytes(100) + b"cd"
        assert zero_rle_decode(zero_rle(data)) == data

    def test_compresses_zero_runs(self):
        data = bytes(10_000)
        assert len(zero_rle(data)) < 10

    def test_short_zero_runs_stay_literal(self):
        data = b"a" + bytes(3) + b"b"  # run of 3 < min_run 8
        enc = zero_rle(data)
        assert zero_rle_decode(enc) == data
        assert enc[0] == 0x01  # single literal record

    def test_empty(self):
        assert zero_rle_decode(zero_rle(b"")) == b""

    def test_bad_tag_rejected(self):
        with pytest.raises(ValueError, match="tag"):
            zero_rle_decode(b"\x07\x01")

    def test_truncated_literal_rejected(self):
        with pytest.raises(ValueError, match="truncated"):
            zero_rle_decode(b"\x01\x0aabc")

    @given(st.binary(max_size=2048))
    @settings(max_examples=150, deadline=None)
    def test_property_round_trip(self, data):
        assert zero_rle_decode(zero_rle(data)) == data

    @given(st.binary(max_size=512), st.integers(min_value=8, max_value=512))
    @settings(max_examples=60, deadline=None)
    def test_property_round_trip_varied_min_run(self, data, min_run):
        assert zero_rle_decode(zero_rle(data, min_run=min_run)) == data


class TestBlockDedup:
    def test_identical_checkpoints_fully_dedup(self):
        d = BlockDeduper(64)
        blob = b"x" * 1000
        d.push(blob)
        res = d.push(blob)
        # All blocks hash identically; with constant content there is one
        # distinct full block + one partial, both seen before.
        assert res.dedup_factor == 1.0

    def test_disjoint_checkpoints_no_dedup(self, rng):
        d = BlockDeduper(64)
        d.push(rng.integers(0, 256, 1024, dtype=np.uint8).tobytes())
        res = d.push(rng.integers(0, 256, 1024, dtype=np.uint8).tobytes())
        assert res.dedup_factor == 0.0

    def test_partial_overlap(self, rng):
        d = BlockDeduper(128)
        base = rng.integers(0, 256, 1024, dtype=np.uint8).tobytes()
        d.push(base)
        modified = bytearray(base)
        modified[0] ^= 1  # dirty exactly one block
        res = d.push(bytes(modified))
        assert res.total_blocks == 8
        assert res.unique_blocks == 1

    def test_window_is_previous_only(self):
        d = BlockDeduper(64)
        a, b = b"A" * 128, b"B" * 128
        d.push(a)
        d.push(b)
        res = d.push(a)  # a's blocks were forgotten after b
        assert res.dedup_factor == 0.0

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            BlockDeduper(8)

    def test_empty_checkpoint(self):
        res = BlockDeduper(64).push(b"")
        assert res.total_blocks == 0
        assert res.dedup_factor == 0.0
