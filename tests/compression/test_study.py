"""The Section 5 compression study structures and paper transcription."""

import pytest

from repro.compression.codecs import make_codec
from repro.compression.study import (
    PAPER_TABLE2,
    PAPER_UTILITY_AVERAGES,
    average_by_utility,
    paper_factor,
    paper_speed,
    run_study,
    sizing_inputs,
)


class TestPaperTranscription:
    def test_seven_apps(self):
        assert [r.app for r in PAPER_TABLE2] == [
            "CoMD",
            "HPCCG",
            "miniFE",
            "miniMD",
            "miniSMAC2D",
            "miniAero",
            "pHPCCG",
        ]

    def test_per_app_lookup(self):
        assert paper_factor("CoMD", "gzip(1)") == pytest.approx(0.842)
        assert paper_speed("CoMD", "gzip(1)") == pytest.approx(153.7e6)
        assert paper_factor("miniSMAC2D", "lz4(1)") == pytest.approx(0.241)

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError):
            paper_factor("LAMMPS")

    def test_averages_match_per_app_data(self):
        # The published Average row should be the mean of the app rows
        # (to the paper's printed precision).
        for codec, (avg_f, avg_s) in PAPER_UTILITY_AVERAGES.items():
            f = sum(r.measurements[codec][0] for r in PAPER_TABLE2) / len(PAPER_TABLE2)
            s = sum(r.measurements[codec][1] for r in PAPER_TABLE2) / len(PAPER_TABLE2)
            assert f == pytest.approx(avg_f, abs=0.005)
            assert s == pytest.approx(avg_s, rel=0.01)

    def test_checkpoint_sizes(self):
        total = sum(r.checkpoint_bytes for r in PAPER_TABLE2)
        # Paper average row: 31.76 GB over 7 apps.
        assert total / 7 == pytest.approx(31.76e9, rel=0.01)


class TestLiveStudy:
    @pytest.fixture(scope="class")
    def tiny_study(self, request):
        import numpy as np

        rng = np.random.default_rng(0)
        datasets = {
            "smooth": [np.linspace(0, 1, 20000).tobytes()],
            "noisy": [rng.integers(0, 256, 80000, dtype=np.uint8).tobytes()],
        }
        codecs = [make_codec("gzip", 1), make_codec("lz4", 1)]
        return run_study(datasets, codecs)

    def test_study_shape(self, tiny_study):
        assert tiny_study.apps() == ["smooth", "noisy"]
        assert set(tiny_study.results["smooth"]) == {"gzip(1)", "lz4(1)"}

    def test_smooth_beats_noisy(self, tiny_study):
        assert tiny_study.factor("smooth", "gzip(1)") > tiny_study.factor(
            "noisy", "gzip(1)"
        )

    def test_average_by_utility(self, tiny_study):
        avgs = average_by_utility(tiny_study)
        f, s = avgs["gzip(1)"]
        expected = (
            tiny_study.factor("smooth", "gzip(1)")
            + tiny_study.factor("noisy", "gzip(1)")
        ) / 2
        assert f == pytest.approx(expected)
        assert s > 0


class TestSizingInputs:
    def test_paper_source(self):
        inputs = sizing_inputs("paper")
        assert inputs["gzip(1)"][0] == pytest.approx(0.728)

    def test_measured_requires_study(self):
        with pytest.raises(ValueError):
            sizing_inputs("measured")

    def test_unknown_source(self):
        with pytest.raises(ValueError):
            sizing_inputs("guess")
