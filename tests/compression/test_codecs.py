"""Codec adapters and the registry."""

import pytest

from repro.compression.codecs import (
    PAPER_UTILITIES,
    codec_from_name,
    default_codecs,
    make_codec,
)


class TestMakeCodec:
    @pytest.mark.parametrize("utility,level", PAPER_UTILITIES)
    def test_round_trip(self, utility, level, small_blob):
        codec = make_codec(utility, level)
        assert codec.decompress(codec.compress(small_blob)) == small_blob

    def test_name_format(self):
        assert make_codec("gzip", 6).name == "gzip(6)"

    def test_unknown_utility(self):
        with pytest.raises(ValueError):
            make_codec("zstd", 3)

    def test_lz4_level_restricted(self):
        with pytest.raises(ValueError):
            make_codec("lz4", 6)

    def test_levels_change_output(self, small_blob):
        fast = make_codec("gzip", 1).compress(small_blob)
        best = make_codec("gzip", 9).compress(small_blob)
        assert len(best) <= len(fast)


class TestFactor:
    def test_factor_definition(self, small_blob):
        codec = make_codec("gzip", 1)
        f = codec.factor(small_blob)
        assert f == 1.0 - len(codec.compress(small_blob)) / len(small_blob)

    def test_factor_rejects_empty(self):
        with pytest.raises(ValueError):
            make_codec("gzip", 1).factor(b"")

    def test_stronger_codecs_higher_factor(self, small_blob):
        # xz should not lose to lz4 on mixed data.
        f_lz4 = make_codec("lz4", 1).factor(small_blob)
        f_xz = make_codec("xz", 6).factor(small_blob)
        assert f_xz >= f_lz4


class TestRegistry:
    def test_default_codecs_cover_paper_set(self):
        names = [c.name for c in default_codecs()]
        assert names == [
            "gzip(1)",
            "gzip(6)",
            "bzip2(1)",
            "bzip2(9)",
            "xz(1)",
            "xz(6)",
            "lz4(1)",
        ]

    @pytest.mark.parametrize("name", ["gzip(1)", "bzip2(9)", "xz(6)", "lz4(1)"])
    def test_codec_from_name_round_trip(self, name):
        assert codec_from_name(name).name == name

    def test_codec_from_name_rejects_garbage(self):
        with pytest.raises(ValueError):
            codec_from_name("gzip-1")
        with pytest.raises(ValueError):
            codec_from_name("gzip(one)")
