"""Byte-identity of the vectorized kernels against their scalar specs.

The fast paths (``lz4.compress``, ``lz4.compress_dense``, ``zero_rle``)
must produce *exactly* the bytes of their executable reference
implementations — any divergence is a correctness bug, not a quality
trade-off.  Payload families deliberately straddle ``_VECTOR_MIN`` so the
scalar/vector dispatch seam is exercised from both sides.
"""

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import lz4
from repro.compression.delta import (
    apply_xor_delta,
    xor_delta,
    zero_rle,
    zero_rle_decode,
    zero_rle_ref,
)


def _payload(kind: str, size: int, seed: int = 0) -> bytes:
    rng = np.random.default_rng(seed)
    if kind == "random":
        return rng.integers(0, 256, size, dtype=np.uint8).tobytes()
    if kind == "zeros":
        return bytes(size)
    if kind == "repetitive":
        return (b"state vector block " * (size // 19 + 1))[:size]
    if kind == "lowentropy":
        return rng.integers(0, 4, size, dtype=np.uint8).tobytes()
    if kind == "sparse":
        arr = np.zeros(size, dtype=np.uint8)
        if size:
            idx = rng.integers(0, size, max(size // 50, 1))
            arr[idx] = rng.integers(1, 256, len(idx), dtype=np.uint8)
        return arr.tobytes()
    raise AssertionError(kind)


KINDS = ["random", "zeros", "repetitive", "lowentropy", "sparse"]
# Sizes straddling the scalar/vector dispatch threshold.
SIZES = [0, 1, 11, lz4._VECTOR_MIN - 1, lz4._VECTOR_MIN, lz4._VECTOR_MIN + 1, 40_000]


class TestLZ4ByteIdentity:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("size", SIZES)
    def test_exact_kernel_matches_reference(self, kind, size):
        data = _payload(kind, size)
        assert lz4.compress(data) == lz4.compress_ref(data)

    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("size", SIZES)
    def test_dense_kernel_matches_its_spec(self, kind, size):
        data = _payload(kind, size)
        out = lz4.compress_dense(data)
        assert out == lz4.compress_dense_ref(data)
        assert lz4.decompress(out, len(data)) == data

    def test_miniapp_state_payload(self):
        # Real serialized miniapp state, not synthetic bytes.
        from repro.workloads import calibrated_app

        app = calibrated_app("miniMD")
        app.run(2)
        data = app.checkpoint_bytes()
        assert len(data) > lz4._VECTOR_MIN
        assert lz4.compress(data) == lz4.compress_ref(data)
        dense = lz4.compress_dense(data)
        assert dense == lz4.compress_dense_ref(data)
        assert lz4.decompress(dense, len(data)) == data

    @given(st.binary(min_size=0, max_size=6000))
    @settings(max_examples=60, deadline=None)
    def test_fuzz_both_kernels(self, data):
        assert lz4.compress(data) == lz4.compress_ref(data)
        dense = lz4.compress_dense(data)
        assert dense == lz4.compress_dense_ref(data)
        assert lz4.decompress(dense, len(data)) == data

    def test_memoryview_input_matches_bytes(self, small_blob):
        mv = memoryview(small_blob)
        assert lz4.compress(mv) == lz4.compress(small_blob)
        assert lz4.compress_dense(mv) == lz4.compress_dense(small_blob)


class TestOverlappingCopyDecode:
    def test_offset_smaller_than_match_length(self):
        # Hand-built block: 4 literals "abcd", then a 10-byte match at
        # offset 2 — the match source overlaps the bytes it produces, so
        # a correct decoder replicates "cd" five times.
        token = (4 << 4) | (10 - lz4.MIN_MATCH)
        block = bytes([token]) + b"abcd" + struct.pack("<H", 2)
        block += bytes([5 << 4]) + b"vwxyz"  # final literals-only sequence
        assert lz4.decompress(block) == b"abcd" + b"cd" * 5 + b"vwxyz"

    def test_offset_one_run(self):
        token = (1 << 4) | 15
        block = bytes([token]) + b"q" + struct.pack("<H", 1) + bytes([200 - 15 - 4])
        block += bytes([5 << 4]) + b"vwxyz"
        assert lz4.decompress(block) == b"q" * 201 + b"vwxyz"

    @pytest.mark.parametrize("period", [1, 2, 3, 5, 7])
    def test_periodic_round_trips(self, period):
        data = (bytes(range(1, period + 1)) * (9000 // period + 1))[:9000]
        for kernel in (lz4.compress, lz4.compress_dense):
            assert lz4.decompress(kernel(data), len(data)) == data


class TestZeroRLE:
    @given(st.binary(max_size=4000), st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_matches_reference(self, data, min_run):
        out = zero_rle(data, min_run)
        assert out == zero_rle_ref(data, min_run)
        assert zero_rle_decode(out) == data

    def test_sparse_payload_matches_reference(self):
        data = _payload("sparse", 100_000)
        assert zero_rle(data) == zero_rle_ref(data)

    def test_min_run_larger_than_input_is_one_literal(self):
        data = bytes(16)  # all zeros, but the run is below min_run
        out = zero_rle(data, min_run=32)
        assert out[0] == 0x01  # single literal record, no zero-run record
        assert zero_rle_decode(out) == data

    @pytest.mark.parametrize("fn", [zero_rle, zero_rle_ref])
    def test_min_run_validation(self, fn):
        with pytest.raises(ValueError, match="min_run"):
            fn(b"abc", min_run=0)


class TestXorDeltaStrict:
    def test_strict_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="xor_delta length mismatch"):
            xor_delta(b"abcd", b"abcdef", strict=True)
        with pytest.raises(ValueError, match="apply_xor_delta length mismatch"):
            apply_xor_delta(b"abcd", b"abcdef", strict=True)

    def test_lenient_passes_tail_through(self):
        delta = xor_delta(b"abcd", b"abcdXY")
        assert delta[4:] == b"XY"
        assert apply_xor_delta(b"abcd", delta) == b"abcdXY"

    @given(st.binary(max_size=500), st.binary(max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_round_trip(self, previous, current):
        assert apply_xor_delta(previous, xor_delta(previous, current)) == current
