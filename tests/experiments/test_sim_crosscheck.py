"""The figure experiments' simulation overlays: one grid pass, no fallbacks.

ISSUE 6 rewired fig6-fig9 and the heatmap off one-config-at-a-time
simulation loops: each experiment builds its whole strategy x parameter
grid and sends it through a single :func:`~repro.simulation.simulate_grid`
pass.  These tests pin the wiring (overlay keys appear, defaults stay
analytic-only), the consistency of the overlay with the analytic model
at moderate statistics, and the acceptance gate that the standard
experiment grids never fall back to the DES.
"""

import pytest

from repro.experiments import fig6, fig7, fig8, fig9, heatmap
from repro.simulation import simulate_grid, unsupported_reason
from repro.simulation.fastpath import fallback_total

QUICK = dict(simulate_seeds=2, simulate_mttis=5.0)


class TestDefaultsStayAnalytic:
    """simulate_seeds=0 (the default) must not touch the simulator."""

    @pytest.mark.parametrize("mod", [fig6, fig7, fig8, fig9], ids=lambda m: m.__name__)
    def test_no_sim_keys(self, mod):
        res = mod.run()
        assert all("sim" not in str(k) for row in res.rows for k in row)
        assert "Simulated" not in res.text


class TestOverlayWiring:
    def test_fig8_overlay(self):
        res = fig8.run(fractions=(0.1, 0.4), **QUICK)
        for row in res.rows:
            for lab in ("L-15GBps + I/O-NC", "L-2GBps + I/O-NC"):
                assert 0.0 < row[f"sim {lab}"] <= 1.0
        assert "Simulated" in res.text

    def test_fig9_overlay(self):
        res = fig9.run(mttis_min=(30, 90), **QUICK)
        assert all(f"sim {lab}" in row for row in res.rows for lab in ("L-15GBps + I/O-N",))

    def test_fig7_overlay(self):
        res = fig7.run(**QUICK)
        for row in res.rows:
            assert 0.0 < row["sim_efficiency"] <= 1.0
            assert 0.0 <= row["sim_rerun_io"] < 1.0

    def test_fig6_overlay(self):
        res = fig6.run(p_locals=(0.4,), **QUICK)
        assert all("sim_average" in row for row in res.rows)

    def test_heatmap_overlay(self):
        res = heatmap.run(resolution=4, **QUICK)
        assert "sim_mean_abs_gap" in res.headline
        assert all("sim_advantage" in row for row in res.rows)


class TestModelAgreement:
    """At moderate statistics the simulated overlay tracks the model."""

    def test_fig9_sim_tracks_model(self):
        res = fig9.run(mttis_min=(30, 150), simulate_seeds=8, simulate_mttis=40.0)
        for row in res.rows:
            for lab in ("L-15GBps + I/O-NC", "L-15GBps + I/O-HC"):
                assert row[f"sim {lab}"] == pytest.approx(row[lab], abs=0.08), lab


class TestNoFallbacks:
    """Acceptance gate: the standard experiment grids never hit the DES."""

    def test_grids_supported_and_fallback_free(self):
        flat = []
        for grid in (
            fig6.sim_configs(),
            fig7.sim_configs(),
            fig8.sim_configs(),
            fig9.sim_configs(),
        ):
            stack = [grid]
            while stack:
                item = stack.pop()
                if isinstance(item, list):
                    stack.extend(item)
                else:
                    flat.append(item)
        assert len(flat) >= 100  # the fig6-fig9 set is a real grid
        for config in flat:
            assert unsupported_reason(config) is None, config

    def test_fallback_counter_untouched_by_grid_run(self):
        before = fallback_total()
        simulate_grid(fig7.sim_configs(mttis=2.0), seeds=(0,))
        assert fallback_total() == before
