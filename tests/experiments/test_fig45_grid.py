"""Figures 4/5 on the vectorized grid must reproduce the scalar sweep.

Both experiment modules were rewired from per-ratio scalar model calls to
one numpy pass (:func:`repro.core.sweeps.host_breakdown_grid` for fig4,
:func:`repro.core.sweeps.optimal_host_grid` for fig5).  Their docstrings
promise the rows are unchanged; this suite holds them to it by rebuilding
each row through the historical scalar path.
"""

import pytest

from repro.core.configs import NO_COMPRESSION, paper_parameters
from repro.core.optimizer import clear_cache, optimal_ratio, sweep_ratio
from repro.experiments import fig4, fig5
from repro.experiments.common import fig6_compression


@pytest.fixture(autouse=True)
def fresh_memo():
    # The scalar reference path and the experiments share the optimizer
    # memo; clear it so neither masks a divergence in the other.
    clear_cache()
    yield
    clear_cache()


class TestFig4RowsUnchanged:
    def test_rows_match_scalar_sweep_bit_exactly(self):
        result = fig4.run()
        params = paper_parameters().with_(p_local_recovery=0.85)
        points = sweep_ratio(params, fig4.DEFAULT_RATIOS)
        assert len(result.rows) == len(points)
        for row, pt in zip(result.rows, points):
            assert row["ratio"] == pt.ratio
            scalar = pt.result.breakdown.as_dict()
            for name, value in scalar.items():
                assert row[name] == value, name

    def test_headline_matches_scalar_argmax(self):
        result = fig4.run()
        params = paper_parameters().with_(p_local_recovery=0.85)
        points = sweep_ratio(params, fig4.DEFAULT_RATIOS)
        best = max(points, key=lambda pt: pt.result.efficiency)
        assert result.headline["optimal_ratio"] == best.ratio
        assert result.headline["optimal_efficiency"] == best.result.efficiency

    def test_custom_p_local_also_matches(self):
        result = fig4.run(p_local=0.4)
        params = paper_parameters().with_(p_local_recovery=0.4)
        for row, pt in zip(result.rows, sweep_ratio(params, fig4.DEFAULT_RATIOS)):
            assert row["compute"] == pt.result.breakdown.compute


class TestFig5RatiosUnchanged:
    def test_host_cells_match_scalar_optimizer(self):
        result = fig5.run()
        params = paper_parameters()
        for row in result.rows:
            cf = row["factor"]
            comp = fig6_compression(cf, "host") if cf > 0 else NO_COMPRESSION
            for p, got in row["host_ratios"].items():
                want = optimal_ratio(params.with_(p_local_recovery=p), comp)
                assert got == want, (cf, p)

    def test_subset_of_p_locals(self):
        result = fig5.run(p_locals=(0.3, 0.9))
        assert set(result.rows[0]["host_ratios"]) == {0.3, 0.9}
        params = paper_parameters()
        row = result.rows[0]  # no compression
        for p, got in row["host_ratios"].items():
            assert got == optimal_ratio(params.with_(p_local_recovery=p))
