"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import paper_parameters
from repro.core.configs import CRParameters


@pytest.fixture
def params() -> CRParameters:
    """The paper's Table 4 parameter bundle."""
    return paper_parameters()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_blob(rng: np.random.Generator) -> bytes:
    """~64 kB of mixed-compressibility bytes."""
    smooth = np.cumsum(rng.standard_normal(4096)).astype(np.float64).tobytes()
    noisy = rng.integers(0, 256, 16384, dtype=np.uint8).tobytes()
    return smooth + bytes(8192) + noisy + smooth
