"""Regression: transparent reconnect fires only for connection drops.

A dropped keep-alive socket (RemoteDisconnected / ECONNRESET / EPIPE)
means the request never started computing, so one silent retry is safe.
A ``socket.timeout`` is the opposite: the request may still be running
server-side, and re-sending it would compute it twice — it must
propagate to the caller untouched.
"""

import http.client
import socket

import pytest

from repro.service import ServiceClient


class _FakeResponse:
    status = 200
    headers = {}

    def read(self) -> bytes:
        return b"{}"


class _FakeConn:
    """Scripted stand-in for http.client.HTTPConnection.

    ``errors`` is consumed one entry per request() call; a ``None``
    entry means that attempt succeeds.
    """

    def __init__(self, errors):
        self.errors = list(errors)
        self.requests = 0
        self.closes = 0

    def request(self, *args, **kwargs):
        self.requests += 1
        err = self.errors.pop(0) if self.errors else None
        if err is not None:
            raise err

    def getresponse(self):
        return _FakeResponse()

    def close(self):
        self.closes += 1


def _client_with(conn: _FakeConn) -> ServiceClient:
    c = ServiceClient("127.0.0.1", 1)
    c._conn.close()
    c._conn = conn
    return c


class TestReconnectOnDrop:
    @pytest.mark.parametrize(
        "err",
        [
            http.client.RemoteDisconnected("gone"),
            ConnectionResetError(),
            BrokenPipeError(),
        ],
    )
    def test_connection_drop_is_retried_exactly_once(self, err):
        conn = _FakeConn([err, None])
        out = _client_with(conn).get_raw("/healthz")
        assert out == b"{}"
        assert conn.requests == 2
        assert conn.closes == 1  # stale socket torn down before the retry

    def test_second_drop_propagates(self):
        conn = _FakeConn(
            [http.client.RemoteDisconnected("a"), http.client.RemoteDisconnected("b")]
        )
        with pytest.raises(http.client.RemoteDisconnected):
            _client_with(conn).get_raw("/healthz")
        assert conn.requests == 2


class TestNoRetryOnTimeout:
    def test_socket_timeout_is_never_retried(self):
        """The regression this file pins: a timed-out request must NOT
        be transparently re-sent (the server may still be computing it)."""
        conn = _FakeConn([socket.timeout("read timed out"), None])
        with pytest.raises(socket.timeout):
            _client_with(conn).get_raw("/healthz")
        assert conn.requests == 1
        assert conn.closes == 0

    def test_timeout_mid_response_not_retried_either(self):
        class _TimeoutOnResponse(_FakeConn):
            def getresponse(self):
                raise socket.timeout("read timed out")

        conn = _TimeoutOnResponse([None, None])
        with pytest.raises(socket.timeout):
            _client_with(conn).get_raw("/healthz")
        assert conn.requests == 1
