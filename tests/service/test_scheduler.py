"""Deadline/priority scheduling: EDF, fast 504, shedding, starvation."""

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import trace
from repro.service import (
    BackgroundServer,
    DeadlineExceeded,
    Overloaded,
    ProtocolError,
    QoS,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    qos_from_json,
)
from repro.service.batcher import Batcher
from repro.simulation import SimConfig

BODY = {"params": {"mtti": 600.0}, "strategy": "ndp", "work_mttis": 3, "seed": 1}


def cfg(params, **kw):
    defaults = dict(
        params=params, strategy="ndp", work=params.mtti * 3, seed=0, engine="fast"
    )
    defaults.update(kw)
    return SimConfig(**defaults)


class SpyRunner:
    """Records every dispatched group; returns stub results instantly."""

    def __init__(self, delay: float = 0.0):
        self.groups = []
        self.delay = delay
        self.lock = threading.Lock()

    def __call__(self, configs):
        with self.lock:
            self.groups.append(list(configs))
        if self.delay:
            time.sleep(self.delay)
        from repro.simulation import simulate

        return [simulate(c) for c in configs]


class TestQoSParsing:
    def test_defaults(self):
        qos, rest = qos_from_json({"seed": 3})
        assert qos == QoS()
        assert qos.deadline_s is None and qos.priority == 4
        assert rest == {"seed": 3}

    def test_fields_are_split_off(self):
        qos, rest = qos_from_json({"deadline_ms": 250, "priority": 1, "seed": 3})
        assert qos.deadline_s == 0.25
        assert qos.priority == 1
        assert rest == {"seed": 3}

    def test_non_mapping_passes_through(self):
        qos, rest = qos_from_json([1, 2])
        assert qos == QoS() and rest == [1, 2]

    @pytest.mark.parametrize("bad", ["fast", True, 0, -5])
    def test_bad_deadline_rejected(self, bad):
        with pytest.raises(ProtocolError):
            qos_from_json({"deadline_ms": bad})

    @pytest.mark.parametrize("bad", ["high", True, 2.5, -1, 10])
    def test_bad_priority_rejected(self, bad):
        with pytest.raises(ProtocolError):
            qos_from_json({"priority": bad})


class TestEDFOrdering:
    def test_dispatch_order_is_earliest_deadline_first(self, params):
        """Jobs submitted in one window dispatch by deadline, not FIFO."""
        runner = SpyRunner()
        deadlines_ms = [10_000, 4_000, 7_000, 2_000]  # submit order

        async def main():
            b = Batcher(runner, window=0.05, max_batch=1, max_inflight=1)
            jobs = [
                b.submit(cfg(params, seed=i), QoS(deadline_s=d / 1e3))
                for i, d in enumerate(deadlines_ms)
            ]
            await asyncio.gather(*jobs)
            b.close()

        asyncio.run(main())
        order = [g[0].seed for g in runner.groups]
        assert order == [3, 1, 2, 0]  # ascending deadline

    def test_priority_class_dominates_deadline(self, params):
        """An urgent-class job with a late deadline still beats a relaxed
        class with an early one; inside a class, EDF applies."""
        runner = SpyRunner()

        async def main():
            b = Batcher(runner, window=0.05, max_batch=1, max_inflight=1)
            jobs = [
                b.submit(cfg(params, seed=0), QoS(deadline_s=5.0, priority=9)),
                b.submit(cfg(params, seed=1), QoS(deadline_s=60.0, priority=0)),
                b.submit(cfg(params, seed=2), QoS(deadline_s=30.0, priority=0)),
            ]
            await asyncio.gather(*jobs)
            b.close()

        asyncio.run(main())
        assert [g[0].seed for g in runner.groups] == [2, 1, 0]

    def test_equal_qos_stays_fifo(self, params):
        runner = SpyRunner()

        async def main():
            b = Batcher(runner, window=0.05, max_batch=1, max_inflight=1)
            jobs = [b.submit(cfg(params, seed=i)) for i in range(4)]
            await asyncio.gather(*jobs)
            b.close()

        asyncio.run(main())
        assert [g[0].seed for g in runner.groups] == [0, 1, 2, 3]


class TestExpiry:
    def test_expired_job_fails_without_touching_runner(self, params):
        """The fast 504: a job whose deadline passes inside the batch
        window is failed at drain time and never dispatches."""
        runner = SpyRunner()

        async def main():
            b = Batcher(runner, window=0.05, max_batch=8)
            with pytest.raises(DeadlineExceeded):
                await b.submit(cfg(params, seed=0), QoS(deadline_s=0.001))
            b.close()

        asyncio.run(main())
        assert runner.groups == []

    def test_expired_rider_frees_slots_for_live_jobs(self, params):
        """A mixed window dispatches only the jobs still inside their
        deadlines; the expired one fails out of band."""
        runner = SpyRunner()

        async def main():
            b = Batcher(runner, window=0.05, max_batch=8)
            dead = asyncio.ensure_future(
                b.submit(cfg(params, seed=0), QoS(deadline_s=0.001))
            )
            live = asyncio.ensure_future(
                b.submit(cfg(params, seed=1), QoS(deadline_s=30.0))
            )
            results = await asyncio.gather(dead, live, return_exceptions=True)
            b.close()
            return results

        dead_res, live_res = asyncio.run(main())
        assert isinstance(dead_res, DeadlineExceeded)
        assert not isinstance(live_res, Exception)
        assert [c.seed for g in runner.groups for c in g] == [1]

    def test_stats_count_expiries(self, params):
        runner = SpyRunner()

        async def main():
            b = Batcher(runner, window=0.05, max_batch=8)
            with pytest.raises(DeadlineExceeded):
                await b.submit(cfg(params, seed=0), QoS(deadline_s=0.001))
            stats = b.stats
            b.close()
            return stats

        stats = asyncio.run(main())
        assert stats.expired == 1
        assert stats.shed == 0


class TestShedding:
    def test_overloaded_raised_once_budget_exceeded(self, params):
        """With a warmed service-time estimate and a queued backlog, a
        new submission is refused at admission — before enqueue."""
        runner = SpyRunner(delay=0.05)

        async def main():
            b = Batcher(
                runner, window=0.05, max_batch=1, max_inflight=1,
                queue_budget=0.001,
            )
            await b.submit(cfg(params, seed=0))  # warms the EWMA (~50 ms)
            queued = asyncio.ensure_future(b.submit(cfg(params, seed=1)))
            await asyncio.sleep(0)  # seed 1 enqueued, drain not yet run
            with pytest.raises(Overloaded) as exc:
                await b.submit(cfg(params, seed=2))
            await queued
            stats = b.stats
            b.close()
            return exc.value, stats

        overloaded, stats = asyncio.run(main())
        assert overloaded.retry_after >= 1.0
        assert stats.shed == 1
        # The shed submission never entered the queue or the runner.
        assert stats.submitted == 2
        assert sum(len(g) for g in runner.groups) == 2

    def test_never_sheds_before_first_batch_observed(self, params):
        """Admission control without a service-time observation is
        blind; it must admit rather than guess."""
        runner = SpyRunner()

        async def main():
            b = Batcher(
                runner, window=0.05, max_batch=1, max_inflight=1,
                queue_budget=1e-9,
            )
            jobs = [b.submit(cfg(params, seed=i)) for i in range(3)]
            # The first submissions queue up before any batch finishes:
            # none may be shed, tiny budget or not.
            await asyncio.gather(*jobs)
            b.close()

        asyncio.run(main())
        assert sum(len(g) for g in runner.groups) == 3


class TestAging:
    def test_low_priority_job_is_never_starved(self, params):
        """A priority-9 job survives a continuous stream of fresh
        priority-0 arrivals: waiting promotes it one class per ``aging``
        seconds until it outranks anything fresh."""
        runner = SpyRunner()

        async def main():
            b = Batcher(
                runner, window=0.01, max_batch=1, max_inflight=1, aging=0.005
            )
            feeders: list[asyncio.Task] = []
            stop = [False]

            async def feed():
                i = 0
                while not stop[0]:
                    feeders.append(
                        asyncio.ensure_future(
                            b.submit(cfg(params, seed=100 + i), QoS(priority=0))
                        )
                    )
                    i += 1
                    await asyncio.sleep(0.008)

            feeder = asyncio.ensure_future(feed())
            try:
                await asyncio.wait_for(
                    b.submit(cfg(params, seed=1), QoS(priority=9)), timeout=5.0
                )
            finally:
                stop[0] = True
                await feeder
                await asyncio.gather(*feeders, return_exceptions=True)
                b.close()

        asyncio.run(main())  # wait_for raising == starvation == failure
        assert any(g[0].seed == 1 for g in runner.groups)


class TestHTTPMapping:
    """The server's QoS surface: 504/503 statuses, headers, SLO split."""

    def test_expired_request_is_504_with_no_compute_span(self):
        trace.disable()
        config = ServiceConfig(port=0, jobs=1, batch_window=0.1)
        with BackgroundServer(config) as srv:
            trace.configure()
            try:
                with ServiceClient(
                    "127.0.0.1", srv.port, trace_id="dead0504aaaa"
                ) as c:
                    with pytest.raises(ServiceError) as exc:
                        c.simulate(dict(BODY, deadline_ms=1))
                    assert exc.value.status == 504
                    import json as _json

                    entry = _json.loads(c.get_raw("/debug/trace/dead0504aaaa"))
                kinds = [s["kind"] for s in entry["spans"]]
                assert "expired" in kinds
                assert "compute" not in kinds
            finally:
                trace.disable()

    def test_shed_request_is_503_with_retry_after(self):
        # DES requests heavy enough (~0.25 s) to hold the single
        # dispatch slot while a sibling queues behind it.
        heavy = {
            "params": {"mtti": 600.0},
            "strategy": "ndp",
            "work_mttis": 800,
            "engine": "des",
        }
        config = ServiceConfig(
            port=0,
            jobs=1,
            batch_window=0.01,
            max_batch=1,
            max_inflight=1,
            queue_budget=0.05,
        )
        with BackgroundServer(config) as srv:
            with ServiceClient("127.0.0.1", srv.port) as c:
                c.simulate(dict(heavy, seed=10))  # warm the EWMA (~0.25 s)

                def fire(seed):
                    with ServiceClient("127.0.0.1", srv.port) as c2:
                        return c2.post_raw("/v1/simulate", dict(heavy, seed=seed))

                with ThreadPoolExecutor(max_workers=2) as pool:
                    futs = [pool.submit(fire, 11)]
                    time.sleep(0.05)  # 11 takes the slot (computes ~0.25 s)
                    futs.append(pool.submit(fire, 12))  # queued behind 11
                    time.sleep(0.05)
                    with pytest.raises(ServiceError) as exc:
                        c.simulate(dict(heavy, seed=13))
                    assert exc.value.status == 503
                    assert exc.value.retry_after is not None
                    assert exc.value.retry_after >= 1.0
                    for fut in futs:
                        fut.result()  # the accepted requests still complete
                stats = c.stats()
            assert stats["batch"]["shed"] >= 1
            assert stats["slo"] == {}  # no SLOs configured -> empty

    def test_rejections_split_in_slo_snapshot(self):
        from repro.obs.slo import parse_slo

        config = ServiceConfig(
            port=0,
            jobs=1,
            batch_window=0.1,
            slo=(parse_slo("simulate=10s:0.99"),),
        )
        with BackgroundServer(config) as srv:
            with ServiceClient("127.0.0.1", srv.port) as c:
                with pytest.raises(ServiceError):
                    c.simulate(dict(BODY, deadline_ms=1, seed=20))
                stats = c.stats()
            slo = stats["slo"]["simulate"]
            assert slo["expired"] >= 1
            assert slo["bad"] >= 1  # rejections burn error budget too

    def test_qos_fields_do_not_change_response_bytes(self):
        """QoS is scheduling-only: a met deadline returns exactly the
        serial bytes (deadline_ms/priority stay out of the payload)."""
        from repro.service import canonical_dumps, config_from_json, result_to_json
        from repro.simulation import simulate

        body = dict(BODY, seed=30)
        config = ServiceConfig(port=0, jobs=1)
        with BackgroundServer(config) as srv:
            with ServiceClient("127.0.0.1", srv.port) as c:
                got = c.post_raw(
                    "/v1/simulate",
                    dict(body, deadline_ms=60_000, priority=0),
                )
        want = canonical_dumps(
            {"result": result_to_json(simulate(config_from_json(body)))}
        )
        assert got == want
