"""Coalescer semantics: dedup, shared results, cancellation isolation."""

import asyncio

import pytest

from repro.service.coalescer import Coalescer


def run(coro):
    return asyncio.run(coro)


class TestCoalescing:
    def test_concurrent_duplicates_share_one_computation(self):
        async def main():
            co = Coalescer()
            calls = 0

            async def compute():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.01)
                return object()

            results = await asyncio.gather(
                *(co.get("k", compute) for _ in range(5))
            )
            assert calls == 1
            assert all(r is results[0] for r in results)  # the same object
            assert co.primary == 1 and co.coalesced == 4
            return True

        assert run(main())

    def test_distinct_keys_compute_independently(self):
        async def main():
            co = Coalescer()
            calls = []

            def make(key):
                async def compute():
                    calls.append(key)
                    await asyncio.sleep(0.01)
                    return key

                return compute

            out = await asyncio.gather(co.get("a", make("a")), co.get("b", make("b")))
            assert sorted(calls) == ["a", "b"]
            assert sorted(out) == ["a", "b"]
            return True

        assert run(main())

    def test_sequential_repeats_recompute(self):
        """The coalescer dedups *in-flight* work only (caching is the
        ResultCache's job)."""

        async def main():
            co = Coalescer()
            calls = 0

            async def compute():
                nonlocal calls
                calls += 1
                return calls

            assert await co.get("k", compute) == 1
            assert await co.get("k", compute) == 2
            assert len(co) == 0
            return True

        assert run(main())

    def test_shared_failure_fans_out(self):
        async def main():
            co = Coalescer()

            async def boom():
                await asyncio.sleep(0.01)
                raise RuntimeError("engine exploded")

            tasks = [asyncio.ensure_future(co.get("k", boom)) for _ in range(3)]
            done = await asyncio.gather(*tasks, return_exceptions=True)
            assert all(isinstance(d, RuntimeError) for d in done)
            return True

        assert run(main())


class TestCancellation:
    def test_cancelling_one_waiter_does_not_starve_the_others(self):
        """ISSUE acceptance: a client disconnecting mid-flight leaves the
        coalesced siblings (and the computation itself) untouched."""

        async def main():
            co = Coalescer()
            started = asyncio.Event()

            async def compute():
                started.set()
                await asyncio.sleep(0.05)
                return "payload"

            first = asyncio.ensure_future(co.get("k", compute))
            await started.wait()
            second = asyncio.ensure_future(co.get("k", compute))
            third = asyncio.ensure_future(co.get("k", compute))
            await asyncio.sleep(0)
            first.cancel()
            with pytest.raises(asyncio.CancelledError):
                await first
            assert await second == "payload"
            assert await third == "payload"
            return True

        assert run(main())

    def test_cancelling_the_primary_waiter_keeps_computation_alive(self):
        async def main():
            co = Coalescer()
            finished = asyncio.Event()

            async def compute():
                await asyncio.sleep(0.02)
                finished.set()
                return 42

            primary = asyncio.ensure_future(co.get("k", compute))
            await asyncio.sleep(0.005)
            follower = asyncio.ensure_future(co.get("k", compute))
            await asyncio.sleep(0)
            primary.cancel()
            assert await follower == 42
            assert finished.is_set()
            return True

        assert run(main())

    def test_all_waiters_cancelled_swallows_the_orphan_result(self):
        async def main():
            co = Coalescer()

            async def compute():
                await asyncio.sleep(0.02)
                return 1

            only = asyncio.ensure_future(co.get("k", compute))
            await asyncio.sleep(0.005)
            only.cancel()
            with pytest.raises(asyncio.CancelledError):
                await only
            # The orphan computation drains without tripping the loop's
            # "exception never retrieved" machinery.
            await asyncio.sleep(0.05)
            assert len(co) == 0
            return True

        assert run(main())
