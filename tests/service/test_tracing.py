"""End-to-end request tracing: connected trees, timing, SLOs, debug API."""

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import trace
from repro.obs.slo import parse_slo
from repro.service import (
    BackgroundServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    canonical_dumps,
    config_from_json,
    result_to_json,
)
from repro.service.coalescer import Coalescer
from repro.simulation import simulate
from repro.simulation.pool import ResultCache

BODY = {"params": {"mtti": 600.0}, "strategy": "ndp", "work_mttis": 3, "seed": 1}


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    trace.disable()
    yield
    trace.disable()


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache = ResultCache(tmp_path_factory.mktemp("trace-cache"))
    config = ServiceConfig(
        port=0,
        jobs=1,
        cache=cache,
        slo=(parse_slo("simulate=10s:0.99"), parse_slo("sweep=10s:0.95")),
    )
    with BackgroundServer(config) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServiceClient("127.0.0.1", server.port) as c:
        yield c


def records_for(tracer, trace_id):
    return [r for r in tracer.records if r.get("trace_id") == trace_id]


class TestTraceHeader:
    def test_client_supplied_id_is_adopted_and_echoed(self, server):
        with ServiceClient("127.0.0.1", server.port, trace_id="feedc0de00112233") as c:
            c.simulate(BODY)
            assert c.last_trace_id == "feedc0de00112233"

    def test_minted_id_when_absent(self, client):
        client.simulate(BODY)
        assert client.last_trace_id
        assert len(client.last_trace_id) == 16
        assert set(client.last_trace_id) <= set("0123456789abcdef")

    def test_malformed_inbound_id_is_replaced(self, server):
        with ServiceClient("127.0.0.1", server.port, trace_id="NOT HEX!!") as c:
            c.healthz()
            assert c.last_trace_id != "NOT HEX!!"
            assert set(c.last_trace_id) <= set("0123456789abcdef-")

    def test_uppercase_hex_is_normalized(self, server):
        with ServiceClient("127.0.0.1", server.port, trace_id="ABCDEF01") as c:
            c.healthz()
            assert c.last_trace_id == "abcdef01"

    def test_responses_stay_byte_identical_under_tracing(self, client):
        trace.configure()
        body = dict(BODY, seed=31)
        raw = client.post_raw("/v1/simulate", body)
        want = canonical_dumps(
            {"result": result_to_json(simulate(config_from_json(body)))}
        )
        assert raw == want


class TestRequestTrees:
    def test_concurrent_sweeps_yield_connected_single_root_trees(self, server):
        """ISSUE acceptance: a traced /v1/sweep under concurrent load
        produces one connected span tree per request — ingress →
        coalescer → batcher → pool chunks → fastpath groups."""
        tracer = trace.configure()
        ids = [f"aaaa{i:012x}" for i in range(4)]

        def fire(tid, seed_base):
            body = {
                "configs": [
                    dict(BODY, seed=seed_base + k, work_mttis=2) for k in range(3)
                ],
                "seeds": [seed_base],
            }
            with ServiceClient("127.0.0.1", server.port, trace_id=tid) as c:
                return c.sweep(body)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(fire, ids, range(40, 80, 10)))

        report = trace.validate_request_trees(tracer.records)
        assert report["orphans"] == []
        leaders = 0
        for tid in ids:
            recs = records_for(tracer, tid)
            kinds = {r["kind"] for r in recs}
            # Every tree reaches the compute: the batch leader holds the
            # real compute span with the pool/fastpath subtree, riders
            # carry a shared-compute interval linking the leader's span.
            assert {"request", "wait", "window", "compute"} <= kinds
            if "chunk" in kinds:
                assert "batch" in kinds  # fastpath groups under the chunks
                leaders += 1
            else:
                shared = [r for r in recs if r["kind"] == "compute"]
                assert any(r.get("links") for r in shared)
            roots = [r for r in recs if "ctx_parent" not in r and not r.get("links")]
            assert len(roots) == 1, [r["kind"] for r in roots]
            assert roots[0]["kind"] == "request"
            assert roots[0]["lane"] == "server"
        assert leaders >= 1  # somebody actually ran the engines

    def test_simulate_tree_nests_ingress_to_fastpath(self, client):
        tracer = trace.configure()
        client.post_raw("/v1/simulate", dict(BODY, seed=91), trace_id="beef0001")
        recs = records_for(tracer, "beef0001")
        by_ctx = {r["ctx"]: r for r in recs}

        def depth(rec):
            d = 0
            while rec.get("ctx_parent"):
                rec = by_ctx[rec["ctx_parent"]]
                d += 1
            return d

        batch = next(r for r in recs if r["kind"] == "batch")
        root = next(r for r in recs if r["kind"] == "request")
        assert depth(root) == 0
        # fastpath group sits several layers below the ingress span.
        assert depth(batch) >= 3


class TestServerTiming:
    def test_stages_sum_to_wall_within_5_percent(self, server):
        trace.configure()
        with ServiceClient(
            "127.0.0.1", server.port, trace_id="cafe0002", timing=True
        ) as c:
            out = c.simulate(dict(BODY, seed=92, work_mttis=5))
        st = out["server_timing"]
        assert set(st) == {
            "parse", "coalesce_wait", "batch_window", "cache_probe",
            "compute", "serialize",
        }
        assert all(v >= 0.0 for v in st.values())
        entry = json.loads(c.get_raw("/debug/trace/cafe0002"))
        wall = entry["duration"]
        assert sum(st.values()) <= wall * 1.05
        assert sum(st.values()) >= wall * 0.5  # the stages cover the bulk

    def test_timing_absent_without_header(self, client):
        out = client.simulate(dict(BODY, seed=93))
        assert "server_timing" not in out

    def test_flight_recorder_keeps_stages_even_without_header(self, client):
        client.post_raw("/v1/simulate", dict(BODY, seed=94), trace_id="cafe0003")
        entry = json.loads(client.get_raw("/debug/trace/cafe0003"))
        assert entry["server_timing"]["compute"] >= 0.0


class TestCoalescedTraces:
    def _run(self, coro):
        return asyncio.run(coro)

    def test_duplicate_waiter_links_primary_wait_span(self):
        tracer = trace.configure()

        async def scenario():
            co = Coalescer()
            gate: asyncio.Future = None

            async def compute():
                await gate
                return 42

            async def primary():
                with trace.use_context(trace.TraceContext("t-primary")):
                    return await co.get("k", compute)

            async def duplicate():
                await asyncio.sleep(0.01)  # let the primary register
                with trace.use_context(trace.TraceContext("t-dup")):
                    return await co.get("k", compute)

            gate = asyncio.get_running_loop().create_future()
            p = asyncio.ensure_future(primary())
            d = asyncio.ensure_future(duplicate())
            await asyncio.sleep(0.05)
            gate.set_result(None)
            return await asyncio.gather(p, d)

        assert self._run(scenario()) == [42, 42]
        primary_wait = next(
            r for r in tracer.records
            if r["kind"] == "wait" and r["label"] == "primary"
        )
        dup_wait = next(
            r for r in tracer.records
            if r["kind"] == "wait" and r["label"] == "coalesced"
        )
        assert primary_wait["trace_id"] == "t-primary"
        assert dup_wait["trace_id"] == "t-dup"
        assert dup_wait["links"] == [primary_wait["ctx"]]
        assert trace.validate_request_trees(tracer.records)["orphans"] == []

    def test_cancelled_duplicate_still_records_and_compute_survives(self):
        tracer = trace.configure()

        async def scenario():
            co = Coalescer()
            gate = None

            async def compute():
                await gate
                return "done"

            async def waiter(tid):
                with trace.use_context(trace.TraceContext(tid)):
                    return await co.get("k", compute)

            gate = asyncio.get_running_loop().create_future()
            p = asyncio.ensure_future(waiter("t-a"))
            await asyncio.sleep(0.01)
            d = asyncio.ensure_future(waiter("t-b"))
            await asyncio.sleep(0.01)
            d.cancel()
            await asyncio.sleep(0.01)
            gate.set_result(None)
            result = await p
            assert d.cancelled()
            return result

        assert self._run(scenario()) == "done"
        dup_wait = next(
            r for r in tracer.records
            if r["kind"] == "wait" and r["label"] == "coalesced"
        )
        assert dup_wait["trace_id"] == "t-b"  # recorded despite cancellation
        assert next(
            r for r in tracer.records
            if r["kind"] == "wait" and r["label"] == "primary"
        )["trace_id"] == "t-a"


class TestWarmCacheRequests:
    def test_fully_warm_request_has_no_compute_span(self, server):
        body = dict(BODY, seed=95)
        with ServiceClient("127.0.0.1", server.port) as c:
            c.simulate(body)  # populate the shared result cache
            tracer = trace.configure()
            c.post_raw("/v1/simulate", body, trace_id="feed0004")
        recs = records_for(tracer, "feed0004")
        kinds = [r["kind"] for r in recs]
        assert "cache_probe" in kinds
        assert "compute" not in kinds
        assert "chunk" not in kinds
        assert trace.validate_request_trees(recs)["orphans"] == []


class TestDebugEndpoints:
    def test_requests_lists_recent_with_status_and_duration(self, client):
        client.post_raw("/v1/simulate", dict(BODY, seed=96), trace_id="dead0005")
        out = json.loads(client.get_raw("/debug/requests?n=50"))
        entry = next(
            e for e in out["requests"] if e["trace_id"] == "dead0005"
        )
        assert entry["status"] == 200
        assert entry["duration"] > 0.0
        assert entry["path"] == "/v1/simulate"

    def test_slowest_sort_and_n_param(self, client):
        out = json.loads(client.get_raw("/debug/requests?n=2&sort=slowest"))
        durations = [e["duration"] for e in out["requests"]]
        assert len(durations) <= 2
        assert durations == sorted(durations, reverse=True)

    def test_bad_n_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.get_raw("/debug/requests?n=bogus")
        assert exc.value.status == 400

    def test_trace_lookup_returns_span_tree(self, server):
        trace.configure()
        with ServiceClient("127.0.0.1", server.port, trace_id="dead0006") as c:
            c.simulate(dict(BODY, seed=97))
            entry = json.loads(c.get_raw("/debug/trace/dead0006"))
        assert entry["trace_id"] == "dead0006"
        assert entry["spans"]
        (root,) = entry["tree"]
        assert root["span"]["kind"] == "request"
        assert root["children"]

    def test_unknown_trace_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.get_raw("/debug/trace/ffffffffffffffff")
        assert exc.value.status == 404

    def test_unknown_debug_path_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.get_raw("/debug/nope")
        assert exc.value.status == 404


class TestSLOAndLatencyExport:
    def test_stats_carries_percentiles_and_slo(self, client):
        client.simulate(dict(BODY, seed=98))
        stats = client.stats()
        lat = stats["latency"]["/v1/simulate"]
        assert lat["count"] >= 1
        assert 0.0 <= lat["p50"] <= lat["p99"]
        slo = stats["slo"]["simulate"]
        assert slo["objective"] == "10000ms:0.99"
        assert slo["good"] >= 1
        assert set(slo["windows"]) == {"5m", "1h"}

    def test_metrics_export_slo_gauges(self, client):
        client.simulate(dict(BODY, seed=99))
        text = client.metrics_text()
        assert 'repro_slo_target{route="simulate"} 0.99' in text
        assert 'repro_slo_burn_rate{route="simulate",window="5m"}' in text

    def test_metrics_histogram_carries_exemplars_when_traced(self, server):
        trace.configure()
        with ServiceClient("127.0.0.1", server.port, trace_id="ace00007") as c:
            c.simulate(dict(BODY, seed=100))
            text = c.metrics_text()
        lines = [
            l for l in text.splitlines()
            if l.startswith("service_request_seconds_bucket") and "trace_id=" in l
        ]
        assert lines, "no exemplar on any request-latency bucket"
        assert any('# {trace_id="' in l for l in lines)


class TestWorkerProcessTraces:
    def test_pool_workers_append_to_shared_sink(self, tmp_path, monkeypatch):
        """Spans from forked pool workers land in the same JSONL sink and
        resolve into the request's tree (ctx hand-off across pids)."""
        sink = tmp_path / "svc.jsonl"
        monkeypatch.setenv(trace.ENV_VAR, str(sink))
        trace.configure(str(sink), keep_records=False)
        config = ServiceConfig(port=0, jobs=2, cache=None)
        body = {
            "configs": [dict(BODY, seed=200 + k, work_mttis=2) for k in range(6)],
            "seeds": [0, 1],
        }
        with BackgroundServer(config) as srv:
            with ServiceClient(
                "127.0.0.1", srv.port, trace_id="abba000000000001"
            ) as c:
                c.sweep(body)
        trace.disable()
        records = [
            json.loads(line)
            for line in sink.read_text().splitlines()
            if line.strip()
        ]
        mine = [r for r in records if r.get("trace_id") == "abba000000000001"]
        assert {r["kind"] for r in mine} >= {"request", "compute", "chunk", "batch"}
        assert trace.validate_request_trees(records)["orphans"] == []
        pids = {r["pid"] for r in mine if "pid" in r}
        assert len(pids) >= 2, "expected spans from the server and worker pids"
