"""Streaming sweeps: chunked NDJSON framing, byte identity, incrementality."""

import json
import socket

import pytest

from repro.service import (
    BackgroundServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    canonical_dumps,
)

SWEEP = {
    "configs": [
        {"params": {"mtti": 600.0}, "strategy": "ndp", "work_mttis": 3},
        {"params": {"mtti": 600.0}, "strategy": "host", "work_mttis": 3},
        {"params": {"mtti": 1200.0}, "strategy": "io-only", "work_mttis": 3},
    ],
    "seeds": [0, 1],
}


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServiceConfig(port=0, jobs=1)) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServiceClient("127.0.0.1", server.port) as c:
        yield c


def raw_streamed_exchange(port: int, body: dict) -> tuple[dict, bytes]:
    """Speak HTTP/1.1 on a raw socket; return (headers, raw body bytes).

    De-chunks by hand so the test pins the actual wire framing, not an
    http-library interpretation of it.
    """
    payload = json.dumps(body).encode()
    req = (
        f"POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
    ).encode() + payload
    with socket.create_connection(("127.0.0.1", port), timeout=60) as s:
        s.sendall(req)
        blob = b""
        while True:
            got = s.recv(65536)
            if not got:
                break
            blob += got
    head, _, rest = blob.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    headers = {}
    for line in lines[1:]:
        k, _, v = line.partition(":")
        headers[k.strip().lower()] = v.strip()
    headers["_status"] = int(lines[0].split()[1])
    assert headers.get("transfer-encoding") == "chunked"
    # De-chunk.
    out = b""
    while rest:
        size_line, _, rest = rest.partition(b"\r\n")
        size = int(size_line, 16)
        if size == 0:
            break
        out += rest[:size]
        rest = rest[size + 2 :]  # skip the chunk's trailing CRLF
    return headers, out


class TestWireFraming:
    def test_chunked_ndjson_with_header_line(self, server):
        headers, body = raw_streamed_exchange(
            server.port, {**SWEEP, "stream": True}
        )
        assert headers["_status"] == 200
        assert headers["content-type"] == "application/x-ndjson"
        lines = body.decode().splitlines()
        assert json.loads(lines[0]) == {"n_cells": 3, "n_seeds": 2}
        assert len(lines) == 1 + 3

    def test_streamed_cells_byte_identical_to_buffered(self, client, server):
        """ISSUE acceptance, at the socket level: each streamed cell line
        is exactly the canonical rendering of the buffered response's
        corresponding cell."""
        buffered = json.loads(client.post_raw("/v1/sweep", SWEEP))
        _, body = raw_streamed_exchange(server.port, {**SWEEP, "stream": True})
        cell_lines = body.split(b"\n")[1:-1]  # drop header line + trailing ""
        want = [canonical_dumps(cell) for cell in buffered["cells"]]
        assert cell_lines == want

    def test_detail_rows_stream_byte_identically_too(self, client, server):
        body = {**SWEEP, "detail": True}
        buffered = json.loads(client.post_raw("/v1/sweep", body))
        _, raw = raw_streamed_exchange(server.port, {**body, "stream": True})
        cell_lines = raw.split(b"\n")[1:-1]
        assert cell_lines == [canonical_dumps(c) for c in buffered["cells"]]

    def test_stream_false_is_plain_buffered_json(self, client):
        blob = client.post_raw("/v1/sweep", {**SWEEP, "stream": False})
        out = json.loads(blob)
        assert out["n_cells"] == 3 and len(out["cells"]) == 3


class TestClientStream:
    def test_sweep_stream_yields_buffered_cells(self, client):
        buffered = json.loads(client.post_raw("/v1/sweep", SWEEP))
        rows = list(client.sweep_stream(SWEEP))
        assert rows == buffered["cells"]

    def test_connection_stays_usable_after_full_stream(self, client):
        list(client.sweep_stream(SWEEP))
        assert client.healthz() == {"status": "ok"}

    def test_mid_stream_error_line_raises_and_closes(self):
        """A cell that fails after the 200 head becomes a final error
        line; the client surfaces it as ServiceError.

        The fast and DES cells batch into separate runner calls, so the
        injected DES fault lands after the first row is already on the
        wire."""
        sweep = {
            "configs": [
                {"params": {"mtti": 600.0}, "work_mttis": 3},
                {"params": {"mtti": 600.0}, "work_mttis": 3, "engine": "des"},
            ],
            "seeds": [0],
        }
        with BackgroundServer(ServiceConfig(port=0, jobs=1)) as srv:
            real = srv.server.batcher._runner

            def flaky(configs):
                if any(c.engine == "des" for c in configs):
                    raise RuntimeError("injected engine fault")
                return real(configs)

            srv.server.batcher._runner = flaky
            with ServiceClient("127.0.0.1", srv.port) as c:
                rows = []
                with pytest.raises(ServiceError) as exc:
                    for row in c.sweep_stream(sweep):
                        rows.append(row)
                assert exc.value.status == 500
                assert len(rows) == 1  # first cell streamed before the fault

    def test_qos_rides_streaming_sweeps(self, server):
        """deadline_ms/priority parse on streamed sweeps too (strict)."""
        with ServiceClient("127.0.0.1", server.port) as c:
            rows = list(
                c.sweep_stream({**SWEEP, "deadline_ms": 60_000, "priority": 2})
            )
            assert len(rows) == 3
            with pytest.raises(ServiceError) as exc:
                list(c.sweep_stream({**SWEEP, "priority": "high"}))
            assert exc.value.status == 400


class TestIncrementality:
    def test_first_row_lands_before_last_group_completes(self):
        """Time-to-first-row tracks the first cell group, not the grid:
        with a slow DES cell last, the first (fast) cell's line must
        arrive well before the response finishes."""
        import time

        sweep = {
            "configs": [
                {"params": {"mtti": 600.0}, "work_mttis": 3},
                {
                    "params": {"mtti": 600.0},
                    "work_mttis": 800,
                    "engine": "des",
                },
            ],
            "seeds": [0],
        }
        with BackgroundServer(ServiceConfig(port=0, jobs=1)) as srv:
            with ServiceClient("127.0.0.1", srv.port, timeout=120.0) as c:
                t0 = time.monotonic()
                stamps = []
                for _ in c.sweep_stream(sweep):
                    stamps.append(time.monotonic() - t0)
        assert len(stamps) == 2
        # The fast cell resolves in a few ms; the DES cell takes ~250 ms.
        # First row must not have waited for the DES cell.
        assert stamps[0] < stamps[1] / 2
