"""Micro-batcher: fusion, bounded delay, engine isolation, determinism."""

import asyncio
import threading

import pytest

from repro.service.batcher import Batcher
from repro.simulation import ResultCache, SimConfig, config_key, simulate


def cfg(params, **kw):
    defaults = dict(
        params=params, strategy="ndp", work=params.mtti * 3, seed=0, engine="fast"
    )
    defaults.update(kw)
    return SimConfig(**defaults)


class SpyRunner:
    """Records every dispatched group, then simulates for real."""

    def __init__(self):
        self.groups = []
        self.lock = threading.Lock()

    def __call__(self, configs):
        with self.lock:
            self.groups.append(list(configs))
        return [simulate(c) for c in configs]


class TestFusion:
    def test_concurrent_submissions_fuse_into_one_batch(self, params):
        runner = SpyRunner()

        async def main():
            batcher = Batcher(runner, window=0.01, max_batch=64)
            try:
                configs = [cfg(params, seed=s) for s in range(6)]
                results = await asyncio.gather(*(batcher.submit(c) for c in configs))
                return configs, results
            finally:
                batcher.close()

        configs, results = asyncio.run(main())
        assert len(runner.groups) == 1  # all six fused
        assert [r for r in results] == [simulate(c) for c in configs]

    def test_fused_results_bit_identical_to_serial(self, params):
        """Near-duplicate concurrent requests (same scenario, different
        seeds) ride one fused batch and still match serial simulate."""
        runner = SpyRunner()

        async def main():
            batcher = Batcher(runner, window=0.005, max_batch=32)
            try:
                variants = [
                    cfg(params, seed=3),
                    cfg(params, seed=4),
                    cfg(params, strategy="host", ratio=2, seed=3),
                    cfg(params, nvm_capacity=4, seed=5),
                ]
                out = await asyncio.gather(*(batcher.submit(v) for v in variants))
                return variants, out
            finally:
                batcher.close()

        variants, out = asyncio.run(main())
        for v, r in zip(variants, out):
            assert r == simulate(v)

    def test_max_batch_one_disables_fusion(self, params):
        runner = SpyRunner()

        async def main():
            batcher = Batcher(runner, window=0.0, max_batch=1)
            try:
                await asyncio.gather(
                    *(batcher.submit(cfg(params, seed=s)) for s in range(4))
                )
            finally:
                batcher.close()

        asyncio.run(main())
        assert all(len(g) == 1 for g in runner.groups)
        assert len(runner.groups) == 4

    def test_stats_track_fused_sizes(self, params):
        runner = SpyRunner()

        async def main():
            batcher = Batcher(runner, window=0.01, max_batch=64)
            try:
                await asyncio.gather(
                    *(batcher.submit(cfg(params, seed=s)) for s in range(5))
                )
                return batcher.stats
            finally:
                batcher.close()

        stats = asyncio.run(main())
        assert stats.submitted == 5
        assert stats.batched_jobs["fast"] == 5
        assert stats.mean_batch_size("fast") == pytest.approx(
            5 / stats.batches["fast"]
        )


class TestEngineIsolation:
    def test_des_never_rides_a_fast_fused_batch(self, params):
        """ISSUE acceptance: DES-engine requests dispatch in their own
        group, never inside the fast-engine fusion group."""
        runner = SpyRunner()

        async def main():
            batcher = Batcher(runner, window=0.01, max_batch=64)
            try:
                mixed = [
                    cfg(params, seed=0),
                    cfg(params, seed=1, engine="des"),
                    cfg(params, seed=2),
                    cfg(params, seed=3, engine="des"),
                ]
                out = await asyncio.gather(*(batcher.submit(c) for c in mixed))
                return mixed, out
            finally:
                batcher.close()

        mixed, out = asyncio.run(main())
        for group in runner.groups:
            engines = {c.engine for c in group}
            assert len(engines) == 1, f"mixed-engine dispatch: {engines}"
        # Both engines' results still match serial evaluation.
        for c, r in zip(mixed, out):
            assert r == simulate(c)
        assert batch_engines(runner) == {"fast", "des"}


def batch_engines(runner: SpyRunner) -> set:
    return {c.engine for g in runner.groups for c in g}


class TestFailure:
    def test_runner_failure_fans_out_to_all_waiters(self, params):
        def broken(configs):
            raise RuntimeError("worker pool on fire")

        async def main():
            batcher = Batcher(broken, window=0.005, max_batch=8)
            try:
                done = await asyncio.gather(
                    *(batcher.submit(cfg(params, seed=s)) for s in range(3)),
                    return_exceptions=True,
                )
                return done
            finally:
                batcher.close()

        done = asyncio.run(main())
        assert all(isinstance(d, RuntimeError) for d in done)

    def test_closed_batcher_rejects_submissions(self, params):
        async def main():
            batcher = Batcher(lambda configs: [], window=0.0)
            batcher.close()
            with pytest.raises(RuntimeError, match="closed"):
                await batcher.submit(cfg(params))
            return True

        assert asyncio.run(main())


class TestMissOnlySlicing:
    """ISSUE 8: a partially warm batch dispatches only its cache misses."""

    def test_warm_jobs_never_reach_the_runner(self, params, tmp_path):
        cache = ResultCache(tmp_path / "simcache")
        configs = [cfg(params, seed=s) for s in range(4)]
        for c in (configs[1], configs[3]):
            cache.put(config_key(c), simulate(c))
        runner = SpyRunner()

        async def main():
            batcher = Batcher(runner, window=0.01, max_batch=16, cache=cache)
            try:
                out = await asyncio.gather(*(batcher.submit(c) for c in configs))
                return out, batcher.stats
            finally:
                batcher.close()

        out, stats = asyncio.run(main())
        dispatched = {c.seed for g in runner.groups for c in g}
        assert dispatched == {0, 2}  # the warm seeds were sliced out
        assert stats.cache_hits == 2
        # Byte-identity contract: hits and misses alike match serial.
        for c, r in zip(configs, out):
            assert r == simulate(c)

    def test_fully_warm_batch_skips_the_runner_entirely(self, params, tmp_path):
        cache = ResultCache(tmp_path / "simcache")
        configs = [cfg(params, seed=s) for s in range(3)]
        for c in configs:
            cache.put(config_key(c), simulate(c))
        runner = SpyRunner()

        async def main():
            batcher = Batcher(runner, window=0.005, max_batch=16, cache=cache)
            try:
                out = await asyncio.gather(*(batcher.submit(c) for c in configs))
                return out, batcher.stats
            finally:
                batcher.close()

        out, stats = asyncio.run(main())
        assert runner.groups == []
        assert stats.cache_hits == 3
        assert stats.batches["fast"] == 0  # no engine pass happened
        assert out == [simulate(c) for c in configs]

    def test_no_cache_dispatches_everything(self, params):
        runner = SpyRunner()

        async def main():
            batcher = Batcher(runner, window=0.005, max_batch=16)
            try:
                await asyncio.gather(
                    *(batcher.submit(cfg(params, seed=s)) for s in range(3))
                )
                return batcher.stats
            finally:
                batcher.close()

        stats = asyncio.run(main())
        assert stats.cache_hits == 0
        assert sum(len(g) for g in runner.groups) == 3


class TestValidation:
    def test_bad_knobs_rejected(self):
        runner = lambda configs: []  # noqa: E731
        with pytest.raises(ValueError):
            Batcher(runner, window=-1.0)
        with pytest.raises(ValueError):
            Batcher(runner, max_batch=0)
        with pytest.raises(ValueError):
            Batcher(runner, max_inflight=0)
