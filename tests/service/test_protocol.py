"""Protocol layer: strict parsing, deterministic serialization."""

import math

import pytest

from repro.core.configs import HOST_GZIP1, NO_COMPRESSION
from repro.service.protocol import (
    ProtocolError,
    canonical_dumps,
    compression_from_json,
    config_from_json,
    params_from_json,
    result_to_json,
    sweep_rows_from_json,
)
from repro.simulation import simulate


class TestParams:
    def test_defaults_and_overrides(self):
        assert params_from_json(None).mtti == params_from_json({}).mtti
        assert params_from_json({"mtti": 60.0}).mtti == 60.0

    def test_unknown_key_rejected(self):
        with pytest.raises(ProtocolError, match="unknown params"):
            params_from_json({"mtty": 60.0})

    def test_dataclass_validation_surfaces_as_protocol_error(self):
        with pytest.raises(ProtocolError, match="mtti"):
            params_from_json({"mtti": -1.0})

    def test_non_object_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            params_from_json([1, 2])


class TestCompression:
    def test_null_is_no_compression(self):
        assert compression_from_json(None) == NO_COMPRESSION

    def test_presets(self):
        assert compression_from_json("host-gzip1") == HOST_GZIP1
        with pytest.raises(ProtocolError, match="preset"):
            compression_from_json("zstd19")

    def test_explicit_spec(self):
        spec = compression_from_json(
            {"factor": 0.5, "compress_rate": 1e9, "decompress_rate": 2e9}
        )
        assert spec.factor == 0.5

    def test_bad_spec_rejected(self):
        with pytest.raises(ProtocolError, match="factor"):
            compression_from_json({"factor": 1.5, "compress_rate": 1, "decompress_rate": 1})


class TestConfig:
    def test_minimal_request_gets_service_defaults(self):
        cfg = config_from_json({})
        assert cfg.engine == "fast"
        assert cfg.work == pytest.approx(cfg.params.mtti * 50.0)

    def test_work_mttis_scales_with_params(self):
        cfg = config_from_json({"params": {"mtti": 600.0}, "work_mttis": 10})
        assert cfg.work == pytest.approx(6000.0)

    def test_work_and_work_mttis_conflict(self):
        with pytest.raises(ProtocolError, match="not both"):
            config_from_json({"work": 100.0, "work_mttis": 10})

    def test_trace_never_crosses_the_wire(self):
        with pytest.raises(ProtocolError, match="unknown request"):
            config_from_json({"trace": {}})

    def test_engine_pinnable_to_des(self):
        assert config_from_json({"engine": "des"}).engine == "des"

    def test_simconfig_validation_surfaces(self):
        with pytest.raises(ProtocolError, match="strategy"):
            config_from_json({"strategy": "teleport"})

    def test_failure_times_coerced(self):
        cfg = config_from_json({"failure_times": [10, 20.5], "work": 100.0})
        assert cfg.failure_times == (10.0, 20.5)


class TestSweep:
    def test_rows_cell_major_with_seed_axis(self):
        rows, n_cells, n_seeds = sweep_rows_from_json(
            {"configs": [{"seed": 99}, {"strategy": "host"}], "seeds": [0, 1, 2]}
        )
        assert (n_cells, n_seeds) == (2, 3)
        assert [r.seed for r in rows] == [0, 1, 2, 0, 1, 2]
        assert rows[3].strategy == "host"

    def test_empty_configs_rejected(self):
        with pytest.raises(ProtocolError, match="non-empty"):
            sweep_rows_from_json({"configs": [], "seeds": [0]})
        with pytest.raises(ProtocolError, match="seeds"):
            sweep_rows_from_json({"configs": [{}], "seeds": []})


class TestCanonicalDumps:
    def test_deterministic_and_key_sorted(self):
        a = canonical_dumps({"b": 1.0, "a": [2.5, {"z": 0, "c": 1}]})
        b = canonical_dumps({"a": [2.5, {"c": 1, "z": 0}], "b": 1.0})
        assert a == b
        assert a.index(b'"a"') < a.index(b'"b"')

    def test_result_round_trip_bytes_stable(self, params):
        from repro.simulation import SimConfig

        cfg = SimConfig(params=params, strategy="ndp", work=params.mtti * 3, seed=1)
        blob1 = canonical_dumps(result_to_json(simulate(cfg)))
        blob2 = canonical_dumps(result_to_json(simulate(cfg)))
        assert blob1 == blob2

    def test_infinity_survives(self):
        assert canonical_dumps({"x": math.inf}) == b'{"x":Infinity}'
