"""End-to-end over real sockets: byte-identity, shared state, HTTP edges."""

import dataclasses
import http.client
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import (
    BackgroundServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    canonical_dumps,
    config_from_json,
    result_to_json,
)
from repro.simulation import simulate
from repro.simulation.pool import ResultCache

BODY = {"params": {"mtti": 600.0}, "strategy": "ndp", "work_mttis": 3, "seed": 1}


def expected_bytes(body: dict) -> bytes:
    """What a serial, single-request evaluation would answer, exactly."""
    return canonical_dumps({"result": result_to_json(simulate(config_from_json(body)))})


@pytest.fixture(scope="module")
def server():
    with BackgroundServer(ServiceConfig(port=0, jobs=1)) as srv:
        yield srv


@pytest.fixture()
def client(server):
    with ServiceClient("127.0.0.1", server.port) as c:
        yield c


class TestLiveness:
    def test_healthz(self, client):
        assert client.healthz() == {"status": "ok"}

    def test_metrics_exposes_service_and_pool_counters(self, client):
        client.simulate(BODY)  # make sure the counters exist
        text = client.metrics_text()
        for name in ("service_requests_total", "service_batches_total", "pool_runs_total"):
            assert name in text

    def test_stats_shape(self, client):
        client.simulate(BODY)
        stats = client.stats()
        assert stats["requests"] >= 1
        assert stats["batch"]["submitted"] >= 1
        assert stats["cache"] == {"enabled": False, "hits": 0, "misses": 0}
        assert set(stats["coalesce"]) == {"primary", "coalesced", "inflight"}


class TestByteIdentity:
    def test_simulate_matches_serial_exactly(self, client):
        assert client.post_raw("/v1/simulate", BODY) == expected_bytes(BODY)

    def test_des_request_matches_serial_exactly(self, client):
        body = dict(BODY, engine="des", seed=2)
        assert client.post_raw("/v1/simulate", body) == expected_bytes(body)

    def test_concurrent_duplicates_all_byte_identical(self, server):
        """ISSUE acceptance: identical in-flight requests coalesce onto
        one computation and every waiter gets the exact serial bytes."""
        body = dict(BODY, seed=7)

        def fire(_):
            with ServiceClient("127.0.0.1", server.port) as c:
                return c.post_raw("/v1/simulate", body)

        with ThreadPoolExecutor(max_workers=8) as pool:
            blobs = list(pool.map(fire, range(8)))
        want = expected_bytes(body)
        assert all(blob == want for blob in blobs)

    def test_concurrent_near_duplicates_ride_fused_batches_exactly(self, server):
        """Different seeds fuse into one simulate_batch call; each response
        still matches its own serial evaluation byte-for-byte."""
        bodies = [dict(BODY, seed=s) for s in range(20, 26)]

        def fire(body):
            with ServiceClient("127.0.0.1", server.port) as c:
                return body, c.post_raw("/v1/simulate", body)

        with ThreadPoolExecutor(max_workers=6) as pool:
            out = list(pool.map(fire, bodies))
        for body, blob in out:
            assert blob == expected_bytes(body)


class TestSweep:
    def test_aggregates_match_serial_per_cell(self, client):
        body = {
            "configs": [
                {"params": {"mtti": 600.0}, "strategy": "ndp", "work_mttis": 3},
                {"params": {"mtti": 600.0}, "strategy": "host", "ratio": 2, "work_mttis": 3},
            ],
            "seeds": [0, 1, 2],
        }
        res = client.sweep(body)
        assert (res["n_cells"], res["n_seeds"]) == (2, 3)
        for cell_body, cell in zip(body["configs"], res["cells"]):
            cfg = config_from_json(cell_body)
            effs = [
                simulate(dataclasses.replace(cfg, seed=s)).efficiency
                for s in body["seeds"]
            ]
            assert cell["efficiencies"] == effs
            assert cell["mean_efficiency"] == pytest.approx(sum(effs) / len(effs))
            assert "results" not in cell  # detail defaults off

    def test_detail_returns_full_results(self, client):
        res = client.sweep(
            {"configs": [dict(BODY)], "seeds": [0], "detail": True}
        )
        assert len(res["cells"][0]["results"]) == 1


class TestOptimize:
    def test_returns_model_optimum_deterministically(self, client):
        body = {"params": {"mtti": 600.0}, "compression": "none"}
        first = client.post_raw("/v1/optimize", body)
        again = client.post_raw("/v1/optimize", body)
        assert first == again
        optimal = json.loads(first)["optimal"]
        assert {"config", "efficiency", "ratio", "tau"} <= set(optimal)

    def test_bad_accounting_rejected(self, client):
        with pytest.raises(ServiceError) as err:
            client.optimize({"rerun_accounting": "optimism"})
        assert err.value.status == 400


class TestHttpEdges:
    def test_unknown_endpoint_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.post_raw("/v1/teleport", {})
        assert err.value.status == 404

    def test_wrong_method_405(self, client):
        with pytest.raises(ServiceError) as err:
            client.get_raw("/v1/simulate")
        assert err.value.status == 405
        with pytest.raises(ServiceError) as err:
            client.post_raw("/healthz", {})
        assert err.value.status == 405

    def test_unknown_key_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.simulate({"warp_factor": 9})
        assert err.value.status == 400
        assert "warp_factor" in err.value.message

    def test_invalid_json_body_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        try:
            conn.request(
                "POST",
                "/v1/simulate",
                body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            resp = conn.getresponse()
            payload = json.loads(resp.read())
            assert resp.status == 400
            assert "invalid JSON" in payload["error"]
        finally:
            conn.close()


class TestSharedCache:
    def test_repeat_requests_hit_the_process_wide_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "simcache")
        config = ServiceConfig(port=0, jobs=1, cache=cache)
        body = dict(BODY, seed=11)
        with BackgroundServer(config) as srv:
            with ServiceClient("127.0.0.1", srv.port) as c:
                first = c.post_raw("/v1/simulate", body)
                second = c.post_raw("/v1/simulate", body)
                stats = c.stats()
        assert first == second == expected_bytes(body)
        assert stats["cache"]["enabled"] is True
        assert stats["cache"]["hits"] >= 1

    def test_sweep_with_warm_partial_cache_byte_identical(self, tmp_path):
        """ISSUE 8 acceptance: miss-only slicing through ``/v1/sweep`` —
        a warm partial cache changes which rows reach the engine, never
        a byte of the response."""
        from repro.simulation.pool import config_key

        body = {
            "configs": [
                {"params": {"mtti": 600.0}, "strategy": "ndp", "work_mttis": 3},
                {
                    "params": {"mtti": 600.0},
                    "strategy": "ndp",
                    "nvm_capacity": 2,
                    "work_mttis": 3,
                },
            ],
            "seeds": [0, 1, 2],
        }
        # Reference bytes from a cache-less server (every row simulated).
        with BackgroundServer(ServiceConfig(port=0, jobs=1)) as srv:
            with ServiceClient("127.0.0.1", srv.port) as c:
                want = c.post_raw("/v1/sweep", body)
        # Warm a strict subset of the sweep's rows, then serve again.
        cache = ResultCache(tmp_path / "simcache")
        for cell in body["configs"]:
            base = config_from_json(cell)
            for seed in (0, 2):
                row = dataclasses.replace(base, seed=seed)
                cache.put(config_key(row), simulate(row))
        with BackgroundServer(ServiceConfig(port=0, jobs=1, cache=cache)) as srv:
            with ServiceClient("127.0.0.1", srv.port) as c:
                got = c.post_raw("/v1/sweep", body)
                stats = c.stats()
        assert got == want
        assert stats["batch"]["cache_hits"] >= 4  # the warm rows never dispatched
