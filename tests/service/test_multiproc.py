"""Prefork serving: byte identity, crash restart, graceful drain, merged stats."""

import json
import os
import signal
import threading
import time

import pytest

from repro.service import (
    SO_REUSEPORT_AVAILABLE,
    BackgroundServer,
    ServiceClient,
    ServiceConfig,
    WorkerSupervisor,
)

SIMULATE = {"params": {"mtti": 600.0}, "strategy": "ndp", "work_mttis": 3}
SWEEP = {
    "configs": [
        {"params": {"mtti": 600.0}, "strategy": "ndp", "work_mttis": 3},
        {"params": {"mtti": 600.0}, "strategy": "host", "work_mttis": 3},
    ],
    "seeds": [0, 1],
    "detail": True,
}


def _wait_until(cond, timeout=10.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(interval)
    return cond()


class TestByteIdentity:
    def test_prefork_responses_byte_identical_to_serial(self):
        """ISSUE acceptance: responses under --procs N are byte-identical
        to single-process serving.  Which worker the kernel picks must
        never change a byte."""
        with WorkerSupervisor(ServiceConfig(port=0, jobs=1), procs=2) as sup:
            with ServiceClient("127.0.0.1", sup.port) as c:
                multi = [
                    c.post_raw("/v1/simulate", SIMULATE)
                    for _ in range(6)  # several, to hit both workers
                ]
                multi_sweep = c.post_raw("/v1/sweep", SWEEP)
        with BackgroundServer(ServiceConfig(port=0, jobs=1)) as srv:
            with ServiceClient("127.0.0.1", srv.port) as c:
                serial = c.post_raw("/v1/simulate", SIMULATE)
                serial_sweep = c.post_raw("/v1/sweep", SWEEP)
        assert all(m == serial for m in multi)
        assert multi_sweep == serial_sweep


class TestSupervision:
    def test_crashed_worker_is_restarted_and_service_survives(self):
        with WorkerSupervisor(ServiceConfig(port=0, jobs=1), procs=2) as sup:
            pids = sup.worker_pids()
            assert len(pids) == 2
            os.kill(pids[0], signal.SIGKILL)
            assert _wait_until(lambda: sup.restarts >= 1)
            assert _wait_until(lambda: len(sup.worker_pids()) == 2)
            new_pids = sup.worker_pids()
            assert pids[0] not in new_pids
            with ServiceClient("127.0.0.1", sup.port) as c:
                for _ in range(4):
                    assert c.healthz() == {"status": "ok"}

    def test_sigterm_drains_in_flight_request(self):
        """Graceful drain: SIGTERM mid-request finishes the request
        (the worker stops accepting, completes in-flight work, exits)."""
        heavy = {
            "params": {"mtti": 600.0},
            "work_mttis": 800,
            "engine": "des",
        }
        with WorkerSupervisor(ServiceConfig(port=0, jobs=1), procs=1) as sup:
            (pid,) = sup.worker_pids()
            result = {}

            def fire():
                with ServiceClient("127.0.0.1", sup.port, timeout=60.0) as c:
                    result["body"] = json.loads(c.post_raw("/v1/simulate", heavy))

            t = threading.Thread(target=fire)
            t.start()
            time.sleep(0.08)  # let the request reach the worker (~0.25s job)
            os.kill(pid, signal.SIGTERM)
            t.join(timeout=30)
            assert not t.is_alive()
            assert "efficiency" in result["body"]["result"]


class TestObservability:
    def test_metrics_carry_worker_label(self):
        with WorkerSupervisor(ServiceConfig(port=0, jobs=1), procs=2) as sup:
            with ServiceClient("127.0.0.1", sup.port) as c:
                c.post_raw("/v1/simulate", SIMULATE)
                text = c.get_raw("/metrics").decode()
        assert 'worker="' in text

    def test_stats_merges_all_workers(self):
        """Any worker answering /stats folds in every published
        worker-<i>.json snapshot."""
        with WorkerSupervisor(ServiceConfig(port=0, jobs=1), procs=2) as sup:
            with ServiceClient("127.0.0.1", sup.port) as c:

                def indexes():
                    snap = json.loads(c.get_raw("/stats"))
                    return {w["worker"] for w in snap.get("workers", [])}

                assert _wait_until(lambda: indexes() == {0, 1})

    def test_reuse_port_flag_reflects_platform(self):
        with WorkerSupervisor(ServiceConfig(port=0, jobs=1), procs=1) as sup:
            assert sup.reuse_port == SO_REUSEPORT_AVAILABLE
