"""Batched ResultCache lookups and the adaptive chunk cap."""

import math

import pytest

from repro.simulation import SimConfig
from repro.simulation.pool import (
    ResultCache,
    chunk_indices,
    config_key,
    max_chunk,
    run_simulations,
)


def cfg(params, **kw):
    defaults = dict(
        params=params, strategy="ndp", work=params.mtti * 3, seed=0, engine="fast"
    )
    defaults.update(kw)
    return SimConfig(**defaults)


class CountingCache(ResultCache):
    """ResultCache that counts the single-key operations it performs."""

    def __init__(self, root):
        super().__init__(root)
        self.get_calls = 0
        self.put_calls = 0

    def get(self, key):
        self.get_calls += 1
        return super().get(key)

    def put(self, key, result):
        self.put_calls += 1
        super().put(key, result)


class TestBatchedCacheOps:
    def test_get_many_costs_one_get_per_unique_key(self, params, tmp_path):
        cache = CountingCache(tmp_path)
        (result,) = run_simulations([cfg(params)], cache=cache)
        key = config_key(cfg(params))
        cache.get_calls = 0
        hits = cache.get_many([key, key, key, "0" * 64])
        assert hits == {key: result}
        assert cache.get_calls == 2  # key once, the miss once

    def test_put_many_writes_each_unique_key_once(self, params, tmp_path):
        cache = CountingCache(tmp_path)
        (r1,) = run_simulations([cfg(params, seed=1)], cache=CountingCache(tmp_path / "x"))
        k1, k2 = config_key(cfg(params, seed=1)), config_key(cfg(params, seed=2))
        cache.put_calls = 0
        cache.put_many([(k1, r1), (k1, r1), (k2, r1)])
        assert cache.put_calls == 2

    def test_duplicate_configs_in_one_batch_store_once(self, params, tmp_path):
        cache = CountingCache(tmp_path)
        same = cfg(params, seed=5)
        # One chunk, so the whole batch goes through a single put_many.
        results = run_simulations(
            [same, same, cfg(params, seed=6)], cache=cache, chunk_size=4
        )
        assert results[0] == results[1]
        assert cache.put_calls == 2  # the duplicate pair collapses to one write

    def test_second_run_served_entirely_from_cache(self, params, tmp_path):
        cache = CountingCache(tmp_path)
        batch = [cfg(params, seed=s) for s in range(4)]
        first = run_simulations(batch, cache=cache)
        runs_before = cache.put_calls
        again = run_simulations(batch, cache=cache)
        assert again == first
        assert cache.put_calls == runs_before  # nothing re-executed
        assert cache.hits >= 4


class TestAdaptiveChunkCap:
    def test_small_batches_keep_the_baseline_cap(self):
        assert max_chunk(10, 1) == 16
        assert max_chunk(256, 4) == 16

    def test_huge_batches_scale_to_sixteen_chunks_per_worker(self):
        for total, jobs in [(10_000, 1), (10_000, 4), (100_000, 8)]:
            cap = max_chunk(total, jobs)
            assert cap == max(16, math.ceil(total / (16 * jobs)))
            assert math.ceil(total / cap) <= 16 * jobs

    def test_chunk_indices_respects_the_cap(self):
        chunks = chunk_indices(10_000, 1)
        assert max(len(c) for c in chunks) <= max_chunk(10_000, 1)
        assert sum(len(c) for c in chunks) == 10_000

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "5")
        assert max_chunk(10, 1) == 5
        assert max_chunk(1_000_000, 32) == 5
        chunks = chunk_indices(23, 1)
        assert [len(c) for c in chunks] == [5, 5, 5, 5, 3]

    def test_bad_env_override_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK", "zero")
        with pytest.raises(ValueError, match="integer"):
            max_chunk(10, 1)
        monkeypatch.setenv("REPRO_CHUNK", "0")
        with pytest.raises(ValueError, match=">= 1"):
            max_chunk(10, 1)

    def test_chunking_never_changes_results(self, params, monkeypatch):
        batch = [cfg(params, seed=s) for s in range(12)]
        baseline = run_simulations(batch)
        monkeypatch.setenv("REPRO_CHUNK", "3")
        assert run_simulations(batch) == baseline
