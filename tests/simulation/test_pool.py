"""The parallel batch runtime: determinism, caching, chunking, observability."""

import dataclasses

import pytest

from repro.core.configs import NDP_GZIP1
from repro.simulation import (
    ChunkTiming,
    ResultCache,
    SimConfig,
    chunk_indices,
    compare_strategies,
    config_key,
    mc_run,
    parallel_map,
    resolve_jobs,
    run_simulations,
    simulate,
)
from repro.simulation.trace import TimelineRecorder


def cfg(params, **kw):
    # Short runs: pool semantics are independent of simulation length.
    defaults = dict(params=params, strategy="ndp", work=params.mtti * 6, seed=0)
    defaults.update(kw)
    return SimConfig(**defaults)


class TestDeterminism:
    def test_mc_run_pool_bit_identical_to_serial(self, params):
        """The ISSUE's contract: jobs=4 equals jobs=1 sample-for-sample."""
        serial = mc_run(cfg(params), seeds=range(8), jobs=1)
        pooled = mc_run(cfg(params), seeds=range(8), jobs=4)
        assert serial.samples == pooled.samples
        assert serial.mean == pooled.mean
        assert serial.ci95 == pooled.ci95
        for a, b in zip(serial.results, pooled.results):
            assert a == b

    def test_worker_count_and_chunk_size_irrelevant(self, params):
        configs = [cfg(params, seed=s) for s in range(5)]
        baseline = run_simulations(configs, jobs=1)
        for jobs, chunk in ((2, 1), (3, 2), (None, 5)):
            assert run_simulations(configs, jobs=jobs, chunk_size=chunk) == baseline

    def test_compare_strategies_pool_matches_serial(self, params):
        a = cfg(params, strategy="host", ratio=15, compression=NDP_GZIP1)
        b = cfg(params, strategy="ndp", compression=NDP_GZIP1)
        assert compare_strategies(a, b, seeds=range(4), jobs=1) == compare_strategies(
            a, b, seeds=range(4), jobs=3
        )

    def test_results_in_submission_order(self, params):
        configs = [cfg(params, seed=s) for s in (9, 1, 5)]
        results = run_simulations(configs, jobs=2, chunk_size=1)
        for config, res in zip(configs, results):
            assert res == simulate(config)


class TestEdgeBehaviors:
    def test_empty_seeds_rejected_at_any_job_count(self, params):
        for jobs in (1, 4):
            with pytest.raises(ValueError):
                mc_run(cfg(params), seeds=[], jobs=jobs)

    def test_single_seed_infinite_ci_at_any_job_count(self, params):
        serial = mc_run(cfg(params), seeds=[3], jobs=1)
        pooled = mc_run(cfg(params), seeds=[3], jobs=4)
        assert serial.ci95 == pooled.ci95 == float("inf")
        assert serial.samples == pooled.samples

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_auto_jobs_positive(self):
        assert resolve_jobs(None) >= 1

    def test_empty_config_list(self):
        assert run_simulations([], jobs=4) == ()

    def test_traced_config_runs_inline_and_records(self, params):
        trace = TimelineRecorder()
        run_simulations([cfg(params, trace=trace)], jobs=4)
        assert len(trace.spans) > 0


class TestChunking:
    def test_partition_covers_every_index_once(self):
        for total, jobs, size in ((10, 4, None), (7, 2, 3), (1, 8, None), (33, 4, 16)):
            blocks = chunk_indices(total, jobs, size)
            flat = [i for block in blocks for i in block]
            assert flat == list(range(total))

    def test_zero_total(self):
        assert chunk_indices(0, 4) == []

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            chunk_indices(10, 2, 0)


class TestConfigKey:
    def test_stable_and_seed_sensitive(self, params):
        a = cfg(params, seed=1)
        assert config_key(a) == config_key(cfg(params, seed=1))
        assert config_key(a) != config_key(cfg(params, seed=2))

    def test_every_scenario_knob_changes_the_key(self, params):
        base = cfg(params)
        variants = [
            cfg(params, strategy="host", ratio=2),
            cfg(params, compression=NDP_GZIP1),
            cfg(params, work=params.mtti * 7),
            cfg(params, nvm_capacity=4),
            cfg(params, failure_shape=0.7),
            cfg(params.with_(mtti=params.mtti * 2)),
        ]
        keys = {config_key(v) for v in variants}
        assert config_key(base) not in keys
        assert len(keys) == len(variants)

    def test_trace_excluded_from_key(self, params):
        assert config_key(cfg(params)) == config_key(
            cfg(params, trace=TimelineRecorder())
        )


class TestResultCache:
    def test_second_run_served_from_cache(self, params, tmp_path):
        cache = ResultCache(tmp_path)
        cold = mc_run(cfg(params), seeds=range(4), jobs=1, cache=cache)
        assert cache.hits == 0
        warm = mc_run(cfg(params), seeds=range(4), jobs=1, cache=cache)
        assert cache.hits == 4
        assert cold.samples == warm.samples
        for a, b in zip(cold.results, warm.results):
            assert a == b  # full summary round-trips through JSON

    def test_partial_hit_runs_only_missing_seeds(self, params, tmp_path):
        cache = ResultCache(tmp_path)
        mc_run(cfg(params), seeds=[0, 1], jobs=1, cache=cache)
        timings: list[ChunkTiming] = []
        res = mc_run(cfg(params), seeds=[0, 1, 2], jobs=1, cache=cache, timings=timings)
        assert cache.hits == 2
        assert sum(t.size for t in timings) == 1  # only seed 2 executed
        assert res.samples == mc_run(cfg(params), seeds=[0, 1, 2]).samples

    def test_cache_keyed_by_config(self, params, tmp_path):
        cache = ResultCache(tmp_path)
        mc_run(cfg(params), seeds=[0], jobs=1, cache=cache)
        mc_run(cfg(params, strategy="host"), seeds=[0], jobs=1, cache=cache)
        assert cache.hits == 0

    def test_corrupt_entry_is_a_miss(self, params, tmp_path):
        cache = ResultCache(tmp_path)
        config = cfg(params, seed=0)
        run_simulations([config], cache=cache)
        path = cache._path(config_key(config))
        path.write_text("{not json")
        assert cache.get(config_key(config)) is None
        # And the runner recomputes rather than failing.
        (result,) = run_simulations([config], cache=cache)
        assert result == simulate(config)

    def test_pool_and_cache_compose(self, params, tmp_path):
        cache = ResultCache(tmp_path)
        pooled = mc_run(cfg(params), seeds=range(6), jobs=3, cache=cache)
        warm = mc_run(cfg(params), seeds=range(6), jobs=3, cache=cache)
        assert pooled.samples == warm.samples
        assert cache.hits == 6


class TestObservability:
    def test_progress_monotone_to_completion(self, params):
        calls = []
        mc_run(
            cfg(params),
            seeds=range(5),
            jobs=2,
            chunk_size=2,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls[-1] == (5, 5)
        dones = [d for d, _ in calls]
        assert dones == sorted(dones)

    def test_chunk_timings_recorded(self, params):
        timings: list[ChunkTiming] = []
        mc_run(cfg(params), seeds=range(4), jobs=2, chunk_size=2, timings=timings)
        assert sum(t.size for t in timings) == 4
        assert all(t.seconds >= 0 and t.worker_pid > 0 for t in timings)
        assert all(t.per_run >= 0 for t in timings)


class TestParallelMap:
    def test_thread_backend_preserves_order(self):
        assert parallel_map(lambda x: x * x, range(10), jobs=4) == [
            x * x for x in range(10)
        ]

    def test_serial_backend(self):
        assert parallel_map(str, [1, 2], jobs=4, backend="serial") == ["1", "2"]

    def test_process_backend(self):
        assert parallel_map(abs, [-1, -2, 3], jobs=2, backend="process") == [1, 2, 3]

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            parallel_map(abs, [1, 2], backend="fibers")


def test_mc_run_keeps_seed_replacement_semantics(params):
    """The config's own seed is irrelevant; each run uses its batch seed."""
    res_a = mc_run(cfg(params, seed=123), seeds=[1, 2], jobs=2)
    res_b = mc_run(cfg(params, seed=456), seeds=[1, 2], jobs=1)
    assert res_a.samples == res_b.samples


def test_simconfig_fields_fully_cover_cache_key(params):
    """A new SimConfig field must participate in keying (or be explicitly
    excluded like ``trace``) — catch silent staleness at the source."""
    keyed = {f.name for f in dataclasses.fields(SimConfig)} - {"trace"}
    import repro.simulation.pool as pool_mod

    body_fields = {
        f.name
        for f in dataclasses.fields(cfg(params))
        if f.name != "trace"
    }
    assert keyed == body_fields
    assert pool_mod.CACHE_SCHEMA >= 1
