"""Multi-writer safety of the on-disk ResultCache.

Prefork service workers share one cache directory, and each worker's
batcher writes from executor threads — so ``put``/``put_many`` run
concurrently in an arbitrary mix of processes and threads.  These tests
hammer that path: no torn reads, no lost entries, no leftover temp
files from name collisions.
"""

import json
import multiprocessing as mp
import threading

import pytest

from repro.core.breakdown import OverheadBreakdown
from repro.simulation.pool import ResultCache
from repro.simulation.simulator import SimulationResult


def _result(tag: int) -> SimulationResult:
    frac = 100.0 / (100.0 + tag)
    return SimulationResult(
        work=100.0,
        wall_time=100.0 + tag,
        efficiency=frac,
        breakdown=OverheadBreakdown(
            compute=frac,
            checkpoint_local=1.0 - frac,
            checkpoint_io=0.0,
            restore_local=0.0,
            restore_io=0.0,
            rerun_local=0.0,
            rerun_io=0.0,
        ),
        failures=tag,
        recoveries_local=0,
        recoveries_io=0,
        io_checkpoints=0,
        local_checkpoints=tag,
        host_stall_time=0.0,
        recoveries_partner=0,
        partner_checkpoints=0,
    )


def _hammer_same_keys(root: str, rounds: int) -> None:
    """Worker: repeatedly put_many the SAME entries everyone else does."""
    cache = ResultCache(root)
    items = [(f"shared-{i:02x}", _result(i)) for i in range(8)]
    for _ in range(rounds):
        cache.put_many(items)


def _write_own_range(root: str, start: int, count: int) -> None:
    cache = ResultCache(root)
    cache.put_many((f"own-{k:04x}", _result(k)) for k in range(start, start + count))


def _leftover_tmp_files(cache: ResultCache) -> list[str]:
    return [str(p) for p in cache.root.rglob("*.tmp.*")]


class TestCrossProcess:
    def test_concurrent_identical_puts_never_corrupt(self, tmp_path):
        """N processes replacing the same keys, while this process reads
        continuously: every read parses and matches the expected value
        (atomic replace means no reader ever sees a partial file)."""
        root = tmp_path / "cache"
        cache = ResultCache(root)
        cache.put("shared-00", _result(0))  # pre-seed so reads must hit

        ctx = mp.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_same_keys, args=(str(root), 60))
            for _ in range(4)
        ]
        for p in procs:
            p.start()
        torn = 0
        while any(p.is_alive() for p in procs):
            got = cache.get("shared-00")
            if got is None or got != _result(0):
                torn += 1
        for p in procs:
            p.join()
            assert p.exitcode == 0
        assert torn == 0
        for i in range(8):
            assert cache.get(f"shared-{i:02x}") == _result(i)
        assert _leftover_tmp_files(cache) == []

    def test_concurrent_distinct_puts_all_land(self, tmp_path):
        root = tmp_path / "cache"
        ctx = mp.get_context("fork")
        procs = [
            ctx.Process(target=_write_own_range, args=(str(root), w * 40, 40))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
            assert p.exitcode == 0
        cache = ResultCache(root)
        hits = cache.get_many(f"own-{k:04x}" for k in range(160))
        assert len(hits) == 160
        assert hits["own-002a"] == _result(0x2A)
        assert _leftover_tmp_files(cache) == []


class TestCrossThread:
    def test_threaded_writers_unique_tmp_names(self, tmp_path):
        """Writers in the same pid must not collide on temp names (the
        name is unique per pid+thread+sequence, not just pid)."""
        root = tmp_path / "cache"
        cache = ResultCache(root)
        errors = []

        def work():
            try:
                for r in range(50):
                    cache.put_many([(f"t-{i}", _result(i)) for i in range(6)])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        for i in range(6):
            assert cache.get(f"t-{i}") == _result(i)
        assert _leftover_tmp_files(cache) == []

    def test_every_entry_file_is_valid_json(self, tmp_path):
        root = tmp_path / "cache"
        ctx = mp.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_same_keys, args=(str(root), 40))
            for _ in range(3)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        cache = ResultCache(root)
        entries = [p for p in cache.root.rglob("*") if p.is_file()]
        assert entries, "stress run wrote nothing"
        for path in entries:
            json.loads(path.read_text())  # raises on a torn write
