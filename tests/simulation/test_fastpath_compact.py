"""Active-set compaction and cross-capacity group fusion: bit-identity.

ISSUE 8 made the fast engine's cost proportional to *live* trajectories:
finished rows are retired out of a running batch once the live fraction
crosses :data:`~repro.simulation.fastpath.COMPACT_THRESHOLD`, and
exact-walker groups fuse mixed ``nvm_capacity`` configs behind rings
padded with inert ``_S_PAD`` slots.  Every driver operation is
elementwise per row, so neither transformation may change a single bit
of any result.  These tests pin:

* matched-seed bit-identity of the compacted walker against the
  uncompacted one (``COMPACT_THRESHOLD = 0.0``) for all four strategies,
* mixed-capacity fused groups against per-capacity batches and against
  the DES oracle,
* the threshold edge cases (every row finishing the same step; a single
  surviving straggler),
* the deterministic sorted group order and the single-group fusion of
  mixed capacities,
* the occupancy/live-fraction observability hooks.
"""

import numpy as np
import pytest

from repro.simulation import SimConfig, simulate_batch
from repro.simulation.fastpath import (
    _LIVE_FRACTION,
    _FastBatch,
    _group_key,
    _group_sort_key,
)
from repro.simulation import fastpath
from repro.simulation.simulator import CRSimulation

ALL_STRATEGIES = (
    dict(strategy="host", ratio=5),
    dict(strategy="io-only"),
    dict(strategy="local-only"),
    dict(strategy="ndp"),
)

#: Non-multiples of tau, spread wide so rows finish at very different
#: iteration counts (the compaction trigger needs real stragglers).
WORKS = (2.3, 5.7, 11.3, 19.7)


def cfg(params, **kw):
    defaults = dict(params=params, strategy="ndp", work=params.tau * 5.3, seed=0)
    defaults.update(kw)
    return SimConfig(**defaults)


def hetero(params, n=16, **kw):
    """``n`` configs with spread-out work targets and distinct seeds."""
    return [
        cfg(params, work=params.tau * WORKS[i % len(WORKS)], seed=50 + i, **kw)
        for i in range(n)
    ]


@pytest.fixture()
def no_compaction(monkeypatch):
    monkeypatch.setattr(fastpath, "COMPACT_THRESHOLD", 0.0)


class TestCompactionBitIdentity:
    """The compacted walker must equal the uncompacted one bit-for-bit."""

    @pytest.mark.parametrize(
        "strat", ALL_STRATEGIES, ids=lambda s: s["strategy"]
    )
    def test_matched_seed_identity_per_strategy(self, params, strat, monkeypatch):
        configs = hetero(params, **strat)
        compacted = simulate_batch(configs)
        monkeypatch.setattr(fastpath, "COMPACT_THRESHOLD", 0.0)
        assert simulate_batch(configs) == compacted

    def test_compaction_actually_engages(self, params):
        """The heterogeneous batch really does shrink mid-run (occupancy
        below 1) and records its live fraction on the histogram."""
        before = sum(cell["count"] for _, cell in _LIVE_FRACTION.samples())
        batch = _FastBatch(hetero(params, n=16))
        batch.run()
        assert 0.0 < batch.occupancy < 1.0
        after = sum(cell["count"] for _, cell in _LIVE_FRACTION.samples())
        assert after > before

    def test_zero_threshold_disables_compaction(self, params, no_compaction):
        batch = _FastBatch(hetero(params, n=8))
        batch.run()
        assert batch.occupancy == 1.0

    def test_partner_configs_compact_identically(self, params, monkeypatch):
        configs = hetero(params, strategy="local-only", partner_every=2)
        compacted = simulate_batch(configs)
        monkeypatch.setattr(fastpath, "COMPACT_THRESHOLD", 0.0)
        assert simulate_batch(configs) == compacted


class TestMixedCapacityFusion:
    """Mixed nvm_capacity configs fuse into one padded-ring walker."""

    CAPS = (1, 2, 3, 5)

    def mixed(self, params, n=16):
        return [
            cfg(
                params,
                work=params.tau * WORKS[i % len(WORKS)],
                seed=80 + i,
                nvm_capacity=self.CAPS[i % len(self.CAPS)],
            )
            for i in range(n)
        ]

    def test_capacity_absent_from_group_key(self, params):
        a = _group_key(cfg(params, nvm_capacity=1))
        b = _group_key(cfg(params, nvm_capacity=5))
        assert a == b

    def test_fused_equals_per_capacity_batches(self, params):
        configs = self.mixed(params)
        fused = simulate_batch(configs)
        for cap in self.CAPS:
            idxs = [i for i, c in enumerate(configs) if c.nvm_capacity == cap]
            split = simulate_batch([configs[i] for i in idxs])
            assert [fused[i] for i in idxs] == split

    def test_fused_matches_the_des_oracle(self, params):
        configs = self.mixed(params, n=8)
        fused = simulate_batch(configs)
        for config, got in zip(configs, fused):
            want = CRSimulation(config).run()
            assert got.failures == want.failures
            assert got.wall_time == want.wall_time
            assert got.host_stall_time == want.host_stall_time
            assert got.io_checkpoints == want.io_checkpoints
            assert got.local_checkpoints == want.local_checkpoints

    def test_single_walker_advances_the_mixed_group(self, params):
        """One _FastBatch holds every capacity: rings padded to the max."""
        batch = _FastBatch(self.mixed(params, n=8))
        assert batch.cap == max(self.CAPS)
        assert sorted(set(batch.cap_arr.tolist())) == sorted(self.CAPS)
        # The pad mask covers exactly the columns past each row's capacity.
        assert batch._pad.sum() == sum(
            max(self.CAPS) - c for c in batch.cap_arr.tolist()
        )

    def test_cap1_rows_still_stall_inside_a_fused_group(self, params):
        """A capacity-1 row fused with bigger rings must keep the DES's
        drain-lock stall behavior (the gate is per-row, not group-wide)."""
        configs = [
            cfg(params, work=params.tau * 7.3, seed=201, nvm_capacity=1),
            cfg(params, work=params.tau * 7.3, seed=202, nvm_capacity=8),
        ]
        fused = simulate_batch(configs)
        for config, got in zip(configs, fused):
            want = CRSimulation(config).run()
            assert got.wall_time == want.wall_time
            assert got.host_stall_time == want.host_stall_time


class TestThresholdEdgeCases:
    def test_all_rows_finish_the_same_step(self, params, monkeypatch):
        """Homogeneous failure-free work: nothing to compact mid-run, the
        terminal retire scatters everything at once."""
        import dataclasses

        inf = dataclasses.replace(params, mtti=float("inf"))
        configs = [cfg(inf, work=inf.tau * 4.3, seed=s) for s in range(6)]
        compacted = simulate_batch(configs)
        monkeypatch.setattr(fastpath, "COMPACT_THRESHOLD", 0.0)
        assert simulate_batch(configs) == compacted

    def test_single_survivor(self, params, monkeypatch):
        """One straggler with 20x the work: the batch compacts down to a
        single row and that row's trajectory is unchanged."""
        configs = [
            cfg(params, work=params.tau * 2.3, seed=s) for s in range(7)
        ] + [cfg(params, work=params.tau * 46.7, seed=99)]
        batch = _FastBatch(configs)
        compacted = batch.run()
        assert batch.occupancy < 0.7  # most iterations ran nearly alone
        monkeypatch.setattr(fastpath, "COMPACT_THRESHOLD", 0.0)
        assert simulate_batch(configs) == compacted

    def test_batch_of_one(self, params):
        (res,) = simulate_batch([cfg(params, seed=5)])
        want = CRSimulation(cfg(params, seed=5)).run()
        assert res.failures == want.failures
        assert res.wall_time == want.wall_time


class TestDeterministicGroupOrder:
    def test_group_sort_key_totally_orders_mixed_batches(self, params):
        configs = [
            cfg(params, strategy="ndp", seed=1),
            cfg(params, strategy="host", ratio=3, seed=2),
            cfg(params, strategy="local-only", seed=3),
            cfg(params, strategy="io-only", seed=4),
            cfg(params, strategy="ndp", pause_ndp_during_local=True, seed=5),
            cfg(params, strategy="local-only", partner_every=2, seed=6),
        ]
        keys = {_group_key(c) for c in configs}
        order = sorted(keys, key=_group_sort_key)
        assert order == sorted(set(keys), key=_group_sort_key)
        assert len(order) == len(keys)  # the sort key separates every group

    def test_results_independent_of_input_order(self, params):
        configs = hetero(params, n=8) + hetero(params, n=8, strategy="host", ratio=5)
        forward = simulate_batch(configs)
        backward = simulate_batch(configs[::-1])
        assert forward == backward[::-1]
