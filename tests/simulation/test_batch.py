"""Monte-Carlo batch statistics and paired comparisons."""

import pytest

from repro.core.configs import NDP_GZIP1, NO_COMPRESSION
from repro.simulation import SimConfig, compare_strategies, mc_run
from repro.simulation.batch import _t95


def cfg(params, **kw):
    defaults = dict(params=params, strategy="ndp", work=params.mtti * 30, seed=0)
    defaults.update(kw)
    return SimConfig(**defaults)


class TestT95:
    def test_exact_table_entries(self):
        assert _t95(1) == 12.706
        assert _t95(20) == 2.086
        assert _t95(30) == 2.042

    def test_gap_uses_nearest_lower_entry(self):
        # The table is sparse above 20: 21..24 fall back to dof 20,
        # 26..29 to dof 25 (conservative: the lower dof's value is larger).
        assert _t95(21) == 2.086
        assert _t95(29) == 2.060

    def test_beyond_table_is_normal_limit(self):
        # Docstring promise: beyond dof 30 the normal 1.96 applies, not
        # the last tabulated value forever.
        assert _t95(31) == 1.96
        assert _t95(1000) == 1.96

    def test_degenerate_dof(self):
        assert _t95(0) == float("inf")


class TestMCRun:
    def test_summary_statistics(self, params):
        res = mc_run(cfg(params), seeds=range(5))
        assert res.n == 5
        assert len(res.samples) == 5
        assert res.mean == pytest.approx(sum(res.samples) / 5)
        assert res.ci95 > 0

    def test_single_seed_infinite_ci(self, params):
        res = mc_run(cfg(params), seeds=[3])
        assert res.ci95 == float("inf")

    def test_seed_overrides_config_seed(self, params):
        res = mc_run(cfg(params, seed=999), seeds=[1, 2])
        # Different seeds must produce different samples.
        assert res.samples[0] != res.samples[1]

    def test_empty_seeds_rejected(self, params):
        with pytest.raises(ValueError):
            mc_run(cfg(params), seeds=[])


class TestPairedComparison:
    def test_ndp_beats_host_significantly(self, params):
        host = cfg(params, strategy="host", ratio=15, compression=NDP_GZIP1)
        ndp = cfg(params, strategy="ndp", compression=NDP_GZIP1)
        comp = compare_strategies(host, ndp, seeds=range(6))
        assert comp.mean_diff > 0.10
        assert comp.significant

    def test_identical_configs_not_significant(self, params):
        a = cfg(params)
        comp = compare_strategies(a, a, seeds=range(4))
        assert comp.mean_diff == 0.0
        assert not comp.significant

    def test_pairing_no_worse_than_unpaired(self, params):
        """The paired difference CI must not exceed the unpaired-difference
        CI (common random numbers can only cancel shared noise)."""
        host = cfg(params, strategy="host", ratio=15, compression=NDP_GZIP1)
        ndp = cfg(params, strategy="ndp", compression=NDP_GZIP1)
        seeds = range(6)
        paired = compare_strategies(host, ndp, seeds=seeds)
        ci_a = mc_run(host, seeds=seeds).ci95
        ci_b = mc_run(ndp, seeds=seeds).ci95
        unpaired_diff_ci = (ci_a**2 + ci_b**2) ** 0.5
        assert paired.ci95_diff <= unpaired_diff_ci * 1.2

    def test_needs_two_seeds(self, params):
        with pytest.raises(ValueError):
            compare_strategies(cfg(params), cfg(params), seeds=[1])

    def test_custom_metric(self, params):
        a = cfg(params, compression=NO_COMPRESSION)
        b = cfg(params, compression=NDP_GZIP1)
        comp = compare_strategies(
            a, b, seeds=range(3), transform=lambda r: float(r.io_checkpoints)
        )
        # Compression drains more checkpoints per unit time.
        assert comp.mean_diff > 0


class TestFailureTraceReplay:
    def test_exact_replay(self, params):
        from repro.simulation import simulate

        times = (1000.0, 2500.0, 7000.0)
        res = simulate(cfg(params, failure_times=times, work=params.mtti * 6))
        assert res.failures == len(times)

    def test_replay_deterministic_regardless_of_seed(self, params):
        from repro.simulation import simulate

        times = (1000.0, 2500.0)
        a = simulate(cfg(params, failure_times=times, seed=1, work=params.mtti * 4))
        b = simulate(cfg(params, failure_times=times, seed=1, work=params.mtti * 4))
        assert a.wall_time == b.wall_time

    def test_trace_validation(self, params):
        with pytest.raises(ValueError):
            cfg(params, failure_times=(5.0, 1.0))
        with pytest.raises(ValueError):
            cfg(params, failure_times=(-1.0,))

    def test_adversarial_schedule_hurts(self, params):
        """Failures placed just before each checkpoint completes maximize
        lost work; the same number of failures spread harmlessly early
        loses less."""
        from repro.simulation import simulate

        cycle = params.cycle_time
        work = params.mtti * 4
        adversarial = tuple((i + 1) * 10 * cycle - 0.5 for i in range(4))
        benign = tuple((i + 1) * 10 * cycle - 0.9 * cycle for i in range(4))
        bad = simulate(cfg(params, failure_times=adversarial, work=work))
        good = simulate(cfg(params, failure_times=benign, work=work))
        assert bad.efficiency < good.efficiency