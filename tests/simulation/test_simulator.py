"""The C/R simulator: conservation laws, counters, strategy semantics."""

import pytest

from repro.core.configs import NDP_GZIP1, NO_COMPRESSION
from repro.simulation import SimConfig, TimelineRecorder, simulate
from repro.simulation.simulator import CRSimulation, default_work


def cfg(params, **kw):
    defaults = dict(params=params, strategy="ndp", work=params.mtti * 40, seed=3)
    defaults.update(kw)
    return SimConfig(**defaults)


class TestConservation:
    @pytest.mark.parametrize("strategy", ["ndp", "host", "io-only", "local-only"])
    def test_accounted_time_equals_wall_time(self, params, strategy):
        sim = CRSimulation(cfg(params, strategy=strategy, ratio=10))
        res = sim.run()
        assert sim.acct.total == pytest.approx(res.wall_time, rel=1e-9)

    def test_compute_time_equals_work_target(self, params):
        sim = CRSimulation(cfg(params))
        res = sim.run()
        # Fresh compute seconds == work target (rerun is counted separately).
        assert sim.acct.seconds["compute"] == pytest.approx(res.work, rel=1e-9)

    def test_efficiency_is_work_over_wall(self, params):
        res = simulate(cfg(params))
        assert res.efficiency == pytest.approx(res.work / res.wall_time)


class TestDeterminism:
    def test_same_seed_same_result(self, params):
        a = simulate(cfg(params, seed=11))
        b = simulate(cfg(params, seed=11))
        assert a.wall_time == b.wall_time
        assert a.failures == b.failures
        assert a.breakdown.as_dict() == b.breakdown.as_dict()

    def test_different_seed_different_failures(self, params):
        a = simulate(cfg(params, seed=1))
        b = simulate(cfg(params, seed=2))
        assert a.wall_time != b.wall_time


class TestFailureInjection:
    def test_failure_count_near_expectation(self, params):
        res = simulate(cfg(params, work=params.mtti * 100, seed=5))
        expected = res.wall_time / params.mtti
        assert res.failures == pytest.approx(expected, rel=0.25)

    def test_no_failures_with_huge_mtti(self, params):
        p = params.with_(mtti=1e12)
        res = simulate(cfg(p, work=5000.0))
        assert res.failures == 0
        assert res.breakdown.rerun == 0.0

    def test_recovery_split_tracks_p_local(self, params):
        p = params.with_(p_local_recovery=0.85)
        res = simulate(cfg(p, work=params.mtti * 200, seed=9))
        frac_io = res.recoveries_io / (res.recoveries_io + res.recoveries_local)
        # Slightly above 15% due to post-I/O-recovery cascades.
        assert 0.10 < frac_io < 0.30


class TestStrategySemantics:
    def test_ndp_never_blocks_host_on_io(self, params):
        sim = CRSimulation(cfg(params, strategy="ndp"))
        sim.run()
        assert sim.acct.seconds["checkpoint_io"] == 0.0

    def test_host_pays_io_checkpoint_time(self, params):
        sim = CRSimulation(cfg(params, strategy="host", ratio=10))
        sim.run()
        assert sim.acct.seconds["checkpoint_io"] > 0.0

    def test_ndp_drains_to_io(self, params):
        res = simulate(cfg(params, strategy="ndp"))
        assert res.io_checkpoints > 0

    def test_local_only_never_touches_io(self, params):
        sim = CRSimulation(cfg(params, strategy="local-only"))
        res = sim.run()
        assert res.io_checkpoints == 0
        assert sim.acct.seconds["checkpoint_io"] == 0.0
        assert sim.acct.seconds["restore_io"] == 0.0

    def test_io_only_never_touches_local(self, params):
        sim = CRSimulation(cfg(params, strategy="io-only", work=params.mtti * 10))
        res = sim.run()
        assert res.local_checkpoints == 0
        assert sim.acct.seconds["checkpoint_local"] == 0.0

    def test_compression_shortens_drain_interval(self, params):
        plain = simulate(cfg(params, compression=NO_COMPRESSION, seed=4))
        comp = simulate(cfg(params, compression=NDP_GZIP1, seed=4))
        # Same wall-ish time, more I/O checkpoints when compressed.
        assert comp.io_checkpoints > plain.io_checkpoints

    def test_ndp_beats_host_efficiency(self, params):
        work = params.mtti * 120
        host = simulate(cfg(params, strategy="host", ratio=15, compression=NDP_GZIP1, work=work))
        ndp = simulate(cfg(params, strategy="ndp", compression=NDP_GZIP1, work=work))
        assert ndp.efficiency > host.efficiency


class TestValidation:
    def test_bad_strategy_rejected(self, params):
        with pytest.raises(ValueError):
            SimConfig(params=params, strategy="quantum", work=100.0)

    def test_bad_ratio_rejected(self, params):
        with pytest.raises(ValueError):
            SimConfig(params=params, ratio=0, work=100.0)

    def test_work_required(self, params):
        with pytest.raises(ValueError):
            SimConfig(params=params, work=0.0)

    def test_default_work_scales_with_mtti(self, params):
        assert default_work(params, 100) == pytest.approx(params.mtti * 100)


class TestTracing:
    def test_trace_contains_expected_lanes(self, params):
        tr = TimelineRecorder(horizon=3000)
        simulate(cfg(params, trace=tr, work=3000.0))
        assert "HOST" in tr.lanes()
        assert "NDP" in tr.lanes()

    def test_host_strategy_has_no_ndp_lane(self, params):
        tr = TimelineRecorder(horizon=3000)
        simulate(cfg(params, strategy="host", ratio=5, trace=tr, work=3000.0))
        assert tr.lanes() == ["HOST"]

    def test_trace_spans_are_ordered_within_lane(self, params):
        tr = TimelineRecorder(horizon=5000)
        simulate(cfg(params, trace=tr, work=5000.0))
        host = [s for s in tr.spans if s.lane == "HOST"]
        starts = [s.start for s in host]
        assert starts == sorted(starts)


class TestRestartOverhead:
    def test_overhead_charged_per_recovery(self, params):
        work = params.mtti * 80
        fast = simulate(cfg(params, work=work, seed=3))
        slow = simulate(
            cfg(params.with_(restart_overhead=120.0), work=work, seed=3)
        )
        assert slow.efficiency < fast.efficiency
        # The extra cost lands in the restore components.
        assert (
            slow.breakdown.restore_local + slow.breakdown.restore_io
            > fast.breakdown.restore_local + fast.breakdown.restore_io
        )

    def test_model_agrees_on_overhead_direction(self, params):
        from repro.core.model import multilevel_ndp

        base = multilevel_ndp(params).efficiency
        with_ovh = multilevel_ndp(params.with_(restart_overhead=120.0)).efficiency
        assert with_ovh < base


class TestFailureDistribution:
    def test_weibull_mean_matches_mtti(self, params):
        res = simulate(cfg(params, failure_shape=0.7, work=params.mtti * 150))
        expected = res.wall_time / params.mtti
        # Renewal with the same mean: failure count tracks wall/MTTI.
        assert res.failures == pytest.approx(expected, rel=0.3)

    def test_shape_one_identical_to_exponential_path(self, params):
        a = simulate(cfg(params, failure_shape=1.0, seed=8))
        b = simulate(cfg(params, seed=8))
        assert a.wall_time == b.wall_time

    def test_bursty_failures_still_complete(self, params):
        res = simulate(cfg(params, failure_shape=0.5, seed=8))
        assert 0 < res.efficiency < 1

    def test_shape_validation(self, params):
        with pytest.raises(ValueError):
            SimConfig(params=params, work=100.0, failure_shape=0.0)


class TestPartnerLevel:
    def test_partner_copies_counted(self, params):
        res = simulate(cfg(params, partner_every=2, p_partner_recovery=0.8))
        assert res.partner_checkpoints == pytest.approx(
            res.local_checkpoints / 2, abs=2
        )

    def test_partner_reduces_io_recoveries(self, params):
        p = params.with_(p_local_recovery=0.6)
        work = params.mtti * 120
        base = simulate(cfg(p, work=work, seed=5))
        with_partner = simulate(
            cfg(p, work=work, seed=5, partner_every=1, p_partner_recovery=0.9)
        )
        assert with_partner.recoveries_io < base.recoveries_io
        assert with_partner.recoveries_partner > 0

    def test_partner_improves_efficiency_at_low_p_local(self, params):
        p = params.with_(p_local_recovery=0.5)
        work = params.mtti * 120
        base = simulate(cfg(p, work=work, seed=5))
        with_partner = simulate(
            cfg(p, work=work, seed=5, partner_every=1, p_partner_recovery=0.9)
        )
        assert with_partner.efficiency > base.efficiency

    def test_zero_cadence_disables(self, params):
        res = simulate(cfg(params, partner_every=0, p_partner_recovery=0.9))
        assert res.partner_checkpoints == 0
        assert res.recoveries_partner == 0

    def test_partner_cost_visible_in_breakdown(self, params):
        # A slow interconnect makes partner copies expensive.
        fast = simulate(cfg(params, partner_every=1, p_partner_recovery=0.5))
        slow = simulate(
            cfg(
                params,
                partner_every=1,
                p_partner_recovery=0.5,
                partner_bandwidth=2e9,
            )
        )
        assert (
            slow.breakdown.checkpoint_local > fast.breakdown.checkpoint_local
        )

    def test_validation(self, params):
        with pytest.raises(ValueError):
            SimConfig(params=params, work=100.0, partner_every=-1)
        with pytest.raises(ValueError):
            SimConfig(params=params, work=100.0, partner_bandwidth=0.0)
        with pytest.raises(ValueError):
            SimConfig(params=params, work=100.0, p_partner_recovery=1.2)


class TestNVMBufferInteraction:
    def test_tiny_buffer_can_stall_host(self, params):
        # Capacity 1 with a slow drain: the only slot stays locked, the
        # host must wait for drain completion.
        slow = params.with_(io_bandwidth=20e6)  # 93 min drain
        res = simulate(
            cfg(slow, nvm_capacity=1, work=params.mtti * 5, seed=2)
        )
        assert res.host_stall_time > 0.0

    def test_ample_buffer_never_stalls(self, params):
        res = simulate(cfg(params, nvm_capacity=16))
        assert res.host_stall_time == 0.0
