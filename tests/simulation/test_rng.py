"""Seeded RNG streams."""

import numpy as np
import pytest

from repro.simulation.rng import StreamFactory, exponential_interarrivals


class TestStreamFactory:
    def test_same_name_same_stream_object(self):
        f = StreamFactory(1)
        assert f.get("x") is f.get("x")

    def test_different_names_independent(self):
        f = StreamFactory(1)
        a = f.get("a").random(8)
        b = f.get("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_factories(self):
        a = StreamFactory(99).get("failures").random(8)
        b = StreamFactory(99).get("failures").random(8)
        assert np.array_equal(a, b)

    def test_stream_independent_of_creation_order(self):
        f1 = StreamFactory(5)
        f1.get("first")
        v1 = f1.get("second").random(4)
        f2 = StreamFactory(5)
        v2 = f2.get("second").random(4)  # created without touching "first"
        assert np.array_equal(v1, v2)

    def test_different_seeds_differ(self):
        a = StreamFactory(1).get("x").random(8)
        b = StreamFactory(2).get("x").random(8)
        assert not np.allclose(a, b)


class TestExponential:
    def test_mean_approximately_correct(self):
        rng = np.random.default_rng(0)
        gaps = exponential_interarrivals(rng, 100.0, 20000)
        assert gaps.mean() == pytest.approx(100.0, rel=0.05)

    def test_all_positive(self):
        rng = np.random.default_rng(0)
        assert (exponential_interarrivals(rng, 5.0, 1000) > 0).all()

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            exponential_interarrivals(rng, 0.0, 10)
        with pytest.raises(ValueError):
            exponential_interarrivals(rng, 1.0, -1)
