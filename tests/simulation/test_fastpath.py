"""DES <-> fastpath equivalence: the vectorized engine against the oracle.

Layered evidence, mirroring the engine's exactness contract:

* the RNG stream-compatibility property the whole design rests on
  (block draws consume named streams identically to scalar draws),
* bit-level equivalence on failure-free runs for all four strategies,
* matched-seed exact equivalence for ``host``/``io-only``/``local-only``
  (and deep-drain ``ndp``), where the closed form is exact,
* the per-slot ring model: ``nvm_capacity`` 1/2/3, the stale-drain
  transient, and drain-lock stalls reproduce the DES bit-for-bit,
* closed-form partner-copy charging: ``partner_every > 0`` is exact on
  every strategy that supports it,
* a paired 95%-CI distribution suite over >= 200 matched seeds for every
  strategy and every breakdown component (the ndp segment walker carries
  sub-ulp drain-clock residuals on a few seeds, so ndp claims >= 80%
  bit-exact plus CI agreement rather than universal bit-exactness),
* Hypothesis property tests over random ``CRParameters``,
* fallback + wiring behavior: only timeline tracing still runs the DES,
  the pool batches fast configs per chunk, the cache keys on the engine.
"""

import dataclasses
import math
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.configs import NDP_GZIP1, NO_COMPRESSION, CRParameters
from repro.simulation import (
    ENGINES,
    ResultCache,
    SimConfig,
    StreamFactory,
    compare_strategies,
    config_key,
    mc_run,
    run_simulations,
    simulate,
    simulate_batch,
    simulate_fast,
    unsupported_reason,
)
from repro.simulation.batch import _t95
from repro.simulation.simulator import CRSimulation
from repro.simulation.trace import TimelineRecorder

#: Work targets deliberately avoid exact multiples of the 150 s interval:
#: at ``work % tau == 0`` the DES's position arithmetic can drift by one
#: ulp at the final boundary and add a zero-length micro-interval, which
#: is a float artifact of the oracle, not an engine divergence.
SHORT, MEDIUM, LONG = 4.3, 20.3, 60.7


def des(config: SimConfig):
    return CRSimulation(config).run()


def assert_results_match(a, b, rel=1e-9):
    """Field-for-field equivalence of two SimulationResults."""
    assert a.failures == b.failures
    assert a.recoveries_local == b.recoveries_local
    assert a.recoveries_io == b.recoveries_io
    assert a.io_checkpoints == b.io_checkpoints
    assert a.local_checkpoints == b.local_checkpoints
    assert a.wall_time == pytest.approx(b.wall_time, rel=rel)
    assert a.efficiency == pytest.approx(b.efficiency, rel=rel)
    for name, val in a.breakdown.as_dict().items():
        assert val == pytest.approx(
            getattr(b.breakdown, name), rel=rel, abs=1e-12
        ), name


class TestStreamCompatibility:
    """Block draws must consume the named streams exactly like scalars."""

    def test_exponential_block_equals_scalars(self):
        block = StreamFactory(7).get("failures").exponential(1800.0, size=16)
        scalar_rng = StreamFactory(7).get("failures")
        scalars = [scalar_rng.exponential(1800.0) for _ in range(16)]
        assert list(block) == scalars

    def test_weibull_block_equals_scalars(self):
        block = StreamFactory(11).get("failures").weibull(0.7, size=16)
        scalar_rng = StreamFactory(11).get("failures")
        scalars = [scalar_rng.weibull(0.7) for _ in range(16)]
        assert list(block) == scalars

    def test_uniform_block_equals_scalars(self):
        block = StreamFactory(3).get("recovery").random(16)
        scalar_rng = StreamFactory(3).get("recovery")
        scalars = [scalar_rng.random() for _ in range(16)]
        assert list(block) == scalars

    def test_streams_independent_by_name(self):
        f = StreamFactory(5)
        assert not np.allclose(
            f.get("failures").random(4), f.get("recovery").random(4)
        )


def cfg(params, **kw):
    defaults = dict(params=params, strategy="ndp", work=params.mtti * SHORT, seed=0)
    defaults.update(kw)
    return SimConfig(**defaults)


ALL_STRATEGIES = (
    dict(strategy="host", ratio=15, compression=NDP_GZIP1),
    dict(strategy="io-only", compression=NDP_GZIP1),
    dict(strategy="local-only"),
    dict(strategy="ndp", compression=NDP_GZIP1),
)


class TestFailureFreeExact:
    """With mtti = inf the schedule is deterministic: bit-level agreement."""

    @pytest.mark.parametrize(
        "kw", ALL_STRATEGIES, ids=[s["strategy"] for s in ALL_STRATEGIES]
    )
    def test_matches_des(self, kw):
        params = CRParameters(mtti=math.inf)
        config = cfg(params, work=7 * 150.0 + 33.0, **kw)
        assert_results_match(simulate_fast(config), des(config))

    def test_ndp_pause_off(self):
        params = CRParameters(mtti=math.inf)
        config = cfg(
            params,
            work=1234.5,
            strategy="ndp",
            compression=NDP_GZIP1,
            pause_ndp_during_local=False,
        )
        assert_results_match(simulate_fast(config), des(config))


class TestMatchedSeedExact:
    """Strategies with exact closed forms agree run-for-run with the DES."""

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize(
        "kw",
        [
            dict(strategy="host", ratio=15, compression=NDP_GZIP1),
            dict(strategy="host", ratio=3),
            dict(strategy="io-only", compression=NDP_GZIP1),
            dict(strategy="io-only"),
            dict(strategy="local-only"),
            # Deep-drain regime: one drain spans many cycles, so the DES
            # never picks a stale NVM record and the closed form is exact.
            dict(strategy="ndp", compression=NO_COMPRESSION),
        ],
        ids=["host-gzip", "host-r3", "io-gzip", "io-raw", "local", "ndp-raw"],
    )
    def test_matches_des(self, params, kw, seed):
        config = cfg(params, seed=seed, work=params.mtti * MEDIUM, **kw)
        assert_results_match(simulate_fast(config), des(config))

    @pytest.mark.parametrize("shape", [0.7, 1.5])
    def test_weibull_failures(self, params, shape):
        config = cfg(
            params,
            strategy="host",
            ratio=15,
            compression=NDP_GZIP1,
            failure_shape=shape,
            seed=3,
        )
        assert_results_match(simulate_fast(config), des(config))

    def test_replayed_failure_times(self, params):
        times = (100.0, 400.0, 401.0, 2500.0, 7777.7)
        for kw in ALL_STRATEGIES:
            config = cfg(params, failure_times=times, work=6000.0, **kw)
            assert_results_match(simulate_fast(config), des(config))

    def test_restart_overhead_and_odd_interval(self, params):
        p = params.with_(restart_overhead=30.0, local_interval=97.3)
        config = cfg(p, strategy="host", ratio=7, seed=2, work=p.mtti * SHORT)
        assert_results_match(simulate_fast(config), des(config))

    def test_daly_interval(self, params):
        p = params.with_(local_interval=None)
        config = cfg(p, strategy="local-only", seed=4, work=p.mtti * SHORT)
        assert_results_match(simulate_fast(config), des(config))

    def test_batch_equals_singletons(self, params):
        """One vectorized batch == one call per config."""
        configs = [
            cfg(params, seed=s, **kw) for s in range(3) for kw in ALL_STRATEGIES
        ]
        batched = simulate_batch(configs)
        for config, result in zip(configs, batched):
            assert result == simulate_fast(config)


@pytest.mark.slow
class TestPairedDistribution:
    """The ISSUE's acceptance gate: >= 200 matched seeds per strategy, the
    mean efficiency and every breakdown component inside the paired 95% CI.

    For the exact strategies the differences are identically zero; for
    ndp the stale-drain corner leaves tiny, sign-balanced residuals."""

    N_SEEDS = 200

    @pytest.mark.parametrize(
        "kw", ALL_STRATEGIES, ids=[s["strategy"] for s in ALL_STRATEGIES]
    )
    def test_paired_ci(self, params, kw):
        configs = [
            cfg(params, seed=s, work=params.mtti * MEDIUM, **kw)
            for s in range(self.N_SEEDS)
        ]
        fast = simulate_batch(configs)
        slow = [des(c) for c in configs]

        def check(name, f):
            d = np.array([f(a) - f(b) for a, b in zip(slow, fast)])
            ci = _t95(len(d) - 1) * d.std(ddof=1) / math.sqrt(len(d))
            # The 1e-12 floor absorbs last-ulp rounding on the exact
            # strategies, where the per-seed differences are ~1e-16 and
            # one-signed (different but equivalent operation order), so
            # the CI itself collapses to ~0.
            assert abs(d.mean()) <= max(ci, 1e-12), (
                f"{name}: paired mean diff {d.mean():+.3e} outside 95% CI "
                f"{ci:.3e} over {len(d)} seeds"
            )

        check("efficiency", lambda r: r.efficiency)
        for comp in slow[0].breakdown.component_names():
            check(comp, lambda r, c=comp: getattr(r.breakdown, c))

    def test_ndp_mostly_bit_exact(self, params):
        """Not just close in distribution: the bulk of ndp seeds match the
        oracle exactly; only the stale-drain corner diverges."""
        configs = [
            cfg(params, seed=s, compression=NDP_GZIP1, work=params.mtti * MEDIUM)
            for s in range(100)
        ]
        fast = simulate_batch(configs)
        slow = [des(c) for c in configs]
        exact = sum(
            1
            for a, b in zip(fast, slow)
            if a.failures == b.failures
            and a.io_checkpoints == b.io_checkpoints
            and abs(a.wall_time - b.wall_time) < 1e-6 * b.wall_time
        )
        assert exact >= 80


class TestPropertyRandomParameters:
    """Hypothesis: exactness holds over the whole parameter space for the
    strategies with exact closed forms."""

    @given(
        mtti=st.floats(min_value=900.0, max_value=7200.0),
        size=st.floats(min_value=5e9, max_value=50e9),
        bw_l=st.floats(min_value=2e9, max_value=30e9),
        bw_io=st.floats(min_value=100e6, max_value=1e9),
        p=st.floats(min_value=0.0, max_value=1.0),
        ratio=st.integers(min_value=1, max_value=40),
        overhead=st.floats(min_value=0.0, max_value=60.0),
        strategy=st.sampled_from(["host", "io-only", "local-only"]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_exact_strategies_match_des(
        self, mtti, size, bw_l, bw_io, p, ratio, overhead, strategy, seed
    ):
        params = CRParameters(
            mtti=mtti,
            checkpoint_size=size,
            local_bandwidth=bw_l,
            io_bandwidth=bw_io,
            local_interval=None,
            p_local_recovery=p,
            restart_overhead=overhead,
        )
        config = SimConfig(
            params=params,
            strategy=strategy,
            ratio=ratio,
            compression=NDP_GZIP1,
            work=mtti * SHORT,
            seed=seed,
        )
        assert_results_match(simulate_fast(config), des(config), rel=1e-7)

    @given(
        size=st.floats(min_value=5e9, max_value=200e9),
        bw_l=st.floats(min_value=2e9, max_value=30e9),
        p=st.floats(min_value=0.0, max_value=1.0),
        interval=st.floats(min_value=50.0, max_value=500.0),
        pause=st.booleans(),
    )
    @settings(max_examples=20, deadline=None)
    def test_ndp_failure_free_matches_des(self, size, bw_l, p, interval, pause):
        params = CRParameters(
            mtti=math.inf,
            checkpoint_size=size,
            local_bandwidth=bw_l,
            local_interval=interval,
            p_local_recovery=p,
        )
        config = SimConfig(
            params=params,
            strategy="ndp",
            compression=NDP_GZIP1,
            work=interval * 9.7,
            pause_ndp_during_local=pause,
        )
        assert_results_match(simulate_fast(config), des(config), rel=1e-7)


class TestExactRing:
    """The per-slot NVM ring model: small capacities, eviction under
    drain-lock, and the stale-drain transient reproduce the DES."""

    @pytest.mark.parametrize("capacity", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(3))
    def test_small_capacity_matches_des(self, params, capacity, seed):
        config = cfg(
            params,
            compression=NDP_GZIP1,
            nvm_capacity=capacity,
            seed=seed,
            work=params.mtti * MEDIUM,
        )
        assert unsupported_reason(config) is None
        assert_results_match(simulate_fast(config), des(config))

    @pytest.mark.parametrize("seed", range(3))
    def test_stale_drain_transient_matches_des(self, params, seed):
        # A small checkpoint drains faster than the 150 s interval, so the
        # ring accumulates completed records and a failure mid-drain makes
        # ``NVMBuffer.newest_undrained`` pick a *stale* snapshot — the
        # corner the old closed form approximated.
        p = params.with_(checkpoint_size=14e9)
        config = cfg(
            p, compression=NDP_GZIP1, seed=seed, work=p.mtti * MEDIUM
        )
        assert_results_match(simulate_fast(config), des(config))

    def test_capacity_one_pins_host_stall_time(self, params):
        # Deep-drain regime with a single slot: the drain lock blocks every
        # admission, so the writer accumulates real stall seconds.  The old
        # engine hardcoded ``host_stall_time=0.0``.
        config = cfg(
            params,
            compression=NDP_GZIP1,
            nvm_capacity=1,
            seed=1,
            work=params.mtti * MEDIUM,
        )
        fast, slow = simulate_fast(config), des(config)
        assert slow.host_stall_time > 0.0
        assert fast.host_stall_time == pytest.approx(slow.host_stall_time, rel=1e-9)
        assert_results_match(fast, slow)


class TestPartnerExact:
    """Closed-form partner-copy charging consumes the ``"recovery"``
    stream in DES order: matched seeds are bit-exact."""

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize(
        "kw",
        [
            dict(
                strategy="host",
                ratio=15,
                compression=NDP_GZIP1,
                partner_every=1,
                p_partner_recovery=0.9,
            ),
            dict(strategy="host", ratio=15, compression=NDP_GZIP1, partner_every=2),
            dict(strategy="local-only", partner_every=4, p_partner_recovery=0.5),
            dict(
                strategy="ndp",
                compression=NDP_GZIP1,
                partner_every=2,
                p_partner_recovery=0.9,
            ),
        ],
        ids=["host-p1", "host-p2", "local-p4", "ndp-p2"],
    )
    def test_partner_matches_des(self, params, kw, seed):
        config = cfg(params, seed=seed, work=params.mtti * MEDIUM, **kw)
        assert unsupported_reason(config) is None
        assert_results_match(simulate_fast(config), des(config))

    def test_partner_recoveries_exercised(self, params):
        """The equivalence above must actually cover partner restores."""
        configs = [
            cfg(
                params,
                seed=s,
                strategy="host",
                ratio=15,
                compression=NDP_GZIP1,
                partner_every=1,
                p_partner_recovery=0.9,
                work=params.mtti * MEDIUM,
            )
            for s in range(3)
        ]
        fast = simulate_batch(configs)
        assert sum(r.recoveries_partner for r in fast) > 0
        assert sum(r.partner_checkpoints for r in fast) > 0
        for config, got in zip(configs, fast):
            want = des(config)
            assert got.recoveries_partner == want.recoveries_partner
            assert got.partner_checkpoints == want.partner_checkpoints


class TestDegenerateAccounting:
    """ISSUE satellite: degenerate state must fail exactly like the DES
    instead of yielding NaN/inf breakdowns."""

    def _drained_batch(self, params):
        from repro.simulation.fastpath import _DONE, _FastBatch

        batch = _FastBatch([cfg(params, strategy="local-only", work=1.0)])
        batch.state[:] = _DONE
        batch.acct[:] = 0.0
        return batch

    def test_zero_wall_time_raises_like_des(self, params):
        batch = self._drained_batch(params)
        batch.t[:] = 0.0
        with pytest.raises(ZeroDivisionError):
            batch.run()

    def test_empty_accounting_raises_like_des(self, params):
        batch = self._drained_batch(params)
        batch.t[:] = 5.0
        with pytest.raises(ValueError, match="no time accounted"):
            batch.run()


class TestBatchTraceClock:
    """ISSUE satellite: the batch span must use one clock for both
    endpoints so it aligns with the rest of the monotonic timeline."""

    def test_batch_span_brackets_on_monotonic(self, params):
        from repro.obs import trace as obs_trace

        obs_trace.disable()
        tracer = obs_trace.configure()
        try:
            t0 = time.monotonic()
            simulate_batch([cfg(params, seed=0, work=params.mtti * SHORT)])
            t1 = time.monotonic()
            recs = [r for r in tracer.records if r["lane"] == "fastpath"]
            assert len(recs) == 1
            assert t0 <= recs[0]["start"] <= recs[0]["end"] <= t1
        finally:
            obs_trace.disable()


class TestFallbacks:
    """Only timeline tracing still needs the event-level DES."""

    def test_trace_falls_back(self, params):
        recorder = TimelineRecorder()
        config = cfg(params, trace=recorder, work=params.mtti * 2.3)
        reason = unsupported_reason(config)
        assert reason is not None and "tracing" in reason
        result = simulate_batch([config])[0]
        assert recorder.spans, "fallback must feed the trace recorder"
        assert result == des(dataclasses.replace(config, trace=None))

    def test_partner_is_supported(self, params):
        config = cfg(params, strategy="host", ratio=15, partner_every=2)
        assert unsupported_reason(config) is None

    def test_tiny_nvm_is_supported(self, params):
        for capacity in (1, 2):
            config = cfg(params, compression=NDP_GZIP1, nvm_capacity=capacity)
            assert unsupported_reason(config) is None

    def test_supported_config_has_no_reason(self, params):
        assert unsupported_reason(cfg(params)) is None

    def test_mixed_batch_preserves_order(self, params):
        recorder = TimelineRecorder()
        configs = [
            cfg(params, seed=0),
            cfg(params, seed=1, partner_every=2, strategy="host", ratio=15),
            cfg(params, seed=2, strategy="local-only"),
            cfg(params, seed=3, trace=recorder),
        ]
        results = simulate_batch(configs)
        for config, result in zip(configs, results):
            if unsupported_reason(config) is None:
                assert result == simulate_fast(config)
            else:
                assert result == des(dataclasses.replace(config, trace=None))


class TestEngineWiring:
    def test_engines_constant(self):
        assert ENGINES == ("des", "fast")

    def test_simconfig_rejects_unknown_engine(self, params):
        with pytest.raises(ValueError, match="engine"):
            cfg(params, engine="warp")

    def test_simulate_dispatches_on_engine(self, params):
        config = cfg(params, strategy="host", ratio=15, seed=5)
        assert simulate(dataclasses.replace(config, engine="fast")) == simulate_fast(
            config
        )
        assert simulate(config) == des(config)

    def test_pool_batches_fast_engine_deterministically(self, params):
        configs = [
            cfg(params, seed=s, engine="fast", **kw)
            for s in range(4)
            for kw in ALL_STRATEGIES
        ]
        baseline = run_simulations(configs, jobs=1)
        assert baseline == tuple(simulate_batch(configs))
        for jobs, chunk in ((1, 3), (2, 5)):
            assert run_simulations(configs, jobs=jobs, chunk_size=chunk) == baseline

    def test_mc_run_engine_override(self, params):
        config = cfg(params, strategy="host", ratio=15)
        fast = mc_run(config, seeds=range(6), engine="fast")
        slow = mc_run(config, seeds=range(6), engine="des")
        # host is exact: the override changes the engine, not the answer.
        assert fast.samples == pytest.approx(slow.samples, rel=1e-9)

    def test_compare_strategies_engine_override(self, params):
        a = cfg(params, strategy="host", ratio=15, compression=NDP_GZIP1)
        b = cfg(params, strategy="local-only")
        fast = compare_strategies(a, b, seeds=range(4), engine="fast")
        slow = compare_strategies(a, b, seeds=range(4), engine="des")
        assert fast.mean_diff == pytest.approx(slow.mean_diff, rel=1e-9)


class TestCacheKeysOnEngine:
    """ISSUE regression: cached DES results must never serve fastpath runs."""

    def test_config_key_differs_by_engine(self, params):
        config = cfg(params)
        assert config_key(config) != config_key(
            dataclasses.replace(config, engine="fast")
        )

    def test_flipping_engine_misses_cache(self, params, tmp_path):
        cache = ResultCache(tmp_path)
        config = cfg(params, strategy="host", ratio=15)
        run_simulations([config], cache=cache)
        assert (cache.hits, cache.misses) == (0, 1)
        run_simulations([config], cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        fast_config = dataclasses.replace(config, engine="fast")
        run_simulations([fast_config], cache=cache)
        assert (cache.hits, cache.misses) == (1, 2), "engine flip must miss"
        run_simulations([fast_config], cache=cache)
        assert (cache.hits, cache.misses) == (2, 2)
