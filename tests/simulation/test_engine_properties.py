"""Property-based tests of the DES engine on randomized process graphs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import Environment, Interrupt


@given(
    delays=st.lists(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=6),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=100, deadline=None)
def test_property_sequential_timeouts_sum(delays):
    """Each process finishes at the sum of its delays; the clock ends at
    the maximum over processes."""
    env = Environment()
    finish = {}

    def make(idx, seq):
        def proc():
            for d in seq:
                yield env.timeout(d)
            finish[idx] = env.now

        return proc

    for i, seq in enumerate(delays):
        env.process(make(i, seq)())
    env.run()
    for i, seq in enumerate(delays):
        assert finish[i] == pytest.approx(sum(seq))
    assert env.now == pytest.approx(max(sum(s) for s in delays))


@given(
    n=st.integers(min_value=1, max_value=20),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=60, deadline=None)
def test_property_event_callbacks_fire_once(n, seed):
    """Every triggered event delivers exactly one resume per waiter."""
    import random

    rng = random.Random(seed)
    env = Environment()
    events = [env.event() for _ in range(n)]
    resumed = []

    def waiter(i):
        def proc():
            value = yield events[i]
            resumed.append((i, value))

        return proc

    for i in range(n):
        env.process(waiter(i)())
    order = list(range(n))
    rng.shuffle(order)

    def trigger():
        for i in order:
            yield env.timeout(1.0)
            events[i].succeed(i * 10)

    env.process(trigger())
    env.run()
    assert sorted(resumed) == [(i, i * 10) for i in range(n)]


@given(
    work=st.floats(min_value=10.0, max_value=1000.0),
    interrupts=st.lists(
        st.floats(min_value=0.5, max_value=999.0), min_size=0, max_size=10, unique=True
    ),
)
@settings(max_examples=100, deadline=None)
def test_property_interrupted_work_conserves_time(work, interrupts):
    """A process that re-enters its wait after each interrupt finishes at
    exactly its nominal duration, regardless of the interrupt schedule."""
    env = Environment()
    interrupts = sorted(t for t in interrupts if t < work)
    finish = []

    def victim():
        remaining = work
        while remaining > 1e-12:
            start = env.now
            try:
                yield env.timeout(remaining)
                remaining = 0.0
            except Interrupt:
                remaining -= env.now - start
        finish.append(env.now)

    v = env.process(victim())

    def attacker():
        prev = 0.0
        for t in interrupts:
            yield env.timeout(t - prev)
            prev = t
            v.interrupt()

    env.process(attacker())
    env.run()
    assert finish and finish[0] == pytest.approx(work, rel=1e-9)


@given(
    st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=2, max_size=8)
)
@settings(max_examples=60, deadline=None)
def test_property_any_of_fires_at_minimum(delays):
    env = Environment()
    observed = []

    def proc():
        yield env.any_of([env.timeout(d) for d in delays])
        observed.append(env.now)

    env.process(proc())
    env.run()
    assert observed[0] == pytest.approx(min(delays))


@given(
    st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=2, max_size=8)
)
@settings(max_examples=60, deadline=None)
def test_property_all_of_fires_at_maximum(delays):
    env = Environment()
    observed = []

    def proc():
        yield env.all_of([env.timeout(d) for d in delays])
        observed.append(env.now)

    env.process(proc())
    env.run()
    assert observed[0] == pytest.approx(max(delays))
