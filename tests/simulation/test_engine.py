"""The discrete-event engine: events, timeouts, processes, interrupts."""

import pytest

from repro.simulation.engine import AllOf, AnyOf, Environment, Event, Interrupt


class TestEventsAndTimeouts:
    def test_timeout_advances_clock(self):
        env = Environment()
        env.process(iter([env.timeout(5.0)]))
        env.run()
        assert env.now == 5.0

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_event_value_passed_to_waiter(self):
        env = Environment()
        evt = env.event()
        got = []

        def proc():
            got.append((yield evt))

        env.process(proc())
        evt.succeed("payload")
        env.run()
        assert got == ["payload"]

    def test_double_trigger_rejected(self):
        env = Environment()
        evt = env.event()
        evt.succeed()
        with pytest.raises(RuntimeError):
            evt.succeed()

    def test_failed_event_raises_in_process(self):
        env = Environment()
        evt = env.event()
        seen = []

        def proc():
            try:
                yield evt
            except RuntimeError as exc:
                seen.append(str(exc))

        env.process(proc())
        evt.fail(RuntimeError("boom"))
        env.run()
        assert seen == ["boom"]


class TestProcesses:
    def test_sequential_timeouts(self):
        env = Environment()
        marks = []

        def proc():
            yield env.timeout(1.0)
            marks.append(env.now)
            yield env.timeout(2.0)
            marks.append(env.now)

        env.process(proc())
        env.run()
        assert marks == [1.0, 3.0]

    def test_process_return_value_via_join(self):
        env = Environment()

        def child():
            yield env.timeout(1.0)
            return 42

        def parent(results):
            value = yield env.process(child())
            results.append(value)

        results = []
        env.process(parent(results))
        env.run()
        assert results == [42]

    def test_yielding_non_event_is_error(self):
        env = Environment()

        def bad():
            yield 17

        proc = env.process(bad())
        with pytest.raises(TypeError):
            env.run(proc)

    def test_exception_in_process_propagates_through_run(self):
        env = Environment()

        def bad():
            yield env.timeout(1.0)
            raise ValueError("kaput")

        proc = env.process(bad())
        with pytest.raises(ValueError, match="kaput"):
            env.run(proc)

    def test_run_until_time_leaves_future_events_queued(self):
        env = Environment()
        marks = []

        def proc():
            yield env.timeout(10.0)
            marks.append("late")

        env.process(proc())
        env.run(until=5.0)
        assert marks == [] and env.now == 5.0
        env.run()
        assert marks == ["late"]

    def test_run_until_event_raises_if_queue_drains(self):
        env = Environment()
        orphan = env.event()  # never triggered
        with pytest.raises(RuntimeError, match="drained"):
            env.run(orphan)


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()
        causes = []

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as intr:
                causes.append((env.now, intr.cause))

        v = env.process(victim())

        def attacker():
            yield env.timeout(3.0)
            v.interrupt("failure-7")

        env.process(attacker())
        env.run()
        assert causes == [(3.0, "failure-7")]

    def test_interrupt_detaches_from_target(self):
        # After an interrupt, the original timeout firing must not resume
        # the process a second time.
        env = Environment()
        resumed = []

        def victim():
            try:
                yield env.timeout(10.0)
                resumed.append("timeout")
            except Interrupt:
                resumed.append("interrupt")
            yield env.timeout(50.0)
            resumed.append("done")

        v = env.process(victim())

        def attacker():
            yield env.timeout(1.0)
            v.interrupt()

        env.process(attacker())
        env.run()
        assert resumed == ["interrupt", "done"]
        assert env.now == 51.0

    def test_interrupt_finished_process_is_noop(self):
        env = Environment()

        def quick():
            yield env.timeout(1.0)

        p = env.process(quick())
        env.run()
        p.interrupt()  # must not raise

    def test_interrupted_process_can_reenter_wait(self):
        env = Environment()
        log = []

        def victim():
            remaining = 10.0
            while remaining > 0:
                start = env.now
                try:
                    yield env.timeout(remaining)
                    remaining = 0.0
                except Interrupt:
                    remaining -= env.now - start
                    log.append(env.now)
            log.append(("finished", env.now))

        v = env.process(victim())

        def attacker():
            yield env.timeout(4.0)
            v.interrupt()

        env.process(attacker())
        env.run()
        assert log == [4.0, ("finished", 10.0)]


class TestCombinators:
    def test_all_of_waits_for_every_event(self):
        env = Environment()
        done = []

        def proc():
            yield env.all_of([env.timeout(2.0), env.timeout(5.0)])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [5.0]

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        done = []

        def proc():
            yield env.all_of([])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [0.0]

    def test_any_of_fires_on_first(self):
        env = Environment()
        done = []

        def proc():
            yield env.any_of([env.timeout(7.0), env.timeout(3.0)])
            done.append(env.now)

        env.process(proc())
        env.run()
        assert done == [3.0]


class TestDeterminism:
    def test_same_time_events_fire_in_schedule_order(self):
        env = Environment()
        order = []

        def make(tag):
            def proc():
                yield env.timeout(1.0)
                order.append(tag)

            return proc

        for tag in ("a", "b", "c"):
            env.process(make(tag)())
        env.run()
        assert order == ["a", "b", "c"]
