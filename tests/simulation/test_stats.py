"""Time accounting and simulation result structures."""

import pytest

from repro.simulation.stats import TimeAccounting


class TestTimeAccounting:
    def test_accumulates_by_category(self):
        acct = TimeAccounting()
        acct.add("compute", 10.0)
        acct.add("compute", 5.0)
        acct.add("rerun_io", 5.0)
        assert acct.seconds["compute"] == 15.0
        assert acct.total == 20.0

    def test_unknown_category_rejected(self):
        with pytest.raises(KeyError):
            TimeAccounting().add("coffee", 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimeAccounting().add("compute", -0.1)

    def test_breakdown_fractions(self):
        acct = TimeAccounting()
        acct.add("compute", 80.0)
        acct.add("checkpoint_local", 20.0)
        b = acct.breakdown()
        assert b.compute == pytest.approx(0.8)
        assert b.checkpoint_local == pytest.approx(0.2)
        assert b.total == pytest.approx(1.0)

    def test_empty_breakdown_rejected(self):
        with pytest.raises(ValueError):
            TimeAccounting().breakdown()
