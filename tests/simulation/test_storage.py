"""NVM circular-buffer semantics (Section 4.2.1/4.2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.storage import CheckpointRecord, NVMBuffer


def rec(i, done=True):
    return CheckpointRecord(ckpt_id=i, position=float(i), local_done=float(i) if done else None)


class TestAdmission:
    def test_fifo_eviction_when_full(self):
        buf = NVMBuffer(2)
        buf.admit(rec(1))
        buf.admit(rec(2))
        evicted = buf.admit(rec(3))
        assert [r.ckpt_id for r in evicted] == [1]
        assert [r.ckpt_id for r in buf.records] == [2, 3]

    def test_locked_checkpoint_survives_eviction(self):
        buf = NVMBuffer(2)
        r1 = rec(1)
        buf.admit(r1)
        buf.admit(rec(2))
        buf.lock(r1)
        evicted = buf.admit(rec(3))
        assert [r.ckpt_id for r in evicted] == [2]
        assert r1 in buf.records

    def test_all_locked_raises_buffererror(self):
        buf = NVMBuffer(1)
        r1 = rec(1)
        buf.admit(r1)
        buf.lock(r1)
        assert not buf.can_accept()
        with pytest.raises(BufferError):
            buf.admit(rec(2))
        assert buf.stall_evictions_denied == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            NVMBuffer(0)


class TestQueries:
    def test_latest_completed_ignores_in_flight(self):
        buf = NVMBuffer(4)
        buf.admit(rec(1))
        buf.admit(rec(2, done=False))
        latest = buf.latest_completed(at=100.0)
        assert latest.ckpt_id == 1

    def test_latest_completed_respects_time(self):
        buf = NVMBuffer(4)
        buf.admit(rec(5))  # local_done = 5.0
        assert buf.latest_completed(at=4.0) is None
        assert buf.latest_completed(at=5.0).ckpt_id == 5

    def test_newest_undrained_prefers_newest(self):
        buf = NVMBuffer(4)
        buf.admit(rec(1))
        buf.admit(rec(2))
        assert buf.newest_undrained().ckpt_id == 2

    def test_newest_undrained_skips_drained_and_locked(self):
        buf = NVMBuffer(4)
        r1, r2, r3 = rec(1), rec(2), rec(3)
        for r in (r1, r2, r3):
            buf.admit(r)
        r3.io_done = 10.0
        buf.lock(r2)
        assert buf.newest_undrained() is r1


class TestLocking:
    def test_double_lock_rejected(self):
        buf = NVMBuffer(2)
        r = rec(1)
        buf.admit(r)
        buf.lock(r)
        with pytest.raises(ValueError):
            buf.lock(r)

    def test_unlock_requires_locked(self):
        buf = NVMBuffer(2)
        r = rec(1)
        buf.admit(r)
        with pytest.raises(ValueError):
            buf.unlock(r)

    def test_lock_unlock_cycle_restores_evictability(self):
        buf = NVMBuffer(1)
        r = rec(1)
        buf.admit(r)
        buf.lock(r)
        buf.unlock(r)
        assert buf.can_accept()
        buf.admit(rec(2))
        assert [x.ckpt_id for x in buf.records] == [2]


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["admit", "lock_newest", "unlock_all"])),
        min_size=1,
        max_size=60,
    ),
    capacity=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_property_buffer_never_exceeds_capacity(ops, capacity):
    """Under any admit/lock/unlock sequence the buffer respects capacity
    and keeps records in FIFO (ascending ckpt_id) order."""
    buf = NVMBuffer(capacity)
    next_id = 1
    for (op,) in ops:
        if op == "admit":
            if buf.can_accept():
                buf.admit(rec(next_id))
                next_id += 1
        elif op == "lock_newest":
            target = buf.newest_undrained()
            if target is not None:
                buf.lock(target)
        else:
            for r in buf.records:
                if r.locked:
                    buf.unlock(r)
    assert len(buf) <= capacity
    ids = [r.ckpt_id for r in buf.records]
    assert ids == sorted(ids)
