"""simulate_grid: whole strategy x parameter grids in one vectorized pass."""

import dataclasses
import math

import numpy as np
import pytest

from repro.core.configs import NDP_GZIP1, NO_COMPRESSION
from repro.simulation import (
    GridResult,
    ResultCache,
    SimConfig,
    mc_run,
    simulate_fast,
    simulate_grid,
)

SHORT = 4.3


def cfg(params, **kw):
    defaults = dict(
        params=params, strategy="ndp", compression=NDP_GZIP1, work=params.mtti * SHORT, seed=0
    )
    defaults.update(kw)
    return SimConfig(**defaults)


@pytest.fixture
def grid2x2(params):
    return [
        [cfg(params), cfg(params, strategy="local-only", compression=NO_COMPRESSION)],
        [cfg(params, strategy="host", ratio=15), cfg(params, strategy="io-only")],
    ]


class TestShapes:
    def test_2d_grid(self, params, grid2x2):
        g = simulate_grid(grid2x2, seeds=(0, 1, 2))
        assert isinstance(g, GridResult)
        assert g.shape == (2, 2)
        assert g.seeds == (0, 1, 2)
        assert g.efficiency.shape == (2, 2)
        assert g.ci95.shape == (2, 2)
        assert g.results.shape == (2, 2, 3)
        assert g.n_cells == 4
        assert all(arr.shape == (2, 2) for arr in g.breakdown.values())

    def test_scalar_config(self, params):
        g = simulate_grid(cfg(params), seeds=(5,))
        assert g.shape == ()
        assert g.results.shape == (1,)
        assert float(g.ci95) == math.inf  # one draw: no variance information

    def test_flat_list(self, params):
        g = simulate_grid([cfg(params), cfg(params, strategy="io-only")], seeds=(0, 1))
        assert g.shape == (2,)
        assert g.results.shape == (2, 2)

    def test_ragged_grid_rejected(self, params):
        with pytest.raises(ValueError, match="ragged"):
            simulate_grid([[cfg(params)], [cfg(params), cfg(params)]])

    def test_empty_axis_rejected(self, params):
        with pytest.raises(ValueError, match="empty"):
            simulate_grid([])

    def test_empty_seeds_rejected(self, params):
        with pytest.raises(ValueError, match="seed"):
            simulate_grid(cfg(params), seeds=())


class TestEquivalence:
    """One grid pass == one simulate_fast call per (cell, seed)."""

    def test_cellwise_identical(self, params, grid2x2):
        seeds = (0, 1, 2)
        g = simulate_grid(grid2x2, seeds=seeds)
        for i in range(2):
            for j in range(2):
                for k, s in enumerate(seeds):
                    want = simulate_fast(dataclasses.replace(grid2x2[i][j], seed=s))
                    assert g.results[i, j, k] == want, (i, j, s)

    def test_grid_seed_axis_overrides_config_seed(self, params):
        g = simulate_grid(cfg(params, seed=999), seeds=(3,))
        assert g.results[0] == simulate_fast(cfg(params, seed=3))

    def test_stats_match_mc_run(self, params):
        seeds = range(6)
        config = cfg(params, strategy="host", ratio=15)
        g = simulate_grid(config, seeds=seeds)
        mc = mc_run(config, seeds=seeds, engine="fast")
        assert float(g.efficiency) == pytest.approx(mc.mean, rel=1e-12)
        assert float(g.ci95) == pytest.approx(mc.ci95, rel=1e-12)

    def test_engine_override(self, params):
        config = cfg(params, strategy="host", ratio=15, engine="des")
        fast = simulate_grid(config, seeds=(0, 1))  # default forces "fast"
        des = simulate_grid(config, seeds=(0, 1), engine=None)
        # host is exact, so the engine changes the path, not the answer.
        np.testing.assert_allclose(fast.efficiency, des.efficiency, rtol=1e-9)

    def test_jobs_invariant(self, params, grid2x2):
        baseline = simulate_grid(grid2x2, seeds=(0, 1))
        fanned = simulate_grid(grid2x2, seeds=(0, 1), jobs=2)
        assert list(baseline.results.reshape(-1)) == list(fanned.results.reshape(-1))

    def test_cache_roundtrip(self, params, tmp_path):
        cache = ResultCache(tmp_path)
        grid = [cfg(params), cfg(params, strategy="io-only")]
        first = simulate_grid(grid, seeds=(0, 1), cache=cache)
        assert cache.misses == 4
        again = simulate_grid(grid, seeds=(0, 1), cache=cache)
        assert cache.hits == 4
        assert list(first.results.reshape(-1)) == list(again.results.reshape(-1))


class TestDerivedMetrics:
    def test_map_and_mean_of(self, params, grid2x2):
        g = simulate_grid(grid2x2, seeds=(0, 1))
        fails = g.map(lambda r: r.failures)
        assert fails.shape == (2, 2, 2)
        np.testing.assert_allclose(g.mean_of(lambda r: r.failures), fails.mean(axis=-1))

    def test_breakdown_components_sum_to_one(self, params, grid2x2):
        g = simulate_grid(grid2x2, seeds=(0, 1))
        total = sum(g.breakdown.values())
        np.testing.assert_allclose(total, np.ones((2, 2)), rtol=1e-9)

    def test_efficiency_is_seed_mean(self, params):
        g = simulate_grid(cfg(params), seeds=(0, 1, 2, 3))
        effs = [r.efficiency for r in g.results.reshape(-1)]
        assert float(g.efficiency) == pytest.approx(np.mean(effs), rel=1e-12)
