"""The processor-sharing bandwidth resource."""

import pytest

from repro.simulation.bandwidth import SharedBandwidth
from repro.simulation.engine import Environment


def run_transfers(capacity, schedule):
    """Run transfers per ``schedule`` = [(start_time, nbytes)]; returns
    completion times in schedule order."""
    env = Environment()
    pipe = SharedBandwidth(env, capacity)
    done_times = [None] * len(schedule)

    def starter(i, at, nbytes):
        def proc():
            if at > 0:
                yield env.timeout(at)
            xfer = pipe.start(nbytes)
            yield xfer.done
            done_times[i] = env.now

        return proc

    procs = [env.process(starter(i, at, nb)()) for i, (at, nb) in enumerate(schedule)]
    env.run(env.all_of(procs))
    return done_times


class TestSingleTransfer:
    def test_full_rate_when_alone(self):
        (t,) = run_transfers(100.0, [(0.0, 1000.0)])
        assert t == pytest.approx(10.0)

    def test_zero_bytes_completes_immediately(self):
        env = Environment()
        pipe = SharedBandwidth(env, 100.0)
        xfer = pipe.start(0.0)
        assert xfer.done.triggered

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            SharedBandwidth(env, 0.0)
        pipe = SharedBandwidth(env, 10.0)
        with pytest.raises(ValueError):
            pipe.start(-1.0)


class TestFairSharing:
    def test_two_equal_transfers_halve_rate(self):
        times = run_transfers(100.0, [(0.0, 1000.0), (0.0, 1000.0)])
        # Both share 50 B/s -> 20 s each.
        assert times[0] == pytest.approx(20.0)
        assert times[1] == pytest.approx(20.0)

    def test_late_joiner_slows_first(self):
        # A: 1000 B from t=0; B: 1000 B from t=5.
        # A runs alone 5 s (500 B done), then shares: 500 B at 50 B/s = 10 s
        # -> A done at 15.  B: 500 left when A finishes, then full rate:
        # at t=15 B has moved 500; remaining 500 at 100 B/s -> done at 20.
        times = run_transfers(100.0, [(0.0, 1000.0), (5.0, 1000.0)])
        assert times[0] == pytest.approx(15.0)
        assert times[1] == pytest.approx(20.0)

    def test_short_transfer_departs_and_rate_recovers(self):
        # A: 2000 B, B: 100 B both at t=0.  B finishes at 2 s (50 B/s);
        # A then has 1900 B at full rate: 2 + 19 = 21 s.
        times = run_transfers(100.0, [(0.0, 2000.0), (0.0, 100.0)])
        assert times[1] == pytest.approx(2.0)
        assert times[0] == pytest.approx(21.0)

    def test_aggregate_throughput_conserved(self):
        times = run_transfers(100.0, [(0.0, 500.0), (0.0, 500.0), (0.0, 500.0)])
        # Total 1500 B at 100 B/s aggregate -> last completion at 15 s.
        assert max(times) == pytest.approx(15.0)

    def test_many_concurrent(self):
        n = 20
        times = run_transfers(100.0, [(0.0, 100.0)] * n)
        assert max(times) == pytest.approx(n * 100.0 / 100.0)


class TestAbort:
    def test_abort_fails_done_event(self):
        env = Environment()
        pipe = SharedBandwidth(env, 100.0)
        outcome = []

        def proc():
            xfer = pipe.start(1000.0)
            env.process(aborter(xfer)())
            try:
                yield xfer.done
                outcome.append("done")
            except InterruptedError:
                outcome.append(("aborted", env.now))

        def aborter(xfer):
            def p():
                yield env.timeout(3.0)
                pipe.abort(xfer)

            return p

        env.run(env.process(proc()))
        assert outcome == [("aborted", 3.0)]

    def test_abort_releases_bandwidth(self):
        env = Environment()
        pipe = SharedBandwidth(env, 100.0)
        done_at = []

        def survivor():
            xfer = pipe.start(1000.0)
            yield xfer.done
            done_at.append(env.now)

        def victim():
            xfer = pipe.start(10_000.0)
            yield env.timeout(5.0)
            pipe.abort(xfer)

        p1 = env.process(survivor())
        env.process(victim())
        env.run(p1)
        # Survivor: 5 s at 50 B/s (250 B), then 750 B at 100 B/s = 7.5 s.
        assert done_at == [pytest.approx(12.5)]

    def test_abort_completed_transfer_is_noop(self):
        env = Environment()
        pipe = SharedBandwidth(env, 100.0)
        xfer = pipe.start(0.0)
        pipe.abort(xfer)  # must not raise


class TestAccounting:
    def test_bytes_moved_tracks_completions(self):
        env = Environment()
        pipe = SharedBandwidth(env, 100.0)

        def proc():
            yield pipe.start(1000.0).done

        env.run(env.process(proc()))
        assert pipe.bytes_moved == pytest.approx(1000.0, rel=1e-6)

    def test_no_livelock_on_float_dust(self):
        """Regression: remainders of order eps*nbytes must complete rather
        than scheduling sub-ULP horizons forever."""
        env = Environment()
        pipe = SharedBandwidth(env, 1e8)
        results = []

        def proc():
            # Sizes/rates chosen to produce non-terminating binary
            # fractions in the settle arithmetic.
            for nbytes in (3.046e10, 1.1e10, 7.77e9):
                yield pipe.start(nbytes).done
                results.append(env.now)

        env.run(env.process(proc()))
        assert len(results) == 3
