"""The N-node coordinated cluster simulation."""

import pytest

from repro.core.configs import NDP_GZIP1, NO_COMPRESSION
from repro.simulation.cluster import ClusterConfig, simulate_cluster


def run(params, **kw):
    defaults = dict(
        params=params,
        nodes=4,
        compression=NDP_GZIP1,
        work=params.mtti * 60,
        seed=3,
    )
    defaults.update(kw)
    return simulate_cluster(ClusterConfig(**defaults))


class TestBasics:
    def test_completes_and_accounts(self, params):
        res = run(params)
        assert res.efficiency == pytest.approx(res.work / res.wall_time)
        assert 0 < res.efficiency < 1
        assert abs(sum(res.breakdown.values()) - 1.0) < 1e-6

    def test_deterministic(self, params):
        a, b = run(params), run(params)
        assert a.wall_time == b.wall_time
        assert a.failures == b.failures

    def test_drains_reach_io(self, params):
        res = run(params)
        assert res.io_snapshots > 0
        # Every node drains each coordinated checkpoint.
        assert res.io_snapshots >= 4 * 10

    def test_validation(self, params):
        with pytest.raises(ValueError):
            ClusterConfig(params=params, nodes=0, work=100.0)
        with pytest.raises(ValueError):
            ClusterConfig(params=params, nodes=2, work=0.0)


class TestShareInvariance:
    def test_efficiency_independent_of_node_count(self, params):
        """The per-node-share assumption: fixed per-node I/O share =>
        efficiency roughly constant in N."""
        effs = [run(params, nodes=n, seed=9).efficiency for n in (1, 4, 8)]
        assert max(effs) - min(effs) < 0.06

    def test_matches_per_node_model(self, params):
        from repro.core.model import multilevel_ndp

        res = run(params, nodes=4, work=params.mtti * 150)
        model = multilevel_ndp(
            params, NDP_GZIP1, rerun_accounting="staleness", pause_during_local=False
        )
        assert res.efficiency == pytest.approx(model.efficiency, abs=0.07)


class TestContention:
    def test_pipe_near_saturated_without_compression(self, params):
        # Uncompressed 112 GB drains at 100 MB/s/node shares take ~1120 s
        # per ~157 s cycle: the pipe is the bottleneck and stays busy.
        res = run(params, compression=NO_COMPRESSION)
        assert res.pipe_utilization > 0.9

    def test_compression_relieves_pipe(self, params):
        comp = run(params, compression=NDP_GZIP1)
        plain = run(params, compression=NO_COMPRESSION)
        assert comp.io_snapshots > plain.io_snapshots

    def test_stagger_neutral_for_symmetric_load(self, params):
        a = run(params, nodes=8, stagger=False, seed=4)
        b = run(params, nodes=8, stagger=True, seed=4)
        assert abs(a.efficiency - b.efficiency) < 0.05

    def test_recovery_drain_pause_does_not_hurt(self, params):
        paused = run(params, nodes=8, pause_drains_on_recovery=True, seed=6)
        contending = run(params, nodes=8, pause_drains_on_recovery=False, seed=6)
        # Pausing gives the restore the full pipe; efficiency must not be
        # materially worse than contending.
        assert paused.efficiency > contending.efficiency - 0.05


class TestFailures:
    def test_failure_rate_matches_system_mtti(self, params):
        res = run(params, work=params.mtti * 150)
        expected = res.wall_time / params.mtti
        assert res.failures == pytest.approx(expected, rel=0.3)

    def test_recovery_split(self, params):
        res = run(params, work=params.mtti * 150)
        frac_io = res.recoveries_io / max(res.recoveries_io + res.recoveries_local, 1)
        assert 0.05 < frac_io < 0.35  # configured 15% plus cascades

    def test_no_failures_regime(self, params):
        p = params.with_(mtti=1e12)
        res = run(p, work=5000.0)
        assert res.failures == 0
        assert res.breakdown["rerun_local"] == 0.0
        assert res.breakdown["rerun_io"] == 0.0
