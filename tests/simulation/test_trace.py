"""Timeline recording and ASCII rendering."""

import pytest

from repro.simulation.trace import Span, TimelineRecorder, render_ascii


class TestRecorder:
    def test_emit_and_lane_order(self):
        tr = TimelineRecorder()
        tr.emit("HOST", 0, 10, "compute")
        tr.emit("NDP", 2, 8, "drain")
        tr.emit("HOST", 10, 12, "ckpt-local")
        assert tr.lanes() == ["HOST", "NDP"]
        assert len(tr.spans) == 3

    def test_horizon_clips_and_drops(self):
        tr = TimelineRecorder(horizon=10.0)
        tr.emit("HOST", 5, 20, "compute")  # clipped to 10
        tr.emit("HOST", 15, 20, "compute")  # dropped entirely
        assert len(tr.spans) == 1
        assert tr.spans[0].end == 10.0

    def test_empty_spans_dropped(self):
        tr = TimelineRecorder()
        tr.emit("HOST", 5.0, 5.0, "compute")
        assert tr.spans == []

    def test_span_duration(self):
        assert Span("HOST", 1.0, 4.0, "compute").duration == 3.0


class TestRender:
    def test_majority_glyphs(self):
        tr = TimelineRecorder()
        tr.emit("HOST", 0, 50, "compute")
        tr.emit("HOST", 50, 100, "ckpt-io")
        out = render_ascii(tr, width=10, t_end=100)
        row = out.splitlines()[0]
        assert "=====WWWWW" in row.replace(" ", "")

    def test_empty_recorder(self):
        assert "empty" in render_ascii(TimelineRecorder())

    def test_includes_legend_and_scale(self):
        tr = TimelineRecorder()
        tr.emit("HOST", 0, 10, "compute")
        out = render_ascii(tr, width=20)
        assert "legend:" in out
        assert "t=10" in out

    def test_one_row_per_lane(self):
        tr = TimelineRecorder()
        tr.emit("HOST", 0, 10, "compute")
        tr.emit("NDP", 0, 10, "drain")
        rows = [l for l in render_ascii(tr, width=10).splitlines() if "|" in l]
        assert len(rows) == 2

    def test_zero_end_rejected(self):
        tr = TimelineRecorder()
        tr.emit("HOST", 0, 10, "compute")
        with pytest.raises(ValueError):
            render_ascii(tr, t_end=0.0)


class TestExport:
    def test_records_view(self):
        from repro.simulation.trace import spans_to_records

        tr = TimelineRecorder()
        tr.emit("HOST", 0, 10, "compute", "a")
        (rec,) = spans_to_records(tr)
        assert rec == {"lane": "HOST", "start": 0, "end": 10, "kind": "compute", "label": "a"}

    def test_csv_round_trip(self, tmp_path):
        import csv

        from repro.simulation.trace import write_csv

        tr = TimelineRecorder()
        tr.emit("HOST", 0.0, 10.5, "compute")
        tr.emit("NDP", 2.25, 8.0, "drain", "c3")
        path = tmp_path / "timeline.csv"
        assert write_csv(tr, path) == 2
        with path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows[1]["lane"] == "NDP"
        assert float(rows[1]["start"]) == 2.25
        assert rows[1]["label"] == "c3"

    def test_csv_header_matches_obs_schema(self, tmp_path):
        from repro.obs.trace import SPAN_FIELDS
        from repro.simulation.trace import write_csv

        tr = TimelineRecorder()
        tr.emit("HOST", 0, 1, "compute")
        path = tmp_path / "t.csv"
        write_csv(tr, path)
        header = path.read_text().splitlines()[0]
        assert header == ",".join(SPAN_FIELDS)

    def test_records_validate_against_obs_schema(self):
        from repro.obs.trace import validate_record
        from repro.simulation.trace import spans_to_records

        tr = TimelineRecorder()
        tr.emit("HOST", 0, 10, "compute", "a")
        tr.emit("NDP", 2, 8, "drain")
        for rec in spans_to_records(tr):
            validate_record(rec)

    def test_records_to_spans_round_trip(self):
        from repro.simulation.trace import records_to_spans, spans_to_records

        tr = TimelineRecorder()
        tr.emit("HOST", 0.0, 10.5, "compute", "a")
        tr.emit("NDP", 2.25, 8.0, "drain")
        rebuilt = records_to_spans(spans_to_records(tr))
        assert rebuilt.spans == tr.spans
        assert rebuilt.lanes() == tr.lanes()

    def test_records_to_spans_rejects_bad_record(self):
        from repro.obs.trace import TraceSchemaError
        from repro.simulation.trace import records_to_spans

        with pytest.raises(TraceSchemaError):
            records_to_spans([{"lane": "HOST", "start": 0}])
