"""Storage backends: commit atomicity, retention, locks, throttling."""

import time

import pytest

from repro.ckpt.backends import IOStore, LocalStore, PartnerStore
from repro.ckpt.format import make_header


def files(payloads: dict[int, bytes], ckpt_id: int, app="app"):
    return {
        r: (make_header(app, r, ckpt_id, p, position=float(ckpt_id)), p)
        for r, p in payloads.items()
    }


@pytest.fixture
def data(small_blob):
    return {0: small_blob, 1: small_blob[::-1]}


class TestCommitProtocol:
    def test_write_then_read(self, tmp_path, data):
        store = LocalStore(tmp_path, capacity=4)
        store.write_checkpoint("app", 1, files(data, 1))
        back = store.read_checkpoint("app", 1)
        assert back[0][1] == data[0]
        assert back[1][1] == data[1]
        assert back[1][0].rank == 1

    def test_staged_invisible_until_commit(self, tmp_path, data):
        store = LocalStore(tmp_path, capacity=4)
        h, p = files(data, 1)[0]
        store.stage_rank_file("app", 1, 0, h, p)
        assert store.committed("app") == []
        with pytest.raises(FileNotFoundError):
            store.read_checkpoint("app", 1)
        store.commit_checkpoint("app", 1)
        assert store.committed("app") == [1]

    def test_latest(self, tmp_path, data):
        store = LocalStore(tmp_path, capacity=8)
        assert store.latest("app") is None
        for cid in (1, 2, 5):
            store.write_checkpoint("app", cid, files(data, cid))
        assert store.latest("app") == 5

    def test_apps_isolated(self, tmp_path, data):
        store = LocalStore(tmp_path, capacity=4)
        store.write_checkpoint("a", 1, files(data, 1, app="a"))
        assert store.committed("b") == []

    def test_delete(self, tmp_path, data):
        store = LocalStore(tmp_path, capacity=4)
        store.write_checkpoint("app", 1, files(data, 1))
        store.delete_checkpoint("app", 1)
        assert store.committed("app") == []

    def test_wipe(self, tmp_path, data):
        store = LocalStore(tmp_path, capacity=4)
        store.write_checkpoint("app", 1, files(data, 1))
        store.wipe("app")
        assert store.committed("app") == []

    def test_empty_files_rejected(self, tmp_path):
        store = LocalStore(tmp_path, capacity=4)
        with pytest.raises(ValueError):
            store.write_checkpoint("app", 1, {})


class TestLocalRetention:
    def test_capacity_enforced_fifo(self, tmp_path, data):
        store = LocalStore(tmp_path, capacity=2)
        for cid in (1, 2, 3, 4):
            store.write_checkpoint("app", cid, files(data, cid))
        assert store.committed("app") == [3, 4]

    def test_evicted_checkpoint_directory_removed(self, tmp_path, data):
        store = LocalStore(tmp_path, capacity=1)
        store.write_checkpoint("app", 1, files(data, 1))
        store.write_checkpoint("app", 2, files(data, 2))
        assert not (tmp_path / "app" / "ckpt_00000001").exists()

    def test_locked_checkpoint_survives(self, tmp_path, data):
        store = LocalStore(tmp_path, capacity=2)
        store.write_checkpoint("app", 1, files(data, 1))
        store.lock("app", 1)
        store.write_checkpoint("app", 2, files(data, 2))
        store.write_checkpoint("app", 3, files(data, 3))
        assert 1 in store.committed("app")
        assert 2 not in store.committed("app")

    def test_unlock_triggers_deferred_eviction(self, tmp_path, data):
        store = LocalStore(tmp_path, capacity=1)
        store.write_checkpoint("app", 1, files(data, 1))
        store.lock("app", 1)
        store.write_checkpoint("app", 2, files(data, 2))
        assert store.committed("app") == [1, 2]  # over capacity, 1 locked
        store.unlock("app", 1)
        assert store.committed("app") == [2]

    def test_lock_uncommitted_rejected(self, tmp_path):
        store = LocalStore(tmp_path, capacity=2)
        with pytest.raises(FileNotFoundError):
            store.lock("app", 99)

    def test_capacity_validation(self, tmp_path):
        with pytest.raises(ValueError):
            LocalStore(tmp_path, capacity=0)


class TestPartnerRetention:
    def test_partner_keeps_newest(self, tmp_path, data):
        store = PartnerStore(tmp_path, capacity=2)
        for cid in (1, 2, 3):
            store.write_checkpoint("app", cid, files(data, cid))
        assert store.committed("app") == [2, 3]


class TestIOStore:
    def test_no_retention_limit(self, tmp_path, data):
        store = IOStore(tmp_path)
        for cid in range(1, 7):
            store.write_checkpoint("app", cid, files(data, cid))
        assert len(store.committed("app")) == 6

    def test_bytes_written_counter(self, tmp_path, data):
        store = IOStore(tmp_path)
        store.write_checkpoint("app", 1, files(data, 1))
        assert store.bytes_written == sum(len(p) for p in data.values())

    def test_throttle_slows_writes(self, tmp_path, data):
        fast = IOStore(tmp_path / "fast")
        slow = IOStore(tmp_path / "slow", throttle_bps=200_000)
        t0 = time.perf_counter()
        fast.write_checkpoint("app", 1, files(data, 1))
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow.write_checkpoint("app", 1, files(data, 1))
        t_slow = time.perf_counter() - t0
        expected = sum(len(p) for p in data.values()) / 200_000
        assert t_slow > max(t_fast, 0.8 * expected)

    def test_throttle_validation(self, tmp_path):
        with pytest.raises(ValueError):
            IOStore(tmp_path, throttle_bps=0)
