"""The NDP drain daemon: background offload semantics."""

import time

import pytest

from repro.ckpt.backends import IOStore, LocalStore
from repro.ckpt.format import make_header
from repro.ckpt.ndp_daemon import NDPDrainDaemon
from repro.ckpt.stream import decompress_stream
from repro.compression.codecs import make_codec

GZIP = make_codec("gzip", 1)


def put(local, cid, payloads, app="app"):
    local.write_checkpoint(
        app,
        cid,
        {r: (make_header(app, r, cid, p, position=float(cid)), p) for r, p in payloads.items()},
    )


@pytest.fixture
def stores(tmp_path):
    return LocalStore(tmp_path / "nvm", capacity=4), IOStore(tmp_path / "pfs")


class TestDraining:
    def test_drains_committed_checkpoint(self, stores, small_blob):
        local, io = stores
        put(local, 1, {0: small_blob})
        with NDPDrainDaemon("app", local, io, poll_interval=0.002) as d:
            assert d.wait_idle(10)
        assert io.committed("app") == [1]
        assert io.read_checkpoint("app", 1)[0][1] == small_blob

    def test_compressed_drain_and_codec_header(self, stores, small_blob):
        local, io = stores
        put(local, 1, {0: small_blob})
        with NDPDrainDaemon("app", local, io, codec=GZIP, block_size=4096, poll_interval=0.002) as d:
            assert d.wait_idle(10)
        header, payload = io.read_checkpoint("app", 1)[0]
        assert header.codec == "gzip(1)"
        assert header.uncompressed_size == len(small_blob)
        assert decompress_stream(payload, GZIP) == small_blob

    def test_newest_first_skips_stale(self, stores, small_blob):
        local, io = stores
        # Commit three checkpoints before the daemon starts: it must drain
        # the newest and skip the older two.
        for cid in (1, 2, 3):
            put(local, cid, {0: small_blob})
        with NDPDrainDaemon("app", local, io, poll_interval=0.002) as d:
            assert d.wait_idle(10)
        assert io.committed("app") == [3]
        assert d.stats.checkpoints_drained == 1

    def test_stats_factor(self, stores):
        local, io = stores
        put(local, 1, {0: bytes(100_000)})  # highly compressible
        with NDPDrainDaemon("app", local, io, codec=GZIP, poll_interval=0.002) as d:
            assert d.wait_idle(10)
        assert d.stats.achieved_factor > 0.9
        assert d.stats.bytes_in == 100_000

    def test_multiple_ranks_all_drained(self, stores, small_blob):
        local, io = stores
        put(local, 1, {0: small_blob, 1: small_blob[::-1], 2: bytes(1000)})
        with NDPDrainDaemon("app", local, io, poll_interval=0.002) as d:
            assert d.wait_idle(10)
        assert set(io.read_checkpoint("app", 1)) == {0, 1, 2}

    def test_unlocks_after_drain(self, stores, small_blob):
        local, io = stores
        put(local, 1, {0: small_blob})
        with NDPDrainDaemon("app", local, io, poll_interval=0.002) as d:
            assert d.wait_idle(10)
        assert local.locked("app") == []


class TestBackpressure:
    def test_slow_writer_stalls_producer(self, tmp_path):
        # A bounded 1-slot frame queue, a writer throttled far below the
        # compressor's rate, and an incompressible payload: the compressor
        # must fill the queue, block, and be counted as stalled.
        import numpy as np

        local = LocalStore(tmp_path / "nvm", capacity=4)
        io = IOStore(tmp_path / "pfs", throttle_bps=200_000)
        blob = np.random.default_rng(0).integers(0, 256, 262_144, np.uint8).tobytes()
        put(local, 1, {0: blob})
        with NDPDrainDaemon(
            "app", local, io, codec=GZIP, block_size=65536,
            queue_depth=1, poll_interval=0.002,
        ) as d:
            assert d.wait_idle(60)
        stats = d.stats
        assert stats.checkpoints_drained == 1
        assert stats.stalls > 0
        assert stats.stall_seconds > 0.0

    def test_stage_accounting_consistent(self, stores, small_blob):
        local, io = stores
        put(local, 1, {0: small_blob})
        with NDPDrainDaemon("app", local, io, codec=GZIP, poll_interval=0.002) as d:
            assert d.wait_idle(10)
        stats = d.stats
        # The end-to-end drain stage is charged uncompressed bytes.
        assert stats.drain.bytes == stats.bytes_in == len(small_blob)
        assert stats.compress.bytes == stats.bytes_out
        d = stats.as_dict()
        assert d["stalls"] == 0
        assert d["drain"]["bytes"] == len(small_blob)


class TestPauseResume:
    def test_paused_daemon_does_not_drain(self, stores, small_blob):
        local, io = stores
        d = NDPDrainDaemon("app", local, io, poll_interval=0.002).start()
        d.pause()
        put(local, 1, {0: small_blob})
        time.sleep(0.1)
        assert io.committed("app") == []
        d.resume()
        assert d.wait_idle(10)
        assert io.committed("app") == [1]
        d.stop()

    def test_stop_while_paused(self, stores, small_blob):
        local, io = stores
        d = NDPDrainDaemon("app", local, io).start()
        d.pause()
        d.stop(timeout=5)  # must not hang


class TestLifecycle:
    def test_start_idempotent(self, stores):
        local, io = stores
        d = NDPDrainDaemon("app", local, io).start()
        thread = d._thread
        d.start()
        assert d._thread is thread
        d.stop()

    def test_restartable_after_stop(self, stores, small_blob):
        local, io = stores
        d = NDPDrainDaemon("app", local, io, poll_interval=0.002)
        d.start()
        d.stop()
        put(local, 1, {0: small_blob})
        d.start()
        assert d.wait_idle(10)
        d.stop()
        assert io.committed("app") == [1]

    def test_wait_idle_times_out(self, stores, small_blob):
        local, io = stores
        d = NDPDrainDaemon("app", local, io)  # never started
        put(local, 1, {0: small_blob})
        assert d.wait_idle(timeout=0.1) is False
