"""The multilevel checkpointer orchestrator (host and NDP modes)."""

import pytest

from repro.ckpt.backends import IOStore, LocalStore, PartnerStore
from repro.ckpt.multilevel import MultilevelCheckpointer
from repro.compression.codecs import make_codec

GZIP = make_codec("gzip", 1)


@pytest.fixture
def stores(tmp_path):
    return LocalStore(tmp_path / "nvm", capacity=3), IOStore(tmp_path / "pfs")


def payloads(tag: bytes, ranks=2):
    return {r: tag * 500 + bytes([r]) for r in range(ranks)}


class TestHostMode:
    def test_io_every_controls_ratio(self, stores):
        local, io = stores
        cr = MultilevelCheckpointer("app", local, io, mode="host", io_every=3)
        for i in range(1, 7):
            cr.checkpoint(payloads(b"a"), position=float(i))
        assert io.committed("app") == [3, 6]
        assert local.latest("app") == 6

    def test_host_mode_compression(self, stores, small_blob):
        local, io = stores
        cr = MultilevelCheckpointer(
            "app", local, io, mode="host", codec=GZIP, io_every=1
        )
        cr.checkpoint({0: small_blob})
        header, _ = io.read_checkpoint("app", 1)[0]
        assert header.codec == "gzip(1)"
        res = cr.restart()
        assert res.payloads[0] == small_blob

    def test_no_daemon_in_host_mode(self, stores):
        local, io = stores
        cr = MultilevelCheckpointer("app", local, io, mode="host")
        assert cr.daemon is None
        cr.close()  # no-op, must not raise


class TestNDPMode:
    def test_checkpoints_reach_io_in_background(self, stores, small_blob):
        local, io = stores
        with MultilevelCheckpointer("app", local, io, mode="ndp", codec=GZIP) as cr:
            cr.checkpoint({0: small_blob}, position=1.0)
            assert cr.flush_to_io(30)
        assert io.committed("app") == [1]

    def test_local_copy_uncompressed(self, stores, small_blob):
        local, io = stores
        with MultilevelCheckpointer("app", local, io, mode="ndp", codec=GZIP) as cr:
            cr.checkpoint({0: small_blob})
            header, payload = local.read_checkpoint("app", 1)[0]
            assert header.codec is None
            assert payload == small_blob

    def test_restart_prefers_local(self, stores, small_blob):
        local, io = stores
        with MultilevelCheckpointer("app", local, io, mode="ndp") as cr:
            cr.checkpoint({0: small_blob}, position=9.0)
            res = cr.restart()
        assert res.level == "local"
        assert res.positions[0] == 9.0

    def test_restart_from_io_after_nvm_loss(self, stores, small_blob):
        local, io = stores
        with MultilevelCheckpointer("app", local, io, mode="ndp", codec=GZIP) as cr:
            cr.checkpoint({0: small_blob})
            assert cr.flush_to_io(30)
            local.wipe("app")
            res = cr.restart()
        assert res.level == "io"
        assert res.payloads[0] == small_blob


class TestPartnerLevel:
    def test_partner_every(self, tmp_path, stores):
        local, io = stores
        partner = PartnerStore(tmp_path / "partner", capacity=8)
        cr = MultilevelCheckpointer(
            "app", local, io, partner=partner, mode="host", io_every=10, partner_every=2
        )
        for i in range(1, 6):
            cr.checkpoint(payloads(b"p"))
        assert partner.committed("app") == [2, 4]

    def test_partner_zero_disables(self, tmp_path, stores):
        local, io = stores
        partner = PartnerStore(tmp_path / "partner")
        cr = MultilevelCheckpointer(
            "app", local, io, partner=partner, mode="host", partner_every=0
        )
        cr.checkpoint(payloads(b"p"))
        assert partner.committed("app") == []

    def test_recovery_from_partner(self, tmp_path, stores, small_blob):
        local, io = stores
        partner = PartnerStore(tmp_path / "partner")
        cr = MultilevelCheckpointer(
            "app", local, io, partner=partner, mode="host", io_every=100
        )
        cr.checkpoint({0: small_blob})
        local.wipe("app")
        res = cr.restart()
        assert res.level == "partner"


class TestNumbering:
    def test_ids_resume_after_restart(self, stores, small_blob):
        local, io = stores
        cr1 = MultilevelCheckpointer("app", local, io, mode="host")
        cr1.checkpoint({0: small_blob})
        cr1.checkpoint({0: small_blob})
        # New checkpointer instance (process restart): numbering continues.
        cr2 = MultilevelCheckpointer("app", local, io, mode="host")
        cid = cr2.checkpoint({0: small_blob})
        assert cid == 3

    def test_validation(self, stores):
        local, io = stores
        with pytest.raises(ValueError):
            MultilevelCheckpointer("app", local, io, mode="cloud")
        with pytest.raises(ValueError):
            MultilevelCheckpointer("app", local, io, io_every=0)
        with pytest.raises(ValueError):
            MultilevelCheckpointer("app", local, io, partner_every=-1)

    def test_empty_payloads_rejected(self, stores):
        local, io = stores
        cr = MultilevelCheckpointer("app", local, io, mode="host")
        with pytest.raises(ValueError):
            cr.checkpoint({})
