"""Thread-safety stress tests: host, daemon and readers interleave."""

import threading

import numpy as np
import pytest

from repro.ckpt import IOStore, LocalStore, MultilevelCheckpointer, NoCheckpointError
from repro.compression.codecs import make_codec

GZIP = make_codec("gzip", 1)


class TestHostDaemonInterleave:
    def test_checkpoint_stream_under_live_drain(self, tmp_path):
        """Rapid checkpoints while the daemon drains: no lost updates,
        no manifest corruption, newest always recoverable."""
        local = LocalStore(tmp_path / "nvm", capacity=2)
        io = IOStore(tmp_path / "pfs")
        rng = np.random.default_rng(1)
        with MultilevelCheckpointer("stress", local, io, mode="ndp", codec=GZIP) as cr:
            last_payload = None
            for step in range(1, 21):
                last_payload = rng.integers(0, 8, 30_000, dtype=np.uint8).tobytes()
                cr.checkpoint({0: last_payload}, position=float(step))
            res = cr.restart()
            assert res.ckpt_id == 20
            assert res.payloads[0] == last_payload
            assert cr.flush_to_io(60)
        # Everything on I/O decompresses and verifies.
        for cid in io.committed("stress"):
            io.read_checkpoint("stress", cid, verify=True)

    def test_concurrent_readers_during_writes(self, tmp_path, small_blob):
        """Reader threads hammer restart()/committed() while the host
        writes: every observation is a consistent snapshot."""
        local = LocalStore(tmp_path / "nvm", capacity=3)
        io = IOStore(tmp_path / "pfs")
        errors: list[str] = []
        stop = threading.Event()

        with MultilevelCheckpointer("rw", local, io, mode="ndp", codec=GZIP) as cr:

            def reader():
                while not stop.is_set():
                    try:
                        res = cr.restart()
                        if res.payloads[0] != small_blob:
                            errors.append("payload mismatch")
                    except NoCheckpointError:
                        pass  # before the first commit
                    except Exception as exc:  # noqa: BLE001
                        errors.append(repr(exc))

            threads = [threading.Thread(target=reader) for _ in range(3)]
            for t in threads:
                t.start()
            for step in range(1, 16):
                cr.checkpoint({0: small_blob}, position=float(step))
            stop.set()
            for t in threads:
                t.join(10)
        assert not errors, errors

    def test_parallel_apps_share_stores(self, tmp_path, small_blob):
        """Two applications checkpoint through the same stores without
        cross-talk."""
        local = LocalStore(tmp_path / "nvm", capacity=3)
        io = IOStore(tmp_path / "pfs")
        with MultilevelCheckpointer("app-a", local, io, mode="ndp") as a, \
             MultilevelCheckpointer("app-b", local, io, mode="ndp") as b:

            def drive(cr, tag):
                for step in range(1, 9):
                    cr.checkpoint({0: tag * 2000 + bytes([step])}, position=float(step))

            ta = threading.Thread(target=drive, args=(a, b"A"))
            tb = threading.Thread(target=drive, args=(b, b"B"))
            ta.start()
            tb.start()
            ta.join(30)
            tb.join(30)
            ra, rb = a.restart(), b.restart()
            assert ra.payloads[0].startswith(b"A")
            assert rb.payloads[0].startswith(b"B")
            assert ra.ckpt_id == rb.ckpt_id == 8


class TestDaemonLockDiscipline:
    def test_no_orphaned_locks_after_heavy_churn(self, tmp_path):
        local = LocalStore(tmp_path / "nvm", capacity=2)
        io = IOStore(tmp_path / "pfs")
        rng = np.random.default_rng(3)
        with MultilevelCheckpointer("locks", local, io, mode="ndp", codec=GZIP) as cr:
            for step in range(1, 31):
                cr.checkpoint(
                    {0: rng.integers(0, 8, 10_000, dtype=np.uint8).tobytes()},
                    position=float(step),
                )
            assert cr.flush_to_io(60)
        assert local.locked("locks") == []
        # Retention back within capacity once every lock released.
        assert len(local.committed("locks")) <= 2
