"""The checkpoint inspector / verifier tooling."""

import pytest

from repro.ckpt.backends import IOStore, LocalStore
from repro.ckpt.multilevel import MultilevelCheckpointer
from repro.ckpt.tools import deep_verify, discover_apps, inventory, verify_store
from repro.compression.codecs import make_codec

GZIP = make_codec("gzip", 1)


@pytest.fixture
def populated(tmp_path, small_blob):
    local = LocalStore(tmp_path / "nvm", capacity=4)
    io = IOStore(tmp_path / "pfs")
    with MultilevelCheckpointer("tool", local, io, mode="ndp", codec=GZIP) as cr:
        for step in range(1, 4):
            cr.checkpoint({0: small_blob, 1: small_blob[::-1]}, position=float(step))
            assert cr.flush_to_io(30)
    return local, io, small_blob


class TestInventory:
    def test_lists_committed_checkpoints(self, populated):
        local, io, blob = populated
        infos = inventory("tool", local)
        assert [i.ckpt_id for i in infos] == [1, 2, 3]
        assert all(i.ranks == 2 for i in infos)
        assert all(i.level == "local" for i in infos)
        assert infos[0].position == 1.0
        assert infos[0].codec is None  # local copies are raw

    def test_io_inventory_shows_compression(self, populated):
        _, io, blob = populated
        infos = inventory("tool", io)
        assert all(i.codec == "gzip(1)" for i in infos)
        assert all(i.uncompressed_bytes == 2 * len(blob) for i in infos)
        assert all(0.0 <= i.stored_factor < 1.0 for i in infos)

    def test_unreadable_checkpoint_still_listed(self, populated):
        import shutil

        local, _, _ = populated
        shutil.rmtree(local._ckpt_dir("tool", 2))
        infos = {i.ckpt_id: i for i in inventory("tool", local)}
        assert infos[2].ranks == 0  # flagged, not hidden

    def test_empty_store(self, tmp_path):
        store = LocalStore(tmp_path / "empty", capacity=2)
        assert inventory("nobody", store) == []


class TestVerify:
    def test_healthy_store(self, populated):
        local, io, _ = populated
        for store in (local, io):
            report = verify_store("tool", store)
            assert report.healthy
            assert len(report.ok) == 3
            assert "OK" in report.summary()

    def test_detects_corruption(self, populated):
        local, _, _ = populated
        cdir = local._ckpt_dir("tool", 3)
        f = next(cdir.glob("rank_*.ctx"))
        blob = bytearray(f.read_bytes())
        blob[-1] ^= 0xFF
        f.write_bytes(blob)
        report = verify_store("tool", local)
        assert not report.healthy
        assert 3 in report.bad
        assert "corrupt" in report.bad[3]
        assert report.ok == [1, 2]

    def test_detects_missing_directory(self, populated):
        import shutil

        local, _, _ = populated
        shutil.rmtree(local._ckpt_dir("tool", 1))
        report = verify_store("tool", local)
        assert 1 in report.bad
        assert "missing" in report.bad[1]


class TestDeepVerify:
    def test_recoverable_stack(self, populated):
        local, io, _ = populated
        assert deep_verify("tool", [local, io]) is True

    def test_unrecoverable_after_total_loss(self, populated):
        local, io, _ = populated
        local.wipe("tool")
        io.wipe("tool")
        assert deep_verify("tool", [local, io]) is False


class TestDiscovery:
    def test_discover_apps(self, populated, tmp_path):
        assert discover_apps(tmp_path / "nvm") == ["tool"]
        assert discover_apps(tmp_path / "missing") == []


class TestCLI:
    def test_ls(self, populated, tmp_path, capsys):
        from repro.cli import main

        assert main(["ckpt", "ls", str(tmp_path / "nvm"), str(tmp_path / "pfs")]) == 0
        out = capsys.readouterr().out
        assert "== tool ==" in out
        assert "codec=gzip(1)" in out

    def test_verify_healthy(self, populated, tmp_path, capsys):
        from repro.cli import main

        assert main(["ckpt", "verify", str(tmp_path / "nvm"), str(tmp_path / "pfs")]) == 0
        assert "end-to-end recoverable: True" in capsys.readouterr().out

    def test_verify_corrupt_exits_nonzero(self, populated, tmp_path, capsys):
        from repro.cli import main

        local, _, _ = populated
        for cid in (1, 2, 3):
            for f in local._ckpt_dir("tool", cid).glob("rank_*.ctx"):
                blob = bytearray(f.read_bytes())
                blob[-1] ^= 0xFF
                f.write_bytes(blob)
        # I/O copies are intact, so deep recovery still succeeds, but the
        # local store must be reported unhealthy.
        assert main(["ckpt", "verify", str(tmp_path / "nvm"), str(tmp_path / "pfs")]) == 1

    def test_no_apps(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "void"
        empty.mkdir()
        assert main(["ckpt", "ls", str(empty)]) == 1
