"""Runtime metrics collection."""

import math

import pytest

from repro.ckpt.backends import IOStore, LocalStore
from repro.ckpt.metrics import RuntimeMetrics, StageCounter
from repro.ckpt.multilevel import MultilevelCheckpointer


class TestStageCounter:
    def test_rate(self):
        s = StageCounter()
        s.add(1000, 0.5)
        assert s.rate == 2000.0
        assert s.ops == 1

    def test_rate_empty_is_zero(self):
        assert StageCounter().rate == 0.0

    def test_rate_zero_seconds_nonzero_bytes_is_inf(self):
        s = StageCounter()
        s.add(1000, 0.0)
        assert s.rate == math.inf  # not a silent 0.0

    def test_as_dict(self):
        s = StageCounter()
        s.add(100, 0.1)
        d = s.as_dict()
        assert d == {"bytes": 100, "seconds": pytest.approx(0.1), "ops": 1,
                     "rate": pytest.approx(1000.0)}

    def test_timed_charges_on_exception(self):
        s = StageCounter()
        with pytest.raises(RuntimeError):
            with s.timed(50):
                raise RuntimeError("x")
        assert s.bytes == 50
        assert s.seconds > 0.0
        assert s.ops == 1


class TestRuntimeMetrics:
    def test_timed_accumulates(self):
        m = RuntimeMetrics()
        with m.timed("local"):
            pass
        with m.timed("io"):
            pass
        assert m.blocked_seconds["local"] >= 0.0
        assert m.total_blocked == sum(m.blocked_seconds.values())

    def test_unknown_activity_rejected(self):
        m = RuntimeMetrics()
        with pytest.raises(KeyError):
            with m.timed("lunch"):
                pass

    def test_summary_renders(self):
        m = RuntimeMetrics()
        m.checkpoints = 3
        assert "3 checkpoints" in m.summary()

    def test_timed_charges_on_exception(self):
        m = RuntimeMetrics()
        with pytest.raises(RuntimeError):
            with m.timed("io"):
                raise RuntimeError("x")
        assert m.blocked_seconds["io"] > 0.0

    def test_as_dict(self):
        m = RuntimeMetrics()
        m.checkpoints = 2
        m.blocked_seconds["local"] = 0.5
        d = m.as_dict()
        assert d["checkpoints"] == 2
        assert d["blocked_seconds"]["local"] == 0.5
        assert d["total_blocked"] == pytest.approx(0.5)


class TestCheckpointerIntegration:
    def test_counters_track_operations(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=4)
        io = IOStore(tmp_path / "pfs")
        cr = MultilevelCheckpointer("m", local, io, mode="host", io_every=2)
        cr.checkpoint({0: small_blob})
        cr.checkpoint({0: small_blob})
        assert cr.metrics.checkpoints == 2
        assert cr.metrics.bytes_local == 2 * len(small_blob)
        assert cr.metrics.bytes_io_host == len(small_blob)  # only ckpt 2
        assert cr.metrics.blocked_seconds["local"] > 0.0
        assert cr.metrics.blocked_seconds["io"] > 0.0

    def test_restore_counted(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=4)
        io = IOStore(tmp_path / "pfs")
        cr = MultilevelCheckpointer("m", local, io, mode="host")
        cr.checkpoint({0: small_blob})
        cr.restart()
        assert cr.metrics.restores == 1
        assert cr.metrics.blocked_seconds["restore"] > 0.0

    def test_ndp_mode_no_host_io_bytes(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=4)
        io = IOStore(tmp_path / "pfs")
        with MultilevelCheckpointer("m", local, io, mode="ndp") as cr:
            cr.checkpoint({0: small_blob})
            cr.flush_to_io(30)
            assert cr.metrics.bytes_io_host == 0  # drains are background
