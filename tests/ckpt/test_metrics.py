"""Runtime metrics collection."""

import pytest

from repro.ckpt.backends import IOStore, LocalStore
from repro.ckpt.metrics import RuntimeMetrics
from repro.ckpt.multilevel import MultilevelCheckpointer


class TestRuntimeMetrics:
    def test_timed_accumulates(self):
        m = RuntimeMetrics()
        with m.timed("local"):
            pass
        with m.timed("io"):
            pass
        assert m.blocked_seconds["local"] >= 0.0
        assert m.total_blocked == sum(m.blocked_seconds.values())

    def test_unknown_activity_rejected(self):
        m = RuntimeMetrics()
        with pytest.raises(KeyError):
            with m.timed("lunch"):
                pass

    def test_summary_renders(self):
        m = RuntimeMetrics()
        m.checkpoints = 3
        assert "3 checkpoints" in m.summary()


class TestCheckpointerIntegration:
    def test_counters_track_operations(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=4)
        io = IOStore(tmp_path / "pfs")
        cr = MultilevelCheckpointer("m", local, io, mode="host", io_every=2)
        cr.checkpoint({0: small_blob})
        cr.checkpoint({0: small_blob})
        assert cr.metrics.checkpoints == 2
        assert cr.metrics.bytes_local == 2 * len(small_blob)
        assert cr.metrics.bytes_io_host == len(small_blob)  # only ckpt 2
        assert cr.metrics.blocked_seconds["local"] > 0.0
        assert cr.metrics.blocked_seconds["io"] > 0.0

    def test_restore_counted(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=4)
        io = IOStore(tmp_path / "pfs")
        cr = MultilevelCheckpointer("m", local, io, mode="host")
        cr.checkpoint({0: small_blob})
        cr.restart()
        assert cr.metrics.restores == 1
        assert cr.metrics.blocked_seconds["restore"] > 0.0

    def test_ndp_mode_no_host_io_bytes(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=4)
        io = IOStore(tmp_path / "pfs")
        with MultilevelCheckpointer("m", local, io, mode="ndp") as cr:
            cr.checkpoint({0: small_blob})
            cr.flush_to_io(30)
            assert cr.metrics.bytes_io_host == 0  # drains are background
