"""The asynchronous (double-buffered) local checkpoint writer."""

import threading
import time

import pytest

from repro.ckpt.async_local import AsyncLocalWriter
from repro.ckpt.backends import IOStore, LocalStore
from repro.ckpt.format import make_header
from repro.ckpt.multilevel import MultilevelCheckpointer


def files_for(payload, ckpt_id, app="a"):
    return {0: (make_header(app, 0, ckpt_id, payload, position=float(ckpt_id)), payload)}


class TestWriter:
    def test_commits_in_background(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=4)
        w = AsyncLocalWriter("a", local)
        w.submit(1, files_for(small_blob, 1))
        assert w.drain(10)
        assert local.committed("a") == [1]
        assert w.stats.committed == 1

    def test_ordering_preserved(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=8)
        w = AsyncLocalWriter("a", local)
        for cid in (1, 2, 3):
            w.submit(cid, files_for(small_blob, cid))
        assert w.drain(10)
        assert local.committed("a") == [1, 2, 3]

    def test_pre_post_hooks_bracket_commit(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=4)
        events = []
        w = AsyncLocalWriter(
            "a",
            local,
            pre_commit=lambda: events.append("pre"),
            post_commit=lambda: events.append("post"),
            on_commit=lambda cid: events.append(("done", cid)),
        )
        w.submit(7, files_for(small_blob, 7))
        assert w.drain(10)
        assert events == ["pre", "post", ("done", 7)]

    def test_error_recorded_not_raised(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=4)
        w = AsyncLocalWriter("a", local)
        bad = {0: (make_header("a", 0, 1, small_blob), small_blob + b"x")}  # size mismatch
        w.submit(1, bad)
        assert w.drain(10)
        assert w.stats.committed == 0
        assert w.stats.errors and "ckpt 1" in w.stats.errors[0]

    def test_at_most_one_in_flight(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=8)
        gate = threading.Event()
        orig = local.write_checkpoint

        def slow_write(app, cid, files):
            gate.wait(5)
            orig(app, cid, files)

        local.write_checkpoint = slow_write  # type: ignore[method-assign]
        w = AsyncLocalWriter("a", local)
        w.submit(1, files_for(small_blob, 1))
        t0 = time.perf_counter()
        opened = threading.Timer(0.2, gate.set)
        opened.start()
        w.submit(2, files_for(small_blob, 2))  # must block until 1 lands
        assert time.perf_counter() - t0 > 0.15
        assert w.drain(10)
        assert local.committed("a") == [1, 2]


class TestCheckpointerIntegration:
    def test_async_mode_hides_local_write(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=4)
        io = IOStore(tmp_path / "pfs")
        with MultilevelCheckpointer(
            "x", local, io, mode="ndp", local_async=True
        ) as cr:
            cid = cr.checkpoint({0: small_blob}, position=1.0)
            assert cr.flush_to_io(30)
            assert local.committed("x") == [cid]
            assert io.committed("x") == [cid]

    def test_restart_waits_for_inflight_commit(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=4)
        io = IOStore(tmp_path / "pfs")
        with MultilevelCheckpointer(
            "x", local, io, mode="ndp", local_async=True
        ) as cr:
            cr.checkpoint({0: small_blob}, position=5.0)
            res = cr.restart()  # must see the just-submitted checkpoint
            assert res.ckpt_id == 1
            assert res.positions[0] == 5.0

    def test_async_requires_ndp_mode(self, tmp_path):
        local = LocalStore(tmp_path / "nvm", capacity=2)
        io = IOStore(tmp_path / "pfs")
        with pytest.raises(ValueError, match="ndp"):
            MultilevelCheckpointer("x", local, io, mode="host", local_async=True)

    def test_sequence_of_async_checkpoints(self, tmp_path, small_blob):
        local = LocalStore(tmp_path / "nvm", capacity=3)
        io = IOStore(tmp_path / "pfs")
        with MultilevelCheckpointer(
            "x", local, io, mode="ndp", local_async=True
        ) as cr:
            for step in range(1, 6):
                cr.checkpoint({0: small_blob}, position=float(step))
            assert cr.flush_to_io(30)
            res = cr.restart()
            assert res.ckpt_id == 5
