"""Adaptive checkpoint scheduling: MTTI estimation + Daly advisor."""

import pytest

from repro.ckpt.schedule import AdaptiveScheduler, DalyIntervalAdvisor, OnlineMTTIEstimator
from repro.core import daly


class TestEstimator:
    def test_starts_at_prior(self):
        est = OnlineMTTIEstimator(prior_mtti=1800.0)
        assert est.mtti == 1800.0

    def test_converges_to_empirical(self):
        est = OnlineMTTIEstimator(prior_mtti=1800.0, prior_weight=1.0)
        for _ in range(100):
            est.observe_time(600.0)
            est.observe_failure()
        # Empirical MTTI 600 s; prior washed out by 100 observations.
        assert est.mtti == pytest.approx(600.0, rel=0.05)

    def test_no_failures_raises_estimate(self):
        est = OnlineMTTIEstimator(prior_mtti=1800.0)
        est.observe_time(36_000.0)
        assert est.mtti > 1800.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineMTTIEstimator(prior_mtti=0.0)
        est = OnlineMTTIEstimator(prior_mtti=100.0)
        with pytest.raises(ValueError):
            est.observe_time(-1.0)


class TestAdvisor:
    def test_matches_daly(self):
        adv = DalyIntervalAdvisor(commit_time=7.5)
        assert adv.recommend(1800.0) == pytest.approx(
            float(daly.daly_interval(7.5, 1800.0))
        )

    def test_shorter_mtti_shorter_interval(self):
        adv = DalyIntervalAdvisor(commit_time=7.5)
        assert adv.recommend(600.0) < adv.recommend(3600.0)

    def test_clamping(self):
        adv = DalyIntervalAdvisor(commit_time=7.5, min_interval=60.0, max_interval=300.0)
        assert adv.recommend(1.0) == 60.0
        assert adv.recommend(1e9) == 300.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DalyIntervalAdvisor(commit_time=0.0)
        with pytest.raises(ValueError):
            DalyIntervalAdvisor(commit_time=1.0, min_interval=10.0, max_interval=5.0)
        adv = DalyIntervalAdvisor(commit_time=1.0)
        with pytest.raises(ValueError):
            adv.recommend(0.0)


class TestScheduler:
    def make(self, prior=1800.0):
        return AdaptiveScheduler(
            estimator=OnlineMTTIEstimator(prior_mtti=prior),
            advisor=DalyIntervalAdvisor(commit_time=7.5),
        )

    def test_checkpoints_at_interval(self):
        sched = self.make()
        interval = sched.current_interval
        sched.tick(interval * 0.9)
        assert not sched.should_checkpoint()
        sched.tick(interval * 0.2)
        assert sched.should_checkpoint()
        sched.notify_checkpoint()
        assert not sched.should_checkpoint()

    def test_failures_shorten_interval(self):
        sched = self.make()
        before = sched.current_interval
        for _ in range(20):
            sched.tick(120.0)
            sched.notify_failure()
        assert sched.current_interval < before

    def test_interval_history_recorded(self):
        sched = self.make()
        sched.tick(sched.current_interval + 1)
        sched.notify_checkpoint()
        assert len(sched.intervals_used) == 1

    def test_failure_resets_accumulator(self):
        sched = self.make()
        sched.tick(sched.current_interval + 1)
        sched.notify_failure()
        assert not sched.should_checkpoint()
