"""Block-framed compressed streams and parallel decompression."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt.stream import (
    compress_stream,
    decompress_stream,
    iter_compressed_blocks,
    parallel_decompress,
)
from repro.compression.codecs import make_codec

GZIP = make_codec("gzip", 1)


class TestFraming:
    def test_round_trip(self, small_blob):
        stream = compress_stream(small_blob, GZIP, block_size=4096)
        assert decompress_stream(stream, GZIP) == small_blob

    def test_empty_payload(self):
        stream = compress_stream(b"", GZIP)
        assert decompress_stream(stream, GZIP) == b""

    def test_block_boundaries_exact_multiple(self):
        data = b"ab" * 2048  # exactly 4 blocks of 1024
        stream = compress_stream(data, GZIP, block_size=1024)
        assert decompress_stream(stream, GZIP) == data

    def test_iter_yields_per_block(self, small_blob):
        blocks = list(iter_compressed_blocks(small_blob, GZIP, 4096))
        assert len(blocks) == (len(small_blob) + 4095) // 4096
        assert sum(u for u, _ in blocks) == len(small_blob)

    def test_block_size_validation(self, small_blob):
        with pytest.raises(ValueError):
            compress_stream(small_blob, GZIP, block_size=100)

    def test_bad_magic_rejected(self, small_blob):
        stream = compress_stream(small_blob, GZIP)
        with pytest.raises(ValueError, match="magic"):
            decompress_stream(b"XXXX" + stream[4:], GZIP)

    def test_truncated_stream_rejected(self, small_blob):
        stream = compress_stream(small_blob, GZIP, block_size=4096)
        with pytest.raises(ValueError):
            decompress_stream(stream[:-5], GZIP)


class TestParallel:
    def test_matches_sequential(self, small_blob):
        stream = compress_stream(small_blob, GZIP, block_size=2048)
        assert parallel_decompress(stream, GZIP, workers=4) == small_blob

    def test_single_worker_path(self, small_blob):
        stream = compress_stream(small_blob, GZIP, block_size=2048)
        assert parallel_decompress(stream, GZIP, workers=1) == small_blob

    def test_worker_validation(self, small_blob):
        stream = compress_stream(small_blob, GZIP)
        with pytest.raises(ValueError):
            parallel_decompress(stream, GZIP, workers=0)

    @pytest.mark.parametrize("codec_name", ["bzip2(1)", "xz(1)", "lz4(1)"])
    def test_other_codecs(self, codec_name, small_blob):
        codec = make_codec(*_parse(codec_name))
        stream = compress_stream(small_blob, codec, block_size=8192)
        assert parallel_decompress(stream, codec, workers=2) == small_blob


def _parse(name):
    u, _, lv = name[:-1].partition("(")
    return u, int(lv)


@given(data=st.binary(max_size=30_000), block=st.sampled_from([1024, 4096, 16384]))
@settings(max_examples=60, deadline=None)
def test_property_stream_round_trip(data, block):
    stream = compress_stream(data, GZIP, block_size=block)
    assert decompress_stream(stream, GZIP) == data
    assert parallel_decompress(stream, GZIP, workers=3) == data
