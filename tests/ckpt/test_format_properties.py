"""Property-based tests of the context-file format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt.format import (
    CorruptCheckpointError,
    make_header,
    read_context_file,
    write_context_file,
)


@given(
    payload=st.binary(min_size=1, max_size=20_000),
    rank=st.integers(min_value=0, max_value=99_999),
    ckpt_id=st.integers(min_value=0, max_value=2**31),
    position=st.floats(allow_nan=False, allow_infinity=False, width=32),
    app=st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        min_size=1,
        max_size=20,
    ),
)
@settings(max_examples=120, deadline=None)
def test_property_round_trip(tmp_path_factory, payload, rank, ckpt_id, position, app):
    """Any payload/metadata combination survives write -> read verbatim."""
    path = tmp_path_factory.mktemp("fmt") / "f.ctx"
    header = make_header(app, rank, ckpt_id, payload, position=float(position))
    write_context_file(path, payload, header)
    back_header, back_payload = read_context_file(path)
    assert back_payload == payload
    assert back_header == header


@given(
    payload=st.binary(min_size=16, max_size=4_000),
    flip_at=st.integers(min_value=0, max_value=3_999),
    bit=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=150, deadline=None)
def test_property_any_payload_bitflip_detected(tmp_path_factory, payload, flip_at, bit):
    """Flipping any single payload bit must fail verification (CRC32 has
    Hamming distance >= 2 for these sizes) or leave the bytes identical
    (flip landed outside the file — impossible here, so always detected)."""
    path = tmp_path_factory.mktemp("fmt") / "f.ctx"
    header = make_header("a", 0, 1, payload)
    write_context_file(path, payload, header)
    blob = bytearray(path.read_bytes())
    offset = len(blob) - len(payload) + (flip_at % len(payload))
    blob[offset] ^= 1 << bit
    path.write_bytes(blob)
    with pytest.raises(CorruptCheckpointError):
        read_context_file(path)


@given(truncate_to=st.integers(min_value=0, max_value=120))
@settings(max_examples=80, deadline=None)
def test_property_truncation_never_parses(tmp_path_factory, truncate_to):
    """A context file truncated anywhere strictly inside must not parse
    as valid (atomic-rename writes mean readers only ever see whole files,
    but defense in depth matters for copied/partial transfers)."""
    path = tmp_path_factory.mktemp("fmt") / "f.ctx"
    payload = b"payload-bytes" * 10
    write_context_file(path, payload, make_header("a", 0, 1, payload))
    blob = path.read_bytes()
    cut = min(truncate_to, len(blob) - 1)
    path.write_bytes(blob[:cut])
    with pytest.raises(CorruptCheckpointError):
        read_context_file(path)
