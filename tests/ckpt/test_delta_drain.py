"""Delta-drained checkpoints: storage savings and reconstruction."""

import numpy as np
import pytest

from repro.ckpt.backends import IOStore, LocalStore
from repro.ckpt.multilevel import MultilevelCheckpointer
from repro.ckpt.restart import recover
from repro.compression.codecs import make_codec

GZIP = make_codec("gzip", 1)


def evolving_payloads(step: int, rng_seed: int = 0, ranks: int = 2) -> dict[int, bytes]:
    """State where most bytes persist between steps (delta-friendly)."""
    rng = np.random.default_rng(rng_seed)
    base = rng.integers(0, 256, 40_000, dtype=np.uint8)
    out = {}
    for r in range(ranks):
        arr = base.copy()
        # A small moving window changes per step, the rest is static.
        lo = (step * 777 + r * 131) % 35_000
        arr[lo : lo + 2_000] = rng.integers(0, 256, 2_000, dtype=np.uint8)
        out[r] = arr.tobytes()
    return out


@pytest.fixture
def cr(tmp_path):
    local = LocalStore(tmp_path / "nvm", capacity=4)
    io = IOStore(tmp_path / "pfs")
    c = MultilevelCheckpointer(
        "delta", local, io, mode="ndp", codec=GZIP, delta_every=4
    ).start()
    yield c
    c.close(flush=False)


class TestDeltaDrain:
    def _drain_steps(self, cr, steps):
        payload_history = {}
        for step in range(1, steps + 1):
            payloads = evolving_payloads(step)
            cr.checkpoint(payloads, position=float(step))
            assert cr.flush_to_io(30)  # force one drain per checkpoint
            payload_history[step] = payloads
        return payload_history

    def test_deltas_recorded_and_smaller(self, cr):
        self._drain_steps(cr, 4)
        stats = cr.daemon.stats
        assert stats.checkpoints_drained == 4
        assert stats.delta_drains == 3  # 1 full + 3 deltas per delta_every=4
        # Deltas of mostly-static state compress far better than fulls.
        headers = cr.io.read_checkpoint("delta", 4)
        assert headers[0][0].delta_base == 1
        full = sum(len(p) for _, (h, p) in cr.io.read_checkpoint("delta", 1).items())
        delta = sum(len(p) for _, (h, p) in headers.items())
        assert delta < full / 2

    def test_full_refresh_cadence(self, cr):
        self._drain_steps(cr, 6)
        h5 = cr.io.read_checkpoint("delta", 5)[0][0]
        assert h5.delta_base is None  # 5th drain starts a new full cycle
        h6 = cr.io.read_checkpoint("delta", 6)[0][0]
        assert h6.delta_base == 5

    def test_recovery_reconstructs_delta(self, cr):
        history = self._drain_steps(cr, 3)
        cr.local.wipe("delta")  # force I/O recovery of a delta checkpoint
        res = cr.restart()
        assert res.level == "io"
        assert res.ckpt_id == 3
        assert res.payloads == history[3]

    def test_recovery_of_full_checkpoint_unaffected(self, cr):
        history = self._drain_steps(cr, 1)
        cr.local.wipe("delta")
        res = cr.restart()
        assert res.payloads == history[1]

    def test_missing_base_falls_back(self, cr):
        history = self._drain_steps(cr, 3)
        cr.local.wipe("delta")
        # Destroy the base (id 1): deltas 2 and 3 become unreadable, but
        # recovery must not fail — there is nothing else, so it errors...
        cr.io.delete_checkpoint("delta", 1)
        from repro.ckpt.restart import NoCheckpointError

        with pytest.raises(NoCheckpointError):
            recover("delta", [cr.local, cr.io])
        del history

    def test_unreadable_delta_falls_back_to_its_full_base(self, tmp_path):
        local = LocalStore(tmp_path / "n2", capacity=8)
        io = IOStore(tmp_path / "p2")
        with MultilevelCheckpointer(
            "d2", local, io, mode="ndp", codec=GZIP, delta_every=4
        ) as cr:
            hist = {}
            for step in range(1, 3):  # drains: 1=full, 2=delta(base=1)
                payloads = evolving_payloads(step, rng_seed=5)
                cr.checkpoint(payloads, position=float(step))
                assert cr.flush_to_io(30)
                hist[step] = payloads
            local.wipe("d2")
            # Corrupt the delta's rank files: recovery must fall back to
            # the older full checkpoint 1.
            cdir = io._ckpt_dir("d2", 2)
            for f in cdir.glob("rank_*.ctx"):
                blob = bytearray(f.read_bytes())
                blob[-1] ^= 0xFF
                f.write_bytes(blob)
            res = cr.restart()
        assert res.ckpt_id == 1
        assert res.payloads == hist[1]

    def test_delta_requires_ndp_mode(self, tmp_path):
        local = LocalStore(tmp_path / "n3", capacity=2)
        io = IOStore(tmp_path / "p3")
        with pytest.raises(ValueError, match="ndp"):
            MultilevelCheckpointer("x", local, io, mode="host", delta_every=2)

    def test_delta_every_validation(self, tmp_path):
        from repro.ckpt.ndp_daemon import NDPDrainDaemon

        local = LocalStore(tmp_path / "n4", capacity=2)
        io = IOStore(tmp_path / "p4")
        with pytest.raises(ValueError):
            NDPDrainDaemon("x", local, io, delta_every=-1)
