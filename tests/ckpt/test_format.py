"""Context-file format: round-trip, atomicity, corruption detection."""

import json

import pytest

from repro.ckpt.format import (
    CorruptCheckpointError,
    make_header,
    read_context_file,
    write_context_file,
)


@pytest.fixture
def payload(small_blob):
    return small_blob


@pytest.fixture
def header(payload):
    return make_header("app", rank=3, ckpt_id=7, payload=payload, position=42.0)


class TestRoundTrip:
    def test_header_and_payload_preserved(self, tmp_path, payload, header):
        path = tmp_path / "rank_00003.ctx"
        write_context_file(path, payload, header)
        h, p = read_context_file(path)
        assert p == payload
        assert h == header

    def test_compressed_metadata_fields(self, tmp_path, payload):
        h = make_header(
            "app", 0, 1, payload, uncompressed_size=4 * len(payload), codec="gzip(1)"
        )
        path = tmp_path / "x.ctx"
        write_context_file(path, payload, h)
        back, _ = read_context_file(path)
        assert back.codec == "gzip(1)"
        assert back.uncompressed_size == 4 * len(payload)

    def test_size_mismatch_rejected_at_write(self, tmp_path, payload, header):
        with pytest.raises(ValueError, match="payload_size"):
            write_context_file(tmp_path / "x.ctx", payload + b"x", header)

    def test_no_tmp_file_left_behind(self, tmp_path, payload, header):
        write_context_file(tmp_path / "x.ctx", payload, header)
        assert list(tmp_path.glob("*.tmp")) == []


class TestCorruption:
    def write(self, tmp_path, payload, header):
        path = tmp_path / "x.ctx"
        write_context_file(path, payload, header)
        return path

    def test_bad_magic(self, tmp_path, payload, header):
        path = self.write(tmp_path, payload, header)
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(blob)
        with pytest.raises(CorruptCheckpointError, match="not a checkpoint"):
            read_context_file(path)

    def test_flipped_payload_bit_caught_by_crc(self, tmp_path, payload, header):
        path = self.write(tmp_path, payload, header)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(blob)
        with pytest.raises(CorruptCheckpointError, match="CRC"):
            read_context_file(path)

    def test_verify_false_skips_crc(self, tmp_path, payload, header):
        path = self.write(tmp_path, payload, header)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(blob)
        read_context_file(path, verify=False)  # no raise

    def test_truncated_payload(self, tmp_path, payload, header):
        path = self.write(tmp_path, payload, header)
        blob = path.read_bytes()
        path.write_bytes(blob[:-10])
        with pytest.raises(CorruptCheckpointError, match="truncated"):
            read_context_file(path)

    def test_truncated_header(self, tmp_path, payload, header):
        path = self.write(tmp_path, payload, header)
        path.write_bytes(path.read_bytes()[:8])
        with pytest.raises(CorruptCheckpointError):
            read_context_file(path)

    def test_malformed_header_json(self, tmp_path, payload, header):
        path = self.write(tmp_path, payload, header)
        blob = bytearray(path.read_bytes())
        blob[12] = ord("!")  # corrupt inside the JSON header
        path.write_bytes(blob)
        with pytest.raises(CorruptCheckpointError):
            read_context_file(path)

    def test_header_is_debuggable_json(self, tmp_path, payload, header):
        path = self.write(tmp_path, payload, header)
        blob = path.read_bytes()
        start = blob.index(b"{")
        end = blob.index(b"}", start) + 1
        meta = json.loads(blob[start:end])
        assert meta["rank"] == 3 and meta["ckpt_id"] == 7
