"""The pipelined data path: streaming frames, chunked stores, drain overlap."""

import queue

import numpy as np
import pytest

from repro.compression.codecs import fast_lz4_codec, make_codec
from repro.ckpt.backends import IOStore, LocalStore
from repro.ckpt.format import (
    CorruptCheckpointError,
    make_header,
    read_context_chunks,
    read_context_file,
    read_context_header,
    write_context_frames,
)
from repro.ckpt.ndp_daemon import NDPDrainDaemon
from repro.ckpt.restart import recover
from repro.ckpt.stream import (
    compress_stream,
    decompress_stream,
    iter_frames,
    parallel_decompress,
)

GZIP = make_codec("gzip", 1)


@pytest.fixture
def payload(rng) -> bytes:
    smooth = np.cumsum(rng.standard_normal(50_000)).tobytes()
    return smooth + bytes(100_000) + rng.integers(0, 256, 100_000, dtype=np.uint8).tobytes()


class TestStreamFrames:
    def test_frames_concatenate_to_compress_stream(self, payload):
        frames = list(iter_frames(payload, GZIP, block_size=65536))
        assert b"".join(frames) == compress_stream(payload, GZIP, 65536)
        assert len(frames) == 1 + (len(payload) + 65535) // 65536

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_compression_is_byte_identical(self, payload, workers):
        serial = compress_stream(payload, GZIP, 65536, workers=1)
        parallel = compress_stream(payload, GZIP, 65536, workers=workers)
        assert parallel == serial
        assert parallel_decompress(parallel, GZIP, workers=workers) == payload

    @pytest.mark.parametrize("codec", [GZIP, fast_lz4_codec()])
    def test_empty_payload_round_trips(self, codec):
        stream = compress_stream(b"", codec)
        assert decompress_stream(stream, codec) == b""
        assert parallel_decompress(stream, codec, workers=4) == b""

    @pytest.mark.parametrize("size", [1, 5, 11])
    @pytest.mark.parametrize("codec", [GZIP, fast_lz4_codec()])
    def test_sub_mf_limit_payloads(self, codec, size):
        # Below LZ4's MF_LIMIT the kernel must emit a literals-only block.
        data = bytes(range(size))
        stream = compress_stream(data, codec, workers=2)
        assert decompress_stream(stream, codec) == data
        assert parallel_decompress(stream, codec, workers=4) == data

    def test_memoryview_payload(self, payload):
        assert compress_stream(memoryview(payload), GZIP) == compress_stream(payload, GZIP)


class TestWriteContextFrames:
    def test_round_trips_against_whole_file_reader(self, tmp_path, payload):
        frames = [payload[i : i + 37_000] for i in range(0, len(payload), 37_000)]
        header = write_context_frames(
            tmp_path / "rank.ctx", frames, app_id="app", rank=3, ckpt_id=7,
            position=2.5, uncompressed_size=123, codec="gzip(1)", delta_base=4,
        )
        got_header, got_payload = read_context_file(tmp_path / "rank.ctx")
        assert got_header == header
        assert got_payload == payload
        assert header.payload_size == len(payload)
        assert header.uncompressed_size == 123
        assert header.delta_base == 4

    def test_chunked_reader_verifies_crc(self, tmp_path, payload):
        path = tmp_path / "rank.ctx"
        write_context_frames(path, [payload], app_id="a", rank=0, ckpt_id=1)
        header, chunks = read_context_chunks(path, chunk_size=10_000)
        assert b"".join(chunks) == payload
        # Flip a payload byte: the chunk generator must raise at exhaustion.
        _, offset = read_context_header(path)
        blob = bytearray(path.read_bytes())
        blob[offset + 100] ^= 0xFF
        path.write_bytes(bytes(blob))
        _, chunks = read_context_chunks(path, chunk_size=10_000)
        with pytest.raises(CorruptCheckpointError, match="CRC mismatch"):
            list(chunks)

    def test_on_chunk_sees_every_byte(self, tmp_path, payload):
        seen = []
        frames = [payload[i : i + 33_333] for i in range(0, len(payload), 33_333)]
        write_context_frames(
            tmp_path / "r.ctx", frames, app_id="a", rank=0, ckpt_id=1,
            on_chunk=seen.append,
        )
        assert sum(seen) == len(payload)
        assert len(seen) == len(frames)

    def test_failed_write_leaves_nothing(self, tmp_path):
        def frames():
            yield b"x" * 100
            raise OSError("disk gone")

        with pytest.raises(OSError):
            write_context_frames(
                tmp_path / "r.ctx", frames(), app_id="a", rank=0, ckpt_id=1
            )
        assert list(tmp_path.iterdir()) == []


class TestStoreFrameStaging:
    def test_stage_rank_frames_equals_stage_rank_file(self, tmp_path, payload):
        store = IOStore(tmp_path / "io")
        header = make_header("app", 0, 1, payload, position=1.0)
        store.stage_rank_file("app", 1, 0, header, payload)
        store.stage_rank_frames(
            "app", 1, 1, iter([payload]), position=1.0,
        )
        store.commit_checkpoint("app", 1)
        files = store.read_checkpoint("app", 1)
        assert files[0][1] == files[1][1] == payload
        assert files[1][0].payload_crc == files[0][0].payload_crc
        assert store.bytes_written == 2 * len(payload)

    def test_iter_rank_files_validates_commit(self, tmp_path):
        store = IOStore(tmp_path / "io")
        with pytest.raises(FileNotFoundError, match="not committed"):
            store.iter_rank_files("app", 9)

    def test_read_rank_file_single_rank(self, tmp_path, payload):
        store = IOStore(tmp_path / "io")
        store.stage_rank_frames("app", 1, 2, iter([payload]))
        store.commit_checkpoint("app", 1)
        header, got = store.read_rank_file("app", 1, 2)
        assert got == payload and header.rank == 2
        with pytest.raises(FileNotFoundError):
            store.read_rank_file("app", 1, 5)


def _seed_local(tmp_path, payloads: dict[int, bytes], ckpt_id: int = 1) -> LocalStore:
    local = LocalStore(tmp_path / "local", capacity=4)
    files = {
        rank: (make_header("app", rank, ckpt_id, data, position=float(ckpt_id)), data)
        for rank, data in payloads.items()
    }
    local.write_checkpoint("app", ckpt_id, files)
    return local


class TestPipelinedDrain:
    @pytest.mark.parametrize("codec", [None, fast_lz4_codec(), GZIP])
    def test_pipelined_restores_identically_to_staged(self, tmp_path, payload, codec):
        ranks = {0: payload, 1: payload[::-1]}
        restored = {}
        for mode, pipelined in (("pipe", True), ("staged", False)):
            local = _seed_local(tmp_path / mode, ranks)
            io = IOStore(tmp_path / mode / "io")
            daemon = NDPDrainDaemon(
                "app", local, io, codec=codec, block_size=32_768, pipelined=pipelined
            )
            daemon._drain_one(1)
            assert daemon.stats.checkpoints_drained == 1
            restored[mode] = recover("app", [io])
        assert restored["pipe"].payloads == restored["staged"].payloads == ranks
        assert restored["pipe"].positions == restored["staged"].positions

    def test_stage_counters_populated(self, tmp_path, payload):
        local = _seed_local(tmp_path, {0: payload})
        io = IOStore(tmp_path / "io")
        daemon = NDPDrainDaemon("app", local, io, codec=fast_lz4_codec(),
                                block_size=32_768)
        daemon._drain_one(1)
        assert daemon.stats.compress.bytes == daemon.stats.bytes_out
        assert daemon.stats.write.bytes == daemon.stats.bytes_out
        assert daemon.stats.compress.rate > 0
        assert daemon.stats.write.rate > 0
        assert daemon.stats.compress.ops > daemon.stats.write.ops  # frames vs ranks

    def test_bounded_queue_backpressure(self, tmp_path, payload):
        local = _seed_local(tmp_path, {0: payload})
        io = IOStore(tmp_path / "io")
        high_water = 0
        real_put = queue.Queue.put

        def spy_put(self, item, *a, **kw):
            nonlocal high_water
            real_put(self, item, *a, **kw)
            high_water = max(high_water, self.qsize())

        daemon = NDPDrainDaemon("app", local, io, codec=GZIP,
                                block_size=16_384, queue_depth=3)
        try:
            queue.Queue.put = spy_put
            daemon._drain_one(1)
        finally:
            queue.Queue.put = real_put
        assert daemon.stats.checkpoints_drained == 1
        assert high_water <= 3

    def test_resized_rank_forces_full_drain(self, tmp_path, payload):
        ranks = {0: payload}
        local = _seed_local(tmp_path, ranks, ckpt_id=1)
        io = IOStore(tmp_path / "io")
        daemon = NDPDrainDaemon("app", local, io, codec=GZIP, delta_every=3)
        daemon._drain_one(1)  # full drain, becomes the delta base
        resized = {0: payload + b"grown"}
        files = {
            0: (make_header("app", 0, 2, resized[0], position=2.0), resized[0])
        }
        local.write_checkpoint("app", 2, files)
        daemon._drain_one(2)
        assert daemon.stats.delta_drains == 0  # size change fell back to full
        assert recover("app", [io]).payloads == resized

    def test_same_size_rank_still_deltas(self, tmp_path, payload):
        local = _seed_local(tmp_path, {0: payload}, ckpt_id=1)
        io = IOStore(tmp_path / "io")
        daemon = NDPDrainDaemon("app", local, io, codec=GZIP, delta_every=3)
        daemon._drain_one(1)
        changed = bytearray(payload)
        changed[1000:1010] = b"0123456789"
        files = {0: (make_header("app", 0, 2, bytes(changed), position=2.0), bytes(changed))}
        local.write_checkpoint("app", 2, files)
        daemon._drain_one(2)
        assert daemon.stats.delta_drains == 1
        assert recover("app", [io]).payloads == {0: bytes(changed)}
