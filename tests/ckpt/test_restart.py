"""Recovery protocol: level priority, corruption fallback, decompression."""

import pytest

from repro.ckpt.backends import IOStore, LocalStore, PartnerStore
from repro.ckpt.format import make_header
from repro.ckpt.restart import NoCheckpointError, recover
from repro.ckpt.stream import compress_stream
from repro.compression.codecs import make_codec

GZIP = make_codec("gzip", 1)


def put(store, cid, payloads, app="app", codec=None):
    files = {}
    for r, p in payloads.items():
        if codec is not None:
            out = compress_stream(p, codec, block_size=4096)
            files[r] = (
                make_header(app, r, cid, out, position=float(cid),
                            uncompressed_size=len(p), codec=codec.name),
                out,
            )
        else:
            files[r] = (make_header(app, r, cid, p, position=float(cid)), p)
    store.write_checkpoint(app, cid, files)


@pytest.fixture
def stores(tmp_path):
    return (
        LocalStore(tmp_path / "nvm", capacity=4),
        PartnerStore(tmp_path / "partner"),
        IOStore(tmp_path / "pfs"),
    )


class TestPriority:
    def test_prefers_local_when_it_has_newest(self, stores, small_blob):
        local, partner, io = stores
        put(local, 2, {0: small_blob})
        put(io, 2, {0: small_blob})
        res = recover("app", [local, partner, io])
        assert res.level == "local"
        assert res.ckpt_id == 2

    def test_newest_anywhere_wins_over_level(self, stores, small_blob):
        # I/O has a newer checkpoint than local: the rollback point is the
        # newest committed anywhere.
        local, partner, io = stores
        put(local, 1, {0: b"old" + small_blob})
        put(io, 3, {0: small_blob})
        res = recover("app", [local, partner, io])
        assert res.ckpt_id == 3
        assert res.level == "io"

    def test_partner_between_local_and_io(self, stores, small_blob):
        local, partner, io = stores
        put(partner, 5, {0: small_blob})
        put(io, 5, {0: small_blob})
        res = recover("app", [local, partner, io])
        assert res.level == "partner"

    def test_no_checkpoints_raises(self, stores):
        with pytest.raises(NoCheckpointError):
            recover("app", list(stores))

    def test_empty_store_list_rejected(self):
        with pytest.raises(ValueError):
            recover("app", [])


class TestPayloads:
    def test_positions_and_payloads_per_rank(self, stores, small_blob):
        local, partner, io = stores
        put(local, 4, {0: small_blob, 1: small_blob[::-1]})
        res = recover("app", [local, partner, io])
        assert res.payloads[1] == small_blob[::-1]
        assert res.positions == {0: 4.0, 1: 4.0}

    def test_compressed_io_checkpoint_decompressed(self, stores, small_blob):
        local, partner, io = stores
        put(io, 1, {0: small_blob}, codec=GZIP)
        res = recover("app", [local, partner, io])
        assert res.payloads[0] == small_blob
        assert res.level == "io"


class TestCorruptionFallback:
    def corrupt(self, store, app, cid):
        cdir = store._ckpt_dir(app, cid)
        for f in cdir.glob("rank_*.ctx"):
            blob = bytearray(f.read_bytes())
            blob[-1] ^= 0xFF
            f.write_bytes(blob)

    def test_falls_to_other_store_same_id(self, stores, small_blob):
        local, partner, io = stores
        put(local, 2, {0: small_blob})
        put(io, 2, {0: small_blob})
        self.corrupt(local, "app", 2)
        res = recover("app", [local, partner, io])
        assert res.level == "io"
        assert res.ckpt_id == 2

    def test_falls_back_to_older_id(self, stores, small_blob):
        local, partner, io = stores
        put(local, 1, {0: small_blob})
        put(local, 2, {0: small_blob})
        self.corrupt(local, "app", 2)
        res = recover("app", [local, partner, io])
        assert res.ckpt_id == 1

    def test_all_corrupt_raises(self, stores, small_blob):
        local, partner, io = stores
        put(local, 1, {0: small_blob})
        self.corrupt(local, "app", 1)
        with pytest.raises(NoCheckpointError, match="verification"):
            recover("app", [local, partner, io])

    def test_missing_directory_tolerated(self, stores, small_blob):
        import shutil

        local, partner, io = stores
        put(local, 1, {0: small_blob})
        put(io, 1, {0: small_blob})
        shutil.rmtree(local._ckpt_dir("app", 1))  # manifest says committed
        res = recover("app", [local, partner, io])
        assert res.level == "io"
