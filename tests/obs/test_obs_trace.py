"""Structured tracing: spans, schema validation, JSONL export."""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    """Every test starts and ends with tracing disabled."""
    trace.disable()
    yield
    trace.disable()


class TestDisabled:
    def test_span_returns_shared_null(self):
        assert not trace.enabled()
        assert trace.span("a", "b") is trace.NULL_SPAN
        assert trace.span("c", "d", x=1) is trace.NULL_SPAN

    def test_null_span_is_noop_context(self):
        with trace.span("a", "b") as sp:
            assert sp.set(foo=1) is sp

    def test_emit_is_noop(self):
        trace.emit("a", 0.0, 1.0, "b")  # must not raise

    def test_get_tracer_none(self):
        assert trace.get_tracer() is None


class TestInMemory:
    def test_span_records_core_fields(self):
        tracer = trace.configure()
        with trace.span("ckpt", "commit", label="ckpt-1", bytes=42):
            pass
        (rec,) = tracer.records
        assert rec["lane"] == "ckpt"
        assert rec["kind"] == "commit"
        assert rec["label"] == "ckpt-1"
        assert rec["end"] >= rec["start"]
        assert rec["attrs"] == {"bytes": 42}
        assert rec["pid"] == os.getpid()
        trace.validate_record(rec)

    def test_set_updates_attrs(self):
        tracer = trace.configure()
        with trace.span("a", "k") as sp:
            sp.set(level="local", ckpt=3)
        assert tracer.records[0]["attrs"] == {"level": "local", "ckpt": 3}

    def test_nesting_records_parent(self):
        tracer = trace.configure()
        with trace.span("a", "outer"):
            with trace.span("a", "inner"):
                pass
        inner, outer = tracer.records  # inner closes first
        assert inner["kind"] == "inner"
        assert inner["parent"] == outer["span"]
        assert "parent" not in outer

    def test_sibling_threads_do_not_nest(self):
        tracer = trace.configure()
        done = threading.Event()

        def child():
            with trace.span("t", "child"):
                pass
            done.set()

        with trace.span("t", "parent"):
            t = threading.Thread(target=child)
            t.start()
            t.join()
        assert done.is_set()
        child_rec = next(r for r in tracer.records if r["kind"] == "child")
        assert "parent" not in child_rec

    def test_emit_pre_timed(self):
        tracer = trace.configure()
        trace.emit("pool", 1.0, 3.5, "chunk", label="chunk-0", attrs={"size": 4})
        (rec,) = tracer.records
        assert rec["start"] == 1.0 and rec["end"] == 3.5
        trace.validate_record(rec)

    def test_exception_still_records(self):
        tracer = trace.configure()
        with pytest.raises(RuntimeError):
            with trace.span("a", "boom"):
                raise RuntimeError("x")
        assert tracer.records[0]["kind"] == "boom"

    def test_counts_and_summary(self):
        tracer = trace.configure()
        for _ in range(3):
            with trace.span("a", "k"):
                pass
        assert tracer.counts == {"k": 3}
        assert tracer.total == 3
        assert "3 spans" in tracer.summary()

    def test_configure_replaces(self):
        t1 = trace.configure()
        t2 = trace.configure()
        assert trace.get_tracer() is t2 is not t1


class TestFileSink:
    def test_jsonl_lines_validate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.configure(path)
        with trace.span("ckpt", "commit", ckpt=1):
            pass
        trace.emit("pool", 0.0, 1.0, "chunk")
        trace.disable()
        assert trace.validate_file(path) == 2
        recs = list(trace.iter_file(path))
        assert [r["kind"] for r in recs] == ["commit", "chunk"]

    def test_file_sink_keeps_no_records_by_default(self, tmp_path):
        tracer = trace.configure(tmp_path / "t.jsonl")
        with trace.span("a", "k"):
            pass
        assert tracer.records == []
        assert tracer.total == 1

    def test_callable_sink(self):
        got = []
        trace.configure(got.append)
        with trace.span("a", "k"):
            pass
        assert got[0]["kind"] == "k"

    def test_env_var_autoconfigures_subprocess(self, tmp_path):
        out = tmp_path / "env.jsonl"
        env = dict(os.environ, REPRO_TRACE=str(out))
        env["PYTHONPATH"] = "src"
        subprocess.run(
            [sys.executable, "-c",
             "from repro.obs import trace\n"
             "with trace.span('x', 'envtest'):\n"
             "    pass\n"],
            check=True, env=env, cwd=os.getcwd(),
        )
        assert trace.validate_file(out) == 1
        assert next(trace.iter_file(out))["kind"] == "envtest"


class TestValidation:
    def _good(self):
        return {"lane": "a", "start": 0.0, "end": 1.0, "kind": "k", "label": ""}

    def test_good_record_passes(self):
        assert trace.validate_record(self._good()) is not None

    def test_missing_field(self):
        rec = self._good()
        del rec["kind"]
        with pytest.raises(trace.TraceSchemaError, match="kind"):
            trace.validate_record(rec)

    def test_bad_types(self):
        rec = self._good()
        rec["start"] = "0"
        with pytest.raises(trace.TraceSchemaError, match="start"):
            trace.validate_record(rec)

    def test_end_before_start(self):
        rec = self._good()
        rec["end"] = -1.0
        with pytest.raises(trace.TraceSchemaError, match="precedes"):
            trace.validate_record(rec)

    def test_empty_kind(self):
        rec = self._good()
        rec["kind"] = ""
        with pytest.raises(trace.TraceSchemaError, match="non-empty"):
            trace.validate_record(rec)

    def test_unknown_field(self):
        rec = self._good()
        rec["bogus"] = 1
        with pytest.raises(trace.TraceSchemaError, match="bogus"):
            trace.validate_record(rec)

    def test_optional_field_type_checked(self):
        rec = self._good()
        rec["attrs"] = "not a dict"
        with pytest.raises(trace.TraceSchemaError, match="attrs"):
            trace.validate_record(rec)

    def test_not_a_dict(self):
        with pytest.raises(trace.TraceSchemaError):
            trace.validate_record([1, 2])

    def test_validate_file_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(self._good()) + "\n{not json\n")
        with pytest.raises(trace.TraceSchemaError, match="line 2"):
            trace.validate_file(path)

    def test_validate_file_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(self._good()) + "\n\n")
        assert trace.validate_file(path) == 1


class TestTraceContext:
    def test_span_with_ctx_records_tree_fields(self):
        tracer = trace.configure()
        with trace.span("server", "request", ctx=trace.TraceContext("tid-1")) as sp:
            assert sp.ctx_id
            assert sp.context() == trace.TraceContext("tid-1", sp.ctx_id)
        (rec,) = tracer.records
        assert rec["trace_id"] == "tid-1"
        assert rec["ctx"] == sp.ctx_id
        assert "ctx_parent" not in rec
        trace.validate_record(rec)

    def test_ambient_context_nests_child_spans(self):
        tracer = trace.configure()
        with trace.span("server", "request", ctx=trace.TraceContext("tid")) as outer:
            with trace.span("coalescer", "wait") as inner:
                assert inner.trace_id == "tid"
        inner_rec, outer_rec = tracer.records
        assert inner_rec["ctx_parent"] == outer_rec["ctx"]
        assert inner_rec["trace_id"] == "tid"

    def test_ctx_none_opts_out_of_ambient(self):
        tracer = trace.configure()
        with trace.span("server", "request", ctx=trace.TraceContext("tid")):
            with trace.span("lane", "plain", ctx=None):
                pass
        plain, _request = tracer.records
        assert "trace_id" not in plain and "ctx" not in plain

    def test_current_context_tracks_innermost_span(self):
        trace.configure()
        assert trace.current_context() is None
        with trace.span("server", "request", ctx=trace.TraceContext("tid")) as sp:
            assert trace.current_context() == trace.TraceContext("tid", sp.ctx_id)
        assert trace.current_context() is None

    def test_use_context_hands_off_across_threads(self):
        tracer = trace.configure()
        ctx_holder = {}

        with trace.span("server", "request", ctx=trace.TraceContext("tid")) as sp:
            ctx_holder["ctx"] = sp.context()

        def worker():
            with trace.use_context(ctx_holder["ctx"]):
                with trace.span("pool", "chunk"):
                    pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        chunk = next(r for r in tracer.records if r["kind"] == "chunk")
        assert chunk["trace_id"] == "tid"
        assert chunk["ctx_parent"] == ctx_holder["ctx"].span_id

    def test_run_with_context_callable(self):
        tracer = trace.configure()
        ctx = trace.root_context()

        def work():
            with trace.span("lane", "inner"):
                pass
            return 42

        assert trace.run_with_context(ctx, work) == 42
        (rec,) = [r for r in tracer.records if r["kind"] == "inner"]
        assert rec["trace_id"] == ctx.trace_id

    def test_emit_with_pinned_ctx_id(self):
        tracer = trace.configure()
        ctx = trace.root_context()
        cid = trace.new_ctx_id()
        trace.emit("pool", 0.0, 1.0, "chunk", ctx=ctx, ctx_id=cid)
        (rec,) = tracer.records
        assert rec["ctx"] == cid
        assert rec["trace_id"] == ctx.trace_id

    def test_emit_links_are_recorded_and_filtered(self):
        tracer = trace.configure()
        ctx = trace.root_context()
        trace.emit("batcher", 0.0, 1.0, "compute", ctx=ctx, links=["abc", "", None])
        (rec,) = tracer.records
        assert rec["links"] == ["abc"]

    def test_span_link_dedups(self):
        tracer = trace.configure()
        sp = trace.span("coalescer", "wait", ctx=trace.TraceContext("tid"))
        sp.link("x", "x", None, "y")
        with sp:
            pass
        assert tracer.records[0]["links"] == ["x", "y"]

    def test_new_ctx_id_none_when_disabled(self):
        assert trace.new_ctx_id() is None
        assert trace.current_context() is None

    def test_concurrent_requests_do_not_cross_parent(self):
        """Two interleaved ctx spans on one thread (as on an event loop)
        must each parent their own children."""
        tracer = trace.configure()
        a = trace.span("server", "request", label="a", ctx=trace.TraceContext("ta"))
        b = trace.span("server", "request", label="b", ctx=trace.TraceContext("tb"))
        a.__enter__()
        b.__enter__()
        with trace.span("lane", "child-of-b"):
            pass
        b.__exit__(None, None, None)
        with trace.span("lane", "child-of-a"):
            pass
        a.__exit__(None, None, None)
        child_b = next(r for r in tracer.records if r["kind"] == "child-of-b")
        child_a = next(r for r in tracer.records if r["kind"] == "child-of-a")
        assert child_b["trace_id"] == "tb" and child_b["ctx_parent"] == b.ctx_id
        assert child_a["trace_id"] == "ta" and child_a["ctx_parent"] == a.ctx_id


class TestTaps:
    def test_tap_sees_records_and_uninstalls(self):
        trace.configure()
        seen = []
        trace.add_tap(seen.append)
        try:
            with trace.span("lane", "k"):
                pass
        finally:
            trace.remove_tap(seen.append)
        assert len(seen) == 1 and seen[0]["kind"] == "k"
        with trace.span("lane", "k2"):
            pass
        assert len(seen) == 1  # removed taps see nothing

    def test_tap_exceptions_are_swallowed(self):
        tracer = trace.configure()

        def bad_tap(rec):
            raise RuntimeError("boom")

        trace.add_tap(bad_tap)
        try:
            with trace.span("lane", "k"):
                pass
        finally:
            trace.remove_tap(bad_tap)
        assert tracer.total == 1

    def test_remove_unknown_tap_is_noop(self):
        trace.remove_tap(lambda rec: None)


class TestRequestTrees:
    def _tree(self):
        return [
            {"lane": "s", "start": 0, "end": 9, "kind": "request", "label": "",
             "trace_id": "t", "ctx": "r"},
            {"lane": "c", "start": 1, "end": 8, "kind": "wait", "label": "",
             "trace_id": "t", "ctx": "w", "ctx_parent": "r"},
        ]

    def test_connected_tree_has_no_orphans(self):
        report = trace.validate_request_trees(self._tree())
        assert report == {"traces": 1, "spans": 2, "roots": 1, "orphans": []}

    def test_parent_resolves_across_pids_not_order(self):
        recs = self._tree()[::-1]  # child emitted before parent
        assert trace.validate_request_trees(recs)["orphans"] == []

    def test_missing_trace_id_is_orphan(self):
        recs = self._tree()
        del recs[1]["trace_id"]
        ((idx, reason),) = trace.validate_request_trees(recs)["orphans"]
        assert idx == 1 and "trace_id" in reason

    def test_unresolvable_parent_is_orphan(self):
        recs = self._tree()
        recs[1]["ctx_parent"] = "nope"
        ((idx, reason),) = trace.validate_request_trees(recs)["orphans"]
        assert idx == 1 and "nope" in reason

    def test_parent_in_wrong_trace_is_orphan(self):
        recs = self._tree()
        recs[1]["trace_id"] = "other"
        assert len(trace.validate_request_trees(recs)["orphans"]) == 1

    def test_links_resolve_across_traces(self):
        recs = self._tree()
        recs.append(
            {"lane": "c", "start": 2, "end": 7, "kind": "wait", "label": "coalesced",
             "trace_id": "t2", "ctx": "d", "links": ["w"]}
        )
        report = trace.validate_request_trees(recs)
        assert report["traces"] == 2 and report["orphans"] == []
        recs[-1]["links"] = ["gone"]
        assert len(trace.validate_request_trees(recs)["orphans"]) == 1

    def test_plain_records_are_ignored(self):
        report = trace.validate_request_trees(
            [{"lane": "a", "start": 0, "end": 1, "kind": "k", "label": ""}]
        )
        assert report == {"traces": 0, "spans": 0, "roots": 0, "orphans": []}
