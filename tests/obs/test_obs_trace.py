"""Structured tracing: spans, schema validation, JSONL export."""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    """Every test starts and ends with tracing disabled."""
    trace.disable()
    yield
    trace.disable()


class TestDisabled:
    def test_span_returns_shared_null(self):
        assert not trace.enabled()
        assert trace.span("a", "b") is trace.NULL_SPAN
        assert trace.span("c", "d", x=1) is trace.NULL_SPAN

    def test_null_span_is_noop_context(self):
        with trace.span("a", "b") as sp:
            assert sp.set(foo=1) is sp

    def test_emit_is_noop(self):
        trace.emit("a", 0.0, 1.0, "b")  # must not raise

    def test_get_tracer_none(self):
        assert trace.get_tracer() is None


class TestInMemory:
    def test_span_records_core_fields(self):
        tracer = trace.configure()
        with trace.span("ckpt", "commit", label="ckpt-1", bytes=42):
            pass
        (rec,) = tracer.records
        assert rec["lane"] == "ckpt"
        assert rec["kind"] == "commit"
        assert rec["label"] == "ckpt-1"
        assert rec["end"] >= rec["start"]
        assert rec["attrs"] == {"bytes": 42}
        assert rec["pid"] == os.getpid()
        trace.validate_record(rec)

    def test_set_updates_attrs(self):
        tracer = trace.configure()
        with trace.span("a", "k") as sp:
            sp.set(level="local", ckpt=3)
        assert tracer.records[0]["attrs"] == {"level": "local", "ckpt": 3}

    def test_nesting_records_parent(self):
        tracer = trace.configure()
        with trace.span("a", "outer"):
            with trace.span("a", "inner"):
                pass
        inner, outer = tracer.records  # inner closes first
        assert inner["kind"] == "inner"
        assert inner["parent"] == outer["span"]
        assert "parent" not in outer

    def test_sibling_threads_do_not_nest(self):
        tracer = trace.configure()
        done = threading.Event()

        def child():
            with trace.span("t", "child"):
                pass
            done.set()

        with trace.span("t", "parent"):
            t = threading.Thread(target=child)
            t.start()
            t.join()
        assert done.is_set()
        child_rec = next(r for r in tracer.records if r["kind"] == "child")
        assert "parent" not in child_rec

    def test_emit_pre_timed(self):
        tracer = trace.configure()
        trace.emit("pool", 1.0, 3.5, "chunk", label="chunk-0", attrs={"size": 4})
        (rec,) = tracer.records
        assert rec["start"] == 1.0 and rec["end"] == 3.5
        trace.validate_record(rec)

    def test_exception_still_records(self):
        tracer = trace.configure()
        with pytest.raises(RuntimeError):
            with trace.span("a", "boom"):
                raise RuntimeError("x")
        assert tracer.records[0]["kind"] == "boom"

    def test_counts_and_summary(self):
        tracer = trace.configure()
        for _ in range(3):
            with trace.span("a", "k"):
                pass
        assert tracer.counts == {"k": 3}
        assert tracer.total == 3
        assert "3 spans" in tracer.summary()

    def test_configure_replaces(self):
        t1 = trace.configure()
        t2 = trace.configure()
        assert trace.get_tracer() is t2 is not t1


class TestFileSink:
    def test_jsonl_lines_validate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace.configure(path)
        with trace.span("ckpt", "commit", ckpt=1):
            pass
        trace.emit("pool", 0.0, 1.0, "chunk")
        trace.disable()
        assert trace.validate_file(path) == 2
        recs = list(trace.iter_file(path))
        assert [r["kind"] for r in recs] == ["commit", "chunk"]

    def test_file_sink_keeps_no_records_by_default(self, tmp_path):
        tracer = trace.configure(tmp_path / "t.jsonl")
        with trace.span("a", "k"):
            pass
        assert tracer.records == []
        assert tracer.total == 1

    def test_callable_sink(self):
        got = []
        trace.configure(got.append)
        with trace.span("a", "k"):
            pass
        assert got[0]["kind"] == "k"

    def test_env_var_autoconfigures_subprocess(self, tmp_path):
        out = tmp_path / "env.jsonl"
        env = dict(os.environ, REPRO_TRACE=str(out))
        env["PYTHONPATH"] = "src"
        subprocess.run(
            [sys.executable, "-c",
             "from repro.obs import trace\n"
             "with trace.span('x', 'envtest'):\n"
             "    pass\n"],
            check=True, env=env, cwd=os.getcwd(),
        )
        assert trace.validate_file(out) == 1
        assert next(trace.iter_file(out))["kind"] == "envtest"


class TestValidation:
    def _good(self):
        return {"lane": "a", "start": 0.0, "end": 1.0, "kind": "k", "label": ""}

    def test_good_record_passes(self):
        assert trace.validate_record(self._good()) is not None

    def test_missing_field(self):
        rec = self._good()
        del rec["kind"]
        with pytest.raises(trace.TraceSchemaError, match="kind"):
            trace.validate_record(rec)

    def test_bad_types(self):
        rec = self._good()
        rec["start"] = "0"
        with pytest.raises(trace.TraceSchemaError, match="start"):
            trace.validate_record(rec)

    def test_end_before_start(self):
        rec = self._good()
        rec["end"] = -1.0
        with pytest.raises(trace.TraceSchemaError, match="precedes"):
            trace.validate_record(rec)

    def test_empty_kind(self):
        rec = self._good()
        rec["kind"] = ""
        with pytest.raises(trace.TraceSchemaError, match="non-empty"):
            trace.validate_record(rec)

    def test_unknown_field(self):
        rec = self._good()
        rec["bogus"] = 1
        with pytest.raises(trace.TraceSchemaError, match="bogus"):
            trace.validate_record(rec)

    def test_optional_field_type_checked(self):
        rec = self._good()
        rec["attrs"] = "not a dict"
        with pytest.raises(trace.TraceSchemaError, match="attrs"):
            trace.validate_record(rec)

    def test_not_a_dict(self):
        with pytest.raises(trace.TraceSchemaError):
            trace.validate_record([1, 2])

    def test_validate_file_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(self._good()) + "\n{not json\n")
        with pytest.raises(trace.TraceSchemaError, match="line 2"):
            trace.validate_file(path)

    def test_validate_file_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(self._good()) + "\n\n")
        assert trace.validate_file(path) == 1
