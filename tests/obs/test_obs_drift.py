"""Drift reports: measured-vs-model tables."""

import math

import pytest

from repro.ckpt.metrics import RuntimeMetrics, StageCounter
from repro.core.breakdown import OverheadBreakdown
from repro.core.configs import (
    NDP_GZIP1,
    CompressionSpec,
    CRParameters,
    paper_parameters,
)
from repro.core.model import multilevel_ndp
from repro.obs.drift import (
    DriftReport,
    DriftRow,
    blocked_drift,
    breakdown_drift,
    drain_drift,
    drain_rate_bound,
)


class TestDriftRow:
    def test_deviation_basic(self):
        assert DriftRow("x", 110.0, 100.0).deviation == pytest.approx(0.10)
        assert DriftRow("x", 90.0, 100.0).deviation == pytest.approx(-0.10)

    def test_both_zero_is_zero(self):
        assert DriftRow("x", 0.0, 0.0).deviation == 0.0

    def test_predicted_zero_is_signed_inf(self):
        assert DriftRow("x", 5.0, 0.0).deviation == math.inf
        assert DriftRow("x", -5.0, 0.0).deviation == -math.inf

    def test_render_units(self):
        assert "2.00 MB/s" in DriftRow("r", 2e6, 1e6, "B/s").render()
        assert "0.5000 s" in DriftRow("t", 0.5, 1.0, "s").render()
        assert "50.00%" in DriftRow("f", 0.5, 1.0, "%").render()

    def test_as_dict_inf_deviation_none(self):
        d = DriftRow("x", 1.0, 0.0).as_dict()
        assert d["deviation"] is None


class TestDriftReport:
    def test_add_and_render(self):
        rep = DriftReport("t")
        rep.add("alpha", 1.0, 2.0, "s")
        rep.note("hello")
        out = rep.render()
        assert "t" in out and "alpha" in out and "(hello)" in out
        assert "-50.0%" in out

    def test_max_abs_deviation_ignores_inf(self):
        rep = DriftReport("t")
        rep.add("a", 1.1, 1.0)
        rep.add("b", 1.0, 0.0)  # inf
        assert rep.max_abs_deviation == pytest.approx(0.1)

    def test_as_dict(self):
        rep = DriftReport("t")
        rep.add("a", 1.0, 1.0)
        d = rep.as_dict()
        assert d["title"] == "t"
        assert len(d["rows"]) == 1


class _Stats:
    """Duck-typed DrainStats for drift tests."""

    def __init__(self):
        self.bytes_in = 0
        self.bytes_out = 0
        self.stalls = 0
        self.stall_seconds = 0.0
        self.compress = StageCounter()
        self.write = StageCounter()
        self.drain = StageCounter()

    @property
    def achieved_factor(self):
        return 1.0 - self.bytes_out / self.bytes_in if self.bytes_in else 0.0


SPEC = CompressionSpec(factor=0.5, compress_rate=100e6, decompress_rate=1e9, name="t")
PARAMS = CRParameters(
    checkpoint_size=1e6, local_bandwidth=1e9, io_bandwidth=25e6, local_interval=10.0
)


class TestDrainDrift:
    def test_bound_io_limited(self):
        # io term: 25e6 / 0.5 = 50e6 < compress_rate 100e6
        assert drain_rate_bound(PARAMS, SPEC) == pytest.approx(50e6)

    def test_bound_compute_limited(self):
        slow = SPEC.with_factor(0.9)  # io term 250e6 > compress 100e6
        assert drain_rate_bound(PARAMS, slow) == pytest.approx(100e6)

    def test_report_rows(self):
        stats = _Stats()
        stats.bytes_in = 100_000_000
        stats.bytes_out = 50_000_000
        stats.compress.add(50_000_000, 1.0)  # compressed bytes, 1s
        stats.write.add(50_000_000, 2.0)
        stats.drain.add(100_000_000, 2.0)  # uncompressed, end-to-end
        rep = drain_drift(stats, PARAMS, SPEC)
        rows = {r.metric: r for r in rep.rows}
        # compress rate is measured in *uncompressed* B/s: bytes_in/seconds
        assert rows["compress rate"].measured == pytest.approx(100e6)
        assert rows["drain rate (end-to-end)"].predicted == pytest.approx(50e6)
        assert rows["compression factor"].measured == pytest.approx(0.5)

    def test_stall_note(self):
        stats = _Stats()
        stats.stalls = 3
        stats.stall_seconds = 0.5
        rep = drain_drift(stats, PARAMS, SPEC)
        assert any("3 stalls" in n for n in rep.notes)

    def test_empty_stats_no_rows(self):
        rep = drain_drift(_Stats(), PARAMS, SPEC)
        assert rep.rows == []
        assert rep.notes  # bound note always present


class TestBlockedDrift:
    def _metrics(self):
        m = RuntimeMetrics()
        m.checkpoints = 4
        m.blocked_seconds["local"] = 0.004
        return m

    def test_ndp_mode_predicts_zero_io(self):
        m = self._metrics()
        m.blocked_seconds["io"] = 0.0
        rep = blocked_drift(m, PARAMS, SPEC, mode="ndp")
        rows = {r.metric: r for r in rep.rows}
        assert rows["blocked I/O s (total)"].predicted == 0.0
        assert rows["blocked local s/ckpt"].measured == pytest.approx(0.001)
        assert rows["blocked local s/ckpt"].predicted == pytest.approx(
            PARAMS.local_commit_time
        )

    def test_host_mode_predicts_io_commit(self):
        m = self._metrics()
        m.blocked_seconds["io"] = 0.08
        rep = blocked_drift(m, PARAMS, SPEC, mode="host", io_every=2)
        rows = {r.metric: r for r in rep.rows}
        assert rows["blocked I/O s/push"].measured == pytest.approx(0.04)  # 2 pushes
        assert rows["blocked I/O s/push"].predicted == pytest.approx(
            PARAMS.io_commit_time(SPEC)
        )

    def test_restore_row_only_when_restored(self):
        m = self._metrics()
        rep = blocked_drift(m, PARAMS, SPEC)
        assert not any("restore" in r.metric for r in rep.rows)
        m.restores = 1
        m.blocked_seconds["restore"] = 0.002
        rep = blocked_drift(m, PARAMS, SPEC)
        assert any("restore" in r.metric for r in rep.rows)


class TestBreakdownDrift:
    def test_against_model_result(self):
        params = paper_parameters()
        model = multilevel_ndp(params, NDP_GZIP1)
        measured = model.breakdown  # zero drift against itself
        rep = breakdown_drift(measured, model)
        assert rep.max_abs_deviation == 0.0
        names = [r.metric for r in rep.rows]
        assert "efficiency" in names
        assert "rerun_io" in names
        assert len(names) == 7

    def test_accepts_raw_breakdown(self):
        b = OverheadBreakdown(
            compute=0.9,
            checkpoint_local=0.04,
            checkpoint_io=0.0,
            restore_local=0.01,
            restore_io=0.01,
            rerun_local=0.02,
            rerun_io=0.02,
        )
        rep = breakdown_drift(b, b)
        assert rep.max_abs_deviation == 0.0
