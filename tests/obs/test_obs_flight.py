"""Flight recorder: bounded rings, tap capture, span-tree nesting."""

import pytest

from repro.obs import trace
from repro.obs.flight import FlightRecorder, span_tree


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    trace.disable()
    yield
    trace.disable()


def _span(ctx, parent=None, start=0.0, kind="k", trace_id="t1"):
    rec = {
        "lane": "l",
        "start": start,
        "end": start + 1.0,
        "kind": kind,
        "label": "",
        "trace_id": trace_id,
        "ctx": ctx,
    }
    if parent:
        rec["ctx_parent"] = parent
    return rec


class TestSpanTree:
    def test_nests_by_ctx_parent(self):
        spans = [
            _span("root", start=0.0),
            _span("b", parent="root", start=2.0),
            _span("a", parent="root", start=1.0),
            _span("a1", parent="a", start=1.5),
        ]
        (tree,) = span_tree(spans)
        assert tree["span"]["ctx"] == "root"
        assert [n["span"]["ctx"] for n in tree["children"]] == ["a", "b"]  # by start
        assert tree["children"][0]["children"][0]["span"]["ctx"] == "a1"

    def test_absent_parent_becomes_root(self):
        roots = span_tree([_span("x", parent="gone")])
        assert [n["span"]["ctx"] for n in roots] == ["x"]

    def test_self_parent_does_not_recurse(self):
        roots = span_tree([_span("x", parent="x")])
        assert len(roots) == 1 and roots[0]["children"] == []

    def test_spans_without_ctx_are_skipped(self):
        assert span_tree([{"lane": "l", "start": 0, "end": 1, "kind": "k", "label": ""}]) == []


class TestLifecycle:
    def test_finish_moves_to_ring(self):
        fr = FlightRecorder(capacity=4)
        fr.begin("t1", "POST", "/v1/simulate")
        assert len(fr) == 0
        fr.finish("t1", 200, 0.05)
        assert len(fr) == 1
        (summary,) = fr.requests()
        assert summary["trace_id"] == "t1"
        assert summary["status"] == 200
        assert summary["duration"] == 0.05
        assert summary["spans"] == 0

    def test_ring_capacity_evicts_oldest(self):
        fr = FlightRecorder(capacity=2)
        for i in range(5):
            fr.begin(f"t{i}", "GET", "/healthz")
            fr.finish(f"t{i}", 200, float(i))
        assert len(fr) == 2
        assert [e["trace_id"] for e in fr.requests()] == ["t4", "t3"]

    def test_discard_drops_without_recording(self):
        fr = FlightRecorder()
        fr.begin("t1", "POST", "/v1/simulate")
        fr.discard("t1")
        fr.finish("t1", 200, 0.1)  # no-op: already discarded
        assert len(fr) == 0

    def test_finish_unknown_trace_is_noop(self):
        fr = FlightRecorder()
        fr.finish("never-begun", 200, 0.1)
        assert len(fr) == 0

    def test_pending_backstop_evicts_oldest_orphan(self):
        fr = FlightRecorder(max_pending=2)
        fr.begin("t1", "GET", "/a")
        fr.begin("t2", "GET", "/b")
        fr.begin("t3", "GET", "/c")  # evicts t1
        fr.finish("t1", 200, 0.1)
        fr.finish("t3", 200, 0.1)
        assert [e["trace_id"] for e in fr.requests()] == ["t3"]

    def test_server_timing_copied_into_summary(self):
        fr = FlightRecorder()
        fr.begin("t1", "POST", "/v1/simulate")
        fr.finish("t1", 200, 0.1, server_timing={"compute": 0.09})
        assert fr.requests()[0]["server_timing"] == {"compute": 0.09}

    def test_slowest_sorts_by_duration(self):
        fr = FlightRecorder()
        for i, dur in enumerate([0.3, 0.9, 0.1]):
            fr.begin(f"t{i}", "GET", "/x")
            fr.finish(f"t{i}", 200, dur)
        slowest = fr.requests(n=2, slowest=True)
        assert [e["trace_id"] for e in slowest] == ["t1", "t0"]


class TestTapCapture:
    def test_captures_spans_for_registered_traces_only(self):
        trace.configure()
        fr = FlightRecorder().install()
        try:
            fr.begin("mine", "POST", "/v1/simulate")
            with trace.span("server", "request", ctx=trace.TraceContext("mine")):
                pass
            with trace.span("server", "request", ctx=trace.TraceContext("other")):
                pass
            with trace.span("server", "untraced"):  # no ctx -> no trace_id
                pass
            fr.finish("mine", 200, 0.1)
        finally:
            fr.uninstall()
        entry = fr.lookup("mine")
        assert len(entry["spans"]) == 1
        assert entry["spans"][0]["trace_id"] == "mine"
        assert len(entry["tree"]) == 1

    def test_lookup_builds_nested_tree(self):
        trace.configure()
        fr = FlightRecorder().install()
        try:
            fr.begin("t", "POST", "/v1/simulate")
            with trace.span("server", "request", ctx=trace.TraceContext("t")):
                with trace.span("coalescer", "wait"):
                    pass
                with trace.span("batcher", "window"):
                    pass
            fr.finish("t", 200, 0.1)
        finally:
            fr.uninstall()
        (root,) = fr.lookup("t")["tree"]
        assert root["span"]["kind"] == "request"
        assert sorted(n["span"]["kind"] for n in root["children"]) == ["wait", "window"]

    def test_max_spans_cap_counts_drops(self):
        trace.configure()
        fr = FlightRecorder(max_spans=2).install()
        try:
            fr.begin("t", "POST", "/v1/simulate")
            for _ in range(5):
                with trace.span("server", "request", ctx=trace.TraceContext("t")):
                    pass
            fr.finish("t", 200, 0.1)
        finally:
            fr.uninstall()
        entry = fr.lookup("t")
        assert len(entry["spans"]) == 2
        assert entry["spans_dropped"] == 3

    def test_tracing_disabled_still_records_summaries(self):
        fr = FlightRecorder().install()
        try:
            fr.begin("t", "GET", "/stats")
            fr.finish("t", 200, 0.01)
        finally:
            fr.uninstall()
        entry = fr.lookup("t")
        assert entry["spans"] == [] and entry["status"] == 200

    def test_install_is_idempotent(self):
        trace.configure()
        fr = FlightRecorder().install().install()
        try:
            fr.begin("t", "GET", "/x")
            with trace.span("s", "k", ctx=trace.TraceContext("t")):
                pass
            fr.finish("t", 200, 0.1)
        finally:
            fr.uninstall()
            fr.uninstall()
        assert len(fr.lookup("t")["spans"]) == 1
