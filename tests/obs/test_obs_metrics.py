"""Metrics registry: instruments, exporters, adapters."""

import math

import pytest

from repro.ckpt.metrics import RuntimeMetrics, StageCounter
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricError,
    MetricsRegistry,
    register_runtime_metrics,
    register_stage_counter,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, reg):
        c = reg.counter("ops_total", "ops")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labels_are_independent_cells(self, reg):
        c = reg.counter("ops_total")
        c.inc(direction="compress")
        c.inc(3, direction="decompress")
        assert c.value(direction="compress") == 1.0
        assert c.value(direction="decompress") == 3.0
        assert c.value() == 0.0

    def test_label_order_irrelevant(self, reg):
        c = reg.counter("ops_total")
        c.inc(a=1, b=2)
        assert c.value(b=2, a=1) == 1.0

    def test_negative_rejected(self, reg):
        with pytest.raises(MetricError):
            reg.counter("ops_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self, reg):
        g = reg.gauge("depth")
        g.set(5)
        g.inc(2)
        g.dec()
        assert g.value() == 6.0

    def test_callback_evaluated_at_read(self, reg):
        state = {"v": 1.0}
        g = reg.gauge("live")
        g.set_function(lambda: state["v"])
        assert g.value() == 1.0
        state["v"] = 7.0
        assert g.value() == 7.0

    def test_callback_rebind_replaces(self, reg):
        g = reg.gauge("live")
        g.set_function(lambda: 1.0)
        g.set_function(lambda: 2.0)
        assert g.value() == 2.0

    def test_dead_callback_yields_nan_in_samples(self, reg):
        g = reg.gauge("live")
        g.set_function(lambda: 1 / 0)
        ((labels, value),) = g.samples()
        assert labels == {}
        assert math.isnan(value)


class TestHistogram:
    def test_observe_and_value(self, reg):
        h = reg.histogram("latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(99.0)
        cell = h.value()
        assert cell["count"] == 3
        assert cell["sum"] == pytest.approx(99.55)
        assert cell["counts"] == [1, 1, 1]  # one per bucket incl. +Inf

    def test_inf_bucket_appended(self, reg):
        h = reg.histogram("latency", buckets=(1.0,))
        assert h.buckets == (1.0, math.inf)

    def test_default_buckets_end_at_inf(self):
        assert DEFAULT_BUCKETS[-1] == math.inf

    def test_prometheus_renders_cumulative(self, reg):
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = reg.render_prometheus()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text


class TestRegistry:
    def test_get_or_create_shares_instrument(self, reg):
        assert reg.counter("x_total") is reg.counter("x_total")

    def test_type_clash_raises(self, reg):
        reg.counter("x_total")
        with pytest.raises(MetricError, match="counter"):
            reg.gauge("x_total")

    def test_invalid_name_rejected(self, reg):
        with pytest.raises(MetricError):
            reg.counter("bad name!")

    def test_names_sorted(self, reg):
        reg.gauge("b")
        reg.counter("a_total")
        assert reg.names() == ["a_total", "b"]

    def test_reset_zeroes_but_keeps_handles(self, reg):
        c = reg.counter("x_total")
        c.inc(5)
        reg.reset()
        assert c.value() == 0.0
        c.inc()
        assert c.value() == 1.0
        assert reg.counter("x_total") is c

    def test_snapshot_shape(self, reg):
        reg.counter("x_total", "things").inc(2, mode="ndp")
        snap = reg.snapshot()
        assert snap["x_total"]["type"] == "counter"
        assert snap["x_total"]["help"] == "things"
        assert snap["x_total"]["samples"] == [
            {"labels": {"mode": "ndp"}, "value": 2.0}
        ]

    def test_prometheus_text_format(self, reg):
        reg.counter("x_total", "things").inc(mode="ndp")
        reg.gauge("depth").set(3)
        text = reg.render_prometheus()
        assert "# HELP x_total things" in text
        assert "# TYPE x_total counter" in text
        assert 'x_total{mode="ndp"} 1' in text
        assert "depth 3" in text

    def test_prometheus_inf_value(self, reg):
        reg.gauge("rate").set(math.inf)
        assert "rate +Inf" in reg.render_prometheus()

    def test_global_registry_exists(self):
        assert obs_metrics.get_registry() is obs_metrics.REGISTRY


class TestAdapters:
    def test_stage_counter_gauges(self, reg):
        stage = StageCounter()
        register_stage_counter(stage, "drain_compress", reg, app="a")
        stage.add(1000, 0.5)
        assert reg.gauge("drain_compress_bytes_total").value(app="a") == 1000
        assert reg.gauge("drain_compress_bytes_per_second").value(app="a") == 2000.0
        assert reg.gauge("drain_compress_ops_total").value(app="a") == 1

    def test_runtime_metrics_gauges(self, reg):
        m = RuntimeMetrics()
        register_runtime_metrics(m, reg, app="x")
        m.checkpoints = 4
        m.blocked_seconds["local"] = 1.25
        assert reg.gauge("cr_checkpoints").value(app="x") == 4
        assert reg.gauge("cr_blocked_seconds").value(activity="local", app="x") == 1.25
        assert reg.gauge("cr_blocked_seconds").value(activity="io", app="x") == 0.0

    def test_drain_stats_gauges(self, reg):
        from repro.ckpt.ndp_daemon import DrainStats

        stats = DrainStats()
        obs_metrics.register_drain_stats(stats, reg, app="d")
        stats.bytes_in = 100
        stats.bytes_out = 40
        stats.stalls = 2
        stats.compress.add(100, 0.1)
        assert reg.gauge("ndp_bytes_in").value(app="d") == 100
        assert reg.gauge("ndp_stalls").value(app="d") == 2
        assert reg.gauge("ndp_achieved_factor").value(app="d") == pytest.approx(0.6)
        assert reg.gauge("ndp_compress_bytes_total").value(app="d") == 100

    def test_adapters_report_live_in_snapshot(self, reg):
        stage = StageCounter()
        register_stage_counter(stage, "s", reg)
        before = reg.snapshot()["s_bytes_total"]["samples"][0]["value"]
        stage.add(10, 0.1)
        after = reg.snapshot()["s_bytes_total"]["samples"][0]["value"]
        assert (before, after) == (0, 10)


class TestHistogramBisect:
    def test_bisect_matches_linear_scan_semantics(self, reg):
        """``value <= edge`` picks the first qualifying bucket — exactly
        what the old linear scan did, for every edge and in-between."""
        h = reg.histogram("lat_seconds", "latency")
        edges = h.buckets

        def linear_bucket(value):
            for i, edge in enumerate(edges):
                if value <= edge:
                    return i
            raise AssertionError("+Inf edge always matches")

        probes = [0.0, -1.0, 1e12, math.inf]
        for e in edges[:-1]:
            probes += [e, e * 0.999, e * 1.001]
        for value in probes:
            h2 = MetricsRegistry().histogram("x_seconds", "x")
            h2.observe(value)
            counts = h2.value()["counts"]
            assert counts[linear_bucket(value)] == 1, value
            assert sum(counts) == 1


class TestHistogramQuantile:
    def test_uniform_distribution_interpolates(self, reg):
        h = reg.histogram("q_seconds", "q", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0):  # one observation per finite bucket
            h.observe(v)
        # rank 1.5 of 3 falls mid-bucket-2: 1.0 + (2.0-1.0) * 0.5
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(0.0) == pytest.approx(0.0)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_known_percentiles(self, reg):
        h = reg.histogram("p_seconds", "p", buckets=(0.01, 0.1, 1.0))
        for _ in range(90):
            h.observe(0.005)  # bucket 1
        for _ in range(10):
            h.observe(0.05)  # bucket 2
        # p50: rank 50 of 100 falls 50/90 into bucket 1's span
        assert h.quantile(0.5) == pytest.approx(0.01 * (50 / 90))
        # p95: rank 95 -> 5 observations into bucket 2's 10
        assert h.quantile(0.95) == pytest.approx(0.01 + 0.09 * 0.5)

    def test_inf_bucket_returns_highest_finite_edge(self, reg):
        h = reg.histogram("inf_seconds", "inf", buckets=(1.0,))
        h.observe(50.0)  # lands in +Inf
        assert h.quantile(0.9) == 1.0

    def test_empty_histogram_is_nan(self, reg):
        h = reg.histogram("e_seconds", "e")
        assert math.isnan(h.quantile(0.5))

    def test_out_of_range_q_rejected(self, reg):
        h = reg.histogram("r_seconds", "r")
        with pytest.raises(MetricError):
            h.quantile(1.5)
        with pytest.raises(MetricError):
            h.quantile(-0.1)

    def test_labelled_cells_independent(self, reg):
        h = reg.histogram("lbl_seconds", "l", buckets=(1.0, 10.0))
        h.observe(0.5, endpoint="fast")
        h.observe(9.0, endpoint="slow")
        assert h.quantile(0.99, endpoint="fast") <= 1.0
        assert h.quantile(0.99, endpoint="slow") > 1.0


class TestExemplars:
    def test_observe_attaches_exemplar_to_bucket(self, reg):
        h = reg.histogram("ex_seconds", "ex", buckets=(1.0,))
        h.observe(0.5, exemplar="trace-a")
        h.observe(0.7, exemplar="trace-b")  # same bucket: last writer wins
        h.observe(0.2)  # no exemplar: does not clobber
        ex = h.value()["exemplars"]
        assert ex[0] == ("trace-b", 0.7)

    def test_no_exemplars_key_without_exemplars(self, reg):
        h = reg.histogram("plain_seconds", "p")
        h.observe(0.5)
        assert "exemplars" not in h.value()

    def test_prometheus_renders_openmetrics_exemplar(self, reg):
        h = reg.histogram("lat_seconds", "latency", buckets=(1.0,))
        h.observe(0.5, exemplar="abc123")
        text = reg.render_prometheus()
        assert 'lat_seconds_bucket{le="1"} 1 # {trace_id="abc123"} 0.5' in text
        # The +Inf line carries no exemplar.
        inf_line = next(l for l in text.splitlines() if '+Inf' in l)
        assert "#" not in inf_line
