"""SLO parsing, rolling windows, burn rates, metric export."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.slo import (
    WINDOWS,
    SLOError,
    SLOTarget,
    SLOTracker,
    parse_duration,
    parse_slo,
)


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,want",
        [
            ("50ms", 0.05),
            ("1.5s", 1.5),
            ("250us", 250e-6),
            ("2m", 120.0),
            ("0.25", 0.25),  # bare seconds
            (" 10 ms ", 0.01),
        ],
    )
    def test_units(self, text, want):
        assert parse_duration(text) == pytest.approx(want)

    @pytest.mark.parametrize("text", ["", "ms", "50 hours", "1h", "-3ms"])
    def test_rejects_garbage(self, text):
        with pytest.raises(SLOError):
            parse_duration(text)


class TestParseSlo:
    def test_canonical_spec(self):
        t = parse_slo("simulate=50ms:0.99")
        assert t == SLOTarget("simulate", 0.05, 0.99)

    def test_bare_seconds_threshold(self):
        assert parse_slo("sweep=0.25:0.95").threshold_s == 0.25

    @pytest.mark.parametrize(
        "spec",
        [
            "simulate",  # no '='
            "=50ms:0.99",  # empty route
            "simulate=50ms",  # no target
            "simulate=0ms:0.99",  # zero threshold
            "simulate=50ms:1.0",  # target not in (0,1)
            "simulate=50ms:0",
            "simulate=50ms:huge",
        ],
    )
    def test_rejects_malformed(self, spec):
        with pytest.raises(SLOError):
            parse_slo(spec)


class TestTracker:
    def _tracker(self):
        clock = FakeClock()
        return SLOTracker((parse_slo("simulate=50ms:0.99"),), clock=clock), clock

    def test_untracked_route_returns_none(self):
        tracker, _ = self._tracker()
        assert tracker.record("sweep", 0.001) is None
        assert tracker.snapshot() == {"simulate": tracker.snapshot()["simulate"]}

    def test_good_and_bad_classification(self):
        tracker, _ = self._tracker()
        assert tracker.record("simulate", 0.01) is True
        assert tracker.record("simulate", 0.50) is False  # too slow
        assert tracker.record("simulate", 0.01, ok=False) is False  # errored
        snap = tracker.snapshot()["simulate"]
        assert (snap["good"], snap["bad"]) == (1, 2)

    def test_burn_rate_math(self):
        # 1% errors at a 99% target burns the budget exactly at rate 1.
        assert SLOTracker.burn_rate(99, 1, 0.99) == pytest.approx(1.0)
        assert SLOTracker.burn_rate(0, 10, 0.99) == pytest.approx(100.0)
        assert SLOTracker.burn_rate(10, 0, 0.99) == 0.0
        assert SLOTracker.burn_rate(0, 0, 0.99) == 0.0

    def test_snapshot_windows_and_objective(self):
        tracker, _ = self._tracker()
        tracker.record("simulate", 0.01)
        snap = tracker.snapshot()["simulate"]
        assert snap["objective"] == "50ms:0.99"
        assert set(snap["windows"]) == {name for name, _ in WINDOWS}
        assert snap["windows"]["5m"] == {"good": 1, "bad": 0, "burn_rate": 0.0}

    def test_short_window_forgets_old_bad_requests(self):
        tracker, clock = self._tracker()
        for _ in range(5):
            tracker.record("simulate", 9.9)  # all bad
        clock.advance(400.0)  # > 5m, < 1h
        tracker.record("simulate", 0.01)
        snap = tracker.snapshot()["simulate"]
        assert snap["windows"]["5m"] == {"good": 1, "bad": 0, "burn_rate": 0.0}
        assert snap["windows"]["1h"]["bad"] == 5
        assert snap["windows"]["1h"]["burn_rate"] > 1.0
        # Lifetime totals never forget.
        assert (snap["good"], snap["bad"]) == (1, 5)

    def test_long_window_expires_after_an_hour(self):
        tracker, clock = self._tracker()
        tracker.record("simulate", 9.9)
        clock.advance(3700.0)
        snap = tracker.snapshot()["simulate"]
        assert snap["windows"]["1h"] == {"good": 0, "bad": 0, "burn_rate": 0.0}

    def test_ring_slot_reuse_resets_stale_epochs(self):
        tracker, clock = self._tracker()
        tracker.record("simulate", 0.01)
        clock.advance(3600.0)  # exactly one ring revolution: same slot index
        tracker.record("simulate", 9.9)
        snap = tracker.snapshot()["simulate"]
        assert (snap["windows"]["5m"]["good"], snap["windows"]["5m"]["bad"]) == (0, 1)
        assert snap["windows"]["5m"]["burn_rate"] == pytest.approx(100.0)

    def test_register_metrics_exports_gauges(self):
        tracker, _ = self._tracker()
        reg = obs_metrics.MetricsRegistry()
        tracker.register_metrics(reg)
        tracker.record("simulate", 0.01)
        tracker.record("simulate", 9.9)
        text = reg.render_prometheus()
        assert 'repro_slo_requests_total{route="simulate",verdict="good"} 1' in text
        assert 'repro_slo_requests_total{route="simulate",verdict="bad"} 1' in text
        assert 'repro_slo_target{route="simulate"} 0.99' in text
        assert 'repro_slo_burn_rate{route="simulate",window="5m"} 50' in text
