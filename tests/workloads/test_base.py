"""Mini-app base infrastructure: quantization, serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.workloads.base import (
    deserialize_state,
    quantize_mantissa,
    serialize_state,
    state_nbytes,
)


class TestQuantize:
    def test_full_precision_is_identity(self, rng):
        a = rng.standard_normal(100)
        assert np.array_equal(quantize_mantissa(a, 52.0), a)

    def test_zero_bits_keeps_exponent_only(self, rng):
        a = rng.standard_normal(100) + 10.0
        q = quantize_mantissa(a, 0.0)
        # Mantissa cleared: each value becomes a power of two (its exponent).
        mantissas = q.view(np.uint64) & np.uint64((1 << 52) - 1)
        assert np.all(mantissas == 0)

    def test_monotone_error(self, rng):
        a = rng.standard_normal(1000)
        err4 = np.abs(quantize_mantissa(a, 4.0) - a).max()
        err20 = np.abs(quantize_mantissa(a, 20.0) - a).max()
        assert err20 <= err4

    def test_relative_error_bounded(self, rng):
        a = rng.standard_normal(1000) + 5.0
        q = quantize_mantissa(a, 10.0)
        rel = np.abs((q - a) / a)
        assert rel.max() < 2.0**-10 * 2  # keep 10 bits => rel err < 2^-10ish

    def test_fractional_bits_between_integers(self, rng):
        a = rng.standard_normal(5000)
        import zlib

        def factor(bits):
            return len(zlib.compress(quantize_mantissa(a, bits).tobytes(), 1))

        assert factor(4.0) <= factor(4.5) <= factor(5.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            quantize_mantissa(rng.standard_normal(4), 53.0)
        with pytest.raises(TypeError):
            quantize_mantissa(np.zeros(4, dtype=np.float32), 10.0)

    def test_preserves_shape(self, rng):
        a = rng.standard_normal((7, 8, 9))
        assert quantize_mantissa(a, 8.0).shape == (7, 8, 9)


class TestSerialization:
    def test_round_trip_mixed_dtypes(self, rng):
        state = {
            "pos": rng.standard_normal((10, 3)),
            "types": rng.integers(0, 5, 10, dtype=np.int32),
            "flags": np.array([True, False, True]),
        }
        back = deserialize_state(serialize_state(state))
        assert set(back) == set(state)
        for k in state:
            assert np.array_equal(back[k], state[k])
            assert back[k].dtype == state[k].dtype

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            deserialize_state(b"JUNK" + bytes(100))

    def test_state_nbytes(self, rng):
        state = {"a": np.zeros(100), "b": np.zeros(50, dtype=np.float32)}
        assert state_nbytes(state) == 100 * 8 + 50 * 4

    def test_empty_state(self):
        assert deserialize_state(serialize_state({})) == {}

    def test_non_contiguous_array_handled(self, rng):
        a = rng.standard_normal((10, 10))[::2, ::2]
        assert not a.flags.c_contiguous
        back = deserialize_state(serialize_state({"v": a}))
        assert np.array_equal(back["v"], a)

    @given(
        hnp.arrays(
            dtype=st.sampled_from([np.float64, np.int32, np.uint8]),
            shape=hnp.array_shapes(max_dims=3, max_side=16),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_property_round_trip(self, arr):
        back = deserialize_state(serialize_state({"x": arr}))
        assert np.array_equal(back["x"], arr, equal_nan=True)
        assert back["x"].dtype == arr.dtype
        assert back["x"].shape == arr.shape
