"""Checkpoint time-series datasets and change statistics."""

import numpy as np
import pytest

from repro.workloads.sequences import (
    SequenceStats,
    change_statistics,
    checkpoint_sequence,
)


class TestSequenceGeneration:
    def test_count_and_distinctness(self):
        seq = checkpoint_sequence("HPCCG", count=3, grid=10)
        assert len(seq) == 3
        assert seq[0] != seq[1] != seq[2]

    def test_reproducible(self):
        a = checkpoint_sequence("miniAero", count=2, seed=4, grid=24)
        b = checkpoint_sequence("miniAero", count=2, seed=4, grid=24)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            checkpoint_sequence("HPCCG", count=1, grid=10)
        with pytest.raises(ValueError):
            checkpoint_sequence("HPCCG", count=2, steps_between=0, grid=10)


class TestChangeStatistics:
    def test_identical_checkpoints_zero_dirty(self):
        blob = bytes(np.arange(8192, dtype=np.uint8) % 251)
        stats = change_statistics([blob, blob])
        (t,) = stats.transitions
        assert t.dirty_byte_fraction == 0.0
        assert t.dirty_block_fraction == 0.0
        assert t.delta_gzip_factor > 0.99  # all-zero delta

    def test_fully_random_rewrite_all_dirty(self, rng):
        a = rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()
        b = rng.integers(0, 256, 8192, dtype=np.uint8).tobytes()
        (t,) = change_statistics([a, b]).transitions
        assert t.dirty_byte_fraction > 0.95
        assert t.dirty_block_fraction == 1.0

    def test_block_granularity_amplification(self, rng):
        """One dirty byte per 4K block: page-granular incremental
        checkpointing writes everything although almost nothing changed."""
        a = bytearray(rng.integers(0, 256, 16 * 4096, dtype=np.uint8).tobytes())
        b = bytearray(a)
        for blk in range(16):
            b[blk * 4096] ^= 0xFF
        (t,) = change_statistics([bytes(a), bytes(b)]).transitions
        assert t.dirty_byte_fraction < 0.001
        assert t.dirty_block_fraction == 1.0

    def test_cg_solver_statistics(self):
        """One CG iteration dirties the working vectors but not the RHS:
        dirty bytes well below 100%, delta beats raw compression."""
        seq = checkpoint_sequence("HPCCG", count=4, grid=10)
        stats = change_statistics(seq)
        assert 0.05 < stats.mean_dirty_bytes < 0.95
        assert stats.mean_delta_gain > 0.05

    def test_aggregate_properties(self):
        seq = checkpoint_sequence("miniAero", count=4, grid=24)
        stats = change_statistics(seq)
        assert len(stats.transitions) == 3
        assert 0.0 <= stats.mean_dirty_blocks <= 1.0
        assert isinstance(stats, SequenceStats)

    def test_validation(self):
        with pytest.raises(ValueError):
            change_statistics([b"x"])
        with pytest.raises(ValueError):
            change_statistics([b"x" * 1000, b"y" * 1000], block_size=16)
