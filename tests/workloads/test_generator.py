"""Per-rank checkpoint data generation for the study."""

import pytest

from repro.workloads.generator import checkpoint_chunks, rank_apps, study_datasets


class TestRankApps:
    def test_requested_rank_count(self):
        apps = rank_apps("HPCCG", ranks=3, warmup_steps=1)
        assert len(apps) == 3

    def test_ranks_independently_seeded(self):
        import numpy as np

        # Full precision: the per-rank RHS noise must differ.  (Calibrated
        # HPCCG quantizes to ~1.6 mantissa bits, which collapses the tiny
        # RHS noise to identical constants — that is by design.)
        a, b = rank_apps("HPCCG", ranks=2, warmup_steps=0, calibrated=False)
        assert not np.array_equal(a.state()["b"], b.state()["b"])

    def test_calibrated_md_ranks_differ(self):
        import numpy as np

        a, b = rank_apps("CoMD", ranks=2, warmup_steps=0)
        assert not np.array_equal(a.state()["positions"], b.state()["positions"])

    def test_warmup_applied(self):
        (app,) = rank_apps("HPCCG", ranks=1, warmup_steps=4)
        assert app.steps_taken == 4

    def test_ranks_validation(self):
        with pytest.raises(ValueError):
            rank_apps("HPCCG", ranks=0)


class TestChunks:
    def test_one_blob_per_rank(self):
        chunks = checkpoint_chunks("miniAero", ranks=2, warmup_steps=1)
        assert len(chunks) == 2
        assert all(isinstance(c, bytes) and len(c) > 1000 for c in chunks)

    def test_reproducible(self):
        a = checkpoint_chunks("miniAero", ranks=1, seed=5, warmup_steps=1)
        b = checkpoint_chunks("miniAero", ranks=1, seed=5, warmup_steps=1)
        assert a == b

    def test_seed_changes_data(self):
        a = checkpoint_chunks("miniAero", ranks=1, seed=5, warmup_steps=1)
        b = checkpoint_chunks("miniAero", ranks=1, seed=6, warmup_steps=1)
        assert a != b


class TestStudyDatasets:
    def test_default_covers_all_apps(self):
        ds = study_datasets(ranks=1, warmup_steps=1)
        assert len(ds) == 7

    def test_subset_selection(self):
        ds = study_datasets(apps=["HPCCG", "CoMD"], ranks=1, warmup_steps=1)
        assert list(ds) == ["HPCCG", "CoMD"]
