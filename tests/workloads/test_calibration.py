"""Compression-factor calibration of the proxy checkpoints."""

import pytest

from repro.compression.study import paper_factor
from repro.workloads.calibration import (
    CALIBRATED_PRECISION,
    calibrate_precision,
    calibrated_app,
    gzip1_factor,
)
from repro.workloads.miniapps import APP_REGISTRY, make_app


class TestGzip1Factor:
    def test_zero_for_random(self, rng):
        import numpy as np

        data = rng.integers(0, 256, 50000, dtype=np.uint8).tobytes()
        assert gzip1_factor(data) < 0.05

    def test_high_for_zeros(self):
        assert gzip1_factor(bytes(50000)) > 0.99

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            gzip1_factor(b"")


class TestCalibratedConstants:
    def test_constants_cover_all_apps(self):
        assert set(CALIBRATED_PRECISION) == set(APP_REGISTRY)

    @pytest.mark.parametrize("name", sorted(APP_REGISTRY))
    def test_calibrated_factor_close_to_paper(self, name):
        """The cached knobs must reproduce Table 2's gzip(1) column."""
        app = calibrated_app(name, seed=0)
        app.run(5)
        achieved = gzip1_factor(app.checkpoint_bytes())
        target = paper_factor(name, "gzip(1)")
        assert achieved == pytest.approx(target, abs=0.04), (
            f"{name}: calibrated factor {achieved:.3f} vs paper {target:.3f}"
        )


class TestBisection:
    def test_converges_on_reachable_target(self):
        bits = calibrate_precision(
            lambda b: make_app("miniFE", seed=1, grid=12, precision_bits=b),
            target_factor=0.60,
            warmup_steps=2,
            tol=0.02,
        )
        app = make_app("miniFE", seed=1, grid=12, precision_bits=bits)
        app.run(2)
        assert gzip1_factor(app.checkpoint_bytes()) == pytest.approx(0.60, abs=0.05)

    def test_clamps_unreachable_low_target(self):
        # A target below the full-precision floor returns the hi endpoint.
        bits = calibrate_precision(
            lambda b: make_app("miniSMAC2D", seed=1, grid=24, precision_bits=b),
            target_factor=0.001,
            warmup_steps=2,
        )
        assert bits == 52.0

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            calibrate_precision(lambda b: make_app("CoMD"), target_factor=1.0)
