"""The seven mini-app proxy kernels: physics sanity, restore fidelity."""

import numpy as np
import pytest

from repro.workloads.base import deserialize_state
from repro.workloads.miniapps import (
    APP_REGISTRY,
    CoMDProxy,
    HPCCGProxy,
    MiniAeroProxy,
    MiniSMAC2DProxy,
    make_app,
)

SMALL_KW = {
    "CoMD": {"n_atoms": 125},
    "miniMD": {"n_atoms": 125},
    "HPCCG": {"grid": 10},
    "pHPCCG": {"grid": 10},
    "miniFE": {"grid": 10},
    "miniSMAC2D": {"grid": 32},
    "miniAero": {"grid": 32},
}


def small(name, seed=0, **kw):
    return make_app(name, seed=seed, **{**SMALL_KW[name], **kw})


class TestRegistry:
    def test_covers_paper_apps(self):
        assert set(APP_REGISTRY) == {
            "CoMD",
            "HPCCG",
            "miniFE",
            "miniMD",
            "miniSMAC2D",
            "miniAero",
            "pHPCCG",
        }

    def test_unknown_app(self):
        with pytest.raises(KeyError):
            make_app("LAMMPS")

    @pytest.mark.parametrize("name", sorted(APP_REGISTRY))
    def test_name_attribute_matches_key(self, name):
        assert small(name).name == name


class TestStepping:
    @pytest.mark.parametrize("name", sorted(APP_REGISTRY))
    def test_steps_change_state_and_stay_finite(self, name):
        app = small(name)
        before = {k: v.copy() for k, v in app.state().items()}
        app.run(3)
        after = app.state()
        assert any(
            not np.array_equal(before[k], after[k]) for k in before
        ), f"{name} state did not evolve"
        for k, v in after.items():
            if np.issubdtype(v.dtype, np.floating):
                assert np.isfinite(v).all(), f"{name}.{k} went non-finite"

    @pytest.mark.parametrize("name", sorted(APP_REGISTRY))
    def test_deterministic_given_seed(self, name):
        a, b = small(name, seed=3), small(name, seed=3)
        a.run(3)
        b.run(3)
        for k, v in a.state().items():
            assert np.array_equal(v, b.state()[k])

    @pytest.mark.parametrize("name", sorted(APP_REGISTRY))
    def test_different_seeds_differ(self, name):
        a, b = small(name, seed=1), small(name, seed=2)
        assert any(
            not np.array_equal(a.state()[k], b.state()[k]) for k in a.state()
        )


class TestRestore:
    @pytest.mark.parametrize("name", sorted(APP_REGISTRY))
    def test_restore_resumes_identically(self, name):
        """Checkpoint, keep running, restore, re-run: trajectories match."""
        app = small(name, seed=5)
        app.run(2)
        snapshot = deserialize_state(app.checkpoint_bytes())
        app.run(3)
        after_direct = {k: v.copy() for k, v in app._raw_state().items()}

        # RNG state is part of what a real checkpoint captures; proxies
        # only draw randomness at init (and CG restart perturbations), so
        # restoring arrays suffices for these step counts.
        app.restore(snapshot)
        app.run(3)
        after_restored = app._raw_state()
        for k in after_direct:
            assert np.allclose(
                after_direct[k], after_restored[k], equal_nan=True
            ), f"{name}.{k} diverged after restore"

    def test_restore_rejects_unknown_array(self):
        app = small("CoMD")
        with pytest.raises(KeyError):
            app.restore({"bogus": np.zeros(3)})

    def test_restore_rejects_shape_mismatch(self):
        app = small("CoMD")
        with pytest.raises(ValueError):
            app.restore({"positions": np.zeros((1, 3))})


class TestPhysics:
    def test_md_momentum_near_zero(self):
        app = CoMDProxy(n_atoms=125, seed=0)
        app.run(5)
        momentum = app.vel.sum(axis=0)
        assert np.abs(momentum).max() < 1e-8 * app.n

    def test_md_positions_stay_in_box(self):
        app = CoMDProxy(n_atoms=125, seed=0)
        app.run(10)
        assert (app.pos >= 0).all() and (app.pos < app.box).all()

    def test_cg_residual_decreases(self):
        app = HPCCGProxy(grid=10, seed=0)
        r0 = app.residual_norm()
        app.run(10)
        assert app.residual_norm() < r0

    def test_smac_divergence_bounded(self):
        app = MiniSMAC2DProxy(grid=32, seed=0)
        app.run(10)
        assert app.max_divergence() < 50.0  # Jacobi projection is approximate

    def test_aero_mass_conserved(self):
        app = MiniAeroProxy(grid=32, seed=0)
        m0 = app.total_mass()
        app.run(20)
        assert app.total_mass() == pytest.approx(m0, rel=1e-6)

    def test_aero_density_positive(self):
        app = MiniAeroProxy(grid=32, seed=0)
        app.run(20)
        assert (app.rho > 0).all()

    def test_minimd_has_types(self):
        app = small("miniMD")
        assert app.state()["types"].dtype == np.int32

    def test_md_energy_conserved_with_small_dt(self):
        app = CoMDProxy(n_atoms=125, seed=2)
        app.dt = 0.0005  # small step: Verlet drift negligible
        e0 = app.total_energy()
        app.run(40)
        drift = abs(app.total_energy() - e0) / max(abs(e0), 1.0)
        assert drift < 0.01

    def test_md_potential_negative_in_bound_state(self):
        app = CoMDProxy(n_atoms=125, seed=2)
        app.run(5)
        assert app.potential_energy() < 0.0


class TestPrecisionKnob:
    def test_lower_precision_more_compressible(self):
        import zlib

        full = small("miniSMAC2D", precision_bits=52.0)
        coarse = small("miniSMAC2D", precision_bits=4.0)
        full.run(3)
        coarse.run(3)
        f_full = len(zlib.compress(full.checkpoint_bytes(), 1))
        f_coarse = len(zlib.compress(coarse.checkpoint_bytes(), 1))
        assert f_coarse < f_full

    def test_checkpoint_size_independent_of_precision(self):
        a = small("HPCCG", precision_bits=52.0)
        b = small("HPCCG", precision_bits=2.0)
        assert len(a.checkpoint_bytes()) == len(b.checkpoint_bytes())
