"""Figure 6 + the Section 6.3 headline: 51% -> 78% from NDP offload."""

import pytest

from repro.experiments import fig6


def test_figure6(benchmark, show):
    result = benchmark(fig6.run)
    show(result)

    # The paper's headline: averaged over p_local in {20..80}% at the 73%
    # factor, host-multilevel+compression ~51% -> NDP+compression ~78%.
    host = result.headline["avg_host_compression"]
    ndp = result.headline["avg_ndp_compression"]
    assert host == pytest.approx(0.51, abs=0.05)
    assert ndp == pytest.approx(0.78, abs=0.04)
    assert ndp / host - 1 > 0.40  # ">50% speedup" claim, with margin

    rows = {r["config"]: r for r in result.rows}
    # Paper, p_local=80% walk-up: 32% -> 62% -> 75% -> 84%.
    assert rows["Local(80%) + I/O-Host"]["average"] == pytest.approx(0.32, abs=0.08)
    assert rows["Local(80%) + I/O-Host + comp"]["average"] == pytest.approx(0.62, abs=0.06)
    assert rows["Local(80%) + I/O-NDP"]["average"] == pytest.approx(0.75, abs=0.05)
    assert rows["Local(80%) + I/O-NDP + comp"]["average"] == pytest.approx(0.84, abs=0.04)

    # Per-app ordering: more-compressible apps benefit more from the
    # compressed configurations.
    comp_row = rows["Local(80%) + I/O-NDP + comp"]
    assert comp_row["CoMD"] > comp_row["miniSMAC2D"]
