"""Engineering benchmarks of the substrates: codecs, simulator, kernels."""

import numpy as np
import pytest

from repro.compression import lz4
from repro.compression.codecs import make_codec
from repro.core import NDP_GZIP1, paper_parameters
from repro.simulation import SimConfig, simulate
from repro.workloads import make_app


@pytest.fixture
def rng():
    return np.random.default_rng(7)


@pytest.fixture
def checkpoint_blob(rng):
    app = make_app("miniAero", seed=1, grid=96)
    app.run(3)
    return app.checkpoint_bytes()


class TestCodecs:
    def test_lz4_compress(self, benchmark, rng):
        data = rng.integers(0, 8, 262_144, dtype=np.uint8).tobytes()
        comp = benchmark(lz4.compress, data)
        benchmark.extra_info["factor"] = 1 - len(comp) / len(data)

    def test_lz4_decompress(self, benchmark, rng):
        data = rng.integers(0, 8, 262_144, dtype=np.uint8).tobytes()
        comp = lz4.compress(data)
        out = benchmark(lz4.decompress, comp, len(data))
        assert out == data

    @pytest.mark.parametrize("name", ["gzip(1)", "gzip(6)", "bzip2(1)", "xz(1)"])
    def test_stdlib_codecs(self, benchmark, name, checkpoint_blob):
        utility, _, level = name[:-1].partition("(")
        codec = make_codec(utility, int(level))
        comp = benchmark(codec.compress, checkpoint_blob)
        benchmark.extra_info["factor"] = 1 - len(comp) / len(checkpoint_blob)


class TestSimulator:
    def test_ndp_simulation_throughput(self, benchmark):
        """Simulated seconds per wall second for the NDP scenario."""
        params = paper_parameters()

        def run():
            return simulate(
                SimConfig(
                    params=params,
                    strategy="ndp",
                    compression=NDP_GZIP1,
                    work=params.mtti * 50,
                    seed=3,
                )
            )

        res = benchmark(run)
        assert res.efficiency > 0.5
        benchmark.extra_info["failures"] = res.failures


class TestKernels:
    @pytest.mark.parametrize("name", ["HPCCG", "miniSMAC2D", "miniAero"])
    def test_miniapp_step(self, benchmark, name):
        app = make_app(name, seed=0)
        benchmark(app.step)
