"""Three-method comparison: expected-value vs simulation vs renewal chain."""

from conftest import run_once
from repro.experiments import methods


def test_three_methods_bracket(benchmark, show):
    result = run_once(benchmark, methods.run, mttis=120.0)
    show(result)
    for row in result.rows:
        # The expected-value model lower-bounds and the renewal chain
        # upper-bounds the simulated efficiency (small noise allowance).
        assert row["expected_value"] <= row["sim"] + 0.04, row["case"]
        assert row["renewal"] >= row["sim"] - 0.04, row["case"]
    # The bracket tightens at the paper's operating points.
    widths = {r["case"]: r["width"] for r in result.rows}
    assert widths["NDP + gzip(1), p=85%"] < 0.06
    assert widths["NDP, no comp, p=50%"] > widths["NDP + gzip(1), p=85%"]
