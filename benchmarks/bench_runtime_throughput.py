"""Engineering benchmarks of the C/R runtime library itself.

Not a paper exhibit: these measure the implementation's own hot paths —
coordinated checkpoint commit, NDP drain throughput, and parallel restore
decompression — so regressions in the runtime are caught the same way the
paper-shape regressions are.
"""

import numpy as np
import pytest

from repro.ckpt import IOStore, LocalStore, MultilevelCheckpointer
from repro.ckpt.stream import compress_stream, parallel_decompress
from repro.compression.codecs import make_codec

GZIP = make_codec("gzip", 1)


@pytest.fixture
def payloads(rng):
    base = np.cumsum(rng.standard_normal(200_000)).tobytes()  # ~1.6 MB
    return {r: base for r in range(2)}


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_local_checkpoint_commit(benchmark, tmp_path, payloads):
    """Host-visible cost of one coordinated local checkpoint."""
    local = LocalStore(tmp_path / "nvm", capacity=4)
    io = IOStore(tmp_path / "pfs")
    cr = MultilevelCheckpointer("bench", local, io, mode="host", io_every=10**9)

    benchmark(lambda: cr.checkpoint(payloads))
    nbytes = sum(len(p) for p in payloads.values())
    benchmark.extra_info["payload_mb"] = nbytes / 1e6


def test_host_mode_io_push(benchmark, tmp_path, payloads):
    """Host-blocking compressed push to the I/O store (the cost NDP hides)."""
    local = LocalStore(tmp_path / "nvm", capacity=4)
    io = IOStore(tmp_path / "pfs")
    cr = MultilevelCheckpointer("bench", local, io, mode="host", codec=GZIP, io_every=1)

    benchmark(lambda: cr.checkpoint(payloads))


def test_ndp_drain_throughput(benchmark, tmp_path, payloads):
    """End-to-end background drain of one checkpoint (compress + commit)."""
    from conftest import run_once

    local = LocalStore(tmp_path / "nvm", capacity=8)
    io = IOStore(tmp_path / "pfs")

    def drain_once():
        with MultilevelCheckpointer("bench", local, io, mode="ndp", codec=GZIP) as cr:
            cr.checkpoint(payloads)
            assert cr.flush_to_io(60)

    run_once(benchmark, drain_once)
    assert io.latest("bench") is not None


@pytest.mark.parametrize("workers", [1, 4])
def test_parallel_restore_decompression(benchmark, workers, rng):
    """Section 4.3's multi-core restore path; zlib releases the GIL, so
    4 workers should beat 1 on multi-core hosts (asserted only loosely —
    CI machines vary)."""
    data = np.cumsum(rng.standard_normal(2_000_000)).tobytes()  # ~16 MB
    stream = compress_stream(data, GZIP, block_size=1 << 20)

    out = benchmark(lambda: parallel_decompress(stream, GZIP, workers=workers))
    assert out == data
    benchmark.extra_info["workers"] = workers
