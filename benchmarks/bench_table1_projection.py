"""Table 1: the exascale projection scaled from the Titan Cray XK7."""

import pytest

from repro.experiments import table1


def test_table1(benchmark, show):
    result = benchmark(table1.run)
    show(result)
    projected = {r["parameter"]: r["projected"] for r in result.rows}
    assert projected["Node Count"] == 100_000
    assert projected["System Peak"] == pytest.approx(1000.0)  # Pflop/s
    assert projected["Node Memory"] == pytest.approx(140.0)
    assert projected["System Memory"] == pytest.approx(14.0)
    assert projected["I/O Bandwidth"] == pytest.approx(10.0)
    assert projected["System MTTI"] == pytest.approx(30.0)
    # Section 3.3: commit time ~M/200 => ~9 s.
    assert result.headline["commit_time_s"] == pytest.approx(9.0, abs=2.0)
