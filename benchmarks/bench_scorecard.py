"""The reproduction scorecard: every paper claim must PASS."""

from repro.experiments import scorecard


def test_scorecard_all_claims_pass(benchmark, show):
    result = benchmark(scorecard.run)
    show(result)
    failed = [r["statement"] for r in result.rows if not r["pass"]]
    assert not failed, f"claims failed: {failed}"
    assert result.headline["passed"] == result.headline["total"]
