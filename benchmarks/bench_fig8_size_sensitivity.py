"""Figure 8: progress rate vs checkpoint size for five configurations."""

import pytest

from repro.experiments import fig8


def test_figure8(benchmark, show):
    result = benchmark(fig8.run)
    show(result)
    rows = result.rows

    # Paper anchors: at 10% memory NC ~96% vs HC ~88%; at 80% NC ~87% vs
    # HC ~65%.
    first, last = rows[0], rows[-1]
    assert first["L-15GBps + I/O-NC"] == pytest.approx(0.96, abs=0.03)
    assert first["L-15GBps + I/O-HC"] == pytest.approx(0.88, abs=0.05)
    assert last["L-15GBps + I/O-NC"] == pytest.approx(0.87, abs=0.03)
    assert last["L-15GBps + I/O-HC"] == pytest.approx(0.65, abs=0.07)

    # NDP's gain grows with checkpoint size.
    gains = [r["L-15GBps + I/O-NC"] - r["L-15GBps + I/O-HC"] for r in rows]
    assert gains[-1] > gains[0]

    # A 2 GB/s NVM with NDP substitutes for a 15 GB/s NVM without it.
    for r in rows:
        assert r["L-2GBps + I/O-NC"] > r["L-15GBps + I/O-HC"] - 0.06
        assert r["L-2GBps + I/O-N"] > r["L-15GBps + I/O-HC"] - 0.12

    # Efficiency decreases monotonically with checkpoint size, per config.
    for label in ("L-15GBps + I/O-NC", "L-15GBps + I/O-HC", "L-2GBps + I/O-NC"):
        series = [r[label] for r in rows]
        assert series == sorted(series, reverse=True)
