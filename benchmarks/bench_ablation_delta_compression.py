"""Extension bench: consecutive-checkpoint delta/dedup (paper future work)."""

from conftest import run_once
from repro.experiments import ablations


def test_delta_compression(benchmark, show):
    result = run_once(
        benchmark,
        ablations.delta_compression,
        apps=("HPCCG", "miniFE", "CoMD"),
        steps_between=1,
    )
    show(result)
    rows = {r["app"]: r for r in result.rows}
    # Solver workloads with static operands benefit from XOR-delta...
    assert rows["HPCCG"]["delta_factor"] > rows["HPCCG"]["raw_factor"] + 0.10
    assert rows["miniFE"]["delta_factor"] > rows["miniFE"]["raw_factor"] + 0.10
    # ...while full-precision MD state (every mantissa bit churns) does not.
    assert rows["CoMD"]["delta_factor"] < rows["CoMD"]["raw_factor"] + 0.15
