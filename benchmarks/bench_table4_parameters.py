"""Table 4: evaluation parameters re-derived with provenance."""

import pytest

from repro.experiments import table4


def test_table4(benchmark, show):
    result = benchmark(table4.run)
    show(result)
    assert len(result.rows) == 9
    # The two numerically-derived headline values.
    assert result.headline["ndp_rate_mbps"] == pytest.approx(440.4, abs=0.1)
    assert result.headline["daly_tau"] == pytest.approx(159.0, abs=3.0)
