"""Extension bench: the substitution claim in dollars."""

from repro.experiments import economics


def test_economics(benchmark, show):
    result = benchmark(economics.run)
    show(result)
    # The priced Fig. 8/9 substitution: the NDP build is cheaper while not
    # less efficient.
    assert result.headline["substitution_saving"] > 1.0
    baseline = result.rows[:2]
    assert baseline[1]["efficiency"] >= baseline[0]["efficiency"] - 0.02
    assert baseline[1]["cost_per_eff"] < baseline[0]["cost_per_eff"]
