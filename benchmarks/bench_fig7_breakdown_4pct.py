"""Figure 7: overhead breakdown at 4% I/O-recovery probability."""

import pytest

from repro.experiments import fig7


def test_figure7(benchmark, show):
    result = benchmark(fig7.run)
    show(result)
    rows = {r["config"]: r for r in result.rows}

    # NDP removes the blocking Checkpoint-I/O component entirely.
    assert rows["Local + I/O-N"]["checkpoint_io"] == 0.0
    assert rows["Local + I/O-NC"]["checkpoint_io"] == 0.0
    assert rows["Local + I/O-H"]["checkpoint_io"] > 0.04

    # Rerun-I/O: paper reports 17% -> 9% -> 1.2% -> 0.6% across the four
    # configurations; our model reproduces the NDP numbers tightly and the
    # host numbers within a few points.
    assert rows["Local + I/O-N"]["rerun_io"] == pytest.approx(0.012, abs=0.006)
    assert rows["Local + I/O-NC"]["rerun_io"] == pytest.approx(0.006, abs=0.004)
    assert (
        rows["Local + I/O-H"]["rerun_io"]
        > rows["Local + I/O-HC"]["rerun_io"]
        > rows["Local + I/O-N"]["rerun_io"]
        > rows["Local + I/O-NC"]["rerun_io"]
    )

    # NDP+compression approaches the 90% provisioning target.
    assert rows["Local + I/O-NC"]["compute"] == pytest.approx(0.90, abs=0.02)
