"""Extension bench: the value of the explicit partner level."""

from conftest import run_once
from repro.experiments import partner


def test_partner_level(benchmark, show):
    result = run_once(benchmark, partner.run, mttis=100.0)
    show(result)
    # Partner copies convert I/O recoveries into cheap partner recoveries
    # and buy meaningful efficiency at a degraded p_local.
    assert result.headline["gain"] > 0.03
    by_cadence = {r["partner_every"]: r for r in result.rows}
    assert by_cadence[1]["recoveries_io"] < by_cadence[0]["recoveries_io"]
    assert by_cadence[1]["recoveries_partner"] > 0
