"""Figure 9: progress rate vs system MTTI for five configurations."""

from repro.experiments import fig9


def test_figure9(benchmark, show):
    result = benchmark(fig9.run)
    show(result)
    rows = result.rows

    # Efficiency rises with MTTI for every configuration.
    for label in rows[0]:
        if label == "mtti_min":
            continue
        series = [r[label] for r in rows]
        assert series == sorted(series), label

    # The NDP-over-host gain shrinks as failures get rarer.
    assert result.headline["gain_at_min_mtti"] > result.headline["gain_at_max_mtti"]

    # The 2 GB/s + NDP substitution holds across the MTTI range too.
    for r in rows:
        assert r["L-2GBps + I/O-NC"] > r["L-15GBps + I/O-HC"] - 0.06
