"""Benchmark-harness helpers.

Every bench regenerates one paper exhibit, prints the regenerated
table/series (so ``pytest benchmarks/ --benchmark-only -s`` doubles as a
results report), asserts the paper-shape invariants, and times the
regeneration via pytest-benchmark.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show():
    """Print an ExperimentResult under the bench's own banner."""

    def _show(result) -> None:
        print()
        print(result)

    return _show


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive experiment with a single round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
