"""Figure 5: optimal locally-saved:I/O-saved ratios per configuration."""

from repro.experiments import fig5


def test_figure5(benchmark, show):
    result = benchmark(fig5.run)
    show(result)
    for row in result.rows:
        ratios = row["host_ratios"]
        ordered = [ratios[p] for p in sorted(ratios)]
        # Higher probability of local recovery => higher optimal ratio.
        assert all(a <= b for a, b in zip(ordered, ordered[1:]))
    # Higher compression factor => lower optimal host ratio at fixed p.
    by_factor = sorted(result.rows, key=lambda r: r["factor"])
    at_p96 = [r["host_ratios"][0.96] for r in by_factor]
    assert at_p96[0] >= at_p96[-1]
    # NDP ratio is bandwidth-determined: no compression -> 8 cycles,
    # average-factor gzip(1) -> 3 cycles (Section 6.2 / Table 3).
    ndp = {round(r["factor"], 3): r["ndp_ratio"] for r in result.rows}
    assert ndp[0.0] == 8
    assert ndp[0.728] == 3
