"""Ablations over the modeling choices DESIGN.md calls out."""

from repro.experiments import ablations


def test_rerun_accounting(benchmark, show):
    result = benchmark(ablations.rerun_accounting)
    show(result)
    for row in result.rows:
        # Staleness accounting only adds cost; rankings are unchanged.
        assert row["staleness"] <= row["paper"] + 1e-12
    by_paper = sorted(result.rows, key=lambda r: r["paper"])
    by_stale = sorted(result.rows, key=lambda r: r["staleness"])
    assert [r["config"] for r in by_paper] == [r["config"] for r in by_stale]


def test_daly_order(benchmark, show):
    result = benchmark(ablations.daly_order)
    show(result)
    gains = {r["m_over_delta"]: r["daly"] - r["young"] for r in result.rows}
    # The higher-order estimate matters only in the interrupt-dominated
    # regime: the gain at M/delta=2 dwarfs the gain at 1000.
    assert gains[2.0] > 10 * max(gains[1000.0], 1e-9)


def test_ndp_pause(benchmark, show):
    result = benchmark(ablations.ndp_pause)
    show(result)
    for row in result.rows:
        assert row["no_pause"] >= row["pause"] - 1e-12
        # The pause costs at most a couple of points of efficiency.
        assert row["pause"] > row["no_pause"] - 0.03
