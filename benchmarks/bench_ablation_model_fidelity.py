"""Model-vs-simulation fidelity: the evidence behind every figure."""

from conftest import run_once
from repro.experiments import validation


def test_model_vs_simulation(benchmark, show):
    result = run_once(benchmark, validation.run, mttis=120.0)
    show(result)
    for row in result.rows:
        assert row["failures"] > 50  # enough events to be meaningful
        if row["regime"] == "paper":
            # The paper's operating points agree tightly.
            assert row["diff"] < 0.05, row["case"]
        else:
            # Recovery-dominated stress points: the model is conservative
            # (never claims more efficiency than the simulator observes).
            assert row["model"] <= row["sim"] + 0.05, row["case"]
    assert result.headline["worst_paper_regime_diff"] < 0.05
