"""Record the Monte-Carlo pool's wall-clock speedup to a BENCH_*.json.

Runs one ``mc_run`` batch three ways — serial, pooled, and cache-warm —
over the same seeds, verifies the samples are bit-identical, and writes
the timings (plus machine context: core count matters) to a JSON record::

    PYTHONPATH=src python benchmarks/record_parallel.py                # full size
    PYTHONPATH=src python benchmarks/record_parallel.py --seeds 4 \\
        --mttis 3 -o /tmp/smoke.json                                   # smoke

The speedup claim is only meaningful on a multi-core machine; the record
always includes ``cpus`` so a single-core result is self-describing.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.core import paper_parameters
from repro.simulation import ResultCache, SimConfig, mc_run
from repro.simulation.pool import ChunkTiming, resolve_jobs


def _timed(label: str, fn):
    t0 = time.perf_counter()
    out = fn()
    dt = time.perf_counter() - t0
    print(f"  {label:24s} {dt:8.2f} s", file=sys.stderr)
    return out, dt


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seeds", type=int, default=32, help="batch size (default 32)")
    ap.add_argument("--mttis", type=float, default=50.0,
                    help="simulated MTTIs per run (default 50)")
    ap.add_argument("--jobs", type=int, default=0,
                    help="pool width (default 0 = one per core)")
    ap.add_argument("-o", "--output", default="BENCH_parallel_pool.json",
                    help="output JSON path")
    args = ap.parse_args(argv)
    if args.seeds < 1:
        ap.error("--seeds must be >= 1")
    if args.jobs < 0:
        ap.error("--jobs must be >= 0 (0 = one per core)")

    jobs = resolve_jobs(args.jobs if args.jobs > 0 else None)
    p = paper_parameters()
    config = SimConfig(params=p, strategy="ndp", work=p.mtti * args.mttis, seed=0)
    seeds = range(args.seeds)
    print(f"mc_run: {args.seeds} seeds x {args.mttis} MTTIs, pool width {jobs}",
          file=sys.stderr)

    serial, t_serial = _timed("serial (jobs=1)",
                              lambda: mc_run(config, seeds, jobs=1))
    timings: list[ChunkTiming] = []
    pooled, t_pool = _timed(f"pool   (jobs={jobs})",
                            lambda: mc_run(config, seeds, jobs=jobs, timings=timings))
    if pooled.samples != serial.samples:
        print("FATAL: pool samples diverge from serial", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory() as d:
        cache = ResultCache(d)
        mc_run(config, seeds, jobs=jobs, cache=cache)
        warm, t_warm = _timed("cache-warm rerun",
                              lambda: mc_run(config, seeds, jobs=jobs, cache=cache))
        if warm.samples != serial.samples:
            print("FATAL: cached samples diverge from serial", file=sys.stderr)
            return 1
        cache_hits = cache.hits

    record = {
        "benchmark": "mc_run batch: serial vs multiprocessing pool vs warm cache",
        "seeds": args.seeds,
        "mttis_per_run": args.mttis,
        "jobs": jobs,
        "cpus": resolve_jobs(None),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "serial_seconds": round(t_serial, 4),
        "pool_seconds": round(t_pool, 4),
        "cache_warm_seconds": round(t_warm, 4),
        "pool_speedup": round(t_serial / t_pool, 3) if t_pool > 0 else None,
        "cache_speedup": round(t_serial / t_warm, 3) if t_warm > 0 else None,
        "cache_hits": cache_hits,
        "bit_identical": True,
        "mean_efficiency": serial.mean,
        "ci95": serial.ci95,
        "chunks": [
            {"chunk": t.chunk, "size": t.size, "seconds": round(t.seconds, 4),
             "worker_pid": t.worker_pid}
            for t in timings
        ],
    }
    Path(args.output).write_text(json.dumps(record, indent=1) + "\n")
    print(f"wrote {args.output}: pool speedup {record['pool_speedup']}x, "
          f"cache speedup {record['cache_speedup']}x on {record['cpus']} cpu(s)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
