"""Record the checkpoint data path's throughput to BENCH_runtime_throughput.json.

Measures, back-to-back on the same payloads (this machine's timings are
noisy, so the honest numbers are the *ratios* of interleaved runs):

* single-thread LZ4 compression — the reference-parse kernel
  (``lz4.compress_ref``, the pre-optimization scanner) vs the vectorized
  exact kernel (``lz4.compress``) and the dense-parse runtime kernel
  (``lz4.compress_dense``), verifying byte-identity/round-trips,
* ``zero_rle`` (vectorized) vs ``zero_rle_ref`` on a delta-like payload,
* end-to-end NDP drain — the rank-at-a-time baseline (reference codec,
  ``pipelined=False``) vs the pipelined data path (dense codec, bounded
  frame queue) into a bandwidth-throttled I/O store, verifying that both
  drains restore byte-identical state.

::

    PYTHONPATH=src python benchmarks/record_runtime.py                # record
    PYTHONPATH=src python benchmarks/record_runtime.py --quick \\
        -o /tmp/smoke.json                                            # smoke
    PYTHONPATH=src python benchmarks/record_runtime.py --check        # CI gate

``--check`` re-measures and fails (exit 1) if either headline *speedup*
(dense kernel, pipelined drain) fell below 80% of the recorded one —
speedups compare two interleaved measurements, so the gate is robust to
absolute machine-speed drift.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.compression import lz4
from repro.compression.codecs import Codec, fast_lz4_codec
from repro.compression.delta import zero_rle, zero_rle_ref
from repro.ckpt.backends import IOStore, LocalStore
from repro.ckpt.format import make_header
from repro.ckpt.ndp_daemon import NDPDrainDaemon
from repro.ckpt.restart import recover
from repro.workloads import calibrated_app

APPS = ("CoMD", "HPCCG", "miniFE", "miniMD", "miniSMAC2D", "miniAero", "pHPCCG")
QUICK_APPS = ("HPCCG", "miniMD")


def _timed(fn, *args):
    t0 = time.perf_counter()
    out = fn(*args)
    return out, time.perf_counter() - t0


def _log(msg: str) -> None:
    print(msg, file=sys.stderr)


def _synthetics(size: int) -> dict[str, bytes]:
    rng = np.random.default_rng(7)
    low = rng.integers(0, 4, size, dtype=np.uint8)
    return {
        "random": rng.integers(0, 256, size, dtype=np.uint8).tobytes(),
        "lowentropy": low.tobytes(),
        "zeros": bytes(size),
        "repetitive": (b"the quick brown ndp " * (size // 20 + 1))[:size],
    }


def _corpus(quick: bool) -> dict[str, bytes]:
    payloads: dict[str, bytes] = {}
    for name in QUICK_APPS if quick else APPS:
        app = calibrated_app(name)
        app.run(5)
        payloads[name] = app.checkpoint_bytes()
    payloads.update(_synthetics(1 << 18 if quick else 1 << 20))
    return payloads


def bench_lz4(payloads: dict[str, bytes]) -> tuple[list[dict], dict]:
    rows = []
    tot_bytes = tot_ref = tot_exact = tot_dense = 0.0
    for name, data in payloads.items():
        ref_out, t_ref = _timed(lz4.compress_ref, data)
        exact_out, t_exact = _timed(lz4.compress, data)
        dense_out, t_dense = _timed(lz4.compress_dense, data)
        if exact_out != ref_out:
            raise SystemExit(f"FATAL: {name}: vectorized exact kernel diverges")
        if dense_out != lz4.compress_dense_ref(data):
            raise SystemExit(f"FATAL: {name}: dense kernel diverges from its spec")
        if lz4.decompress(dense_out, len(data)) != data:
            raise SystemExit(f"FATAL: {name}: dense output fails round-trip")
        rows.append({
            "payload": name,
            "size": len(data),
            "ref_seconds": round(t_ref, 4),
            "exact_seconds": round(t_exact, 4),
            "dense_seconds": round(t_dense, 4),
            "exact_speedup": round(t_ref / t_exact, 2) if t_exact > 0 else None,
            "dense_speedup": round(t_ref / t_dense, 2) if t_dense > 0 else None,
            "factor_ref": round(1 - len(ref_out) / len(data), 4),
            "factor_dense": round(1 - len(dense_out) / len(data), 4),
        })
        _log(f"  lz4 {name:12s} {len(data) / 1e6:6.2f} MB  "
             f"ref {len(data) / t_ref / 1e6:6.2f} MB/s  "
             f"dense {len(data) / t_dense / 1e6:6.2f} MB/s  "
             f"({t_ref / t_dense:4.1f}x)")
        tot_bytes += len(data)
        tot_ref += t_ref
        tot_exact += t_exact
        tot_dense += t_dense
    aggregate = {
        "bytes": int(tot_bytes),
        "ref_mbps": round(tot_bytes / tot_ref / 1e6, 2),
        "exact_mbps": round(tot_bytes / tot_exact / 1e6, 2),
        "dense_mbps": round(tot_bytes / tot_dense / 1e6, 2),
        "exact_speedup": round(tot_ref / tot_exact, 2),
        "dense_speedup": round(tot_ref / tot_dense, 2),
    }
    return rows, aggregate


def bench_zero_rle(payloads: dict[str, bytes]) -> dict:
    # A delta-like payload: mostly zeros with scattered short change bursts,
    # which is what zero_rle sees behind xor_delta in the drain path.
    base = max(payloads.values(), key=len)
    arr = np.frombuffer(base, dtype=np.uint8).copy()
    rng = np.random.default_rng(11)
    mask = rng.random(len(arr)) < 0.97
    arr[mask] = 0
    delta = arr.tobytes()
    ref_out, t_ref = _timed(zero_rle_ref, delta)
    fast_out, t_fast = _timed(zero_rle, delta)
    if fast_out != ref_out:
        raise SystemExit("FATAL: vectorized zero_rle diverges from reference")
    _log(f"  zero_rle {len(delta) / 1e6:.2f} MB  ref {len(delta) / t_ref / 1e6:.2f} MB/s  "
         f"fast {len(delta) / t_fast / 1e6:.2f} MB/s  ({t_ref / t_fast:.1f}x)")
    return {
        "size": len(delta),
        "ref_seconds": round(t_ref, 4),
        "fast_seconds": round(t_fast, 4),
        "speedup": round(t_ref / t_fast, 2) if t_fast > 0 else None,
    }


def _drain_once(payloads: dict[int, bytes], root: Path, codec, pipelined: bool,
                throttle_bps: float) -> tuple[float, dict[int, bytes], NDPDrainDaemon]:
    app_id = "bench"
    local = LocalStore(root / "local", capacity=4)
    io = IOStore(root / "io", throttle_bps=throttle_bps)
    files = {
        rank: (make_header(app_id, rank, 1, data, position=1.0), data)
        for rank, data in payloads.items()
    }
    local.write_checkpoint(app_id, 1, files)
    daemon = NDPDrainDaemon(app_id, local, io, codec=codec, pipelined=pipelined)
    t0 = time.perf_counter()
    daemon._drain_one(1)
    dt = time.perf_counter() - t0
    if daemon.stats.checkpoints_drained != 1:
        raise SystemExit("FATAL: drain did not complete")
    restored = recover(app_id, [io]).payloads
    return dt, restored, daemon


def bench_drain(payloads: dict[str, bytes], quick: bool) -> dict:
    # Two ranks of miniapp state, drained into an I/O store throttled to a
    # bandwidth comparable to the compressor, so the pipelined path has
    # both a kernel and an overlap advantage to demonstrate.
    names = sorted(payloads, key=lambda n: (-len(payloads[n]), n))[:2]
    ranks = {i: payloads[name] for i, name in enumerate(names)}
    total = sum(len(p) for p in ranks.values())
    throttle = 4e6 if quick else 8e6
    # The baseline codec runs the pre-optimization reference scanner —
    # together with pipelined=False this is the data path as it stood
    # before this optimization pass (it still decodes via the shared,
    # format-compatible decompressor).
    ref_codec = Codec("lz4", 1, lz4.compress_ref, lz4.decompress)
    with tempfile.TemporaryDirectory() as d:
        t_base, restored_base, base = _drain_once(
            ranks, Path(d) / "base", ref_codec, False, throttle)
    with tempfile.TemporaryDirectory() as d:
        t_pipe, restored_pipe, pipe = _drain_once(
            ranks, Path(d) / "pipe", fast_lz4_codec(), True, throttle)
    if restored_base != ranks or restored_pipe != ranks:
        raise SystemExit("FATAL: drained checkpoint does not restore to original state")
    _log(f"  drain {total / 1e6:.2f} MB  baseline {total / t_base / 1e6:.2f} MB/s  "
         f"pipelined {total / t_pipe / 1e6:.2f} MB/s  ({t_base / t_pipe:.1f}x)")
    return {
        "ranks": len(ranks),
        "bytes_in": total,
        "io_throttle_mbps": throttle / 1e6,
        "baseline_seconds": round(t_base, 4),
        "pipelined_seconds": round(t_pipe, 4),
        "baseline_mbps": round(total / t_base / 1e6, 2),
        "pipelined_mbps": round(total / t_pipe / 1e6, 2),
        "speedup": round(t_base / t_pipe, 2),
        "restore_identical": True,
        "pipelined_compress_mbps": round(pipe.stats.compress.rate / 1e6, 2),
        "pipelined_write_mbps": round(pipe.stats.write.rate / 1e6, 2),
        "baseline_compress_mbps": round(base.stats.compress.rate / 1e6, 2),
        "baseline_write_mbps": round(base.stats.write.rate / 1e6, 2),
        "achieved_factor": round(pipe.stats.achieved_factor, 4),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small corpus (2 apps, 256 KiB synthetics) for smoke runs")
    ap.add_argument("--check", action="store_true",
                    help="compare against the recorded baseline instead of overwriting")
    ap.add_argument("--tolerance", type=float, default=0.8,
                    help="--check passes while speedups stay above this fraction "
                         "of the recorded ones (default 0.8 = fail on >20%% regression)")
    ap.add_argument("-o", "--output", default="BENCH_runtime_throughput.json",
                    help="baseline JSON path")
    args = ap.parse_args(argv)

    payloads = _corpus(args.quick)
    _log(f"corpus: {len(payloads)} payloads, "
         f"{sum(len(p) for p in payloads.values()) / 1e6:.1f} MB total")
    lz4_rows, lz4_aggregate = bench_lz4(payloads)
    rle = bench_zero_rle(payloads)
    drain = bench_drain(payloads, args.quick)

    record = {
        "benchmark": "checkpoint data path: lz4 kernels, zero_rle, pipelined NDP drain",
        "quick": args.quick,
        "cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "lz4": lz4_rows,
        "lz4_aggregate": lz4_aggregate,
        "zero_rle": rle,
        "drain": drain,
    }

    if args.check:
        path = Path(args.output)
        if not path.exists():
            _log(f"FATAL: --check needs a recorded baseline at {path}")
            return 1
        baseline = json.loads(path.read_text())
        failures = []
        for label, got, ref in (
            ("lz4 dense kernel", lz4_aggregate["dense_speedup"],
             baseline["lz4_aggregate"]["dense_speedup"]),
            ("pipelined drain", drain["speedup"], baseline["drain"]["speedup"]),
        ):
            floor = args.tolerance * ref
            status = "ok" if got >= floor else "REGRESSION"
            _log(f"  check {label}: {got}x vs recorded {ref}x (floor {floor:.2f}x) {status}")
            if got < floor:
                failures.append(label)
        if failures:
            _log(f"FAIL: throughput regression in {', '.join(failures)}")
            return 1
        _log("check passed: no throughput regression")
        return 0

    Path(args.output).write_text(json.dumps(record, indent=1) + "\n")
    _log(f"wrote {args.output}: dense lz4 {lz4_aggregate['dense_speedup']}x, "
         f"drain {drain['speedup']}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
