"""Figure 3: operational timelines (host vs NDP) from simulated schedules."""

from conftest import run_once
from repro.experiments import fig3


def test_figure3(benchmark, show):
    result = run_once(benchmark, fig3.run)
    show(result)
    host_section, ndp_section = result.text.split("(b)")
    # Host mode blocks on I/O writes ('W'); NDP mode never does, and its
    # drain activity ('d') appears on the NDP lane instead.  Inspect lane
    # rows only (the legend line mentions every glyph).
    host_lanes = [l for l in host_section.splitlines() if "|" in l]
    ndp_lanes = [l for l in ndp_section.splitlines() if "|" in l]
    assert any("W" in l for l in host_lanes)
    assert not any("W" in l for l in ndp_lanes)
    assert any("d" in l for l in ndp_lanes if l.strip().startswith("NDP"))
    assert len(ndp_lanes) == 2  # HOST + NDP lanes
