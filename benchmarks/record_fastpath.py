"""Record the vectorized fastpath engine's speedup to BENCH_sim_fastpath.json.

Three measurements, all verified before timing is trusted:

* **batch**: one validation-sized Monte-Carlo batch (host + NDP
  strategies, gzip compression, many seeds) twice on a single worker —
  once through the event-driven reference simulator, once as a single
  :func:`repro.simulation.fastpath.simulate_batch` call.  The engines
  must agree (host failure counts bit-identical, ndp within one failure
  at the run boundary, mean efficiency within tolerance).
* **grid**: the fig6-fig9 experiment config set (the standard figure
  grids) once as a per-config loop (one ``simulate_batch`` call per
  config — the pre-``simulate_grid`` pattern) and once as a single
  :func:`repro.simulation.simulate_grid` pass.  Results must be
  bit-identical, and the whole set must run without a single DES
  fallback (``fastpath_fallbacks_total`` stays flat).
* **hetero**: a straggler-heavy heterogeneous batch (mixed work targets
  x MTTI scales x ``nvm_capacity``, >= 256 trajectories at full size)
  once through the pre-ISSUE-8 walker (per-capacity groups, compaction
  disabled) and once through the fused, actively-compacted engine.
  Results must be bit-identical — the speedup comes purely from group
  fusion and active-set compaction, never from changed trajectories.

::

    PYTHONPATH=src python benchmarks/record_fastpath.py                # record
    PYTHONPATH=src python benchmarks/record_fastpath.py --quick \\
        -o /tmp/smoke.json                                            # smoke
    PYTHONPATH=src python benchmarks/record_fastpath.py --check       # CI gate

Recording fails (exit 1) below the ``--min-speedup`` floors: at full
size 8x for the batch (the exact ring walker trades a little of the old
approximate engine's top-end speed for bit-exactness), 10x for the
grid and 1.5x for the hetero leg; 1.5x/2x/1.1x with ``--quick`` (fixed
per-batch costs amortize with batch size, so the smoke floors are
deliberately loose).  ``--check`` re-measures and additionally fails if
any speedup fell below 60% of its recorded value (the hard floor still
applies; the DES leg's timing is load-noisy).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.core import HOST_GZIP1, NDP_GZIP1, paper_parameters
from repro.simulation import SimConfig, simulate, simulate_grid
from repro.simulation import fastpath
from repro.simulation.fastpath import fallback_total, simulate_batch

#: (strategy, compression, ratio) legs of the batch — the two multilevel
#: configurations the validation experiment exercises hardest.
LEGS = (("host", HOST_GZIP1, 8), ("ndp", NDP_GZIP1, 1))

#: Engines must agree on mean efficiency to this absolute tolerance.  The
#: fast engine models the NVM ring per-slot and is matched-seed exact;
#: only sub-ulp drain-clock association on rare ndp seeds remains, so the
#: mean difference over a batch is rounding noise.
EFFICIENCY_TOL = 1e-6


def _log(msg: str) -> None:
    print(msg, file=sys.stderr)


def _batch(seeds: int, mttis: float) -> list[SimConfig]:
    p = paper_parameters()
    return [
        SimConfig(params=p, strategy=strat, ratio=ratio, compression=comp,
                  work=p.mtti * mttis, seed=seed, engine="fast")
        for seed in range(seeds)
        for strat, comp, ratio in LEGS
    ]


#: The heterogeneous leg's axes: every trajectory gets a work target, an
#: MTTI scale and an NVM capacity off these cycles, so rows finish at
#: wildly different iteration counts and per-capacity grouping would
#: split the batch four ways.
_HETERO_CAPS = (1, 2, 3, 5)
_HETERO_SCALES = (0.7, 1.0, 1.4)
_HETERO_WORKS_FULL = (15.3, 40.3, 90.3, 150.3)
_HETERO_WORKS_QUICK = (5.3, 10.3, 20.3, 30.3)


def _hetero_configs(n: int, works: tuple[float, ...]) -> list[SimConfig]:
    p = paper_parameters()
    out = []
    for i in range(n):
        params = replace(p, mtti=p.mtti * _HETERO_SCALES[i % len(_HETERO_SCALES)])
        out.append(SimConfig(
            params=params, strategy="ndp", compression=NDP_GZIP1,
            work=p.mtti * works[(i // 3) % len(works)],
            seed=1000 + i,
            nvm_capacity=_HETERO_CAPS[(i // 12) % len(_HETERO_CAPS)],
            engine="fast"))
    return out


def _hetero_baseline(configs: list[SimConfig]) -> list:
    """The pre-ISSUE-8 walker: per-capacity groups, no compaction.

    Reproduces the old engine's execution shape exactly — each capacity
    runs as its own full-width batch to the last straggler — while the
    trajectories themselves are unchanged (bit-identity is asserted by
    the caller).
    """
    saved = fastpath.COMPACT_THRESHOLD
    fastpath.COMPACT_THRESHOLD = 0.0
    try:
        results: list = [None] * len(configs)
        groups: dict[int, list[int]] = {}
        for i, c in enumerate(configs):
            groups.setdefault(c.nvm_capacity, []).append(i)
        for cap in sorted(groups):
            idxs = groups[cap]
            for i, r in zip(idxs, simulate_batch([configs[i] for i in idxs])):
                results[i] = r
        return results
    finally:
        fastpath.COMPACT_THRESHOLD = saved


def _grid_configs(mttis: float) -> list[SimConfig]:
    """The fig6-fig9 experiment grids, flattened to one config list."""
    from repro.experiments import fig6, fig7, fig8, fig9

    flat: list[SimConfig] = []

    def walk(item) -> None:
        if isinstance(item, list):
            for sub in item:
                walk(sub)
        else:
            flat.append(item)

    for grid in (
        fig6.sim_configs(mttis=mttis),
        fig7.sim_configs(mttis=mttis),
        fig8.sim_configs(mttis=mttis),
        fig9.sim_configs(mttis=mttis),
    ):
        walk(grid)
    return flat


def _verify(configs: list[SimConfig], des, fast) -> dict[str, dict[str, float]]:
    """Cross-engine agreement; returns per-strategy divergence stats.

    Host/io-only/local-only trajectories are bit-exact, so their failure
    counts must match exactly.  The ndp segment walker carries sub-ulp
    drain-clock residuals that can move the end of the run across a
    failure time on rare seeds — allow that count to shift by one.
    """
    eff_diffs: dict[str, list[float]] = {}
    fail_diffs: dict[str, int] = {}
    for cfg, d, f in zip(configs, des, fast):
        slack = 1 if cfg.strategy == "ndp" else 0
        if abs(f.failures - d.failures) > slack:
            raise SystemExit(
                f"FATAL: engines disagree on failure count for seed {cfg.seed} "
                f"{cfg.strategy}: des={d.failures} fast={f.failures}")
        eff_diffs.setdefault(cfg.strategy, []).append(f.efficiency - d.efficiency)
        fail_diffs[cfg.strategy] = max(
            fail_diffs.get(cfg.strategy, 0), abs(f.failures - d.failures))
    out = {}
    for strat, ds in eff_diffs.items():
        mean = abs(math.fsum(ds) / len(ds))
        if mean > EFFICIENCY_TOL:
            raise SystemExit(
                f"FATAL: mean efficiency diverges for {strat}: |diff|={mean:.2e}")
        out[strat] = {
            "mean_efficiency_abs_diff": mean,
            "max_failure_count_diff": fail_diffs[strat],
        }
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seeds", type=int, default=0,
                    help="seeds per strategy (default: 128, or 16 with --quick)")
    ap.add_argument("--mttis", type=float, default=0.0,
                    help="simulated MTTIs per run (default: 150.3, or 30.3 with --quick; "
                         "non-multiples of the 150 s local interval avoid the "
                         "work-on-checkpoint-boundary float trap)")
    ap.add_argument("--grid-mttis", type=float, default=0.0,
                    help="simulated MTTIs per grid cell (default: 50, or 10 with --quick)")
    ap.add_argument("--quick", action="store_true",
                    help="tiny batch + 1.5x floor for smoke runs")
    ap.add_argument("--check", action="store_true",
                    help="compare against the recorded baseline instead of overwriting")
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="hard speedup floor for both measurements "
                         "(default: batch 8 / grid 10, or 1.5 / 2 with --quick)")
    ap.add_argument("--tolerance", type=float, default=0.6,
                    help="--check passes while each speedup stays above this "
                         "fraction of its recorded value (default 0.6: the DES "
                         "leg's absolute timing is load-sensitive, and the "
                         "hard floor still applies regardless)")
    ap.add_argument("-o", "--output", default="BENCH_sim_fastpath.json",
                    help="baseline JSON path")
    args = ap.parse_args(argv)

    seeds = args.seeds or (16 if args.quick else 128)
    mttis = args.mttis or (30.3 if args.quick else 150.3)
    grid_mttis = args.grid_mttis or (10.0 if args.quick else 50.0)
    floor_batch = args.min_speedup or (1.5 if args.quick else 8.0)
    floor_grid = args.min_speedup or (2.0 if args.quick else 10.0)
    floor_hetero = args.min_speedup or (1.1 if args.quick else 1.5)
    hetero_n = 64 if args.quick else 256
    hetero_works = _HETERO_WORKS_QUICK if args.quick else _HETERO_WORKS_FULL

    fallbacks_before = fallback_total()

    # -- batch measurement: DES vs one simulate_batch call -------------------
    configs = _batch(seeds, mttis)
    _log(f"batch: {len(configs)} runs ({seeds} seeds x {len(LEGS)} strategies "
         f"x {mttis:g} MTTIs), single worker")

    t0 = time.perf_counter()
    des = [simulate(replace(c, engine="des")) for c in configs]
    t_des = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = simulate_batch(configs)
    t_fast = time.perf_counter() - t0
    speedup = t_des / t_fast if t_fast > 0 else float("inf")
    diffs = _verify(configs, des, fast)
    _log(f"  des  (event-driven)   {t_des:8.2f} s")
    _log(f"  fast (one batch)      {t_fast:8.2f} s   ({speedup:.1f}x)")
    for strat, d in sorted(diffs.items()):
        _log(f"  agreement {strat:10s} |mean eff diff| = "
             f"{d['mean_efficiency_abs_diff']:.2e}  "
             f"max |failure diff| = {d['max_failure_count_diff']}")

    # -- grid measurement: per-config loop vs one simulate_grid pass ---------
    grid_cfgs = _grid_configs(grid_mttis)
    _log(f"grid: fig6-fig9 config set, {len(grid_cfgs)} configs x "
         f"{grid_mttis:g} MTTIs, single worker")
    t0 = time.perf_counter()
    looped = [simulate_batch([c])[0] for c in grid_cfgs]
    t_loop = time.perf_counter() - t0
    t0 = time.perf_counter()
    grid = simulate_grid(grid_cfgs, seeds=(0,), jobs=1)
    t_grid = time.perf_counter() - t0
    grid_speedup = t_loop / t_grid if t_grid > 0 else float("inf")
    for i, (a, b) in enumerate(zip(looped, grid.results.reshape(-1))):
        if a != b:
            raise SystemExit(
                f"FATAL: grid pass diverges from per-config loop at index {i}")
    _log(f"  loop (per config)     {t_loop:8.2f} s")
    _log(f"  grid (one pass)       {t_grid:8.2f} s   ({grid_speedup:.1f}x)")

    # -- hetero measurement: pre-PR walker vs fused + compacted --------------
    hetero_cfgs = _hetero_configs(hetero_n, hetero_works)
    _log(f"hetero: {len(hetero_cfgs)} trajectories "
         f"({len(hetero_works)} work targets x {len(_HETERO_SCALES)} MTTI "
         f"scales x {len(_HETERO_CAPS)} capacities), single worker")
    t0 = time.perf_counter()
    hetero_base = _hetero_baseline(hetero_cfgs)
    t_hbase = time.perf_counter() - t0
    t0 = time.perf_counter()
    hetero_fast = simulate_batch(hetero_cfgs)
    t_hfast = time.perf_counter() - t0
    hetero_speedup = t_hbase / t_hfast if t_hfast > 0 else float("inf")
    for i, (a, b) in enumerate(zip(hetero_base, hetero_fast)):
        if a != b:
            raise SystemExit(
                "FATAL: fused/compacted walker diverges from the "
                f"per-capacity uncompacted baseline at index {i}")
    _log(f"  base (split, no compaction) {t_hbase:8.2f} s")
    _log(f"  fast (fused + compacted)    {t_hfast:8.2f} s   "
         f"({hetero_speedup:.1f}x, bit-identical)")

    fallbacks = fallback_total() - fallbacks_before
    if fallbacks:
        _log(f"FAIL: {fallbacks:g} DES fallback(s) during the standard config "
             "set; the fast engine must cover every experiment config")
        return 1
    _log("  fastpath_fallbacks_total: 0 (no DES fallbacks)")

    failed = []
    if speedup < floor_batch:
        failed.append(f"batch speedup {speedup:.1f}x below the {floor_batch:g}x floor")
    if grid_speedup < floor_grid:
        failed.append(f"grid speedup {grid_speedup:.1f}x below the {floor_grid:g}x floor")
    if hetero_speedup < floor_hetero:
        failed.append(
            f"hetero speedup {hetero_speedup:.1f}x below the {floor_hetero:g}x floor")
    if failed:
        for msg in failed:
            _log(f"FAIL: fastpath {msg}")
        return 1

    record = {
        "benchmark": "Monte-Carlo batch: event-driven simulator vs vectorized fastpath",
        "seeds": seeds,
        "mttis_per_run": mttis,
        "strategies": [strat for strat, _, _ in LEGS],
        "runs": len(configs),
        "quick": args.quick,
        "jobs": 1,
        "cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "des_seconds": round(t_des, 4),
        "fast_seconds": round(t_fast, 4),
        "speedup": round(speedup, 2),
        "min_speedup": floor_batch,
        "fallbacks": fallbacks,
        "agreement": {
            strat: {k: (round(v, 8) if isinstance(v, float) else v)
                    for k, v in d.items()}
            for strat, d in sorted(diffs.items())
        },
        "grid": {
            "benchmark": "fig6-fig9 config set: per-config loop vs simulate_grid",
            "min_speedup": floor_grid,
            "configs": len(grid_cfgs),
            "mttis_per_cell": grid_mttis,
            "loop_seconds": round(t_loop, 4),
            "grid_seconds": round(t_grid, 4),
            "speedup": round(grid_speedup, 2),
        },
        "hetero": {
            "benchmark": ("heterogeneous work x MTTI x capacity batch: "
                          "per-capacity uncompacted walker vs fused + compacted"),
            "min_speedup": floor_hetero,
            "trajectories": len(hetero_cfgs),
            "work_targets_mttis": list(hetero_works),
            "mtti_scales": list(_HETERO_SCALES),
            "capacities": list(_HETERO_CAPS),
            "baseline_seconds": round(t_hbase, 4),
            "fused_seconds": round(t_hfast, 4),
            "speedup": round(hetero_speedup, 2),
            "bit_identical": True,
        },
    }

    if args.check:
        path = Path(args.output)
        if not path.exists():
            _log(f"FATAL: --check needs a recorded baseline at {path}")
            return 1
        baseline = json.loads(path.read_text())
        ok = True
        for name, measured in (
            ("batch", speedup),
            ("grid", grid_speedup),
            ("hetero", hetero_speedup),
        ):
            ref = baseline["speedup"] if name == "batch" else (
                baseline.get(name, {}).get("speedup"))
            if ref is None:
                _log(f"  check {name}: no recorded baseline entry, skipping")
                continue
            check_floor = args.tolerance * ref
            status = "ok" if measured >= check_floor else "REGRESSION"
            _log(f"  check {name}: {measured:.1f}x vs recorded {ref}x "
                 f"(floor {check_floor:.2f}x) {status}")
            ok = ok and measured >= check_floor
        if not ok:
            _log("FAIL: fastpath speedup regression")
            return 1
        _log("check passed: no fastpath regression")
        return 0

    Path(args.output).write_text(json.dumps(record, indent=1) + "\n")
    _log(f"wrote {args.output}: fastpath {record['speedup']}x (batch), "
         f"{record['grid']['speedup']}x (grid) and "
         f"{record['hetero']['speedup']}x (hetero) over the baselines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
