"""Record the vectorized fastpath engine's speedup to BENCH_sim_fastpath.json.

Runs one validation-sized Monte-Carlo batch (host + NDP strategies, gzip
compression, many seeds) twice on a single worker — once through the
event-driven reference simulator, once as a single
:func:`repro.simulation.fastpath.simulate_batch` call — verifies the two
engines agree (host failure counts bit-identical, ndp counts within one
failure, per-strategy mean efficiency within tolerance), and writes the
timings::

    PYTHONPATH=src python benchmarks/record_fastpath.py                # record
    PYTHONPATH=src python benchmarks/record_fastpath.py --quick \\
        -o /tmp/smoke.json                                            # smoke
    PYTHONPATH=src python benchmarks/record_fastpath.py --check       # CI gate

Recording fails (exit 1) below the ``--min-speedup`` floor: 10x for the
full batch, 2x for ``--quick`` (fixed per-batch costs amortize with batch
size, so the smoke floor is deliberately loose).  ``--check`` re-measures
and additionally fails if the speedup fell below 60% of the recorded
one (the hard floor still applies; the DES leg's timing is load-noisy).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.core import HOST_GZIP1, NDP_GZIP1, paper_parameters
from repro.simulation import SimConfig, simulate
from repro.simulation.fastpath import simulate_batch

#: (strategy, compression, ratio) legs of the batch — the two multilevel
#: configurations the validation experiment exercises hardest.
LEGS = (("host", HOST_GZIP1, 8), ("ndp", NDP_GZIP1, 1))

#: Engines must agree on mean efficiency to this absolute tolerance; the
#: ndp fastpath approximates NVM staleness with the newest undrained
#: checkpoint (see docs/RUNTIME.md), a per-seed effect of order 1e-4.
EFFICIENCY_TOL = 2e-3


def _log(msg: str) -> None:
    print(msg, file=sys.stderr)


def _batch(seeds: int, mttis: float) -> list[SimConfig]:
    p = paper_parameters()
    return [
        SimConfig(params=p, strategy=strat, ratio=ratio, compression=comp,
                  work=p.mtti * mttis, seed=seed, engine="fast")
        for seed in range(seeds)
        for strat, comp, ratio in LEGS
    ]


def _verify(configs: list[SimConfig], des, fast) -> dict[str, dict[str, float]]:
    """Cross-engine agreement; returns per-strategy divergence stats.

    The host engine is exact, so its failure counts must be bit-identical.
    The ndp stale-drain approximation perturbs wall time by ~1e-4, which
    can move the end of the run across a failure time — allow the count to
    shift by one failure either way there.
    """
    eff_diffs: dict[str, list[float]] = {}
    fail_diffs: dict[str, int] = {}
    for cfg, d, f in zip(configs, des, fast):
        slack = 0 if cfg.strategy == "host" else 1
        if abs(f.failures - d.failures) > slack:
            raise SystemExit(
                f"FATAL: engines disagree on failure count for seed {cfg.seed} "
                f"{cfg.strategy}: des={d.failures} fast={f.failures}")
        eff_diffs.setdefault(cfg.strategy, []).append(f.efficiency - d.efficiency)
        fail_diffs[cfg.strategy] = max(
            fail_diffs.get(cfg.strategy, 0), abs(f.failures - d.failures))
    out = {}
    for strat, ds in eff_diffs.items():
        mean = abs(math.fsum(ds) / len(ds))
        if mean > EFFICIENCY_TOL:
            raise SystemExit(
                f"FATAL: mean efficiency diverges for {strat}: |diff|={mean:.2e}")
        out[strat] = {
            "mean_efficiency_abs_diff": mean,
            "max_failure_count_diff": fail_diffs[strat],
        }
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seeds", type=int, default=0,
                    help="seeds per strategy (default: 128, or 16 with --quick)")
    ap.add_argument("--mttis", type=float, default=0.0,
                    help="simulated MTTIs per run (default: 150.3, or 30.3 with --quick; "
                         "non-multiples of the 150 s local interval avoid the "
                         "work-on-checkpoint-boundary float trap)")
    ap.add_argument("--quick", action="store_true",
                    help="tiny batch + 2x floor for smoke runs")
    ap.add_argument("--check", action="store_true",
                    help="compare against the recorded baseline instead of overwriting")
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="hard speedup floor (default: 10, or 2 with --quick)")
    ap.add_argument("--tolerance", type=float, default=0.6,
                    help="--check passes while the speedup stays above this "
                         "fraction of the recorded one (default 0.6: the DES "
                         "leg's absolute timing is load-sensitive, and the "
                         "10x hard floor still applies regardless)")
    ap.add_argument("-o", "--output", default="BENCH_sim_fastpath.json",
                    help="baseline JSON path")
    args = ap.parse_args(argv)

    seeds = args.seeds or (16 if args.quick else 128)
    mttis = args.mttis or (30.3 if args.quick else 150.3)
    floor = args.min_speedup or (2.0 if args.quick else 10.0)

    configs = _batch(seeds, mttis)
    _log(f"batch: {len(configs)} runs ({seeds} seeds x {len(LEGS)} strategies "
         f"x {mttis:g} MTTIs), single worker")

    t0 = time.perf_counter()
    des = [simulate(replace(c, engine="des")) for c in configs]
    t_des = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = simulate_batch(configs)
    t_fast = time.perf_counter() - t0
    speedup = t_des / t_fast if t_fast > 0 else float("inf")
    diffs = _verify(configs, des, fast)
    _log(f"  des  (event-driven)   {t_des:8.2f} s")
    _log(f"  fast (one batch)      {t_fast:8.2f} s   ({speedup:.1f}x)")
    for strat, d in sorted(diffs.items()):
        _log(f"  agreement {strat:10s} |mean eff diff| = "
             f"{d['mean_efficiency_abs_diff']:.2e}  "
             f"max |failure diff| = {d['max_failure_count_diff']}")

    if speedup < floor:
        _log(f"FAIL: fastpath speedup {speedup:.1f}x below the {floor:g}x floor")
        return 1

    record = {
        "benchmark": "Monte-Carlo batch: event-driven simulator vs vectorized fastpath",
        "seeds": seeds,
        "mttis_per_run": mttis,
        "strategies": [strat for strat, _, _ in LEGS],
        "runs": len(configs),
        "quick": args.quick,
        "jobs": 1,
        "cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "des_seconds": round(t_des, 4),
        "fast_seconds": round(t_fast, 4),
        "speedup": round(speedup, 2),
        "min_speedup": floor,
        "agreement": {
            strat: {k: (round(v, 8) if isinstance(v, float) else v)
                    for k, v in d.items()}
            for strat, d in sorted(diffs.items())
        },
    }

    if args.check:
        path = Path(args.output)
        if not path.exists():
            _log(f"FATAL: --check needs a recorded baseline at {path}")
            return 1
        baseline = json.loads(path.read_text())
        ref = baseline["speedup"]
        check_floor = args.tolerance * ref
        status = "ok" if speedup >= check_floor else "REGRESSION"
        _log(f"  check fastpath: {speedup:.1f}x vs recorded {ref}x "
             f"(floor {check_floor:.2f}x) {status}")
        if speedup < check_floor:
            _log("FAIL: fastpath speedup regression")
            return 1
        _log("check passed: no fastpath regression")
        return 0

    Path(args.output).write_text(json.dumps(record, indent=1) + "\n")
    _log(f"wrote {args.output}: fastpath {record['speedup']}x over the "
         f"event-driven engine on {len(configs)} runs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
