"""Record the vectorized fastpath engine's speedup to BENCH_sim_fastpath.json.

Two measurements, both verified before timing is trusted:

* **batch**: one validation-sized Monte-Carlo batch (host + NDP
  strategies, gzip compression, many seeds) twice on a single worker —
  once through the event-driven reference simulator, once as a single
  :func:`repro.simulation.fastpath.simulate_batch` call.  The engines
  must agree (host failure counts bit-identical, ndp within one failure
  at the run boundary, mean efficiency within tolerance).
* **grid**: the fig6-fig9 experiment config set (the standard figure
  grids) once as a per-config loop (one ``simulate_batch`` call per
  config — the pre-``simulate_grid`` pattern) and once as a single
  :func:`repro.simulation.simulate_grid` pass.  Results must be
  bit-identical, and the whole set must run without a single DES
  fallback (``fastpath_fallbacks_total`` stays flat).

::

    PYTHONPATH=src python benchmarks/record_fastpath.py                # record
    PYTHONPATH=src python benchmarks/record_fastpath.py --quick \\
        -o /tmp/smoke.json                                            # smoke
    PYTHONPATH=src python benchmarks/record_fastpath.py --check       # CI gate

Recording fails (exit 1) below the ``--min-speedup`` floors: at full
size 8x for the batch (the exact ring walker trades a little of the old
approximate engine's top-end speed for bit-exactness) and 10x for the
grid; 1.5x/2x with ``--quick`` (fixed per-batch costs amortize with
batch size, so the smoke floors are deliberately loose).
``--check`` re-measures and additionally fails if either speedup fell
below 60% of its recorded value (the hard floor still applies; the DES
leg's timing is load-noisy).
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.core import HOST_GZIP1, NDP_GZIP1, paper_parameters
from repro.simulation import SimConfig, simulate, simulate_grid
from repro.simulation.fastpath import _FALLBACKS, simulate_batch

#: (strategy, compression, ratio) legs of the batch — the two multilevel
#: configurations the validation experiment exercises hardest.
LEGS = (("host", HOST_GZIP1, 8), ("ndp", NDP_GZIP1, 1))

#: Engines must agree on mean efficiency to this absolute tolerance.  The
#: fast engine models the NVM ring per-slot and is matched-seed exact;
#: only sub-ulp drain-clock association on rare ndp seeds remains, so the
#: mean difference over a batch is rounding noise.
EFFICIENCY_TOL = 1e-6


def _log(msg: str) -> None:
    print(msg, file=sys.stderr)


def _batch(seeds: int, mttis: float) -> list[SimConfig]:
    p = paper_parameters()
    return [
        SimConfig(params=p, strategy=strat, ratio=ratio, compression=comp,
                  work=p.mtti * mttis, seed=seed, engine="fast")
        for seed in range(seeds)
        for strat, comp, ratio in LEGS
    ]


def _grid_configs(mttis: float) -> list[SimConfig]:
    """The fig6-fig9 experiment grids, flattened to one config list."""
    from repro.experiments import fig6, fig7, fig8, fig9

    flat: list[SimConfig] = []

    def walk(item) -> None:
        if isinstance(item, list):
            for sub in item:
                walk(sub)
        else:
            flat.append(item)

    for grid in (
        fig6.sim_configs(mttis=mttis),
        fig7.sim_configs(mttis=mttis),
        fig8.sim_configs(mttis=mttis),
        fig9.sim_configs(mttis=mttis),
    ):
        walk(grid)
    return flat


def _verify(configs: list[SimConfig], des, fast) -> dict[str, dict[str, float]]:
    """Cross-engine agreement; returns per-strategy divergence stats.

    Host/io-only/local-only trajectories are bit-exact, so their failure
    counts must match exactly.  The ndp segment walker carries sub-ulp
    drain-clock residuals that can move the end of the run across a
    failure time on rare seeds — allow that count to shift by one.
    """
    eff_diffs: dict[str, list[float]] = {}
    fail_diffs: dict[str, int] = {}
    for cfg, d, f in zip(configs, des, fast):
        slack = 1 if cfg.strategy == "ndp" else 0
        if abs(f.failures - d.failures) > slack:
            raise SystemExit(
                f"FATAL: engines disagree on failure count for seed {cfg.seed} "
                f"{cfg.strategy}: des={d.failures} fast={f.failures}")
        eff_diffs.setdefault(cfg.strategy, []).append(f.efficiency - d.efficiency)
        fail_diffs[cfg.strategy] = max(
            fail_diffs.get(cfg.strategy, 0), abs(f.failures - d.failures))
    out = {}
    for strat, ds in eff_diffs.items():
        mean = abs(math.fsum(ds) / len(ds))
        if mean > EFFICIENCY_TOL:
            raise SystemExit(
                f"FATAL: mean efficiency diverges for {strat}: |diff|={mean:.2e}")
        out[strat] = {
            "mean_efficiency_abs_diff": mean,
            "max_failure_count_diff": fail_diffs[strat],
        }
    return out


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seeds", type=int, default=0,
                    help="seeds per strategy (default: 128, or 16 with --quick)")
    ap.add_argument("--mttis", type=float, default=0.0,
                    help="simulated MTTIs per run (default: 150.3, or 30.3 with --quick; "
                         "non-multiples of the 150 s local interval avoid the "
                         "work-on-checkpoint-boundary float trap)")
    ap.add_argument("--grid-mttis", type=float, default=0.0,
                    help="simulated MTTIs per grid cell (default: 50, or 10 with --quick)")
    ap.add_argument("--quick", action="store_true",
                    help="tiny batch + 1.5x floor for smoke runs")
    ap.add_argument("--check", action="store_true",
                    help="compare against the recorded baseline instead of overwriting")
    ap.add_argument("--min-speedup", type=float, default=0.0,
                    help="hard speedup floor for both measurements "
                         "(default: batch 8 / grid 10, or 1.5 / 2 with --quick)")
    ap.add_argument("--tolerance", type=float, default=0.6,
                    help="--check passes while each speedup stays above this "
                         "fraction of its recorded value (default 0.6: the DES "
                         "leg's absolute timing is load-sensitive, and the "
                         "hard floor still applies regardless)")
    ap.add_argument("-o", "--output", default="BENCH_sim_fastpath.json",
                    help="baseline JSON path")
    args = ap.parse_args(argv)

    seeds = args.seeds or (16 if args.quick else 128)
    mttis = args.mttis or (30.3 if args.quick else 150.3)
    grid_mttis = args.grid_mttis or (10.0 if args.quick else 50.0)
    floor_batch = args.min_speedup or (1.5 if args.quick else 8.0)
    floor_grid = args.min_speedup or (2.0 if args.quick else 10.0)

    fallbacks_before = _FALLBACKS.value()

    # -- batch measurement: DES vs one simulate_batch call -------------------
    configs = _batch(seeds, mttis)
    _log(f"batch: {len(configs)} runs ({seeds} seeds x {len(LEGS)} strategies "
         f"x {mttis:g} MTTIs), single worker")

    t0 = time.perf_counter()
    des = [simulate(replace(c, engine="des")) for c in configs]
    t_des = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = simulate_batch(configs)
    t_fast = time.perf_counter() - t0
    speedup = t_des / t_fast if t_fast > 0 else float("inf")
    diffs = _verify(configs, des, fast)
    _log(f"  des  (event-driven)   {t_des:8.2f} s")
    _log(f"  fast (one batch)      {t_fast:8.2f} s   ({speedup:.1f}x)")
    for strat, d in sorted(diffs.items()):
        _log(f"  agreement {strat:10s} |mean eff diff| = "
             f"{d['mean_efficiency_abs_diff']:.2e}  "
             f"max |failure diff| = {d['max_failure_count_diff']}")

    # -- grid measurement: per-config loop vs one simulate_grid pass ---------
    grid_cfgs = _grid_configs(grid_mttis)
    _log(f"grid: fig6-fig9 config set, {len(grid_cfgs)} configs x "
         f"{grid_mttis:g} MTTIs, single worker")
    t0 = time.perf_counter()
    looped = [simulate_batch([c])[0] for c in grid_cfgs]
    t_loop = time.perf_counter() - t0
    t0 = time.perf_counter()
    grid = simulate_grid(grid_cfgs, seeds=(0,), jobs=1)
    t_grid = time.perf_counter() - t0
    grid_speedup = t_loop / t_grid if t_grid > 0 else float("inf")
    for i, (a, b) in enumerate(zip(looped, grid.results.reshape(-1))):
        if a != b:
            raise SystemExit(
                f"FATAL: grid pass diverges from per-config loop at index {i}")
    _log(f"  loop (per config)     {t_loop:8.2f} s")
    _log(f"  grid (one pass)       {t_grid:8.2f} s   ({grid_speedup:.1f}x)")

    fallbacks = _FALLBACKS.value() - fallbacks_before
    if fallbacks:
        _log(f"FAIL: {fallbacks:g} DES fallback(s) during the standard config "
             "set; the fast engine must cover every experiment config")
        return 1
    _log("  fastpath_fallbacks_total: 0 (no DES fallbacks)")

    failed = []
    if speedup < floor_batch:
        failed.append(f"batch speedup {speedup:.1f}x below the {floor_batch:g}x floor")
    if grid_speedup < floor_grid:
        failed.append(f"grid speedup {grid_speedup:.1f}x below the {floor_grid:g}x floor")
    if failed:
        for msg in failed:
            _log(f"FAIL: fastpath {msg}")
        return 1

    record = {
        "benchmark": "Monte-Carlo batch: event-driven simulator vs vectorized fastpath",
        "seeds": seeds,
        "mttis_per_run": mttis,
        "strategies": [strat for strat, _, _ in LEGS],
        "runs": len(configs),
        "quick": args.quick,
        "jobs": 1,
        "cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "des_seconds": round(t_des, 4),
        "fast_seconds": round(t_fast, 4),
        "speedup": round(speedup, 2),
        "min_speedup": floor_batch,
        "fallbacks": fallbacks,
        "agreement": {
            strat: {k: (round(v, 8) if isinstance(v, float) else v)
                    for k, v in d.items()}
            for strat, d in sorted(diffs.items())
        },
        "grid": {
            "benchmark": "fig6-fig9 config set: per-config loop vs simulate_grid",
            "min_speedup": floor_grid,
            "configs": len(grid_cfgs),
            "mttis_per_cell": grid_mttis,
            "loop_seconds": round(t_loop, 4),
            "grid_seconds": round(t_grid, 4),
            "speedup": round(grid_speedup, 2),
        },
    }

    if args.check:
        path = Path(args.output)
        if not path.exists():
            _log(f"FATAL: --check needs a recorded baseline at {path}")
            return 1
        baseline = json.loads(path.read_text())
        ok = True
        for name, measured in (("batch", speedup), ("grid", grid_speedup)):
            ref = baseline["speedup"] if name == "batch" else (
                baseline.get("grid", {}).get("speedup"))
            if ref is None:
                _log(f"  check {name}: no recorded baseline entry, skipping")
                continue
            check_floor = args.tolerance * ref
            status = "ok" if measured >= check_floor else "REGRESSION"
            _log(f"  check {name}: {measured:.1f}x vs recorded {ref}x "
                 f"(floor {check_floor:.2f}x) {status}")
            ok = ok and measured >= check_floor
        if not ok:
            _log("FAIL: fastpath speedup regression")
            return 1
        _log("check passed: no fastpath regression")
        return 0

    Path(args.output).write_text(json.dumps(record, indent=1) + "\n")
    _log(f"wrote {args.output}: fastpath {record['speedup']}x (batch) and "
         f"{record['grid']['speedup']}x (grid) over the baselines")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
