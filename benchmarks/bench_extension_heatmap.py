"""Extension bench: the NDP advantage over the full (size x MTTI) plane."""

from repro.experiments import heatmap


def test_heatmap(benchmark, show):
    result = benchmark(heatmap.run, resolution=20)
    show(result)
    # NDP+compression never loses to host+compression on the plane and
    # wins big in the exascale corner (short MTTI, large checkpoints).
    assert result.headline["min_advantage"] > -0.02
    assert result.headline["peak_advantage"] > 0.15
