#!/usr/bin/env python
"""Record (or check) BENCH_service.json: service throughput under load.

A closed-loop load generator drives the capacity-planning service with a
zipfian config distribution — the "millions of users" traffic shape,
where a few popular scenarios dominate and a long tail of variants
trickles in — and measures two server configurations on the *same*
workload:

* **naive** — one-request-one-simulate dispatch: coalescing off,
  batching off (``max_batch=1``), no shared result cache.  This is what
  "every client pays full price" costs even with the process already
  warm.
* **service** — coalescing + micro-batching + the shared cache (cold at
  start, so every hit reported was earned within the run).

Recorded: requests/s, p50/p99 latency, coalesce rate, cache hit rate,
mean fused fast-batch size, and the speedup.  The regression gate
(``make bench-service``) re-measures and fails if the speedup drops
below the hard floor (3x full mode, 1.5x ``--quick``) or regresses more
than the tolerance vs the recording.

Three further legs ride along (recorded and gated the same way):

* **overload** — heavy DES requests at several times the single-slot
  capacity, with and without the admission controller.  Gate: with
  shedding on, accepted-request p99 stays within 3x the uncontended
  p99 (and some requests *were* shed, with a ``Retry-After``); with
  shedding off, the queue drives p99 well past that bound.
* **streaming** — one sweep grid fetched buffered and streamed.  Gate:
  time-to-first-row beats half the buffered wall time, peak traced
  memory during consumption is lower streamed, and the rows hash
  identically to the buffered cells.
* **multiproc** — the zipfian workload against 1 vs 2 prefork workers,
  byte-identity enforced across both.  The throughput floor only
  applies when ``os.cpu_count() > 1`` (CI containers are 1-CPU;
  numbers are still recorded).

Modes::

    python benchmarks/record_service.py               # record full-size
    python benchmarks/record_service.py --check       # regression gate
    python benchmarks/record_service.py --quick       # tiny CI variant
    python benchmarks/record_service.py --smoke       # boot + mixed burst

Determinism note: besides the throughput numbers, the generator asserts
that every distinct config's response bytes are identical across the
whole run (coalesced, batched, cached or not) *and* equal to a serial
in-process evaluation — the service-level determinism contract.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import (  # noqa: E402
    BackgroundServer,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    WorkerSupervisor,
)
from repro.service.protocol import (  # noqa: E402
    canonical_dumps,
    config_from_json,
    result_to_json,
)
from repro.simulation import ResultCache, simulate  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: Hard speedup floors (batched+coalesced vs naive) by mode.
FLOOR_FULL = 3.0
FLOOR_QUICK = 1.5
#: --check fails if the speedup falls below tolerance * recorded value.
TOLERANCE = 0.6


def zipf_indices(n_items: int, n_draws: int, *, s: float = 1.1, seed: int = 7) -> list[int]:
    """``n_draws`` zipfian draws over ``range(n_items)`` (rank-frequency
    exponent ``s``), deterministic in ``seed``.

    Hand-rolled inverse-CDF sampling over the finite harmonic weights so
    the workload is reproducible byte-for-byte across runs and machines.
    """
    import random

    weights = [1.0 / (rank + 1) ** s for rank in range(n_items)]
    total = sum(weights)
    cdf = []
    acc = 0.0
    for w in weights:
        acc += w
        cdf.append(acc / total)
    rng = random.Random(seed)
    out = []
    for _ in range(n_draws):
        u = rng.random()
        lo, hi = 0, n_items - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        out.append(lo)
    return out


def build_corpus(n_configs: int, work_mttis: float) -> list[dict]:
    """``n_configs`` distinct simulate-request bodies (the config corpus).

    Cheap-to-simulate scenarios (short MTTI, small checkpoints, modest
    work targets) so the benchmark measures *service* overheads and
    batching wins, not raw engine time.
    """
    corpus: list[dict] = []
    strategies = ("ndp", "host", "io-only", "local-only")
    for i in range(n_configs):
        corpus.append(
            {
                "params": {
                    "mtti": 600.0 + 60.0 * (i % 7),
                    "checkpoint_size": 1e9 * (1 + i % 5),
                    "local_interval": 100.0 + 10.0 * (i % 3),
                },
                "strategy": strategies[i % len(strategies)],
                "ratio": 1 + (i % 4) if strategies[i % len(strategies)] == "host" else 1,
                "compression": ("ndp-gzip1", "host-gzip1", "none")[i % 3],
                "work_mttis": work_mttis,
                "seed": i % 11,
            }
        )
    return corpus


class LoadResult:
    def __init__(self) -> None:
        self.latencies: list[float] = []
        self.responses: dict[int, bytes] = {}
        self.errors: list[str] = []
        self.lock = threading.Lock()


def run_load(
    port: int, corpus: list[dict], schedule: list[int], n_clients: int
) -> tuple[LoadResult, float]:
    """Drive ``schedule`` (a list of corpus indices) through ``n_clients``
    closed-loop clients; returns per-request latencies and wall time."""
    result = LoadResult()
    shards = [schedule[i::n_clients] for i in range(n_clients)]

    def client_loop(shard: list[int]) -> None:
        with ServiceClient("127.0.0.1", port, timeout=300.0) as client:
            for idx in shard:
                t0 = time.perf_counter()
                try:
                    raw = client.post_raw("/v1/simulate", corpus[idx])
                except Exception as exc:  # noqa: BLE001 - recorded, not fatal
                    with result.lock:
                        result.errors.append(f"config {idx}: {exc}")
                    continue
                dt = time.perf_counter() - t0
                with result.lock:
                    result.latencies.append(dt)
                    prev = result.responses.setdefault(idx, raw)
                    if prev != raw:
                        result.errors.append(
                            f"config {idx}: non-deterministic response bytes"
                        )

    threads = [
        threading.Thread(target=client_loop, args=(shard,), daemon=True)
        for shard in shards
        if shard
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return result, time.perf_counter() - t0


def verify_byte_identity(corpus: list[dict], responses: dict[int, bytes]) -> int:
    """Every recorded response must equal a serial in-process evaluation."""
    checked = 0
    for idx, raw in sorted(responses.items()):
        cfg = config_from_json(corpus[idx])
        expected = canonical_dumps({"result": result_to_json(simulate(cfg))})
        if raw != expected:
            raise SystemExit(
                f"BYTE-IDENTITY VIOLATION: config {idx} service response "
                "differs from serial simulate()"
            )
        checked += 1
    return checked


def percentile(values: list[float], q: float) -> float:
    if not values:
        return float("nan")
    ordered = sorted(values)
    k = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[k]


def measure(
    corpus: list[dict],
    schedule: list[int],
    n_clients: int,
    *,
    naive: bool,
    cache_dir: Path | None,
) -> dict:
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    config = ServiceConfig(
        port=0,
        jobs=1,
        cache=None if naive else cache,
        batch_window=0.0 if naive else 0.002,
        max_batch=1 if naive else 512,
        max_inflight=2,
        coalesce=not naive,
    )
    with BackgroundServer(config) as bg:
        load, wall = run_load(bg.port, corpus, schedule, n_clients)
        with ServiceClient("127.0.0.1", bg.port) as client:
            stats = client.stats()
    if load.errors:
        raise SystemExit(
            f"load generation errors ({len(load.errors)}): {load.errors[:5]}"
        )
    n = len(load.latencies)
    coalesce = stats["coalesce"]
    cache_stats = stats["cache"]
    served = coalesce["primary"] + coalesce["coalesced"]
    return {
        "mode": "naive" if naive else "service",
        "requests": n,
        "wall_seconds": wall,
        "requests_per_second": n / wall,
        "p50_latency_ms": percentile(load.latencies, 0.50) * 1e3,
        "p99_latency_ms": percentile(load.latencies, 0.99) * 1e3,
        "mean_latency_ms": statistics.fmean(load.latencies) * 1e3,
        "coalesce_rate": coalesce["coalesced"] / served if served else 0.0,
        "cache_hit_rate": (
            cache_stats["hits"] / (cache_stats["hits"] + cache_stats["misses"])
            if cache_stats["hits"] + cache_stats["misses"]
            else 0.0
        ),
        "mean_fused_batch": stats["batch"]["mean_fast_batch"],
        "max_batch_seen": stats["batch"]["max_batch_seen"],
        "responses": load.responses,
    }


def run_benchmark(quick: bool, tmp_cache: Path) -> dict:
    if quick:
        n_configs, n_requests, n_clients, work_mttis = 24, 160, 8, 5.0
    else:
        n_configs, n_requests, n_clients, work_mttis = 64, 640, 16, 10.0
    corpus = build_corpus(n_configs, work_mttis)
    schedule = zipf_indices(n_configs, n_requests)

    print(
        f"workload: {n_requests} requests over {n_configs} configs "
        f"(zipfian), {n_clients} closed-loop clients, "
        f"{work_mttis:.0f} MTTIs work each"
    )
    naive = measure(corpus, schedule, n_clients, naive=True, cache_dir=None)
    print(
        f"naive   : {naive['requests_per_second']:8.1f} req/s   "
        f"p50 {naive['p50_latency_ms']:7.1f} ms   p99 {naive['p99_latency_ms']:7.1f} ms"
    )
    service = measure(
        corpus, schedule, n_clients, naive=False, cache_dir=tmp_cache
    )
    print(
        f"service : {service['requests_per_second']:8.1f} req/s   "
        f"p50 {service['p50_latency_ms']:7.1f} ms   p99 {service['p99_latency_ms']:7.1f} ms   "
        f"coalesce {service['coalesce_rate']:.0%}   cache {service['cache_hit_rate']:.0%}   "
        f"fused batch {service['mean_fused_batch']:.1f}"
    )

    # Determinism: both modes answered every config identically, and
    # identically to a serial in-process evaluation.
    for idx, raw in service["responses"].items():
        if idx in naive["responses"] and naive["responses"][idx] != raw:
            raise SystemExit(
                f"BYTE-IDENTITY VIOLATION: config {idx} differs naive vs service"
            )
    checked = verify_byte_identity(corpus, service["responses"])
    print(f"byte-identity: {checked} distinct configs verified against serial simulate")

    speedup = service["requests_per_second"] / naive["requests_per_second"]
    print(f"speedup : {speedup:.2f}x (batched+coalesced vs naive dispatch)")
    for side in (naive, service):
        side.pop("responses")

    overload = overload_leg(quick)
    streaming = streaming_leg(quick)
    multiproc = multiproc_leg(quick)
    return {
        "benchmark": "service_throughput",
        "quick": quick,
        "workload": {
            "n_configs": n_configs,
            "n_requests": n_requests,
            "n_clients": n_clients,
            "work_mttis": work_mttis,
            "zipf_s": 1.1,
        },
        "naive": naive,
        "service": service,
        "speedup": speedup,
        "byte_identity_checked": checked,
        "overload": overload,
        "streaming": streaming,
        "multiproc": multiproc,
    }


def _heavy(i: int, work_mttis: float) -> dict:
    """A single-slot-hogging DES request (distinct per ``i``)."""
    return {
        "params": {"mtti": 600.0},
        "work_mttis": work_mttis,
        "engine": "des",
        "seed": i,
    }


def overload_leg(quick: bool) -> dict:
    """Offered load >> capacity, with and without admission control.

    One serving slot (``max_inflight=1``, ``max_batch=1``) and heavy DES
    requests: with ``queue_budget`` set, excess offered load is shed
    (503 + Retry-After) and the *accepted* requests keep a tight p99;
    with shedding off, every request is accepted into an ever-deeper
    queue and p99 blows past the 3x bound.
    """
    # Offered load is ~6x the single slot either way; the client count
    # stays modest because the closed-loop clients share this process
    # (and its GIL) with the server — too many timing threads inflates
    # the measured accepted latency with scheduler noise, not queueing.
    work_mttis = 100.0 if quick else 200.0
    n_offered = 18 if quick else 24
    n_clients = 6

    def server_config(budget: float | None) -> ServiceConfig:
        return ServiceConfig(
            port=0,
            jobs=1,
            cache=None,
            coalesce=False,
            batch_window=0.0,
            max_batch=1,  # est. drain time = queue depth x per-job EWMA
            max_inflight=1,
            queue_budget=budget,
        )

    # Uncontended baseline (and the budget's unit): sequential heavies.
    with BackgroundServer(server_config(None)) as bg:
        with ServiceClient("127.0.0.1", bg.port, timeout=300.0) as client:
            base: list[float] = []
            for i in range(1000, 1008):
                t0 = time.perf_counter()
                client.post_raw("/v1/simulate", _heavy(i, work_mttis))
                base.append(time.perf_counter() - t0)
    uncontended_p99 = percentile(base, 0.99)
    budget = 1.25 * percentile(base, 0.50)

    def burst(shed: bool) -> dict:
        accepted: list[float] = []
        shed_count = 0
        errors: list[str] = []
        lock = threading.Lock()
        with BackgroundServer(server_config(budget if shed else None)) as bg:
            with ServiceClient("127.0.0.1", bg.port, timeout=300.0) as warm:
                # Warm the batcher's service-time EWMA (the admission
                # controller never sheds before its first observation).
                warm.post_raw("/v1/simulate", _heavy(2000, work_mttis))

            def client_loop(shard: list[int]) -> None:
                nonlocal shed_count
                with ServiceClient("127.0.0.1", bg.port, timeout=300.0) as c:
                    for i in shard:
                        t0 = time.perf_counter()
                        try:
                            c.post_raw("/v1/simulate", _heavy(i, work_mttis))
                        except ServiceError as exc:
                            with lock:
                                if exc.status == 503 and exc.retry_after:
                                    shed_count += 1
                                else:
                                    errors.append(f"req {i}: {exc}")
                            continue
                        with lock:
                            accepted.append(time.perf_counter() - t0)

            offered = list(range(3000, 3000 + n_offered))
            threads = [
                threading.Thread(
                    target=client_loop, args=(offered[k::n_clients],), daemon=True
                )
                for k in range(n_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            raise SystemExit(f"overload leg errors: {errors[:5]}")
        p99 = percentile(accepted, 0.99)
        return {
            "offered": n_offered,
            "accepted": len(accepted),
            "shed": shed_count,
            "accepted_p99_ms": p99 * 1e3,
            "p99_vs_uncontended": p99 / uncontended_p99,
        }

    with_shed = burst(shed=True)
    without = burst(shed=False)
    record = {
        "work_mttis": work_mttis,
        "uncontended_p99_ms": uncontended_p99 * 1e3,
        "queue_budget_ms": budget * 1e3,
        "shedding": with_shed,
        "no_shedding": without,
    }
    print(
        f"overload: uncontended p99 {record['uncontended_p99_ms']:.0f} ms | "
        f"shed on: p99 {with_shed['p99_vs_uncontended']:.1f}x, "
        f"{with_shed['shed']}/{with_shed['offered']} shed | "
        f"shed off: p99 {without['p99_vs_uncontended']:.1f}x"
    )
    if with_shed["shed"] == 0:
        raise SystemExit("overload leg: admission controller never shed")
    if with_shed["p99_vs_uncontended"] > 3.0:
        raise SystemExit(
            f"overload leg: accepted p99 {with_shed['p99_vs_uncontended']:.1f}x "
            "uncontended exceeds the 3x bound despite shedding"
        )
    if without["p99_vs_uncontended"] <= 3.0:
        raise SystemExit(
            "overload leg: queue never built up without shedding — "
            "the contrast leg is not measuring overload"
        )
    return record


def streaming_leg(quick: bool) -> dict:
    """One sweep grid, buffered vs streamed: TTFR and peak traced memory.

    ``max_batch`` is kept small so the grid completes group by group —
    the streamed response emits rows as groups finish while the
    buffered one holds every cell until the end.
    """
    import hashlib
    import tracemalloc

    n_configs, n_seeds = (24, 4) if quick else (48, 8)
    corpus = build_corpus(n_configs, work_mttis=3.0)
    sweep = {"configs": corpus, "seeds": list(range(n_seeds)), "detail": True}
    config = ServiceConfig(
        port=0, jobs=1, cache=None, batch_window=0.002, max_batch=8
    )
    with BackgroundServer(config) as bg:
        with ServiceClient("127.0.0.1", bg.port, timeout=600.0) as client:
            tracemalloc.start()
            t0 = time.perf_counter()
            raw = client.post_raw("/v1/sweep", sweep)
            cells = json.loads(raw)["cells"]
            buffered_wall = time.perf_counter() - t0
            _, buffered_peak = tracemalloc.get_traced_memory()
            buffered_hash = hashlib.sha256()
            for cell in cells:
                buffered_hash.update(canonical_dumps(cell))
                buffered_hash.update(b"\n")
            del raw, cells
            tracemalloc.stop()

            tracemalloc.start()
            stream_hash = hashlib.sha256()
            ttfr = None
            rows = 0
            t0 = time.perf_counter()
            for row in client.sweep_stream(sweep):
                if ttfr is None:
                    ttfr = time.perf_counter() - t0
                stream_hash.update(canonical_dumps(row))
                stream_hash.update(b"\n")
                rows += 1
            stream_wall = time.perf_counter() - t0
            _, stream_peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()

    record = {
        "n_cells": n_configs,
        "n_seeds": n_seeds,
        "buffered_wall_ms": buffered_wall * 1e3,
        "buffered_peak_kb": buffered_peak / 1024,
        "ttfr_ms": ttfr * 1e3,
        "stream_wall_ms": stream_wall * 1e3,
        "stream_peak_kb": stream_peak / 1024,
    }
    print(
        f"streaming: buffered {record['buffered_wall_ms']:.0f} ms "
        f"(peak {record['buffered_peak_kb']:.0f} KiB) | streamed TTFR "
        f"{record['ttfr_ms']:.0f} ms, wall {record['stream_wall_ms']:.0f} ms "
        f"(peak {record['stream_peak_kb']:.0f} KiB)"
    )
    if rows != n_configs:
        raise SystemExit(f"streaming leg: {rows} rows for {n_configs} cells")
    if stream_hash.digest() != buffered_hash.digest():
        raise SystemExit(
            "BYTE-IDENTITY VIOLATION: streamed rows differ from buffered cells"
        )
    if ttfr >= 0.5 * buffered_wall:
        raise SystemExit(
            f"streaming leg: TTFR {ttfr * 1e3:.0f} ms not ahead of the "
            f"buffered wall {buffered_wall * 1e3:.0f} ms"
        )
    if stream_peak >= buffered_peak:
        raise SystemExit(
            f"streaming leg: streamed peak {stream_peak} B not below "
            f"buffered peak {buffered_peak} B"
        )
    return record


def multiproc_leg(quick: bool) -> dict:
    """The zipfian workload against 1 vs 2 prefork workers.

    Byte identity across worker counts is a hard gate everywhere; the
    throughput floor only applies on multi-core hosts (a 1-CPU
    container time-slices both workers over one core, so the ratio is
    noise there — recorded, not gated).
    """
    import os

    n_configs, n_requests, n_clients = (16, 64, 8) if quick else (24, 128, 8)
    corpus = build_corpus(n_configs, work_mttis=5.0)
    schedule = zipf_indices(n_configs, n_requests)

    def run(procs: int) -> tuple[dict[int, bytes], float]:
        config = ServiceConfig(port=0, jobs=1, cache=None)
        with WorkerSupervisor(config, procs=procs) as sup:
            load, wall = run_load(sup.port, corpus, schedule, n_clients)
        if load.errors:
            raise SystemExit(
                f"multiproc leg ({procs} workers) errors: {load.errors[:5]}"
            )
        return load.responses, len(load.latencies) / wall

    single_responses, single_rps = run(1)
    multi_responses, multi_rps = run(2)
    for idx, raw in multi_responses.items():
        if single_responses.get(idx) != raw:
            raise SystemExit(
                f"BYTE-IDENTITY VIOLATION: config {idx} differs between "
                "1-worker and 2-worker serving"
            )
    speedup = multi_rps / single_rps
    cpus = os.cpu_count() or 1
    record = {
        "cpus": cpus,
        "requests": n_requests,
        "single_rps": single_rps,
        "multi_rps": multi_rps,
        "speedup_2workers": speedup,
        "floor_applied": cpus > 1,
    }
    print(
        f"multiproc: 1 worker {single_rps:.1f} req/s, 2 workers "
        f"{multi_rps:.1f} req/s ({speedup:.2f}x, "
        f"{'gated' if cpus > 1 else f'{cpus} cpu — floor skipped'})"
    )
    if cpus > 1 and speedup < 0.9:
        raise SystemExit(
            f"multiproc leg: 2-worker throughput {speedup:.2f}x of 1-worker "
            "on a multi-core host (floor 0.9x)"
        )
    return record


def smoke(port: int = 0) -> int:
    """Boot a server, fire a mixed burst, check /metrics counters moved."""
    corpus = build_corpus(8, 3.0)
    with BackgroundServer(ServiceConfig(port=port, cache=None)) as bg:
        with ServiceClient("127.0.0.1", bg.port) as client:
            assert client.healthz() == {"status": "ok"}
            schedule = zipf_indices(8, 24)
            load, _wall = run_load(bg.port, corpus, schedule, n_clients=4)
            if load.errors:
                print(f"smoke errors: {load.errors[:3]}", file=sys.stderr)
                return 1
            client.sweep({"configs": corpus[:2], "seeds": [0, 1]})
            client.optimize({"params": {"mtti": 1800.0}, "compression": "host-gzip1"})
            text = client.metrics_text()
            stats = client.stats()
    checked = verify_byte_identity(corpus, load.responses)
    required = [
        "service_requests_total",
        "service_batches_total",
        "service_batched_requests_total",
        "service_request_seconds",
    ]
    missing = [m for m in required if m not in text]
    if missing:
        print(f"smoke: /metrics missing {missing}", file=sys.stderr)
        return 1
    # Coalesced duplicates never reach the batcher, so submitted <=
    # requests; but every request must be accounted for somewhere.
    served = stats["coalesce"]["primary"] + stats["coalesce"]["coalesced"]
    if stats["batch"]["submitted"] < 1 or served < len(schedule):
        print("smoke: request accounting does not cover the burst", file=sys.stderr)
        return 1
    print(
        f"serve-smoke ok: {stats['requests']} requests, "
        f"{stats['batch']['batches']} batches, mean fused "
        f"{stats['batch']['mean_fast_batch']:.1f}, {checked} configs byte-verified"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--check", action="store_true", help="regression-gate mode")
    ap.add_argument("--quick", action="store_true", help="tiny CI-sized workload")
    ap.add_argument("--smoke", action="store_true", help="boot + burst + metrics check")
    ap.add_argument("-o", "--output", type=Path, default=DEFAULT_OUT)
    args = ap.parse_args(argv)

    if args.smoke:
        return smoke()

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-service-bench-") as tmp:
        record = run_benchmark(args.quick, Path(tmp) / "cache")

    floor = FLOOR_QUICK if args.quick else FLOOR_FULL
    if record["speedup"] < floor:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x below the {floor}x floor",
            file=sys.stderr,
        )
        return 1

    if args.check and args.output.exists():
        prior = json.loads(args.output.read_text())
        bar = TOLERANCE * prior["speedup"]
        if record["speedup"] < bar:
            print(
                f"FAIL: speedup {record['speedup']:.2f}x regressed below "
                f"{TOLERANCE:.0%} of the recorded {prior['speedup']:.2f}x",
                file=sys.stderr,
            )
            return 1
        print(
            f"ok: {record['speedup']:.2f}x vs recorded {prior['speedup']:.2f}x "
            f"(floor {floor}x)"
        )
        return 0

    args.output.write_text(json.dumps(record, indent=1))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
