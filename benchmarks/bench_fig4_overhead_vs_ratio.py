"""Figure 4: overhead breakdown vs locally-saved:I/O-saved ratio."""

from repro.experiments import fig4


def test_figure4(benchmark, show):
    result = benchmark(fig4.run)
    show(result)
    rows = result.rows
    # Checkpoint-I/O time falls monotonically with the ratio...
    ck = [r["checkpoint_io"] for r in rows]
    assert all(a >= b - 1e-12 for a, b in zip(ck, ck[1:]))
    # ...rerun-I/O rises (over the feasible range)...
    ru = [r["rerun_io"] for r in rows if r["compute"] > 0]
    assert all(a <= b + 1e-12 for a, b in zip(ru, ru[1:]))
    # ...and efficiency has an interior maximum (Fig. 4's headline shape).
    effs = [r["compute"] for r in rows]
    peak = effs.index(max(effs))
    assert 0 < peak < len(effs) - 1
    assert result.headline["optimal_efficiency"] > 0.40
