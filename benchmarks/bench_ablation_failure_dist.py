"""Ablation bench: Weibull vs exponential failure interarrivals."""

from conftest import run_once
from repro.experiments import failure_dist


def test_failure_distribution(benchmark, show):
    result = run_once(benchmark, failure_dist.run, mttis=100.0)
    show(result)
    # The NDP advantage persists under bursty and regular failures alike.
    assert result.headline["min_advantage"] > 0.05
    shapes = {r["shape"]: r for r in result.rows}
    assert shapes[1.0]["ndp"] > shapes[1.0]["host"]
    assert shapes[0.5]["ndp"] > shapes[0.5]["host"]
