"""Engineering benchmarks of the parallel substrates.

Two layers share this file: the SPMD mini-app substrate
(:mod:`repro.parallel`) and the Monte-Carlo batch pool
(:mod:`repro.simulation.pool`).  The pool benches use tiny seed counts so
the ``make smoke`` target exercises the multiprocessing path on every
run; :mod:`benchmarks.record_parallel` is the full-size speedup recorder
behind ``BENCH_parallel_pool.json``.
"""

import pytest

from repro.core import paper_parameters
from repro.parallel import DistributedLJMD, DistributedSMAC2D, DistributedStencilCG
from repro.simulation import ResultCache, SimConfig, mc_run


def _mc_config(mttis: float = 4.0) -> SimConfig:
    p = paper_parameters()
    return SimConfig(params=p, strategy="ndp", work=p.mtti * mttis, seed=0)


class TestMonteCarloPool:
    """Smoke-level benches of the batch runtime (pool, cache, serial)."""

    SEEDS = range(4)

    def test_mc_serial(self, benchmark):
        res = benchmark.pedantic(
            mc_run, args=(_mc_config(), self.SEEDS), kwargs={"jobs": 1},
            rounds=1, iterations=1,
        )
        assert res.n == len(self.SEEDS)

    def test_mc_pool(self, benchmark):
        res = benchmark.pedantic(
            mc_run, args=(_mc_config(), self.SEEDS), kwargs={"jobs": 2},
            rounds=1, iterations=1,
        )
        assert res.n == len(self.SEEDS)
        # The pool must reproduce the serial samples bit-for-bit.
        assert res.samples == mc_run(_mc_config(), self.SEEDS, jobs=1).samples

    def test_mc_cache_warm(self, benchmark, tmp_path):
        cache = ResultCache(tmp_path)
        cold = mc_run(_mc_config(), self.SEEDS, jobs=1, cache=cache)
        warm = benchmark.pedantic(
            mc_run, args=(_mc_config(), self.SEEDS),
            kwargs={"jobs": 1, "cache": cache}, rounds=1, iterations=1,
        )
        assert warm.samples == cold.samples
        assert cache.hits == len(self.SEEDS)


class TestDistributedCG:
    @pytest.mark.parametrize("ranks", [1, 4])
    def test_cg_iteration(self, benchmark, ranks):
        solver = DistributedStencilCG(grid=24, ranks=ranks, seed=0)
        benchmark(solver.step)
        benchmark.extra_info["halo_bytes_per_step"] = (
            solver.comm.bytes_sent / max(solver.iterations, 1)
        )

    def test_coordinated_checkpoint_payloads(self, benchmark):
        solver = DistributedStencilCG(grid=24, ranks=8, seed=0)
        payloads = benchmark(solver.checkpoint_payloads)
        assert len(payloads) == 8


class TestDistributedMD:
    def test_md_step(self, benchmark):
        solver = DistributedLJMD(n_atoms=512, ranks=4, seed=0)
        benchmark(solver.step)


class TestDistributedSMAC:
    def test_smac_step(self, benchmark):
        solver = DistributedSMAC2D(grid=96, ranks=4, seed=0)
        benchmark(solver.step)
        # One step is communication-heavy: predictor + 8 sweeps + corrector.
        assert solver.comm.messages_sent > 0


class TestDistributedAero:
    def test_aero_step(self, benchmark):
        from repro.parallel import DistributedAero

        solver = DistributedAero(grid=96, ranks=4, seed=0)
        benchmark(solver.step)
        benchmark.extra_info["halo_messages"] = solver.comm.messages_sent
