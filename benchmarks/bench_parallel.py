"""Engineering benchmarks of the SPMD parallel substrate."""

import pytest

from repro.parallel import DistributedLJMD, DistributedSMAC2D, DistributedStencilCG


class TestDistributedCG:
    @pytest.mark.parametrize("ranks", [1, 4])
    def test_cg_iteration(self, benchmark, ranks):
        solver = DistributedStencilCG(grid=24, ranks=ranks, seed=0)
        benchmark(solver.step)
        benchmark.extra_info["halo_bytes_per_step"] = (
            solver.comm.bytes_sent / max(solver.iterations, 1)
        )

    def test_coordinated_checkpoint_payloads(self, benchmark):
        solver = DistributedStencilCG(grid=24, ranks=8, seed=0)
        payloads = benchmark(solver.checkpoint_payloads)
        assert len(payloads) == 8


class TestDistributedMD:
    def test_md_step(self, benchmark):
        solver = DistributedLJMD(n_atoms=512, ranks=4, seed=0)
        benchmark(solver.step)


class TestDistributedSMAC:
    def test_smac_step(self, benchmark):
        solver = DistributedSMAC2D(grid=96, ranks=4, seed=0)
        benchmark(solver.step)
        # One step is communication-heavy: predictor + 8 sweeps + corrector.
        assert solver.comm.messages_sent > 0


class TestDistributedAero:
    def test_aero_step(self, benchmark):
        from repro.parallel import DistributedAero

        solver = DistributedAero(grid=96, ranks=4, seed=0)
        benchmark(solver.step)
        benchmark.extra_info["halo_messages"] = solver.comm.messages_sent
