"""Extension bench: global-I/O bandwidth required per configuration."""

import math

from repro.experiments import io_budget


def test_io_budget(benchmark, show):
    result = benchmark(io_budget.run)
    show(result)
    for row in result.rows:
        # NDP+compression always needs the least bandwidth; plain NDP beats
        # both host configurations.
        assert row["NDP + compression"] < row["NDP"]
        assert row["NDP"] < row["Host multilevel"]
        # NDP+compression reaches every target within the provisioned
        # 100 MB/s per-node share.
        assert row["NDP + compression"] <= 100e6
    # Host+compression saturates (blocking host compression becomes the
    # wall) at high targets.
    at_85 = next(r for r in result.rows if r["target"] == 0.85)
    assert math.isinf(at_85["Host + compression"])
    assert result.headline["saving_at_85pct"] > 10.0
