"""Figure 1: progress rate vs M/delta (Daly-optimal interval)."""

import pytest

from repro.experiments import fig1


def test_figure1(benchmark, show):
    result = benchmark(fig1.run, points=40)
    show(result)
    # 90% progress requires M/delta ~ 200 (Section 3.3's anchor).
    assert result.headline["m_over_delta_for_90pct"] == pytest.approx(200, rel=0.1)
    effs = [r["efficiency"] for r in result.rows]
    assert effs == sorted(effs)  # monotone rise, saturating toward 1
    assert effs[-1] > 0.98
