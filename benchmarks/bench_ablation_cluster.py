"""Cluster-scale shared-I/O validation of the per-node modeling assumption."""

from conftest import run_once
from repro.experiments import cluster


def test_cluster_share_invariance(benchmark, show):
    result = run_once(benchmark, cluster.run, node_counts=(1, 2, 4, 8), mttis=80.0)
    show(result)
    # Fixed per-node I/O share => efficiency roughly independent of N.
    assert result.headline["efficiency_spread"] < 0.07
    # And it tracks the per-node analytic model.
    share_rows = [r for r in result.rows if r["scenario"] == "share invariance"]
    for row in share_rows:
        assert abs(row["efficiency"] - result.headline["per_node_model"]) < 0.08
    # The pipe actually contends (utilization meaningful, not idle).
    assert all(r["pipe_utilization"] > 0.1 for r in share_rows)
