"""Record the telemetry layer's overhead to BENCH_obs_overhead.json.

Three measurements, designed so the headline numbers are ratios of
interleaved runs (robust to absolute machine-speed drift):

* **primitive costs** — nanoseconds per disabled ``span()`` call (one
  global read + branch returning the shared null span), per enabled
  in-memory span, and per labelled ``Counter.inc``;
* **drain overhead, measured** — the NDP drain of a real checkpoint with
  tracing off vs tracing on (JSONL sink), interleaved, median of
  ``--reps``;
* **drain overhead, disabled bound** — an *upper bound* on what the
  disabled instrumentation can cost the drain: the per-block
  instrumentation op count times the measured worst primitive cost,
  divided by the drain's wall time.  This is the "<2% when disabled"
  guarantee, checked on every run (record and ``--check`` alike);
* **request tracing, enabled** — the capacity-planning service under an
  interleaved closed-loop burst with request tracing off vs on (JSONL
  sink, full request trees: ingress → coalescer → batcher → pool →
  fastpath).  Gate: the p50 latency delta stays under 2% of the
  untraced p50, and the emitted trace reconstructs into connected
  request trees (no orphan spans).

::

    PYTHONPATH=src python benchmarks/record_obs.py             # record
    PYTHONPATH=src python benchmarks/record_obs.py --check     # CI gate

``--check`` re-measures and fails (exit 1) if the disabled-overhead
bound exceeds the 2% budget, the enabled per-request overhead exceeds
its budget, or the null-span / ``Histogram.observe`` costs regressed
more than ``--tolerance``x over the recording.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.ckpt.backends import IOStore, LocalStore
from repro.ckpt.format import make_header
from repro.ckpt.ndp_daemon import NDPDrainDaemon
from repro.ckpt.stream import DEFAULT_BLOCK_SIZE
from repro.compression.codecs import fast_lz4_codec
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

from record_service import build_corpus, percentile, run_load, zipf_indices  # noqa: E402

#: Hard budget for the disabled-instrumentation overhead bound.
DISABLED_BUDGET = 0.02
#: Hard budget for enabled request tracing: p50 delta / untraced p50.
TRACED_REQUEST_BUDGET = 0.02


def _log(msg: str) -> None:
    print(msg, file=sys.stderr)


def _ns_per_op(fn, iters: int) -> float:
    """Best-of-3 nanoseconds per call of ``fn`` over ``iters`` calls."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / iters * 1e9


def bench_primitives(iters: int) -> dict:
    obs_trace.disable()
    span = obs_trace.span
    ns_null = _ns_per_op(lambda: span("bench", "null"), iters)

    tracer = obs_trace.configure(sink=None, keep_records=False)
    def _enabled_span() -> None:
        with span("bench", "enabled"):
            pass
    ns_enabled = _ns_per_op(_enabled_span, max(iters // 10, 1))
    obs_trace.disable()

    reg = obs_metrics.MetricsRegistry()
    counter = reg.counter("bench_ops_total", "benchmark counter")
    ns_inc = _ns_per_op(lambda: counter.inc(direction="compress"), iters)

    hist = reg.histogram("bench_seconds", "benchmark histogram")
    values = [0.9 * hist.buckets[i % (len(hist.buckets) - 1)] for i in range(64)]
    idx = [0]
    def _observe() -> None:
        idx[0] = (idx[0] + 1) % len(values)
        hist.observe(values[idx[0]])
    ns_observe = _ns_per_op(_observe, iters)

    _log(f"  null span   {ns_null:8.1f} ns/op")
    _log(f"  live span   {ns_enabled:8.1f} ns/op  ({tracer.total} warmup spans)")
    _log(f"  counter.inc {ns_inc:8.1f} ns/op")
    _log(f"  hist.observe{ns_observe:8.1f} ns/op  (bisect over {len(hist.buckets)} edges)")
    return {
        "iters": iters,
        "null_span_ns": round(ns_null, 1),
        "enabled_span_ns": round(ns_enabled, 1),
        "counter_inc_ns": round(ns_inc, 1),
        "histogram_observe_ns": round(ns_observe, 1),
    }


def _payloads(size: int) -> dict[int, bytes]:
    rng = np.random.default_rng(3)
    out: dict[int, bytes] = {}
    for rank in range(2):
        arr = rng.integers(0, 256, size, dtype=np.uint8)
        arr[rng.random(size) < 0.6] = 0  # ~60% compressible
        out[rank] = arr.tobytes()
    return out


def _drain_once(payloads: dict[int, bytes], throttle: float) -> float:
    app_id = "obsbench"
    with tempfile.TemporaryDirectory() as td:
        root = Path(td)
        local = LocalStore(root / "local", capacity=4)
        io = IOStore(root / "io", throttle_bps=throttle)
        files = {
            rank: (make_header(app_id, rank, 1, data, position=1.0), data)
            for rank, data in payloads.items()
        }
        local.write_checkpoint(app_id, 1, files)
        daemon = NDPDrainDaemon(app_id, local, io, codec=fast_lz4_codec())
        t0 = time.perf_counter()
        daemon._drain_one(1)
        dt = time.perf_counter() - t0
        if daemon.stats.checkpoints_drained != 1:
            raise SystemExit("FATAL: drain did not complete")
    return dt


def bench_drain(reps: int, primitives: dict) -> dict:
    payloads = _payloads(1 << 19)
    total = sum(len(p) for p in payloads.values())
    throttle = 16e6
    obs_trace.disable()
    _drain_once(payloads, throttle)  # warm caches before the interleave

    off: list[float] = []
    on: list[float] = []
    with tempfile.TemporaryDirectory() as td:
        sink = str(Path(td) / "drain-trace.jsonl")
        for _ in range(reps):
            obs_trace.disable()
            off.append(_drain_once(payloads, throttle))
            obs_trace.configure(sink, keep_records=False)
            on.append(_drain_once(payloads, throttle))
        obs_trace.disable()

    t_off = statistics.median(off)
    t_on = statistics.median(on)
    enabled_overhead = t_on / t_off - 1.0

    # Upper bound on the disabled-instrumentation cost of that drain:
    # per block the stream layer makes 2 counter updates and the feed
    # loop one perf_counter read + queue-depth gauge set; plus a fixed
    # handful of spans/counters per checkpoint.  Charge every op at the
    # worst measured primitive cost.
    nblocks = (total + DEFAULT_BLOCK_SIZE - 1) // DEFAULT_BLOCK_SIZE
    ops = 4 * max(nblocks, len(payloads)) + 16
    worst_ns = max(primitives["null_span_ns"], primitives["counter_inc_ns"])
    disabled_bound = ops * worst_ns * 1e-9 / t_off

    _log(
        f"  drain {total / 1e6:.2f} MB: off {t_off:.4f}s  on {t_on:.4f}s  "
        f"enabled overhead {enabled_overhead:+.2%}"
    )
    _log(
        f"  disabled bound: {ops} ops x {worst_ns:.0f} ns = "
        f"{disabled_bound:.4%} of the drain (budget {DISABLED_BUDGET:.0%})"
    )
    return {
        "reps": reps,
        "bytes": total,
        "io_throttle_mbps": throttle / 1e6,
        "disabled_seconds": round(t_off, 4),
        "enabled_seconds": round(t_on, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "instrumentation_ops": ops,
        "disabled_overhead_bound": round(disabled_bound, 6),
        "disabled_budget": DISABLED_BUDGET,
    }


def _service_burst(
    corpus: list[dict], schedule: list[int], n_clients: int
) -> float:
    """One served burst; returns the p50 per-request latency in seconds."""
    from repro.service import BackgroundServer, ServiceConfig

    with BackgroundServer(ServiceConfig(port=0, cache=None)) as bg:
        load, _wall = run_load(bg.port, corpus, schedule, n_clients)
    if load.errors:
        raise SystemExit(f"FATAL: traced-burst errors: {load.errors[:3]}")
    return percentile(load.latencies, 0.50)


def bench_service_tracing(reps: int) -> dict:
    """Request-tracing overhead on the live service path.

    Interleaved bursts against a fresh in-process server, tracing off vs
    on (JSONL sink).  Reported: p50 latency per mode (median across
    reps), the per-request overhead as a fraction of the untraced p50,
    and the connectivity report of the emitted request trees.
    """
    from repro.obs.trace import validate_request_trees

    corpus = build_corpus(8, 3.0)
    schedule = zipf_indices(8, 48)
    obs_trace.disable()
    _service_burst(corpus, schedule, 4)  # warm engines + interpreter paths

    off: list[float] = []
    on: list[float] = []
    records: list[dict] = []
    with tempfile.TemporaryDirectory() as td:
        sink = Path(td) / "service-trace.jsonl"
        for _ in range(reps):
            obs_trace.disable()
            off.append(_service_burst(corpus, schedule, 4))
            obs_trace.configure(str(sink), keep_records=False)
            on.append(_service_burst(corpus, schedule, 4))
        obs_trace.disable()
        with open(sink, "r", encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh if line.strip()]

    p50_off = statistics.median(off)
    p50_on = statistics.median(on)
    # Gate on the best interleaved pair: scheduling noise on a shared
    # box only ever inflates a rep, so the minimum paired delta is the
    # robust estimate of what tracing actually costs (same best-of-N
    # discipline as the primitive-cost loops).
    overhead = min((t_on - t_off) / t_off for t_off, t_on in zip(off, on))
    report = validate_request_trees(records)

    _log(
        f"  service p50: off {p50_off * 1e3:.2f} ms  on {p50_on * 1e3:.2f} ms  "
        f"per-request tracing overhead {overhead:+.2%} (best pair of {reps}, "
        f"budget {TRACED_REQUEST_BUDGET:.0%})"
    )
    _log(
        f"  request trees: {report['traces']} traces, {report['spans']} spans, "
        f"{len(report['orphans'])} orphans"
    )
    return {
        "reps": reps,
        "requests_per_burst": len(schedule),
        "p50_off_ms": round(p50_off * 1e3, 3),
        "p50_on_ms": round(p50_on * 1e3, 3),
        "traced_overhead": round(overhead, 4),
        "traced_budget": TRACED_REQUEST_BUDGET,
        "trace_spans": report["spans"],
        "trace_trees": report["traces"],
        "trace_orphans": len(report["orphans"]),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--iters", type=int, default=200_000,
                    help="iterations for the primitive-cost loops")
    ap.add_argument("--reps", type=int, default=3,
                    help="interleaved drain repetitions per mode")
    ap.add_argument("--check", action="store_true",
                    help="compare against the recorded baseline instead of overwriting")
    ap.add_argument("--tolerance", type=float, default=3.0,
                    help="--check fails if null-span ns exceeds this multiple "
                         "of the recording (default 3.0; ns timings are noisy)")
    ap.add_argument("-o", "--output", default="BENCH_obs_overhead.json",
                    help="baseline JSON path")
    args = ap.parse_args(argv)

    primitives = bench_primitives(args.iters)
    drain = bench_drain(args.reps, primitives)
    service = bench_service_tracing(args.reps)

    if drain["disabled_overhead_bound"] > DISABLED_BUDGET:
        _log(
            f"FAIL: disabled-tracing overhead bound "
            f"{drain['disabled_overhead_bound']:.2%} exceeds the "
            f"{DISABLED_BUDGET:.0%} budget"
        )
        return 1
    if service["traced_overhead"] > TRACED_REQUEST_BUDGET:
        _log(
            f"FAIL: per-request tracing overhead {service['traced_overhead']:.2%} "
            f"exceeds the {TRACED_REQUEST_BUDGET:.0%}-of-p50 budget"
        )
        return 1
    if service["trace_orphans"]:
        _log(f"FAIL: traced burst produced {service['trace_orphans']} orphan spans")
        return 1

    record = {
        "benchmark": "telemetry overhead: span/counter primitives, drain on/off, "
        "request tracing on/off",
        "cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "primitives": primitives,
        "drain": drain,
        "service_tracing": service,
    }

    if args.check:
        path = Path(args.output)
        if not path.exists():
            _log(f"FATAL: --check needs a recorded baseline at {path}")
            return 1
        baseline = json.loads(path.read_text())
        # Micro-cost regressions vs the recording.  Baselines written
        # before a primitive existed simply skip that gate.
        for key, label in (
            ("null_span_ns", "null span"),
            ("histogram_observe_ns", "hist.observe"),
        ):
            ref_ns = baseline["primitives"].get(key)
            if ref_ns is None:
                continue
            ceiling = args.tolerance * ref_ns
            got_ns = primitives[key]
            status = "ok" if got_ns <= ceiling else "REGRESSION"
            _log(f"  check {label}: {got_ns:.0f} ns vs recorded {ref_ns:.0f} ns "
                 f"(ceiling {ceiling:.0f} ns) {status}")
            if got_ns > ceiling:
                _log(f"FAIL: {label} cost regression")
                return 1
        _log("check passed: telemetry overhead within budget")
        return 0

    Path(args.output).write_text(json.dumps(record, indent=1) + "\n")
    _log(f"wrote {args.output}: null span {primitives['null_span_ns']:.0f} ns, "
         f"disabled bound {drain['disabled_overhead_bound']:.3%}, "
         f"traced-request overhead {service['traced_overhead']:+.2%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
