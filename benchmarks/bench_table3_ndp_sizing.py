"""Table 3: required compression speed, NDP cores, minimum I/O interval."""

import pytest

from repro.experiments import table3


def test_table3(benchmark, show):
    result = benchmark(table3.run, source="paper")
    show(result)
    rows = {r["utility"]: r for r in result.rows}
    for utility, (speed_mbps, cores, interval) in table3.PAPER_REFERENCE.items():
        assert rows[utility]["required_speed"] / 1e6 == pytest.approx(speed_mbps, rel=0.02)
        assert rows[utility]["cores"] == cores
        assert rows[utility]["interval"] == pytest.approx(interval, rel=0.02)
    # Section 5.3: gzip(1) at 4 NDP cores, ~305 s interval.
    assert result.headline["chosen_cores"] == 4
    assert result.headline["chosen_interval"] == pytest.approx(305, rel=0.02)
