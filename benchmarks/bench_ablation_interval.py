"""Ablation bench: local checkpoint interval sensitivity (model + sim)."""

from conftest import run_once
from repro.experiments import interval


def test_interval_sensitivity(benchmark, show):
    result = run_once(benchmark, interval.run, mttis=60.0)
    show(result)
    # The optimum is interior and flat around Daly's estimate: Table 4's
    # 150 s choice loses essentially nothing.
    assert result.headline["loss_at_150"] < 0.01
    assert 100.0 <= result.headline["best_tau"] <= 400.0
    # Model and simulation agree on the *location* of the optimum.
    best_model = max(result.rows, key=lambda r: r["model"])["tau"]
    best_sim = max(result.rows, key=lambda r: r["sim"])["tau"]
    taus = [r["tau"] for r in result.rows]
    assert abs(taus.index(best_model) - taus.index(best_sim)) <= 1
