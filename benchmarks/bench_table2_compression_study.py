"""Table 2: the live compression study on calibrated proxy checkpoints.

Runs all seven codecs (stdlib gzip/bzip2/xz + from-scratch LZ4) over all
seven mini-app proxies.  Factors must track the paper's published values
(the proxies are calibrated on the gzip(1) column; the other columns
follow from the codecs themselves).  Speeds are hardware-specific, as the
paper's own Section 5 argues — only their *ordering* is asserted.
"""

import pytest

from conftest import run_once
from repro.compression.study import paper_factor
from repro.experiments import table2


def test_table2_live_study(benchmark, show):
    result = run_once(benchmark, table2.run, source="measured", ranks=1)
    show(result)

    rows = {r["app"]: r for r in result.rows}
    assert len(rows) == 7

    # gzip(1) factors calibrated to the paper (per app).
    for app, row in rows.items():
        assert row["gzip(1)_factor"] == pytest.approx(
            paper_factor(app, "gzip(1)"), abs=0.06
        ), app

    # Codec-strength ordering per app: xz(6) >= gzip(6) >= lz4 (as in the
    # paper, modulo small inversions on near-incompressible data).
    for app, row in rows.items():
        assert row["xz(6)_factor"] >= row["gzip(6)_factor"] - 0.03, app
        assert row["gzip(6)_factor"] >= row["lz4(1)_factor"] - 0.03, app

    # Average factors land near the paper's Average row.
    assert result.headline["gzip(1)_avg_factor"] == pytest.approx(0.728, abs=0.05)
    assert result.headline["xz(6)_avg_factor"] == pytest.approx(0.833, abs=0.08)


def test_table2_paper_transcription(benchmark, show):
    result = benchmark(table2.run, source="paper")
    show(result)
    assert len(result.rows) == 7
