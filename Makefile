# Developer entry points.  Everything runs offline with PYTHONPATH=src —
# no install step required.

PY      ?= python
PYTEST   = PYTHONPATH=src $(PY) -m pytest

.PHONY: test test-fast smoke bench-parallel bench-runtime bench-obs bench-sim bench-service serve-smoke metrics-demo report

## Full test suite (tier-1 gate).
test:
	$(PYTEST) -x -q

## Fast split: everything except the long Monte-Carlo integration tests.
test-fast:
	$(PYTEST) -x -q -m "not slow"

## Smoke the parallel Monte-Carlo pool: the bench_parallel benches (tiny
## seed counts) plus a miniature speedup recording, so the multiprocessing
## path is exercised on every run.
smoke:
	$(PYTEST) -q benchmarks/bench_parallel.py
	PYTHONPATH=src $(PY) benchmarks/record_parallel.py \
		--seeds 4 --mttis 3 -o /tmp/bench_parallel_smoke.json
	PYTHONPATH=src $(PY) benchmarks/record_runtime.py \
		--quick -o /tmp/bench_runtime_smoke.json
	PYTHONPATH=src $(PY) benchmarks/record_fastpath.py \
		--quick -o /tmp/bench_fastpath_smoke.json

## Full-size pool speedup recording (writes BENCH_parallel_pool.json).
bench-parallel:
	PYTHONPATH=src $(PY) benchmarks/record_parallel.py

## Checkpoint data-path throughput: records BENCH_runtime_throughput.json
## on first run; afterwards fails if either headline speedup (dense lz4
## kernel, pipelined drain) regresses more than 20% vs the recording.
bench-runtime:
	@if [ -f BENCH_runtime_throughput.json ]; then \
		PYTHONPATH=src $(PY) benchmarks/record_runtime.py --check; \
	else \
		PYTHONPATH=src $(PY) benchmarks/record_runtime.py; \
	fi

## Telemetry overhead: records BENCH_obs_overhead.json on first run;
## afterwards fails if the disabled-span cost regresses >3x or the
## disabled-instrumentation bound ever exceeds its 2% budget.
bench-obs:
	@if [ -f BENCH_obs_overhead.json ]; then \
		PYTHONPATH=src $(PY) benchmarks/record_obs.py --check; \
	else \
		PYTHONPATH=src $(PY) benchmarks/record_obs.py; \
	fi

## Vectorized fastpath engine vs the baselines: records
## BENCH_sim_fastpath.json on first run (batch vs DES, >=8x floor; the
## fig6-fig9 grid through one simulate_grid pass vs a per-config loop,
## >=10x floor; the heterogeneous work x MTTI x capacity batch through
## the fused + compacted walker vs the per-capacity uncompacted one,
## >=1.5x floor, bit-identical; zero DES fallbacks); afterwards fails
## if any speedup regresses more than 40% vs the recording or falls
## below its floor.
bench-sim:
	@if [ -f BENCH_sim_fastpath.json ]; then \
		PYTHONPATH=src $(PY) benchmarks/record_fastpath.py --check; \
	else \
		PYTHONPATH=src $(PY) benchmarks/record_fastpath.py; \
	fi

## Capacity-planning service under zipfian load: records
## BENCH_service.json on first run (batched+coalesced throughput vs
## naive one-request-one-simulate dispatch, >=3x floor, byte-identity
## verified); afterwards fails if the speedup regresses more than 40%
## vs the recording or falls below the floor.
bench-service:
	@if [ -f BENCH_service.json ]; then \
		PYTHONPATH=src $(PY) benchmarks/record_service.py --check; \
	else \
		PYTHONPATH=src $(PY) benchmarks/record_service.py; \
	fi

## Boot the service, fire a mixed request burst (simulate/sweep/optimize
## across concurrent clients), verify byte-identity vs serial simulate
## and that the /metrics counters moved.
serve-smoke:
	PYTHONPATH=src $(PY) benchmarks/record_service.py --smoke

## Run the calibrated C/R demo and print measured-vs-model drift tables.
metrics-demo:
	PYTHONPATH=src $(PY) -m repro metrics

## Regenerate the experiment report, parallel where supported.
report:
	PYTHONPATH=src $(PY) -m repro report --jobs 0 -o REPORT.md
