"""SLO tracking: latency objectives, rolling counters, burn rates.

An *SLO* here is "fraction ``target`` of requests to ``route`` complete
within ``threshold`` seconds" — e.g. ``simulate=50ms:0.99`` reads "99%
of ``/v1/simulate`` requests under 50 ms".  The tracker keeps, per
route:

* lifetime good/bad totals (exported as counters);
* a time-bucketed ring (5 s buckets spanning 1 h) from which any
  trailing window's good/bad counts are summed — no per-request
  allocation, no timestamps retained;
* multi-window **burn rates**: ``bad_fraction / (1 - target)`` over the
  trailing 5 m and 1 h.  Burn rate 1.0 means the error budget is being
  consumed exactly as fast as the SLO allows; a classic page condition
  is "burn > 14.4 on the short window AND burn > 1 on the long window"
  (fast burn confirmed by sustained burn — the two windows exist so a
  single slow request can't page you and a slow leak can't hide).

The tracker is clock-injectable (tests pin time) and lock-guarded; one
``record()`` is a couple of dict/list operations.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = [
    "SLOError",
    "SLOTarget",
    "SLOTracker",
    "parse_slo",
    "parse_duration",
    "WINDOWS",
]

#: The burn-rate windows surfaced everywhere: (name, seconds).
WINDOWS: tuple[tuple[str, float], ...] = (("5m", 300.0), ("1h", 3600.0))

#: Ring geometry: 5 s buckets x 720 = exactly the 1 h long window.
_BUCKET_S = 5.0
_N_BUCKETS = 720


class SLOError(ValueError):
    """Malformed SLO spec."""


@dataclass(frozen=True)
class SLOTarget:
    """One objective: ``target`` fraction of ``route`` under ``threshold_s``."""

    route: str
    threshold_s: float
    target: float


_DURATION_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*(us|ms|s|m)?\s*$")
_DURATION_UNITS = {"us": 1e-6, "ms": 1e-3, "s": 1.0, "m": 60.0, None: 1.0}


def parse_duration(text: str) -> float:
    """``"50ms"`` / ``"0.05s"`` / ``"2m"`` / bare seconds → seconds."""
    m = _DURATION_RE.match(text)
    if not m:
        raise SLOError(f"cannot parse duration {text!r} (want e.g. '50ms', '1.5s')")
    return float(m.group(1)) * _DURATION_UNITS[m.group(2)]


def parse_slo(spec: str) -> SLOTarget:
    """Parse ``route=threshold:target`` (e.g. ``simulate=50ms:0.99``)."""
    route, sep, rest = spec.partition("=")
    route = route.strip()
    if not sep or not route:
        raise SLOError(f"SLO spec {spec!r} must look like 'route=50ms:0.99'")
    thr, sep, tgt = rest.partition(":")
    if not sep:
        raise SLOError(f"SLO spec {spec!r} is missing the ':target' fraction")
    threshold = parse_duration(thr)
    if threshold <= 0:
        raise SLOError(f"SLO threshold must be positive: {spec!r}")
    try:
        target = float(tgt)
    except ValueError:
        raise SLOError(f"SLO target must be a fraction: {spec!r}") from None
    if not 0.0 < target < 1.0:
        raise SLOError(f"SLO target must be in (0, 1): {spec!r}")
    return SLOTarget(route, threshold, target)


class _RouteState:
    """Lifetime totals plus the time-bucketed ring for one route."""

    __slots__ = ("target", "good", "bad", "shed", "expired", "slots")

    def __init__(self, target: SLOTarget):
        self.target = target
        self.good = 0
        self.bad = 0
        #: Requests rejected by the admission controller (HTTP 503) and
        #: requests whose deadline expired before dispatch (HTTP 504).
        #: Both also count as *bad* (they burn error budget: the client
        #: asked and was not served within objective), but the split is
        #: kept so an operator can tell "slow" from "deliberately shed".
        self.shed = 0
        self.expired = 0
        # Each slot: [bucket_epoch, good, bad]; epoch -1 marks "unused".
        self.slots: list[list[float]] = [[-1, 0, 0] for _ in range(_N_BUCKETS)]

    def record(self, now: float, good: bool) -> None:
        epoch = int(now // _BUCKET_S)
        slot = self.slots[epoch % _N_BUCKETS]
        if slot[0] != epoch:
            slot[0], slot[1], slot[2] = epoch, 0, 0
        slot[1 if good else 2] += 1
        if good:
            self.good += 1
        else:
            self.bad += 1

    def window_counts(self, now: float, window_s: float) -> tuple[int, int]:
        """(good, bad) over the trailing ``window_s`` seconds."""
        epoch = int(now // _BUCKET_S)
        oldest = epoch - int(window_s // _BUCKET_S) + 1
        good = bad = 0
        for slot in self.slots:
            if oldest <= slot[0] <= epoch:
                good += slot[1]
                bad += slot[2]
        return good, bad


class SLOTracker:
    """Rolling good/bad accounting and burn rates for a set of targets."""

    def __init__(self, targets: list[SLOTarget] | tuple[SLOTarget, ...] = (), clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._lock = threading.Lock()
        self._routes: dict[str, _RouteState] = {t.route: _RouteState(t) for t in targets}

    @property
    def routes(self) -> list[str]:
        """Routes with objectives, sorted."""
        with self._lock:
            return sorted(self._routes)

    def target(self, route: str) -> SLOTarget | None:
        state = self._routes.get(route)
        return state.target if state else None

    def record(self, route: str, latency_s: float, ok: bool = True) -> bool | None:
        """Account one request; returns good/bad, or ``None`` (no SLO).

        A request is *good* iff it succeeded (``ok``) and finished within
        the route's threshold — an erroring fast response still burns
        budget.
        """
        state = self._routes.get(route)
        if state is None:
            return None
        good = bool(ok) and latency_s <= state.target.threshold_s
        with self._lock:
            state.record(self._clock(), good)
        return good

    def note(self, route: str, kind: str) -> None:
        """Attribute one load-control rejection to ``route``.

        ``kind`` is ``"shed"`` (admission-controller 503) or
        ``"expired"`` (deadline 504).  These requests are *also* fed
        through :meth:`record` with ``ok=False`` by the server — this
        only maintains the split so the snapshot can show why budget
        burned.
        """
        if kind not in ("shed", "expired"):
            raise SLOError(f"unknown rejection kind {kind!r}")
        state = self._routes.get(route)
        if state is None:
            return
        with self._lock:
            setattr(state, kind, getattr(state, kind) + 1)

    @staticmethod
    def burn_rate(good: int, bad: int, target: float) -> float:
        """``bad_fraction / error_budget`` (0.0 when the window is empty)."""
        total = good + bad
        if not total:
            return 0.0
        return (bad / total) / (1.0 - target)

    def snapshot(self) -> dict:
        """Per-route objective, totals, and per-window burn rates."""
        now = self._clock()
        out: dict[str, dict] = {}
        with self._lock:
            for route, state in sorted(self._routes.items()):
                t = state.target
                windows = {}
                for wname, wsecs in WINDOWS:
                    good, bad = state.window_counts(now, wsecs)
                    windows[wname] = {
                        "good": good,
                        "bad": bad,
                        "burn_rate": self.burn_rate(good, bad, t.target),
                    }
                out[route] = {
                    "objective": f"{t.threshold_s * 1000.0:g}ms:{t.target:g}",
                    "threshold_s": t.threshold_s,
                    "target": t.target,
                    "good": state.good,
                    "bad": state.bad,
                    "shed": state.shed,
                    "expired": state.expired,
                    "windows": windows,
                }
        return out

    def register_metrics(self, registry) -> None:
        """Bind callback gauges + counters into a metrics registry.

        Exports ``repro_slo_requests_total{route,verdict}``,
        ``repro_slo_target{route}`` and
        ``repro_slo_burn_rate{route,window}`` (evaluated at scrape time).
        """
        totals = registry.gauge(
            "repro_slo_requests_total", "requests accounted against an SLO, by verdict"
        )
        target_g = registry.gauge("repro_slo_target", "SLO target fraction per route")
        burn = registry.gauge(
            "repro_slo_burn_rate", "error-budget burn rate per route and window"
        )
        rejected = registry.gauge(
            "repro_slo_rejected_total",
            "requests rejected by load control, by route and kind (shed/expired)",
        )
        for route, state in self._routes.items():
            totals.set_function(lambda s=state: float(s.good), route=route, verdict="good")
            totals.set_function(lambda s=state: float(s.bad), route=route, verdict="bad")
            rejected.set_function(lambda s=state: float(s.shed), route=route, kind="shed")
            rejected.set_function(
                lambda s=state: float(s.expired), route=route, kind="expired"
            )
            target_g.set_function(lambda s=state: s.target.target, route=route)
            for wname, wsecs in WINDOWS:
                burn.set_function(
                    lambda s=state, w=wsecs: self.burn_rate(
                        *s.window_counts(self._clock(), w), s.target.target
                    ),
                    route=route,
                    window=wname,
                )
