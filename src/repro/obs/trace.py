"""Structured tracing: hierarchical spans with JSON-lines export.

The runtime's hot paths (checkpoint commit, NDP drain, restore, the
simulation pool) emit *spans* — named wall-clock intervals with
attributes — through a process-global :class:`Tracer`.  Design goals:

* **Near-zero overhead when disabled.**  :func:`span` returns a shared
  no-op context manager when no tracer is configured; the cost is one
  global read and a branch.  Hot loops are instrumented at rank/chunk
  granularity, never per byte.
* **One schema for real runs and simulations.**  Every record carries
  the five core fields in :data:`SPAN_FIELDS` — the exact schema
  :func:`repro.simulation.trace.spans_to_records` has always produced —
  so a simulator timeline and a live-runtime trace are interchangeable
  inputs to the same tooling (``tools/check_trace.py`` validates both).
* **Thread- and fork-safe export.**  Each record is appended to the
  sink file with a single ``os.write`` on an ``O_APPEND`` descriptor, so
  concurrently-tracing threads (and forked pool workers inheriting the
  descriptor) never interleave partial lines.

Enable globally with the ``REPRO_TRACE`` environment variable (a
JSON-lines output path, read at import time) or programmatically::

    from repro.obs import trace
    tracer = trace.configure("run.jsonl")
    with trace.span("ckpt", "commit", ckpt=3, bytes=1 << 20):
        ...
    trace.disable()
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Callable, Iterator

__all__ = [
    "SPAN_FIELDS",
    "ENV_VAR",
    "TraceSchemaError",
    "Tracer",
    "SpanHandle",
    "NULL_SPAN",
    "configure",
    "disable",
    "enabled",
    "get_tracer",
    "span",
    "emit",
    "validate_record",
    "validate_file",
]

#: The core span schema, shared with ``repro.simulation.trace``:
#: ``lane`` (component / timeline row), ``start``/``end`` (seconds on a
#: monotonic clock — wall for real runs, simulated for the simulator),
#: ``kind`` (activity class) and ``label`` (free-form tag).
SPAN_FIELDS = ("lane", "start", "end", "kind", "label")

#: Optional per-record fields (runtime traces add these; simulator
#: timelines usually omit them): name -> required type(s).
OPTIONAL_FIELDS: dict[str, tuple[type, ...]] = {
    "attrs": (dict,),
    "span": (int,),
    "parent": (int,),
    "pid": (int,),
    "thread": (str,),
}

#: Environment variable naming the JSONL sink path; read once at import.
ENV_VAR = "REPRO_TRACE"


class TraceSchemaError(ValueError):
    """A trace record does not conform to the span schema."""


def validate_record(rec: object) -> dict:
    """Check one record against the span schema; returns it on success.

    Raises :class:`TraceSchemaError` naming the offending field.  Both
    the runtime tracer's records and the simulator's
    ``spans_to_records`` output validate.
    """
    if not isinstance(rec, dict):
        raise TraceSchemaError(f"record must be an object, got {type(rec).__name__}")
    for name in SPAN_FIELDS:
        if name not in rec:
            raise TraceSchemaError(f"missing required field {name!r}")
    for name in ("lane", "kind", "label"):
        if not isinstance(rec[name], str):
            raise TraceSchemaError(f"{name!r} must be a string: {rec[name]!r}")
    for name in ("start", "end"):
        if isinstance(rec[name], bool) or not isinstance(rec[name], (int, float)):
            raise TraceSchemaError(f"{name!r} must be a number: {rec[name]!r}")
    if rec["end"] < rec["start"]:
        raise TraceSchemaError(f"end {rec['end']} precedes start {rec['start']}")
    if not rec["kind"]:
        raise TraceSchemaError("'kind' must be non-empty")
    for name, value in rec.items():
        if name in SPAN_FIELDS:
            continue
        types = OPTIONAL_FIELDS.get(name)
        if types is None:
            raise TraceSchemaError(f"unknown field {name!r}")
        if isinstance(value, bool) or not isinstance(value, types):
            raise TraceSchemaError(
                f"{name!r} must be {'/'.join(t.__name__ for t in types)}: {value!r}"
            )
    return rec


def validate_file(path: str | os.PathLike) -> int:
    """Validate a JSON-lines trace file; returns the record count.

    Raises :class:`TraceSchemaError` with a 1-based line number on the
    first malformed line (bad JSON or schema violation).
    """
    count = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as exc:
                raise TraceSchemaError(f"line {lineno}: invalid JSON: {exc}") from None
            try:
                validate_record(rec)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"line {lineno}: {exc}") from None
            count += 1
    return count


class _NullSpan:
    """The shared disabled-tracing span: every operation is a no-op."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        """Attribute updates are dropped (tracing is off)."""
        return self


#: The singleton no-op span returned by :func:`span` while disabled.
NULL_SPAN = _NullSpan()


class SpanHandle:
    """An open span; a context manager that records on exit.

    Attributes set via :meth:`set` (or the constructor's ``attrs``) land
    in the record's ``attrs`` object.  Nesting is tracked per thread:
    the record's ``parent`` is the span id of the innermost enclosing
    span on the same thread.
    """

    __slots__ = ("_tracer", "lane", "kind", "label", "attrs", "span_id", "parent_id", "_start")

    def __init__(self, tracer: "Tracer", lane: str, kind: str, label: str, attrs: dict):
        self._tracer = tracer
        self.lane = lane
        self.kind = kind
        self.label = label
        self.attrs = attrs
        self.span_id = tracer._new_id()
        self.parent_id: int | None = None
        self._start = 0.0

    def set(self, **attrs: Any) -> "SpanHandle":
        """Attach/overwrite attributes (visible in the emitted record)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "SpanHandle":
        stack = self._tracer._stack()
        self.parent_id = stack[-1] if stack else None
        stack.append(self.span_id)
        self._start = self._tracer.clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = self._tracer.clock()
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer._record(
            lane=self.lane,
            start=self._start,
            end=end,
            kind=self.kind,
            label=self.label,
            attrs=self.attrs,
            span=self.span_id,
            parent=self.parent_id,
        )
        return False


class Tracer:
    """Thread-safe span recorder with JSON-lines export.

    Parameters
    ----------
    sink:
        ``None`` keeps records in memory (``records``); a path appends
        one JSON line per record (fork-safe ``O_APPEND`` writes); a
        callable receives each record dict as it completes.
    clock:
        Timestamp source; must be monotonic.  Defaults to
        :func:`time.monotonic` so concurrent spans order consistently
        even across system clock adjustments.
    keep_records:
        Force in-memory retention on/off (default: on only when there
        is no sink, so file-backed long runs don't accumulate RAM).
    """

    def __init__(
        self,
        sink: str | os.PathLike | Callable[[dict], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        keep_records: bool | None = None,
    ):
        self.clock = clock
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next = 0
        self._fd: int | None = None
        self._sink_fn: Callable[[dict], None] | None = None
        self.path: str | None = None
        if callable(sink):
            self._sink_fn = sink
        elif sink is not None:
            self.path = os.fspath(sink)
            self._fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        self.keep_records = (sink is None) if keep_records is None else keep_records
        self.records: list[dict] = []
        self.counts: dict[str, int] = {}

    # -- span API -------------------------------------------------------------

    def span(self, lane: str, kind: str, label: str = "", **attrs: Any) -> SpanHandle:
        """Open a span; use as a context manager."""
        return SpanHandle(self, lane, kind, label, attrs)

    def emit(
        self,
        lane: str,
        start: float,
        end: float,
        kind: str,
        label: str = "",
        attrs: dict | None = None,
    ) -> None:
        """Record a pre-timed interval (e.g. a worker-measured chunk)."""
        self._record(
            lane=lane,
            start=start,
            end=end,
            kind=kind,
            label=label,
            attrs=attrs or {},
            span=self._new_id(),
            parent=None,
        )

    # -- introspection --------------------------------------------------------

    @property
    def total(self) -> int:
        """Number of records emitted so far."""
        return sum(self.counts.values())

    def summary(self) -> str:
        """One-line human-readable digest of what was recorded."""
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(self.counts.items()))
        where = self.path or ("callback" if self._sink_fn else "memory")
        return f"{self.total} spans -> {where} ({kinds or 'none'})"

    def close(self) -> None:
        """Release the file descriptor (idempotent)."""
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    # -- internals ------------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _new_id(self) -> int:
        with self._lock:
            self._next += 1
            return self._next

    def _record(
        self,
        lane: str,
        start: float,
        end: float,
        kind: str,
        label: str,
        attrs: dict,
        span: int,
        parent: int | None,
    ) -> None:
        rec: dict[str, Any] = {
            "lane": lane,
            "start": start,
            "end": max(end, start),
            "kind": kind,
            "label": label,
            "span": span,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
        }
        if parent is not None:
            rec["parent"] = parent
        if attrs:
            rec["attrs"] = attrs
        with self._lock:
            self.counts[kind] = self.counts.get(kind, 0) + 1
            if self.keep_records:
                self.records.append(rec)
            fd = self._fd
        if fd is not None:
            line = json.dumps(rec, separators=(",", ":"), default=str) + "\n"
            os.write(fd, line.encode("utf-8"))
        if self._sink_fn is not None:
            self._sink_fn(rec)


# -- the process-global tracer ------------------------------------------------

_global: Tracer | None = None
_global_lock = threading.Lock()


def configure(
    sink: str | os.PathLike | Callable[[dict], None] | None = None,
    keep_records: bool | None = None,
) -> Tracer:
    """Install (and return) the process-global tracer.

    Replaces any previously configured tracer, closing its file sink.
    """
    global _global
    tracer = Tracer(sink, keep_records=keep_records)
    with _global_lock:
        old, _global = _global, tracer
    if old is not None:
        old.close()
    return tracer


def disable() -> None:
    """Tear down the global tracer; :func:`span` reverts to no-ops."""
    global _global
    with _global_lock:
        old, _global = _global, None
    if old is not None:
        old.close()


def enabled() -> bool:
    """Whether a global tracer is installed."""
    return _global is not None


def get_tracer() -> Tracer | None:
    """The global tracer, or ``None`` when tracing is disabled."""
    return _global


def span(lane: str, kind: str, label: str = "", **attrs: Any):
    """A span on the global tracer, or the shared no-op when disabled.

    This is the function instrumented code calls; keep its disabled path
    on the hot-loop budget: one global read, one branch.
    """
    tracer = _global
    if tracer is None:
        return NULL_SPAN
    return tracer.span(lane, kind, label, **attrs)


def emit(
    lane: str,
    start: float,
    end: float,
    kind: str,
    label: str = "",
    attrs: dict | None = None,
) -> None:
    """Record a pre-timed interval on the global tracer (no-op if off)."""
    tracer = _global
    if tracer is not None:
        tracer.emit(lane, start, end, kind, label, attrs)


def iter_file(path: str | os.PathLike) -> Iterator[dict]:
    """Yield validated records from a JSON-lines trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield validate_record(json.loads(line))


# Honour REPRO_TRACE at import: any process that touches the obs layer
# (including forked/spawned pool workers) starts exporting immediately.
_env_path = os.environ.get(ENV_VAR)
if _env_path:
    configure(_env_path)
del _env_path
