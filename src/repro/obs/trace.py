"""Structured tracing: hierarchical spans with JSON-lines export.

The runtime's hot paths (checkpoint commit, NDP drain, restore, the
simulation pool) emit *spans* — named wall-clock intervals with
attributes — through a process-global :class:`Tracer`.  Design goals:

* **Near-zero overhead when disabled.**  :func:`span` returns a shared
  no-op context manager when no tracer is configured; the cost is one
  global read and a branch.  Hot loops are instrumented at rank/chunk
  granularity, never per byte.
* **One schema for real runs and simulations.**  Every record carries
  the five core fields in :data:`SPAN_FIELDS` — the exact schema
  :func:`repro.simulation.trace.spans_to_records` has always produced —
  so a simulator timeline and a live-runtime trace are interchangeable
  inputs to the same tooling (``tools/check_trace.py`` validates both).
* **Thread- and fork-safe export.**  Each record is appended to the
  sink file with a single ``os.write`` on an ``O_APPEND`` descriptor, so
  concurrently-tracing threads (and forked pool workers inheriting the
  descriptor) never interleave partial lines.

Enable globally with the ``REPRO_TRACE`` environment variable (a
JSON-lines output path, read at import time) or programmatically::

    from repro.obs import trace
    tracer = trace.configure("run.jsonl")
    with trace.span("ckpt", "commit", ckpt=3, bytes=1 << 20):
        ...
    trace.disable()
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "SPAN_FIELDS",
    "ENV_VAR",
    "TraceSchemaError",
    "TraceContext",
    "Tracer",
    "SpanHandle",
    "NULL_SPAN",
    "add_tap",
    "remove_tap",
    "configure",
    "current_context",
    "disable",
    "enabled",
    "get_tracer",
    "new_ctx_id",
    "new_trace_id",
    "root_context",
    "run_with_context",
    "span",
    "emit",
    "use_context",
    "validate_record",
    "validate_file",
    "validate_request_trees",
]

#: The core span schema, shared with ``repro.simulation.trace``:
#: ``lane`` (component / timeline row), ``start``/``end`` (seconds on a
#: monotonic clock — wall for real runs, simulated for the simulator),
#: ``kind`` (activity class) and ``label`` (free-form tag).
SPAN_FIELDS = ("lane", "start", "end", "kind", "label")

#: Optional per-record fields (runtime traces add these; simulator
#: timelines usually omit them): name -> required type(s).
#:
#: The request-tree fields carry distributed trace context: ``trace_id``
#: groups every span of one service request, ``ctx`` is the span's
#: globally-unique context id (``"<pid hex>-<span hex>"``, unique even
#: across forked pool workers), ``ctx_parent`` names the parent span's
#: ``ctx`` and ``links`` names additional related spans in *other*
#: request trees (e.g. a coalesced waiter linking the shared compute
#: span it attached to).
OPTIONAL_FIELDS: dict[str, tuple[type, ...]] = {
    "attrs": (dict,),
    "span": (int,),
    "parent": (int,),
    "pid": (int,),
    "thread": (str,),
    "trace_id": (str,),
    "ctx": (str,),
    "ctx_parent": (str,),
    "links": (list,),
}

#: Environment variable naming the JSONL sink path; read once at import.
ENV_VAR = "REPRO_TRACE"


class TraceSchemaError(ValueError):
    """A trace record does not conform to the span schema."""


def validate_record(rec: object) -> dict:
    """Check one record against the span schema; returns it on success.

    Raises :class:`TraceSchemaError` naming the offending field.  Both
    the runtime tracer's records and the simulator's
    ``spans_to_records`` output validate.
    """
    if not isinstance(rec, dict):
        raise TraceSchemaError(f"record must be an object, got {type(rec).__name__}")
    for name in SPAN_FIELDS:
        if name not in rec:
            raise TraceSchemaError(f"missing required field {name!r}")
    for name in ("lane", "kind", "label"):
        if not isinstance(rec[name], str):
            raise TraceSchemaError(f"{name!r} must be a string: {rec[name]!r}")
    for name in ("start", "end"):
        if isinstance(rec[name], bool) or not isinstance(rec[name], (int, float)):
            raise TraceSchemaError(f"{name!r} must be a number: {rec[name]!r}")
    if rec["end"] < rec["start"]:
        raise TraceSchemaError(f"end {rec['end']} precedes start {rec['start']}")
    if not rec["kind"]:
        raise TraceSchemaError("'kind' must be non-empty")
    for name, value in rec.items():
        if name in SPAN_FIELDS:
            continue
        types = OPTIONAL_FIELDS.get(name)
        if types is None:
            raise TraceSchemaError(f"unknown field {name!r}")
        if isinstance(value, bool) or not isinstance(value, types):
            raise TraceSchemaError(
                f"{name!r} must be {'/'.join(t.__name__ for t in types)}: {value!r}"
            )
        if name == "links" and not all(isinstance(v, str) and v for v in value):
            raise TraceSchemaError(f"'links' entries must be non-empty strings: {value!r}")
        if name in ("trace_id", "ctx") and not value:
            raise TraceSchemaError(f"{name!r} must be non-empty")
    return rec


def validate_file(path: str | os.PathLike) -> int:
    """Validate a JSON-lines trace file; returns the record count.

    Raises :class:`TraceSchemaError` with a 1-based line number on the
    first malformed line (bad JSON or schema violation).
    """
    count = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as exc:
                raise TraceSchemaError(f"line {lineno}: invalid JSON: {exc}") from None
            try:
                validate_record(rec)
            except TraceSchemaError as exc:
                raise TraceSchemaError(f"line {lineno}: {exc}") from None
            count += 1
    return count


def validate_request_trees(records: list[dict] | tuple[dict, ...]) -> dict:
    """Validate the distributed request-tree structure of ``records``.

    Over every record carrying request-tree fields, checks that:

    * a ``trace_id`` is present (tree fields without one are orphans);
    * the record carries a ``ctx`` id;
    * ``ctx_parent``, when present, resolves to some span's ``ctx``
      within the *same* trace — resolution is by id, never by emission
      order or pid, so parents recorded in other processes count;
    * every ``links`` entry resolves to a ``ctx`` somewhere in the whole
      record set (links deliberately cross trees: a coalesced waiter
      names the shared compute span living in the primary's tree).

    Returns a report dict — ``traces``, ``spans`` (records in trees),
    ``roots`` (spans with no ``ctx_parent``), and ``orphans``: a list of
    ``(index, reason)`` pairs over the input sequence, empty when every
    tree is connected.
    """
    by_trace: dict[str, set[str]] = {}
    all_ctx: set[str] = set()
    for rec in records:
        cid = rec.get("ctx")
        if cid:
            all_ctx.add(cid)
            tid = rec.get("trace_id")
            if tid:
                by_trace.setdefault(tid, set()).add(cid)
    orphans: list[tuple[int, str]] = []
    spans = roots = 0
    for idx, rec in enumerate(records):
        tid = rec.get("trace_id")
        cid = rec.get("ctx")
        parent = rec.get("ctx_parent")
        links = rec.get("links")
        if tid is None and cid is None and parent is None and links is None:
            continue
        if tid is None:
            orphans.append((idx, "request-tree fields present without a 'trace_id'"))
            continue
        if cid is None:
            orphans.append((idx, f"trace {tid}: span carries no 'ctx' id"))
            continue
        spans += 1
        if parent is None:
            roots += 1
        elif parent not in by_trace.get(tid, ()):
            orphans.append(
                (idx, f"trace {tid}: ctx_parent {parent!r} does not resolve in its trace")
            )
        for link in links or ():
            if link not in all_ctx:
                orphans.append((idx, f"link {link!r} does not resolve to any span"))
    return {"traces": len(by_trace), "spans": spans, "roots": roots, "orphans": orphans}


# -- distributed trace context --------------------------------------------------
#
# A request entering the service gets a TraceContext; every span opened
# while it is active (directly, via the ambient contextvar, or via an
# explicit ``ctx=`` hand-off across an executor/process boundary) records
# the request's ``trace_id`` plus ``ctx``/``ctx_parent`` ids, so the
# JSONL trace reconstructs one request tree even when its spans were
# emitted by different threads and processes.


@dataclass(frozen=True)
class TraceContext:
    """One node of a request tree: which trace, and which span within it.

    ``span_id`` is the *owning* span's global context id; the root
    context of a fresh request carries an empty ``span_id`` (spans opened
    under it become tree roots with no ``ctx_parent``).
    """

    trace_id: str
    span_id: str = ""


def new_trace_id() -> str:
    """A fresh 16-hex-char request trace id."""
    return os.urandom(8).hex()


def root_context(trace_id: str | None = None) -> TraceContext:
    """A root :class:`TraceContext` (new trace id unless one is given)."""
    return TraceContext(trace_id or new_trace_id())


#: The ambient trace context.  asyncio tasks inherit it at creation;
#: executor threads and pool workers receive it explicitly via
#: :func:`run_with_context` / the ``ctx=`` span argument.
_CTX: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace_ctx", default=None
)


def current_context() -> TraceContext | None:
    """The ambient :class:`TraceContext`, or ``None`` outside a request."""
    return _CTX.get()


@contextlib.contextmanager
def use_context(ctx: TraceContext | None):
    """Temporarily install ``ctx`` as the ambient trace context."""
    token = _CTX.set(ctx)
    try:
        yield ctx
    finally:
        _CTX.reset(token)


def run_with_context(ctx: TraceContext | None, fn: Callable, *args: Any, **kwargs: Any):
    """Call ``fn`` with ``ctx`` ambient — the executor/worker hand-off.

    ``loop.run_in_executor`` does not propagate contextvars, so the
    event-loop side captures :func:`current_context` and wraps the
    blocking call in this helper.  ``ctx=None`` is a plain call.
    """
    if ctx is None:
        return fn(*args, **kwargs)
    token = _CTX.set(ctx)
    try:
        return fn(*args, **kwargs)
    finally:
        _CTX.reset(token)


class _NullSpan:
    """The shared disabled-tracing span: every operation is a no-op."""

    __slots__ = ()

    #: Mirrors :attr:`SpanHandle.ctx_id` so callers can publish "the
    #: span's context id" without checking whether tracing is on.
    ctx_id = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        """Attribute updates are dropped (tracing is off)."""
        return self

    def link(self, *ctx_ids: str | None) -> "_NullSpan":
        """Cross-tree links are dropped (tracing is off)."""
        return self

    def context(self) -> TraceContext | None:
        """No context: tracing is off."""
        return None


#: The singleton no-op span returned by :func:`span` while disabled.
NULL_SPAN = _NullSpan()


#: Sentinel distinguishing "no ctx argument" (inherit the ambient
#: request context) from an explicit ``ctx=None`` (opt out of it).
_AMBIENT: Any = object()


class SpanHandle:
    """An open span; a context manager that records on exit.

    Attributes set via :meth:`set` (or the constructor's ``attrs``) land
    in the record's ``attrs`` object.  Parenting has two modes:

    * **No request context** (the original behaviour): nesting is
      tracked per thread — the record's ``parent`` is the span id of
      the innermost enclosing span on the same thread.
    * **Request context active** (ambient via :func:`use_context` /
      :func:`run_with_context`, or passed explicitly as ``ctx=``): the
      span joins the request tree — it records ``trace_id`` / ``ctx`` /
      ``ctx_parent`` and installs itself as the ambient context for its
      dynamic extent so nested spans chain through the contextvar.  The
      thread-local integer stack is deliberately skipped here:
      concurrent requests interleaving on one event-loop thread would
      corrupt a per-thread stack.
    """

    __slots__ = (
        "_tracer", "lane", "kind", "label", "attrs", "span_id", "parent_id",
        "_start", "_ctx", "_token", "trace_id", "ctx_id", "ctx_parent", "_links",
    )

    def __init__(
        self,
        tracer: "Tracer",
        lane: str,
        kind: str,
        label: str,
        attrs: dict,
        ctx: "TraceContext | None | Any" = _AMBIENT,
    ):
        self._tracer = tracer
        self.lane = lane
        self.kind = kind
        self.label = label
        self.attrs = attrs
        self.span_id = tracer._new_id()
        self.parent_id: int | None = None
        self._start = 0.0
        self._ctx = ctx
        self._token: contextvars.Token | None = None
        self.trace_id: str | None = None
        self.ctx_id: str | None = None
        self.ctx_parent: str | None = None
        self._links: list[str] | None = None

    def set(self, **attrs: Any) -> "SpanHandle":
        """Attach/overwrite attributes (visible in the emitted record)."""
        self.attrs.update(attrs)
        return self

    def link(self, *ctx_ids: str | None) -> "SpanHandle":
        """Reference spans in *other* request trees by their ``ctx`` id
        (e.g. a coalesced waiter naming the shared compute span it
        attached to).  ``None``/empty entries are ignored so callers can
        pass a possibly-disabled handle's ``ctx_id`` unconditionally.
        """
        for cid in ctx_ids:
            if cid:
                if self._links is None:
                    self._links = []
                if cid not in self._links:
                    self._links.append(cid)
        return self

    def context(self) -> "TraceContext | None":
        """A :class:`TraceContext` naming this span as parent — the
        explicit hand-off across executor/process boundaries.  ``None``
        before ``__enter__`` or when the span has no request context.
        """
        if self.trace_id is None or self.ctx_id is None:
            return None
        return TraceContext(self.trace_id, self.ctx_id)

    def __enter__(self) -> "SpanHandle":
        ctx = self._ctx
        if ctx is _AMBIENT:
            ctx = _CTX.get()
        if ctx is not None:
            self.trace_id = ctx.trace_id
            self.ctx_parent = ctx.span_id or None
            self.ctx_id = f"{os.getpid():x}-{self.span_id:x}"
            self._token = _CTX.set(TraceContext(ctx.trace_id, self.ctx_id))
        else:
            stack = self._tracer._stack()
            self.parent_id = stack[-1] if stack else None
            stack.append(self.span_id)
        self._start = self._tracer.clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = self._tracer.clock()
        if self._token is not None:
            _CTX.reset(self._token)
            self._token = None
        else:
            stack = self._tracer._stack()
            if stack and stack[-1] == self.span_id:
                stack.pop()
        self._tracer._record(
            lane=self.lane,
            start=self._start,
            end=end,
            kind=self.kind,
            label=self.label,
            attrs=self.attrs,
            span=self.span_id,
            parent=self.parent_id,
            trace_id=self.trace_id,
            ctx=self.ctx_id,
            ctx_parent=self.ctx_parent,
            links=self._links,
        )
        return False


class Tracer:
    """Thread-safe span recorder with JSON-lines export.

    Parameters
    ----------
    sink:
        ``None`` keeps records in memory (``records``); a path appends
        one JSON line per record (fork-safe ``O_APPEND`` writes); a
        callable receives each record dict as it completes.
    clock:
        Timestamp source; must be monotonic.  Defaults to
        :func:`time.monotonic` so concurrent spans order consistently
        even across system clock adjustments.
    keep_records:
        Force in-memory retention on/off (default: on only when there
        is no sink, so file-backed long runs don't accumulate RAM).
    """

    def __init__(
        self,
        sink: str | os.PathLike | Callable[[dict], None] | None = None,
        clock: Callable[[], float] = time.monotonic,
        keep_records: bool | None = None,
    ):
        self.clock = clock
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next = 0
        self._fd: int | None = None
        self._sink_fn: Callable[[dict], None] | None = None
        self.path: str | None = None
        if callable(sink):
            self._sink_fn = sink
        elif sink is not None:
            self.path = os.fspath(sink)
            self._fd = os.open(self.path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
        self.keep_records = (sink is None) if keep_records is None else keep_records
        self.records: list[dict] = []
        self.counts: dict[str, int] = {}

    # -- span API -------------------------------------------------------------

    def span(
        self,
        lane: str,
        kind: str,
        label: str = "",
        *,
        ctx: TraceContext | None | Any = _AMBIENT,
        **attrs: Any,
    ) -> SpanHandle:
        """Open a span; use as a context manager.

        ``ctx`` overrides the ambient request context (``None`` opts the
        span out of it entirely).
        """
        return SpanHandle(self, lane, kind, label, attrs, ctx)

    def emit(
        self,
        lane: str,
        start: float,
        end: float,
        kind: str,
        label: str = "",
        attrs: dict | None = None,
        *,
        ctx: TraceContext | None | Any = _AMBIENT,
        ctx_id: str | None = None,
        links: list[str] | None = None,
    ) -> None:
        """Record a pre-timed interval (e.g. a worker-measured chunk).

        Joins the ambient (or explicitly passed) request context like an
        entered span would.  ``ctx_id`` lets the caller pin a
        pre-allocated context id (:func:`new_ctx_id`) — used when the
        interval's *children* were recorded in worker processes before
        the interval itself is absorbed in the parent.  ``links`` names
        related spans in other request trees.
        """
        if ctx is _AMBIENT:
            ctx = _CTX.get()
        span_id = self._new_id()
        cid = cparent = tid = None
        if ctx is not None:
            tid = ctx.trace_id
            cid = ctx_id or f"{os.getpid():x}-{span_id:x}"
            cparent = ctx.span_id or None
        self._record(
            lane=lane,
            start=start,
            end=end,
            kind=kind,
            label=label,
            attrs=attrs or {},
            span=span_id,
            parent=None,
            trace_id=tid,
            ctx=cid,
            ctx_parent=cparent,
            links=[l for l in links if l] if links else None,
        )

    # -- introspection --------------------------------------------------------

    @property
    def total(self) -> int:
        """Number of records emitted so far."""
        return sum(self.counts.values())

    def summary(self) -> str:
        """One-line human-readable digest of what was recorded."""
        kinds = ", ".join(f"{k}={n}" for k, n in sorted(self.counts.items()))
        where = self.path or ("callback" if self._sink_fn else "memory")
        return f"{self.total} spans -> {where} ({kinds or 'none'})"

    def close(self) -> None:
        """Release the file descriptor (idempotent)."""
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    # -- internals ------------------------------------------------------------

    def _stack(self) -> list[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _new_id(self) -> int:
        with self._lock:
            self._next += 1
            return self._next

    def _record(
        self,
        lane: str,
        start: float,
        end: float,
        kind: str,
        label: str,
        attrs: dict,
        span: int,
        parent: int | None,
        trace_id: str | None = None,
        ctx: str | None = None,
        ctx_parent: str | None = None,
        links: list[str] | None = None,
    ) -> None:
        rec: dict[str, Any] = {
            "lane": lane,
            "start": start,
            "end": max(end, start),
            "kind": kind,
            "label": label,
            "span": span,
            "pid": os.getpid(),
            "thread": threading.current_thread().name,
        }
        if parent is not None:
            rec["parent"] = parent
        if trace_id is not None:
            rec["trace_id"] = trace_id
        if ctx is not None:
            rec["ctx"] = ctx
        if ctx_parent is not None:
            rec["ctx_parent"] = ctx_parent
        if links:
            rec["links"] = list(links)
        if attrs:
            rec["attrs"] = attrs
        with self._lock:
            self.counts[kind] = self.counts.get(kind, 0) + 1
            if self.keep_records:
                self.records.append(rec)
            fd = self._fd
        if fd is not None:
            line = json.dumps(rec, separators=(",", ":"), default=str) + "\n"
            os.write(fd, line.encode("utf-8"))
        if self._sink_fn is not None:
            self._sink_fn(rec)
        if _TAPS:
            for tap in list(_TAPS):
                try:
                    tap(rec)
                except Exception:
                    pass


# -- record taps ---------------------------------------------------------------

#: Registered record taps: callables invoked with every completed record
#: (after the sink write).  The flight recorder uses one to capture
#: request spans without a second tracer.  Module-global so
#: :func:`configure` can swap tracers without losing taps.
_TAPS: list[Callable[[dict], None]] = []


def add_tap(fn: Callable[[dict], None]) -> Callable[[dict], None]:
    """Register ``fn`` to receive every completed record (idempotent).

    Tap exceptions are swallowed: observability must never take down the
    traced code path.
    """
    if fn not in _TAPS:
        _TAPS.append(fn)
    return fn


def remove_tap(fn: Callable[[dict], None]) -> None:
    """Unregister a tap previously added with :func:`add_tap`."""
    with contextlib.suppress(ValueError):
        _TAPS.remove(fn)


# -- the process-global tracer ------------------------------------------------

_global: Tracer | None = None
_global_lock = threading.Lock()


def configure(
    sink: str | os.PathLike | Callable[[dict], None] | None = None,
    keep_records: bool | None = None,
) -> Tracer:
    """Install (and return) the process-global tracer.

    Replaces any previously configured tracer, closing its file sink.
    """
    global _global
    tracer = Tracer(sink, keep_records=keep_records)
    with _global_lock:
        old, _global = _global, tracer
    if old is not None:
        old.close()
    return tracer


def disable() -> None:
    """Tear down the global tracer; :func:`span` reverts to no-ops."""
    global _global
    with _global_lock:
        old, _global = _global, None
    if old is not None:
        old.close()


def enabled() -> bool:
    """Whether a global tracer is installed."""
    return _global is not None


def get_tracer() -> Tracer | None:
    """The global tracer, or ``None`` when tracing is disabled."""
    return _global


def span(
    lane: str,
    kind: str,
    label: str = "",
    *,
    ctx: TraceContext | None | Any = _AMBIENT,
    **attrs: Any,
):
    """A span on the global tracer, or the shared no-op when disabled.

    This is the function instrumented code calls; keep its disabled path
    on the hot-loop budget: one global read, one branch.
    """
    tracer = _global
    if tracer is None:
        return NULL_SPAN
    return tracer.span(lane, kind, label, ctx=ctx, **attrs)


def emit(
    lane: str,
    start: float,
    end: float,
    kind: str,
    label: str = "",
    attrs: dict | None = None,
    *,
    ctx: TraceContext | None | Any = _AMBIENT,
    ctx_id: str | None = None,
    links: list[str] | None = None,
) -> None:
    """Record a pre-timed interval on the global tracer (no-op if off)."""
    tracer = _global
    if tracer is not None:
        tracer.emit(lane, start, end, kind, label, attrs, ctx=ctx, ctx_id=ctx_id, links=links)


def new_ctx_id() -> str | None:
    """Pre-allocate a request-tree context id (``None`` when disabled).

    Used for intervals recorded *after* their children: the pool
    allocates a chunk's ctx id before dispatch so worker-side spans can
    name it as parent, then pins it on the chunk's :func:`emit`.
    """
    tracer = _global
    if tracer is None:
        return None
    return f"{os.getpid():x}-{tracer._new_id():x}"


def iter_file(path: str | os.PathLike) -> Iterator[dict]:
    """Yield validated records from a JSON-lines trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield validate_record(json.loads(line))


# Honour REPRO_TRACE at import: any process that touches the obs layer
# (including forked/spawned pool workers) starts exporting immediately.
_env_path = os.environ.get(ENV_VAR)
if _env_path:
    configure(_env_path)
del _env_path
