"""Model-vs-measured drift reports.

The paper's argument is a *model* (``repro.core.model``) predicting what
the C/R runtime should achieve; the runtime's telemetry measures what it
actually achieves.  This module closes the loop: it takes measured
telemetry (drain stats, host-blocked seconds, a simulated breakdown) and
the corresponding model prediction, and emits a side-by-side table with
percentage deviations — Figure 7's breakdown as a live report.

Three report builders:

* :func:`drain_drift` — the NDP drain pipeline vs the drain-rate bound
  ``min(io_bw / (1 - factor), compress_rate)`` and its two stage terms.
* :func:`blocked_drift` — host-blocked wall seconds per level vs the
  model's ``delta_L`` / ``delta_IO`` commit-time predictions.
* :func:`breakdown_drift` — a measured seven-way
  :class:`~repro.core.breakdown.OverheadBreakdown` (e.g. from the
  discrete-event simulator) against a model result's breakdown.

The builders duck-type their measured inputs (anything with the right
attributes works), so this module never imports ``repro.ckpt`` and stays
cycle-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.breakdown import OverheadBreakdown
from ..core.configs import NO_COMPRESSION, CompressionSpec, CRParameters

__all__ = [
    "DriftRow",
    "DriftReport",
    "drain_rate_bound",
    "drain_drift",
    "blocked_drift",
    "breakdown_drift",
]


@dataclass(frozen=True)
class DriftRow:
    """One measured-vs-predicted comparison.

    ``unit`` drives rendering: ``"B/s"`` prints as MB/s, ``"s"`` as
    seconds, ``"%"`` as a percentage, anything else via ``%g``.
    """

    metric: str
    measured: float
    predicted: float
    unit: str = ""

    @property
    def deviation(self) -> float:
        """``(measured - predicted) / predicted``.

        0.0 when both sides are (near) zero; signed infinity when only
        the prediction is zero — an explicit "the model said this
        shouldn't exist" marker, never a silent 0.
        """
        if abs(self.predicted) < 1e-12:
            if abs(self.measured) < 1e-12:
                return 0.0
            return math.copysign(math.inf, self.measured)
        return (self.measured - self.predicted) / self.predicted

    def _fmt(self, value: float) -> str:
        if math.isinf(value):
            return "inf"
        if self.unit == "B/s":
            return f"{value / 1e6:.2f} MB/s"
        if self.unit == "s":
            return f"{value:.4f} s"
        if self.unit == "%":
            return f"{value:.2%}"
        return f"{value:g}"

    def render(self, width: int = 28) -> str:
        """One aligned table line."""
        dev = self.deviation
        dev_s = "   n/a" if math.isinf(dev) else f"{dev:+7.1%}"
        return (
            f"  {self.metric:<{width}s} {self._fmt(self.measured):>14s} "
            f"{self._fmt(self.predicted):>14s} {dev_s:>8s}"
        )

    def as_dict(self) -> dict:
        """Plain-dict view for JSON export."""
        return {
            "metric": self.metric,
            "measured": self.measured,
            "predicted": self.predicted,
            "unit": self.unit,
            "deviation": None if math.isinf(self.deviation) else self.deviation,
        }


@dataclass
class DriftReport:
    """A titled collection of :class:`DriftRow` with table rendering."""

    title: str
    rows: list[DriftRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, metric: str, measured: float, predicted: float, unit: str = "") -> None:
        """Append one comparison row."""
        self.rows.append(DriftRow(metric, float(measured), float(predicted), unit))

    def note(self, text: str) -> None:
        """Append a footnote line."""
        self.notes.append(text)

    @property
    def max_abs_deviation(self) -> float:
        """Largest finite |deviation| across rows (0.0 when empty)."""
        finite = [abs(r.deviation) for r in self.rows if not math.isinf(r.deviation)]
        return max(finite, default=0.0)

    def render(self) -> str:
        """The measured/predicted/drift table as text."""
        width = max([len(r.metric) for r in self.rows], default=20)
        header = (
            f"{self.title}\n"
            f"  {'metric':<{width}s} {'measured':>14s} {'predicted':>14s} {'drift':>8s}"
        )
        body = [r.render(width) for r in self.rows]
        notes = [f"  ({n})" for n in self.notes]
        return "\n".join([header, *body, *notes])

    def as_dict(self) -> dict:
        """Plain-dict view for JSON export."""
        return {
            "title": self.title,
            "rows": [r.as_dict() for r in self.rows],
            "notes": list(self.notes),
        }


def drain_rate_bound(params: CRParameters, compression: CompressionSpec) -> float:
    """The paper's drain-rate bound, in uncompressed bytes/second."""
    io_term = params.io_bandwidth / max(1.0 - compression.factor, 1e-12)
    return min(io_term, compression.compress_rate)


def drain_drift(
    stats,
    params: CRParameters,
    compression: CompressionSpec,
    title: str = "NDP drain: measured vs model",
) -> DriftReport:
    """Compare drain-pipeline telemetry against the model's bound.

    ``stats`` duck-types :class:`~repro.ckpt.ndp_daemon.DrainStats`:
    ``bytes_in``/``bytes_out``, ``achieved_factor`` and the
    ``compress``/``write``/``drain`` stage counters.  Rates are in
    *uncompressed* bytes/second wherever the model's are, so the two
    columns are directly comparable.
    """
    report = DriftReport(title)
    if stats.compress.seconds > 0:
        report.add(
            "compress rate",
            stats.bytes_in / stats.compress.seconds,
            compression.compress_rate,
            "B/s",
        )
    if stats.write.seconds > 0:
        report.add("write rate (compressed)", stats.write.rate, params.io_bandwidth, "B/s")
    if stats.drain.seconds > 0:
        report.add(
            "drain rate (end-to-end)",
            stats.drain.bytes / stats.drain.seconds,
            drain_rate_bound(params, compression),
            "B/s",
        )
    if stats.bytes_in > 0:
        report.add("compression factor", stats.achieved_factor, compression.factor, "%")
    report.note(
        "bound = min(io_bw / (1 - factor), compress_rate) "
        f"= {drain_rate_bound(params, compression) / 1e6:.2f} MB/s"
    )
    if getattr(stats, "stalls", 0):
        report.note(
            f"backpressure: {stats.stalls} stalls, "
            f"{stats.stall_seconds:.3f} s blocked (I/O-bound drain)"
        )
    return report


def blocked_drift(
    metrics,
    params: CRParameters,
    compression: CompressionSpec = NO_COMPRESSION,
    mode: str = "ndp",
    io_every: int = 1,
    title: str | None = None,
) -> DriftReport:
    """Compare per-level host-blocked seconds against the model.

    ``metrics`` duck-types :class:`~repro.ckpt.metrics.RuntimeMetrics`.
    Predictions: local commits block ``delta_L`` each; host-mode I/O
    pushes block ``delta_IO`` each (one every ``io_every`` checkpoints);
    NDP-mode I/O blocking is *zero by construction* — any measured value
    is pure drift.
    """
    report = DriftReport(title or f"host-blocked time ({mode} mode): measured vs model")
    n = max(metrics.checkpoints, 1)
    report.add(
        "blocked local s/ckpt",
        metrics.blocked_seconds.get("local", 0.0) / n,
        params.local_commit_time,
        "s",
    )
    if mode == "host":
        pushes = max(metrics.checkpoints // max(io_every, 1), 1)
        report.add(
            "blocked I/O s/push",
            metrics.blocked_seconds.get("io", 0.0) / pushes,
            params.io_commit_time(compression),
            "s",
        )
    else:
        report.add("blocked I/O s (total)", metrics.blocked_seconds.get("io", 0.0), 0.0, "s")
    if metrics.restores:
        report.add(
            "blocked restore s/recovery",
            metrics.blocked_seconds.get("restore", 0.0) / metrics.restores,
            params.local_restore_time,
            "s",
        )
        report.note("restore prediction assumes local-level recovery")
    return report


def breakdown_drift(
    measured: OverheadBreakdown,
    predicted,
    title: str = "overhead breakdown: measured vs model",
) -> DriftReport:
    """Compare two seven-way breakdowns component by component.

    ``predicted`` may be an :class:`OverheadBreakdown` or anything with
    a ``.breakdown`` attribute (e.g. a
    :class:`~repro.core.model.ModelResult`).  This is the simulator-vs-
    model check as a report: run the discrete-event simulator, feed its
    breakdown here against the analytic prediction.
    """
    pred = getattr(predicted, "breakdown", predicted)
    report = DriftReport(title)
    report.add("efficiency", measured.compute, pred.compute, "%")
    for name in OverheadBreakdown.component_names():
        if name == "compute":
            continue
        report.add(name, getattr(measured, name), getattr(pred, name), "%")
    return report
