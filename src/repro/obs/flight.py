"""Flight recorder: a bounded in-memory ring of recent request trees.

The service keeps the last N completed requests — trace id, route,
status, latency, ``server_timing`` attribution, and (when tracing is
enabled) every span the request emitted — queryable over
``GET /debug/requests`` and ``GET /debug/trace/<id>`` without touching
the JSONL sink.  It is *always on* because every allocation is bounded:

* completed requests live in a ``deque(maxlen=capacity)``;
* span capture is keyed by registered in-flight trace ids only (bounded
  by server concurrency, with a hard cap as a backstop), at most
  ``max_spans`` spans per request;
* spans are captured through a :func:`repro.obs.trace.add_tap` tap — no
  second tracer, no file I/O, one dict append per span.

When tracing is disabled the recorder still captures request summaries
(route, status, latency, timing stages); the ``spans`` lists are simply
empty.  That makes ``/debug/requests`` useful on a production instance
that never turns the JSONL sink on.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any

from . import trace as obs_trace

__all__ = ["FlightRecorder", "span_tree"]


def span_tree(spans: list[dict]) -> list[dict]:
    """Nest flat span records into ``{"span": rec, "children": [...]}``.

    Children attach by ``ctx_parent`` → ``ctx`` resolution (works across
    pids); spans whose parent is absent from ``spans`` become roots —
    the tree is best-effort over whatever was captured.  Siblings sort
    by start time.
    """
    nodes: dict[str, dict] = {
        rec["ctx"]: {"span": rec, "children": []} for rec in spans if rec.get("ctx")
    }
    roots: list[dict] = []
    for rec in spans:
        cid = rec.get("ctx")
        if not cid:
            continue
        parent = rec.get("ctx_parent")
        if parent and parent in nodes and parent != cid:
            nodes[parent]["children"].append(nodes[cid])
        else:
            roots.append(nodes[cid])

    def _sort(children: list[dict]) -> None:
        children.sort(key=lambda n: n["span"].get("start", 0.0))
        for child in children:
            _sort(child["children"])

    _sort(roots)
    return roots


class FlightRecorder:
    """Bounded ring of recent requests with their span trees.

    Parameters
    ----------
    capacity:
        Completed requests retained (oldest evicted first).
    max_spans:
        Per-request span cap; excess spans are counted in
        ``spans_dropped`` instead of stored.
    max_pending:
        Hard cap on concurrently tracked in-flight requests — a backstop
        against a caller that ``begin``\\ s without ``finish``\\ ing.
    """

    def __init__(self, capacity: int = 256, max_spans: int = 512, max_pending: int = 1024):
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=int(capacity))
        self._pending: dict[str, dict] = {}
        self._max_spans = int(max_spans)
        self._max_pending = int(max_pending)
        self._installed = False

    # -- lifecycle -------------------------------------------------------------

    def install(self) -> "FlightRecorder":
        """Start capturing spans (idempotent tap registration)."""
        if not self._installed:
            obs_trace.add_tap(self._tap)
            self._installed = True
        return self

    def uninstall(self) -> None:
        """Stop capturing spans and drop in-flight state."""
        if self._installed:
            obs_trace.remove_tap(self._tap)
            self._installed = False
        with self._lock:
            self._pending.clear()

    # -- request lifecycle (called by the server) ------------------------------

    def begin(self, trace_id: str, method: str, path: str) -> None:
        """Register an in-flight request; spans tagged with its trace id
        are captured from now until :meth:`finish`."""
        with self._lock:
            if trace_id in self._pending:
                return
            if len(self._pending) >= self._max_pending:
                # Backstop: evict the oldest orphaned entry rather than grow.
                self._pending.pop(next(iter(self._pending)))
            self._pending[trace_id] = {
                "trace_id": trace_id,
                "method": method,
                "path": path,
                "time": time.time(),
                "status": None,
                "duration": None,
                "server_timing": None,
                "spans": [],
                "spans_dropped": 0,
            }

    def finish(
        self,
        trace_id: str,
        status: int,
        duration: float,
        server_timing: dict[str, float] | None = None,
    ) -> None:
        """Complete an in-flight request and move it into the ring."""
        with self._lock:
            entry = self._pending.pop(trace_id, None)
            if entry is None:
                return
            entry["status"] = int(status)
            entry["duration"] = float(duration)
            if server_timing:
                entry["server_timing"] = dict(server_timing)
            self._ring.append(entry)

    def discard(self, trace_id: str) -> None:
        """Drop an in-flight request without recording it (client vanished
        before a response was even attempted)."""
        with self._lock:
            self._pending.pop(trace_id, None)

    # -- span capture ----------------------------------------------------------

    def _tap(self, rec: dict) -> None:
        tid = rec.get("trace_id")
        if not tid:
            return
        with self._lock:
            entry = self._pending.get(tid)
            if entry is None:
                return
            if len(entry["spans"]) < self._max_spans:
                entry["spans"].append(rec)
            else:
                entry["spans_dropped"] += 1

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def _summary(self, entry: dict) -> dict:
        out = {k: v for k, v in entry.items() if k != "spans"}
        out["spans"] = len(entry["spans"])
        return out

    def requests(self, n: int = 20, slowest: bool = False) -> list[dict[str, Any]]:
        """Summaries of recent requests: last-``n`` (newest first) or the
        ``n`` slowest retained."""
        with self._lock:
            entries = list(self._ring)
        if slowest:
            entries.sort(key=lambda e: e["duration"] or 0.0, reverse=True)
        else:
            entries.reverse()
        return [self._summary(e) for e in entries[: max(0, int(n))]]

    def lookup(self, trace_id: str) -> dict[str, Any] | None:
        """The full retained record for ``trace_id`` — summary fields,
        flat ``spans``, and the nested ``tree`` — or ``None``."""
        with self._lock:
            entry = next((e for e in self._ring if e["trace_id"] == trace_id), None)
            if entry is None:
                return None
            entry = dict(entry)
            entry["spans"] = list(entry["spans"])
        entry["tree"] = span_tree(entry["spans"])
        return entry
