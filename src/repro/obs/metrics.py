"""Metrics registry: named counters/gauges/histograms with labels.

The registry is the runtime's one place where quantitative telemetry
accumulates: the checkpointer, the NDP drain daemon, the stream codecs
and the simulation pool all register instruments here, and exporters
(:meth:`MetricsRegistry.snapshot` for JSON, :meth:`render_prometheus`
for Prometheus text format) read them out without knowing who owns what.

Three instrument types, all label-aware:

* :class:`Counter` — monotonically increasing totals
  (``cr_checkpoints_total{mode="ndp"}``).
* :class:`Gauge` — point-in-time values, settable directly or bound to a
  callback evaluated at snapshot time (:meth:`Gauge.set_function`) —
  the adapter mechanism that surfaces the pre-existing
  :class:`~repro.ckpt.metrics.StageCounter` /
  :class:`~repro.ckpt.metrics.RuntimeMetrics` /
  ``DrainStats`` objects without changing their callers.
* :class:`Histogram` — bucketed distributions (span durations).

Everything is guarded by one registry lock; updates are a dict get +
float add, cheap enough for per-block (1 MiB) granularity but not meant
for per-byte loops.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Callable, Iterable

__all__ = [
    "MetricError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
    "register_stage_counter",
    "register_runtime_metrics",
    "register_drain_stats",
]


class MetricError(ValueError):
    """Invalid metric operation (type clash, negative counter add...)."""


def _label_key(labels: dict[str, Any]) -> tuple:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Common machinery: name, help text, labelled value cells."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._values: dict[tuple, Any] = {}

    def clear(self) -> None:
        """Drop every labelled cell (used by ``registry.reset()``)."""
        with self._lock:
            self._values.clear()

    def samples(self) -> list[tuple[dict[str, str], Any]]:
        """``(labels, value)`` pairs, deterministically ordered."""
        with self._lock:
            items = sorted(self._values.items())
        return [(dict(key), value) for key, value in items]


class Counter(_Instrument):
    """A monotonically increasing total."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (must be >= 0) to the labelled cell."""
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease (inc {amount})")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current total for the labelled cell (0.0 if never touched)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)


class Gauge(_Instrument):
    """A point-in-time value; settable or callback-backed."""

    kind = "gauge"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        super().__init__(name, help, lock)
        self._callbacks: dict[tuple, Callable[[], float]] = {}

    def set(self, value: float, **labels: Any) -> None:
        """Set the labelled cell to ``value``."""
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Adjust the labelled cell by ``amount`` (may be negative)."""
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        """Shorthand for ``inc(-amount)``."""
        self.inc(-amount, **labels)

    def set_function(self, fn: Callable[[], float], **labels: Any) -> None:
        """Bind the labelled cell to ``fn``, evaluated at read time.

        This is the adapter hook: a live object (a ``DrainStats``, a
        ``RuntimeMetrics``) exposes a field by closure, and every
        snapshot sees its current value.  Re-binding the same labels
        replaces the previous callback.
        """
        with self._lock:
            self._callbacks[_label_key(labels)] = fn

    def value(self, **labels: Any) -> float:
        """Current value (callback cells are evaluated)."""
        key = _label_key(labels)
        with self._lock:
            fn = self._callbacks.get(key)
            if fn is None:
                return self._values.get(key, 0.0)
        return float(fn())

    def clear(self) -> None:
        with self._lock:
            self._values.clear()
            self._callbacks.clear()

    def samples(self) -> list[tuple[dict[str, str], Any]]:
        with self._lock:
            static = dict(self._values)
            callbacks = dict(self._callbacks)
        merged: dict[tuple, float] = dict(static)
        for key, fn in callbacks.items():
            try:
                merged[key] = float(fn())
            except Exception:
                # A dead adapter (its object torn down mid-snapshot) must
                # not take the whole exporter with it.
                merged[key] = math.nan
        return [(dict(key), value) for key, value in sorted(merged.items())]


#: Default histogram buckets, tuned for span durations in seconds.
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, math.inf)


class Histogram(_Instrument):
    """A bucketed distribution (cumulative buckets, Prometheus-style)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, lock)
        edges = tuple(sorted(float(b) for b in buckets))
        if not edges:
            raise MetricError("histogram needs at least one bucket")
        if edges[-1] != math.inf:
            edges = edges + (math.inf,)
        self.buckets = edges

    def observe(self, value: float, exemplar: str | None = None, **labels: Any) -> None:
        """Record one observation.

        ``exemplar`` attaches a trace id to the observation's bucket
        (last writer wins) — exported OpenMetrics-style in the
        Prometheus text so a spike in a latency bucket names a concrete
        request trace to go look at.
        """
        key = _label_key(labels)
        # bisect_left returns the first edge with value <= edge — the
        # same bucket the old linear scan chose, in O(log n).  The +Inf
        # terminal edge guarantees the index is in range.
        i = bisect.bisect_left(self.buckets, value)
        with self._lock:
            cell = self._values.get(key)
            if cell is None:
                cell = self._values[key] = {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            cell["counts"][i] += 1
            cell["sum"] += value
            cell["count"] += 1
            if exemplar is not None:
                cell.setdefault("exemplars", {})[i] = (exemplar, value)

    def value(self, **labels: Any) -> dict:
        """``{"counts": [...], "sum": s, "count": n}`` for the cell."""
        with self._lock:
            cell = self._values.get(_label_key(labels))
            if cell is None:
                return {"counts": [0] * len(self.buckets), "sum": 0.0, "count": 0}
            out = {"counts": list(cell["counts"]), "sum": cell["sum"], "count": cell["count"]}
            if cell.get("exemplars"):
                out["exemplars"] = dict(cell["exemplars"])
            return out

    def quantile(self, q: float, **labels: Any) -> float:
        """Estimate the ``q``-quantile by linear interpolation.

        The estimate assumes observations are uniformly distributed
        within their bucket (the standard ``histogram_quantile``
        convention): the answer lies in the first bucket whose
        cumulative count reaches ``q * count``, interpolated between its
        lower and upper edge.  The first bucket's lower edge is taken as
        0 (durations are non-negative); a quantile landing in the
        ``+Inf`` bucket reports the highest finite edge — there is no
        upper bound to interpolate toward.  Returns ``nan`` for an empty
        cell.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile q must be in [0, 1]: {q!r}")
        with self._lock:
            cell = self._values.get(_label_key(labels))
            if cell is None or not cell["count"]:
                return math.nan
            counts = list(cell["counts"])
            total = cell["count"]
        rank = q * total
        cum = 0.0
        for i, n in enumerate(counts):
            if n == 0:
                continue
            prev, cum = cum, cum + n
            if cum >= rank:
                lo = self.buckets[i - 1] if i > 0 else 0.0
                hi = self.buckets[i]
                if math.isinf(hi):
                    return lo
                return lo + (hi - lo) * ((rank - prev) / n)
        # Unreachable (cum == total >= rank by the time the loop ends),
        # but keep a sane answer if float fuzz ever gets here.
        return self.buckets[-2] if len(self.buckets) > 1 else math.nan


class MetricsRegistry:
    """A named collection of instruments with snapshot/Prometheus export.

    ``counter``/``gauge``/``histogram`` are get-or-create: registering
    the same name twice returns the existing instrument (so module-level
    handles and adapters can share), and a *type* clash raises
    :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._constant_labels: dict[str, str] = {}

    def set_constant_labels(self, **labels: Any) -> None:
        """Attach labels to **every** exported sample of this registry.

        The prefork service workers use this to stamp ``worker="<i>"``
        onto everything they export without touching any call site:
        instruments keep their per-sample labels, and the constant set is
        merged in at export time (:meth:`snapshot`,
        :meth:`render_prometheus`) with per-sample labels winning on a
        name clash.  Passing a value of ``None`` removes that label.
        """
        with self._lock:
            for name, value in labels.items():
                if value is None:
                    self._constant_labels.pop(name, None)
                else:
                    self._constant_labels[name] = str(value)

    def constant_labels(self) -> dict[str, str]:
        """The registry-wide label set (a copy)."""
        with self._lock:
            return dict(self._constant_labels)

    def _merged(self, labels: dict[str, str]) -> dict[str, str]:
        with self._lock:
            const = dict(self._constant_labels)
        if not const:
            return labels
        const.update(labels)
        return const

    def _get_or_create(self, cls: type, name: str, help: str, **kwargs: Any) -> Any:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise MetricError(f"invalid metric name: {name!r}")
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = self._instruments[name] = cls(name, help, self._lock, **kwargs)
            elif not isinstance(inst, cls) or type(inst) is not cls:
                raise MetricError(
                    f"metric {name!r} already registered as {inst.kind}, not {cls.kind}"
                )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        with self._lock:
            return sorted(self._instruments)

    def reset(self) -> None:
        """Zero every instrument (handles stay valid; tests use this)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for inst in instruments:
            inst.clear()

    # -- exporters ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able view: ``{name: {type, help, samples: [...]}}``.

        Gauge callbacks are evaluated at snapshot time, so adapters over
        live objects report their *current* state.
        """
        with self._lock:
            instruments = dict(self._instruments)
        out: dict[str, dict] = {}
        for name, inst in sorted(instruments.items()):
            out[name] = {
                "type": inst.kind,
                "help": inst.help,
                "samples": [
                    {"labels": self._merged(labels), "value": value}
                    for labels, value in inst.samples()
                ],
            }
        return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            instruments = dict(self._instruments)
        lines: list[str] = []
        for name, inst in sorted(instruments.items()):
            if inst.help:
                lines.append(f"# HELP {name} {inst.help}")
            lines.append(f"# TYPE {name} {inst.kind}")
            for labels, value in inst.samples():
                labels = self._merged(labels)
                if inst.kind == "histogram":
                    cum = 0
                    exemplars = value.get("exemplars") or {}
                    for i, (edge, n) in enumerate(zip(inst.buckets, value["counts"])):  # type: ignore[attr-defined]
                        cum += n
                        le = "+Inf" if edge == math.inf else f"{edge:g}"
                        line = f"{name}_bucket{_fmt_labels({**labels, 'le': le})} {cum}"
                        ex = exemplars.get(i)
                        if ex is not None:
                            # OpenMetrics exemplar: the last trace seen in
                            # this bucket, with its observed value.
                            line += f' # {{trace_id="{ex[0]}"}} {ex[1]:g}'
                        lines.append(line)
                    lines.append(f"{name}_sum{_fmt_labels(labels)} {value['sum']:g}")
                    lines.append(f"{name}_count{_fmt_labels(labels)} {value['count']}")
                else:
                    lines.append(f"{name}{_fmt_labels(labels)} {_fmt_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    return f"{value:g}"


#: The process-global default registry all built-in instrumentation uses.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry."""
    return REGISTRY


# -- adapters over the pre-existing telemetry objects --------------------------
#
# The runtime's older counters (StageCounter, RuntimeMetrics, DrainStats)
# keep their APIs and callers; these functions mirror them into a registry
# as callback gauges, so one snapshot covers old and new instrumentation.


def register_stage_counter(
    stage, name: str, registry: MetricsRegistry | None = None, **labels: Any
) -> None:
    """Expose a :class:`~repro.ckpt.metrics.StageCounter` as gauges.

    Publishes ``{name}_bytes_total``, ``{name}_seconds_total``,
    ``{name}_ops_total`` and ``{name}_bytes_per_second`` under ``labels``.
    """
    reg = registry or REGISTRY
    reg.gauge(f"{name}_bytes_total", "bytes processed by this stage").set_function(
        lambda: stage.bytes, **labels
    )
    reg.gauge(f"{name}_seconds_total", "seconds charged to this stage").set_function(
        lambda: stage.seconds, **labels
    )
    reg.gauge(f"{name}_ops_total", "operations charged to this stage").set_function(
        lambda: stage.ops, **labels
    )
    reg.gauge(f"{name}_bytes_per_second", "stage throughput").set_function(
        lambda: stage.rate, **labels
    )


def register_runtime_metrics(
    metrics, registry: MetricsRegistry | None = None, prefix: str = "cr", **labels: Any
) -> None:
    """Expose a :class:`~repro.ckpt.metrics.RuntimeMetrics` as gauges."""
    reg = registry or REGISTRY
    blocked = reg.gauge(
        f"{prefix}_blocked_seconds", "host wall seconds blocked in C/R, by activity"
    )
    for activity in metrics.blocked_seconds:
        blocked.set_function(
            lambda a=activity: metrics.blocked_seconds[a], activity=activity, **labels
        )
    for field, help in (
        ("checkpoints", "checkpoints committed"),
        ("restores", "recoveries served"),
        ("bytes_local", "payload bytes written to the local level"),
        ("bytes_partner", "payload bytes mirrored to the partner level"),
        ("bytes_io_host", "payload bytes pushed to I/O synchronously"),
    ):
        reg.gauge(f"{prefix}_{field}", help).set_function(
            lambda f=field: getattr(metrics, f), **labels
        )


def register_drain_stats(
    stats, registry: MetricsRegistry | None = None, prefix: str = "ndp", **labels: Any
) -> None:
    """Expose a :class:`~repro.ckpt.ndp_daemon.DrainStats` as gauges.

    Covers the scalar counters, the backpressure stall accounting, the
    achieved compression factor, and the compress/write/drain
    :class:`StageCounter` stages.
    """
    reg = registry or REGISTRY
    for field, help in (
        ("checkpoints_drained", "checkpoints drained to the I/O level"),
        ("checkpoints_skipped", "checkpoints skipped (evicted/corrupt/stale)"),
        ("delta_drains", "drains stored as XOR deltas"),
        ("bytes_in", "uncompressed bytes entering the drain"),
        ("bytes_out", "bytes actually written to the I/O level"),
        ("stalls", "backpressure stalls (writer queue full)"),
        ("stall_seconds", "seconds the compressor blocked on backpressure"),
    ):
        reg.gauge(f"{prefix}_{field}", help).set_function(
            lambda f=field: getattr(stats, f), **labels
        )
    reg.gauge(f"{prefix}_achieved_factor", "aggregate compression factor").set_function(
        lambda: stats.achieved_factor, **labels
    )
    for stage_name in ("compress", "write", "drain"):
        register_stage_counter(
            getattr(stats, stage_name), f"{prefix}_{stage_name}", reg, **labels
        )
