"""``repro.obs`` — the unified telemetry layer.

Three pillars, documented in ``docs/OBSERVABILITY.md``:

* :mod:`repro.obs.trace` — structured hierarchical spans with
  thread-safe JSON-lines export (``REPRO_TRACE=out.jsonl`` or
  :func:`configure`); near-zero overhead when disabled.
* :mod:`repro.obs.metrics` — the labelled counter/gauge/histogram
  registry with JSON-snapshot and Prometheus-text exporters, plus
  adapters wrapping the runtime's pre-existing ``StageCounter`` /
  ``RuntimeMetrics`` / ``DrainStats`` objects.
* :mod:`repro.obs.drift` — measured-vs-model drift reports comparing
  live telemetry against ``repro.core.model`` predictions.

The checkpoint runtime, the NDP drain daemon, the restore path, the
stream codecs and the simulation pool are instrumented through this
package; ``repro trace`` / ``repro metrics`` surface it on the CLI.
"""

from . import drift, metrics, trace
from .drift import DriftReport, DriftRow, blocked_drift, breakdown_drift, drain_drift
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    register_drain_stats,
    register_runtime_metrics,
    register_stage_counter,
)
from .trace import (
    SPAN_FIELDS,
    Tracer,
    configure,
    disable,
    emit,
    enabled,
    get_tracer,
    span,
    validate_file,
    validate_record,
)

__all__ = [
    "trace",
    "metrics",
    "drift",
    # tracing
    "SPAN_FIELDS",
    "Tracer",
    "configure",
    "disable",
    "emit",
    "enabled",
    "get_tracer",
    "span",
    "validate_file",
    "validate_record",
    # metrics
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "register_drain_stats",
    "register_runtime_metrics",
    "register_stage_counter",
    # drift
    "DriftReport",
    "DriftRow",
    "blocked_drift",
    "breakdown_drift",
    "drain_drift",
]
