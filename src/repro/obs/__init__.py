"""``repro.obs`` — the unified telemetry layer.

Three pillars, documented in ``docs/OBSERVABILITY.md``:

* :mod:`repro.obs.trace` — structured hierarchical spans with
  thread-safe JSON-lines export (``REPRO_TRACE=out.jsonl`` or
  :func:`configure`); near-zero overhead when disabled.
* :mod:`repro.obs.metrics` — the labelled counter/gauge/histogram
  registry with JSON-snapshot and Prometheus-text exporters, plus
  adapters wrapping the runtime's pre-existing ``StageCounter`` /
  ``RuntimeMetrics`` / ``DrainStats`` objects.
* :mod:`repro.obs.drift` — measured-vs-model drift reports comparing
  live telemetry against ``repro.core.model`` predictions.

Two service-facing companions ride on the pillars:

* :mod:`repro.obs.flight` — an always-on, allocation-bounded flight
  recorder of recent request trees (``/debug/requests``,
  ``/debug/trace/<id>``).
* :mod:`repro.obs.slo` — latency objectives with rolling good/bad
  counters and multi-window error-budget burn rates.

The checkpoint runtime, the NDP drain daemon, the restore path, the
stream codecs and the simulation pool are instrumented through this
package; ``repro trace`` / ``repro metrics`` surface it on the CLI.
"""

from . import drift, flight, metrics, slo, trace
from .flight import FlightRecorder, span_tree
from .slo import SLOTarget, SLOTracker, parse_slo
from .drift import DriftReport, DriftRow, blocked_drift, breakdown_drift, drain_drift
from .metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    register_drain_stats,
    register_runtime_metrics,
    register_stage_counter,
)
from .trace import (
    SPAN_FIELDS,
    TraceContext,
    Tracer,
    configure,
    current_context,
    disable,
    emit,
    enabled,
    get_tracer,
    new_trace_id,
    root_context,
    run_with_context,
    span,
    use_context,
    validate_file,
    validate_record,
    validate_request_trees,
)

__all__ = [
    "trace",
    "metrics",
    "drift",
    "flight",
    "slo",
    # tracing
    "SPAN_FIELDS",
    "TraceContext",
    "Tracer",
    "configure",
    "current_context",
    "disable",
    "emit",
    "enabled",
    "get_tracer",
    "new_trace_id",
    "root_context",
    "run_with_context",
    "span",
    "use_context",
    "validate_file",
    "validate_record",
    "validate_request_trees",
    # flight recorder / SLOs
    "FlightRecorder",
    "span_tree",
    "SLOTarget",
    "SLOTracker",
    "parse_slo",
    # metrics
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "register_drain_stats",
    "register_runtime_metrics",
    "register_stage_counter",
    # drift
    "DriftReport",
    "DriftRow",
    "blocked_drift",
    "breakdown_drift",
    "drain_drift",
]
