"""A self-contained measured-vs-model drift demo (``repro metrics``).

Runs the real multilevel C/R runtime on synthetic rank payloads and
compares its telemetry against the analytic model, following the paper's
own methodology: *calibrate* the platform terms with microbenchmarks
(codec throughput and factor -> :class:`CompressionSpec`; local write
bandwidth -> ``local_bandwidth``; the I/O store's throttle ->
``io_bandwidth``), *predict* with ``repro.core``, then *measure* an
end-to-end NDP-mode and host-mode run and report the drift.

This module imports the checkpoint runtime and the simulator, so it must
never be imported from ``repro.obs.__init__`` (the runtime imports the
obs layer); the CLI imports it lazily.
"""

from __future__ import annotations

import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..ckpt.backends import IOStore, LocalStore
from ..ckpt.multilevel import MultilevelCheckpointer
from ..compression.codecs import Codec, fast_lz4_codec
from ..core.configs import CompressionSpec, CRParameters, paper_parameters
from ..core.model import multilevel_ndp
from . import metrics as obs_metrics
from .drift import DriftReport, blocked_drift, breakdown_drift, drain_drift

__all__ = [
    "DemoResult",
    "calibrate_codec",
    "calibrate_local_bandwidth",
    "make_payloads",
    "run_demo",
]


def make_payloads(ranks: int, payload_bytes: int, seed: int = 0) -> dict[int, bytes]:
    """Deterministic per-rank payloads at a realistic compressibility.

    Each rank's state is tiled 4 KiB random pages with zero runs mixed
    in — compressible but not trivially so, like the paper's mini-app
    checkpoints (Table 2 spans 30-97% factors).
    """
    rnd = random.Random(seed)
    payloads: dict[int, bytes] = {}
    for rank in range(ranks):
        parts: list[bytes] = []
        size = 0
        while size < payload_bytes:
            # Fresh random pages (incompressible) with zero pages mixed
            # in: the factor lands near the zero-page fraction.
            parts.append(b"\x00" * 4096 if rnd.random() < 0.6 else rnd.randbytes(4096))
            size += 4096
        payloads[rank] = b"".join(parts)[:payload_bytes]
    return payloads


def _best_of(fn, repeats: int) -> float:
    """Minimum wall time of ``repeats`` calls (noise-floor timing)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return max(best, 1e-9)


def calibrate_codec(codec: Codec, sample: bytes, repeats: int = 3) -> CompressionSpec:
    """Measure a codec into a :class:`CompressionSpec`.

    The spec's ``factor`` and rates come from compressing/decompressing
    ``sample`` (best of ``repeats``), exactly how Section 5.3 derives the
    model's compression terms from microbenchmarks.
    """
    compressed = codec.compress(sample)
    t_c = _best_of(lambda: codec.compress(sample), repeats)
    t_d = _best_of(lambda: codec.decompress(compressed), repeats)
    factor = min(max(1.0 - len(compressed) / len(sample), 0.0), 0.99)
    return CompressionSpec(
        factor=factor,
        compress_rate=len(sample) / t_c,
        decompress_rate=len(sample) / t_d,
        name=f"measured-{codec.name}",
    )


def calibrate_local_bandwidth(root: Path, sample: bytes, repeats: int = 3) -> float:
    """Measured write bandwidth (B/s) of the directory holding the local store."""
    target = root / "_calibrate.bin"
    try:
        dt = _best_of(lambda: target.write_bytes(sample), repeats)
    finally:
        target.unlink(missing_ok=True)
    return len(sample) / dt


@dataclass
class DemoResult:
    """Everything a drift-demo run produced."""

    params: CRParameters
    compression: CompressionSpec
    reports: list[DriftReport] = field(default_factory=list)
    snapshot: dict = field(default_factory=dict)

    @property
    def max_abs_deviation(self) -> float:
        """Worst finite |drift| across every report row."""
        return max((r.max_abs_deviation for r in self.reports), default=0.0)

    def render(self) -> str:
        """All drift tables plus the calibration header."""
        head = (
            f"calibrated: {self.compression.name} "
            f"factor={self.compression.factor:.1%} "
            f"compress={self.compression.compress_rate / 1e6:.0f} MB/s | "
            f"local_bw={self.params.local_bandwidth / 1e6:.0f} MB/s "
            f"io_bw={self.params.io_bandwidth / 1e6:.0f} MB/s"
        )
        return "\n\n".join([head] + [r.render() for r in self.reports])

    def as_dict(self) -> dict:
        """JSON-ready view (reports + registry snapshot)."""
        return {
            "compression": {
                "name": self.compression.name,
                "factor": self.compression.factor,
                "compress_rate": self.compression.compress_rate,
                "decompress_rate": self.compression.decompress_rate,
            },
            "params": {
                "local_bandwidth": self.params.local_bandwidth,
                "io_bandwidth": self.params.io_bandwidth,
                "checkpoint_size": self.params.checkpoint_size,
            },
            "reports": [r.as_dict() for r in self.reports],
            "max_abs_deviation": self.max_abs_deviation,
            "metrics": self.snapshot,
        }


def _run_mode(
    mode: str,
    root: Path,
    payloads: dict[int, bytes],
    codec: Codec,
    steps: int,
    throttle: float,
    io_every: int,
) -> MultilevelCheckpointer:
    """One end-to-end run: checkpoint ``steps`` times, flush, restart."""
    local = LocalStore(root / f"{mode}-nvm", capacity=3)
    io = IOStore(root / f"{mode}-pfs", throttle_bps=throttle)
    cr = MultilevelCheckpointer(
        f"obs-demo-{mode}", local, io, mode=mode, codec=codec, io_every=io_every
    ).start()
    try:
        for step in range(steps):
            cr.checkpoint(payloads, position=float(step + 1))
        cr.flush_to_io(timeout=120)
        cr.restart()
    finally:
        cr.close()
    return cr


def run_demo(
    ranks: int = 4,
    steps: int = 6,
    payload_bytes: int = 1 << 18,
    throttle: float = 25e6,
    io_every: int = 2,
    seed: int = 0,
    include_breakdown: bool = True,
) -> DemoResult:
    """Calibrate, run both modes, and report measured-vs-model drift.

    Returns a :class:`DemoResult` whose reports cover the drain-pipeline
    rates (vs the drain-rate bound), per-level host-blocked seconds in
    both modes (vs ``delta_L`` / ``delta_IO``), and — unless disabled —
    the simulator's seven-way overhead breakdown vs the analytic model.
    """
    payloads = make_payloads(ranks, payload_bytes, seed)
    codec = fast_lz4_codec()
    sample = payloads[0]
    spec = calibrate_codec(codec, sample)
    with tempfile.TemporaryDirectory(prefix="repro-obs-demo-") as td:
        root = Path(td)
        local_bw = calibrate_local_bandwidth(root, sample)
        params = CRParameters(
            checkpoint_size=float(sum(len(p) for p in payloads.values())),
            local_bandwidth=local_bw,
            io_bandwidth=throttle,
        )

        ndp = _run_mode("ndp", root, payloads, codec, steps, throttle, io_every)
        host = _run_mode("host", root, payloads, codec, steps, throttle, io_every)

    result = DemoResult(params=params, compression=spec)
    assert ndp.daemon is not None
    drain = drain_drift(ndp.daemon.stats, params, spec)
    drain.note(
        "MiB-scale demo checkpoints: per-file fixed costs (headers, "
        "manifest commits) depress the write rate below the throttle"
    )
    result.reports.append(drain)
    result.reports.append(blocked_drift(ndp.metrics, params, spec, mode="ndp"))
    result.reports.append(
        blocked_drift(host.metrics, params, spec, mode="host", io_every=io_every)
    )
    if include_breakdown:
        # Simulator-vs-model on the paper's scenario: same params and
        # compression on both sides, so any drift is simulator dynamics
        # (discrete failures, queueing) the closed form cannot see.
        from ..core.configs import NDP_GZIP1
        from ..simulation import SimConfig, default_work, simulate

        sim_params = paper_parameters()
        sim = simulate(
            SimConfig(
                params=sim_params,
                strategy="ndp",
                compression=NDP_GZIP1,
                work=default_work(sim_params, mttis=120.0),
                seed=seed,
            )
        )
        result.reports.append(
            breakdown_drift(
                sim.breakdown,
                multilevel_ndp(sim_params, NDP_GZIP1),
                title="simulated overhead breakdown vs analytic model (ndp, paper scenario)",
            )
        )
    result.snapshot = obs_metrics.REGISTRY.snapshot()
    return result
