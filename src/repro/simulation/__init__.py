"""Discrete-event simulation of multilevel C/R with NDP (validation layer).

The simulator implements Section 4.2's operational rules event-by-event and
is used to (a) validate the analytic model of :mod:`repro.core.model` and
(b) regenerate the paper's Figure-3 operational timelines from real
simulated schedules.
"""

from .bandwidth import SharedBandwidth, Transfer
from .batch import MCResult, PairedComparison, compare_strategies, mc_run
from .cluster import ClusterConfig, ClusterResult, ClusterSimulation, simulate_cluster
from .engine import AllOf, AnyOf, Environment, Event, Interrupt, Process, Timeout
from .fastpath import simulate_batch, simulate_fast, unsupported_reason
from .grid import GridResult, simulate_grid
from .pool import (
    ChunkTiming,
    ResultCache,
    chunk_indices,
    config_key,
    max_chunk,
    parallel_map,
    resolve_jobs,
    run_simulations,
)
from .rng import StreamFactory, exponential_interarrivals
from .simulator import ENGINES, STRATEGIES, CRSimulation, SimConfig, default_work, simulate
from .stats import SimulationResult, TimeAccounting
from .storage import CheckpointRecord, NVMBuffer
from .trace import Span, TimelineRecorder, render_ascii

__all__ = [
    "SharedBandwidth",
    "Transfer",
    "MCResult",
    "PairedComparison",
    "mc_run",
    "compare_strategies",
    "ChunkTiming",
    "ResultCache",
    "chunk_indices",
    "config_key",
    "max_chunk",
    "parallel_map",
    "resolve_jobs",
    "run_simulations",
    "ClusterConfig",
    "ClusterResult",
    "ClusterSimulation",
    "simulate_cluster",
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "StreamFactory",
    "exponential_interarrivals",
    "SimConfig",
    "CRSimulation",
    "simulate",
    "simulate_batch",
    "simulate_fast",
    "unsupported_reason",
    "GridResult",
    "simulate_grid",
    "default_work",
    "STRATEGIES",
    "ENGINES",
    "SimulationResult",
    "TimeAccounting",
    "CheckpointRecord",
    "NVMBuffer",
    "Span",
    "TimelineRecorder",
    "render_ascii",
]
