"""Cluster-scale discrete-event simulation of coordinated multilevel C/R.

The per-node simulator (:mod:`repro.simulation.simulator`) assumes each
node owns a fixed ``1/N`` share of the global I/O bandwidth.  This module
removes that assumption: ``N`` nodes run a *coordinated* application
(checkpoints are global barriers; any node's failure interrupts everyone)
and their NDP drains contend for the **shared** aggregate I/O pipe via
processor sharing (:class:`~repro.simulation.bandwidth.SharedBandwidth`).

What it adds over the per-node model:

* drain *staggering* — nodes may start their drains offset in time, which
  changes instantaneous contention (``stagger=True``);
* recovery contention — an I/O-level restore shares the pipe with any
  still-running drains unless ``pause_drains_on_recovery`` (§4.2.3);
* per-node I/O snapshot ages — the failed node recovers from *its own*
  newest drained snapshot.

Failures: each node fails as a Poisson process with mean ``node_mttf =
N * params.mtti`` (so the *system* MTTI matches the per-node model's), and
the failed node is the one that may need I/O-level recovery; the other
nodes restore from their local NVM in parallel.

The cluster experiment (``ablation-cluster``) uses this to check the
per-node-share assumption: with homogeneous nodes and fair sharing, system
efficiency is invariant in ``N`` — which is exactly why the paper (and our
core model) can work per-node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from ..core.configs import NO_COMPRESSION, CompressionSpec, CRParameters
from .bandwidth import SharedBandwidth, Transfer
from .engine import Environment, Event, Interrupt
from .rng import StreamFactory
from .stats import TimeAccounting

__all__ = ["ClusterConfig", "ClusterResult", "ClusterSimulation", "simulate_cluster"]


@dataclass(frozen=True)
class ClusterConfig:
    """Scenario knobs for a cluster run.

    ``params.io_bandwidth`` is interpreted as the *per-node share*; the
    shared pipe's capacity is ``nodes * params.io_bandwidth`` so that the
    scenario matches the per-node model at every ``N``.
    """

    params: CRParameters
    nodes: int = 4
    compression: CompressionSpec = NO_COMPRESSION
    work: float = 0.0
    seed: int = 0
    stagger: bool = False
    pause_drains_on_recovery: bool = True

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if self.work <= 0:
            raise ValueError("work must be positive")


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster run.

    ``efficiency`` is the coordinated application's progress rate;
    ``recoveries_io`` counts failures whose failed node restored from the
    shared I/O tier; ``pipe_utilization`` is moved bytes over
    capacity x wall time.
    """

    work: float
    wall_time: float
    efficiency: float
    failures: int
    recoveries_local: int
    recoveries_io: int
    io_snapshots: int
    pipe_utilization: float
    breakdown: dict[str, float]


class _NodeDrain:
    """Per-node NDP drain state: snapshots queued and in flight."""

    __slots__ = ("node_id", "pending", "inflight", "last_io_position", "start_offset")

    def __init__(self, node_id: int, start_offset: float):
        self.node_id = node_id
        self.pending: Optional[float] = None  # newest undrained snapshot position
        self.inflight: Optional[Transfer] = None
        self.last_io_position = 0.0  # newest position safely on I/O
        self.start_offset = start_offset


class ClusterSimulation:
    """Coordinated N-node multilevel C/R over a shared I/O pipe."""

    def __init__(self, config: ClusterConfig):
        self.cfg = config
        self.p = config.params
        self.env = Environment()
        self.acct = TimeAccounting()
        streams = StreamFactory(config.seed)
        self._rng_fail = streams.get("failures")
        self._rng_node = streams.get("failed-node")
        self._rng_recover = streams.get("recovery")

        self.pipe = SharedBandwidth(
            self.env, capacity=config.nodes * self.p.io_bandwidth
        )
        self._drains = [
            _NodeDrain(i, self._offset(i)) for i in range(config.nodes)
        ]
        self._drain_procs: list = []
        self._drain_wakes: list[Optional[Event]] = [None] * config.nodes
        self._drains_paused = False

        self.position = 0.0
        self._rerun_until = 0.0
        self._rerun_attr = "rerun_local"
        self._pending_failure: Optional[int] = None  # failed node id
        self._local_snapshot = 0.0  # position of newest completed local ckpt

        self.failures = 0
        self.recoveries_local = 0
        self.recoveries_io = 0
        self.io_snapshots = 0

        self._delta_l = self.p.local_commit_time
        self._tau = self.p.tau
        self._restore_l = self.p.local_restore_time
        self._csize = config.compression.compressed_size(self.p.checkpoint_size)
        self._host_proc = None

    def _offset(self, node_id: int) -> float:
        if not self.cfg.stagger or self.cfg.nodes == 1:
            return 0.0
        return (node_id / self.cfg.nodes) * self.p.cycle_time

    # -- public ------------------------------------------------------------------

    def run(self) -> ClusterResult:
        """Execute to completion."""
        self._host_proc = self.env.process(self._host(), name="cluster-host")
        self.env.process(self._failure_injector(), name="failures")
        for i in range(self.cfg.nodes):
            proc = self.env.process(self._drain(i), name=f"drain-{i}")
            self._drain_procs.append(proc)
        self.env.run(self._host_proc)
        wall = self.env.now
        return ClusterResult(
            work=self.cfg.work,
            wall_time=wall,
            efficiency=self.cfg.work / wall,
            failures=self.failures,
            recoveries_local=self.recoveries_local,
            recoveries_io=self.recoveries_io,
            io_snapshots=self.io_snapshots,
            pipe_utilization=self.pipe.bytes_moved / (self.pipe.capacity * wall),
            breakdown=self.acct.breakdown().as_dict(),
        )

    # -- failure injection ----------------------------------------------------------

    def _failure_injector(self) -> Generator[Event, None, None]:
        # System failure rate = nodes / node_mttf = 1 / params.mtti.
        while True:
            yield self.env.timeout(float(self._rng_fail.exponential(self.p.mtti)))
            if self._host_proc is None or not self._host_proc.is_alive:
                return
            self.failures += 1
            node = int(self._rng_node.integers(0, self.cfg.nodes))
            self._host_proc.interrupt(node)

    # -- coordinated application -------------------------------------------------------

    def _host(self) -> Generator[Event, None, None]:
        while self.position < self.cfg.work:
            try:
                if self._pending_failure is not None:
                    yield from self._recover()
                    continue
                yield from self._compute()
                if self.position >= self.cfg.work:
                    break
                yield from self._checkpoint_local()
            except Interrupt as intr:
                self._pending_failure = int(intr.cause)

    def _compute(self) -> Generator[Event, None, None]:
        remaining = min(self._tau, self.cfg.work - self.position)
        while remaining > 1e-12:
            in_rerun = self.position < self._rerun_until
            chunk = (
                min(remaining, self._rerun_until - self.position)
                if in_rerun
                else remaining
            )
            category = self._rerun_attr if in_rerun else "compute"
            start = self.env.now
            try:
                yield self.env.timeout(chunk)
            except Interrupt:
                elapsed = self.env.now - start
                self.position += elapsed
                self.acct.add(category, elapsed)
                raise
            self.position += chunk
            remaining -= chunk
            self.acct.add(category, chunk)

    def _checkpoint_local(self) -> Generator[Event, None, None]:
        """Coordinated local commit on every node (barrier semantics)."""
        start = self.env.now
        try:
            yield self.env.timeout(self._delta_l)
        except Interrupt:
            self.acct.add("checkpoint_local", self.env.now - start)
            raise
        self.acct.add("checkpoint_local", self._delta_l)
        self._local_snapshot = self.position
        for drain in self._drains:
            drain.pending = self.position
        self._wake_drains()

    # -- recovery ------------------------------------------------------------------------

    def _recover(self) -> Generator[Event, None, None]:
        node = self._pending_failure
        assert node is not None
        self._pending_failure = None
        fail_position = self.position

        local_ok = (
            self._local_snapshot > 0.0
            and float(self._rng_recover.random()) < self.p.p_local_recovery
        )
        if local_ok:
            # All nodes read their local NVM in parallel.
            start = self.env.now
            try:
                yield self.env.timeout(self._restore_l)
            except Interrupt as intr:
                self.acct.add("restore_local", self.env.now - start)
                self._pending_failure = int(intr.cause)
                return
            self.acct.add("restore_local", self._restore_l)
            self.recoveries_local += 1
            self.position = self._local_snapshot
            self._rerun_attr = "rerun_local"
        else:
            # The failed node's NVM is lost: its drain aborts and everyone
            # rolls back to the failed node's newest I/O snapshot.
            drain = self._drains[node]
            snapshot = drain.last_io_position
            self._abort_drain(node)
            self._local_snapshot = 0.0
            if self.cfg.pause_drains_on_recovery:
                self._drains_paused = True
                self._pause_inflight()
            start = self.env.now
            xfer = self.pipe.start(self._csize if snapshot > 0 else 0.0)
            try:
                yield xfer.done
            except Interrupt as intr:
                self.pipe.abort(xfer)
                self.acct.add("restore_io", self.env.now - start)
                self._drains_paused = False
                self._pending_failure = int(intr.cause)
                return
            except InterruptedError:
                # Aborted by a race we do not expect on the restore path.
                pass
            finally:
                if self.cfg.pause_drains_on_recovery:
                    self._drains_paused = False
                    self._wake_drains()
            self.acct.add("restore_io", self.env.now - start)
            self.recoveries_io += 1
            self.position = snapshot
            self._rerun_attr = "rerun_io"
        self._rerun_until = max(self._rerun_until, fail_position)

    # -- per-node drains ------------------------------------------------------------------

    def _drain(self, node_id: int) -> Generator[Event, None, None]:
        drain = self._drains[node_id]
        if drain.start_offset > 0:
            yield self.env.timeout(drain.start_offset)
        while True:
            if self._drains_paused or drain.pending is None:
                wake = self.env.event()
                self._drain_wakes[node_id] = wake
                try:
                    yield wake
                except Interrupt:
                    pass
                continue
            snapshot = drain.pending
            drain.pending = None
            xfer = self.pipe.start(self._csize)
            drain.inflight = xfer
            try:
                yield xfer.done
            except (InterruptedError, Interrupt):
                drain.inflight = None
                continue  # aborted (NVM loss) or pause
            drain.inflight = None
            drain.last_io_position = max(drain.last_io_position, snapshot)
            self.io_snapshots += 1

    def _wake_drains(self) -> None:
        for i, wake in enumerate(self._drain_wakes):
            if wake is not None and not wake.triggered:
                self._drain_wakes[i] = None
                wake.succeed()

    def _pause_inflight(self) -> None:
        """Abort in-flight drains so the restore gets the whole pipe.

        The drained snapshot is not lost — ``pending`` is restored so the
        drain restarts after the recovery (a restarted transfer re-sends
        the full checkpoint, a conservative choice)."""
        for drain in self._drains:
            if drain.inflight is not None:
                if drain.pending is None:
                    drain.pending = self._local_snapshot or None
                self.pipe.abort(drain.inflight)

    def _abort_drain(self, node_id: int) -> None:
        drain = self._drains[node_id]
        if drain.inflight is not None:
            self.pipe.abort(drain.inflight)
        drain.pending = None


def simulate_cluster(config: ClusterConfig) -> ClusterResult:
    """Run one :class:`ClusterSimulation` to completion."""
    return ClusterSimulation(config).run()
