"""A processor-sharing bandwidth resource for the cluster simulation.

Models the aggregate global-I/O pipe: concurrent transfers share the
capacity equally (processor sharing — the standard model for a parallel
file system serving symmetric streams).  When the set of active transfers
changes, every in-flight transfer's remaining bytes are settled at the old
rate and the completion schedule is recomputed.

Built on the DES engine's primitives: a manager process waits for either
the earliest completion or a membership-change signal.
"""

from __future__ import annotations

from typing import Generator, Optional

from .engine import Environment, Event

__all__ = ["SharedBandwidth", "Transfer"]


class Transfer:
    """One in-flight transfer; ``done`` fires on completion.

    ``remaining`` is settled lazily by the resource manager; it is exact
    whenever the manager has just run (completion, membership change).
    """

    __slots__ = ("nbytes", "remaining", "done", "aborted")

    def __init__(self, env: Environment, nbytes: float):
        self.nbytes = nbytes
        self.remaining = nbytes
        self.done: Event = env.event()
        self.aborted = False


class SharedBandwidth:
    """Fair-shared bandwidth of ``capacity`` bytes/second.

    Usage from a process::

        xfer = pipe.start(nbytes)
        yield xfer.done

    ``abort`` cancels an in-flight transfer (its ``done`` event fails with
    an ``InterruptedError``); use for drains abandoned on NVM loss.
    """

    def __init__(self, env: Environment, capacity: float):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._active: list[Transfer] = []
        self._wake: Optional[Event] = None
        self._settled_at = 0.0
        self.bytes_moved = 0.0
        env.process(self._manager(), name="shared-bandwidth")

    @property
    def active_count(self) -> int:
        """Number of in-flight transfers."""
        return len(self._active)

    @property
    def rate_per_transfer(self) -> float:
        """Current fair-share rate (capacity if idle)."""
        n = max(len(self._active), 1)
        return self.capacity / n

    def start(self, nbytes: float) -> Transfer:
        """Begin a transfer of ``nbytes``; returns its handle."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        xfer = Transfer(self.env, nbytes)
        if nbytes == 0:
            xfer.remaining = 0.0
            xfer.done.succeed()
            return xfer
        self._settle()
        self._active.append(xfer)
        self._kick()
        return xfer

    def abort(self, xfer: Transfer) -> None:
        """Cancel an in-flight transfer; its ``done`` event fails."""
        if xfer.done.triggered:
            return
        self._settle()
        xfer.aborted = True
        if xfer in self._active:
            self._active.remove(xfer)
        xfer.done.fail(InterruptedError("transfer aborted"))
        self._kick()

    # -- internals --------------------------------------------------------------

    def _settle(self) -> None:
        """Charge progress since the last settle time at the old rate."""
        now = self.env.now
        elapsed = now - self._settled_at
        self._settled_at = now
        if elapsed <= 0 or not self._active:
            return
        rate = self.capacity / len(self._active)
        for xfer in self._active:
            step = min(elapsed * rate, xfer.remaining)
            xfer.remaining -= step
            self.bytes_moved += step

    def _kick(self) -> None:
        if self._wake is not None and not self._wake.triggered:
            self._wake.succeed()

    @staticmethod
    def _is_done(xfer: Transfer) -> bool:
        # Settling accumulates float rounding of order eps * nbytes; treat
        # that dust as completion, or a sub-ULP horizon livelocks the clock.
        return xfer.remaining <= max(1e-6, 1e-12 * xfer.nbytes)

    def _manager(self) -> Generator[Event, None, None]:
        env = self.env
        while True:
            self._settle()
            # Complete anything that finished (exactly or within dust).
            for xfer in [x for x in self._active if self._is_done(x)]:
                self._active.remove(xfer)
                xfer.remaining = 0.0
                xfer.done.succeed()
            if not self._active:
                self._wake = env.event()
                yield self._wake
                continue
            rate = self.capacity / len(self._active)
            horizon = min(x.remaining for x in self._active) / rate
            # Never schedule below the clock's resolution at the current
            # magnitude — that would re-fire at the same timestamp forever.
            min_tick = max(abs(env.now), 1.0) * 1e-12
            horizon = max(horizon, min_tick)
            self._wake = env.event()
            yield env.any_of([env.timeout(horizon), self._wake])
