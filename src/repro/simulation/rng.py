"""Seeded random-number streams for reproducible simulations.

Each stochastic aspect of a simulation (failure interarrivals, recovery-
level draws, workload content) gets its own independent stream spawned from
a single root seed via :class:`numpy.random.SeedSequence`, so adding a new
consumer never perturbs existing draws — runs stay bit-reproducible across
code evolution.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StreamFactory", "exponential_interarrivals"]


class StreamFactory:
    """Named, independent RNG streams derived from one root seed.

    >>> streams = StreamFactory(42)
    >>> f = streams.get("failures")
    >>> r = streams.get("recovery")
    >>> f is streams.get("failures")
    True
    """

    def __init__(self, seed: int | None = 0):
        self._root = np.random.SeedSequence(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created deterministically on first use).

        The stream's seed depends only on the root seed and the name, not
        on creation order.
        """
        if name not in self._streams:
            # Derive a child seed from the name so ordering is irrelevant.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(int(b) for b in digest),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]


def exponential_interarrivals(
    rng: np.random.Generator, mean: float, count: int
) -> np.ndarray:
    """``count`` exponential interarrival gaps with the given ``mean``.

    Used by the failure injector; drawn in one vectorized call per batch
    for speed.
    """
    if mean <= 0:
        raise ValueError("mean must be positive")
    if count < 0:
        raise ValueError("count must be non-negative")
    return rng.exponential(mean, size=count)
