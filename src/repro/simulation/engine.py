"""A from-scratch discrete-event simulation engine.

A small, deterministic, generator-based process engine in the style of
SimPy, built on :mod:`heapq`.  It provides exactly what the C/R simulator
needs:

* an :class:`Environment` with a virtual clock and an event queue,
* one-shot :class:`Event` objects with success/failure values,
* :class:`Timeout` events,
* :class:`Process` — a generator that ``yield``\\ s events and resumes when
  they fire, itself usable as an event (join semantics), and
* **interrupts** — :meth:`Process.interrupt` throws :class:`Interrupt`
  into a process at its current yield point, which is how failures preempt
  compute, checkpoint writes, and recovery in the C/R simulation.

Determinism: ties in event time are broken by a monotone sequence number,
so two runs with the same seeds produce identical traces.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from ..obs import trace as obs_trace

__all__ = ["Environment", "Event", "Timeout", "Process", "Interrupt", "AllOf", "AnyOf"]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` carries arbitrary context (the C/R simulator passes the
    failure record).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* by :meth:`succeed` or :meth:`fail`; all
    registered callbacks run at the current simulation time (events are
    processed through the queue, so ordering stays deterministic).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_scheduled")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been succeeded/failed."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether callbacks have already run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded (valid once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception when failed)."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters will see ``exception``."""
        if self._triggered:
            raise RuntimeError("event already triggered")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A running generator; completes (as an event) when it returns.

    The generator yields :class:`Event` objects; the process resumes with
    the event's value when it fires, or sees the event's exception raised
    at the yield point when the event failed.  :meth:`interrupt` throws
    :class:`Interrupt` at the current yield point immediately (at the
    current simulation time).
    """

    __slots__ = ("gen", "_target", "name")

    def __init__(self, env: "Environment", gen: Generator[Event, Any, Any], name: str = ""):
        super().__init__(env)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        # Bootstrap: resume the generator at the current time.
        boot = Event(env)
        boot.callbacks.append(self._resume)
        boot.succeed()

    @property
    def is_alive(self) -> bool:
        """Whether the underlying generator has not yet finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point.

        No-op if the process already finished.  The interrupt is delivered
        immediately (synchronously) — the C/R simulator relies on failure
        delivery not racing with other same-time events.
        """
        if self._triggered:
            return
        # Detach from whatever the process was waiting on.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None
        self._step(Interrupt(cause), throw=True)

    # -- internal machinery ------------------------------------------------

    def _resume(self, event: Event) -> None:
        self._target = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            self._step(event.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                exc = value if isinstance(value, BaseException) else RuntimeError(value)
                target = self.gen.throw(exc)
            else:
                target = self.gen.send(value)
        except StopIteration as stop:
            if not self._triggered:
                self.succeed(stop.value)
            return
        except BaseException as exc:
            if not self._triggered:
                self.fail(exc)
                return
            raise
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes must yield Event"
            )
        if target.processed:
            # Already fired and processed: resume on the next queue step to
            # preserve deterministic ordering.
            bridge = Event(self.env)
            bridge.callbacks.append(self._resume)
            bridge._value = target.value
            bridge._ok = target.ok
            bridge._triggered = True
            self.env._schedule(bridge)
            self._target = bridge
        else:
            target.callbacks.append(self._resume)
            self._target = target


class AllOf(Event):
    """Fires when every child event has fired (conjunction)."""

    __slots__ = ("_pending",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        events = list(events)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in events:
            if ev.processed:
                self._on_child(ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed()


class AnyOf(Event):
    """Fires when the first child event fires (disjunction)."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        for ev in events:
            if ev.processed:
                self._on_child(ev)
                break
            ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed(ev.value)
        else:
            self.fail(ev.value)


class Environment:
    """The simulation clock and event queue."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """A fresh untriggered event (trigger with ``succeed``/``fail``)."""
        return Event(self)

    def process(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a generator as a process."""
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def run(self, until: float | Event | None = None) -> Any:
        """Process events until ``until``.

        ``until`` may be a time (run the queue up to and including that
        time, leaving ``now`` there), an :class:`Event` (run until it
        fires, returning its value, raising if it failed or the queue
        drains first), or ``None`` (drain the queue).
        """
        if not obs_trace.enabled():
            return self._run(until)
        # Span timestamps are wall clock; the simulated interval covered
        # goes into the attrs (events dispatched, virtual clock reached).
        seq0 = self._seq
        now0 = self._now
        with obs_trace.span("sim", "env-run") as sp:
            result = self._run(until)
            sp.set(events=self._seq - seq0, sim_from=now0, sim_to=self._now)
        return result

    def _run(self, until: float | Event | None) -> Any:
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.triggered or not sentinel.processed:
                if not self._step():
                    raise RuntimeError("event queue drained before `until` event fired")
            if not sentinel.ok:
                value = sentinel.value
                raise value if isinstance(value, BaseException) else RuntimeError(value)
            return sentinel.value
        horizon = float("inf") if until is None else float(until)
        while self._queue and self._queue[0][0] <= horizon:
            self._step()
        if until is not None:
            self._now = max(self._now, horizon)
        return None

    # -- internal machinery ------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        if event._scheduled:
            return
        event._scheduled = True
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1

    def _step(self) -> bool:
        if not self._queue:
            return False
        t, _, event = heapq.heappop(self._queue)
        self._now = t
        callbacks, event.callbacks = event.callbacks, None
        for cb in callbacks or ():
            cb(event)
        return True
