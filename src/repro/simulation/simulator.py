"""Discrete-event simulation of multilevel checkpoint/restart with NDP.

Implements the operational rules of Section 4.2 literally, for one
representative compute node (the per-node share of global I/O bandwidth is
taken from :class:`~repro.core.configs.CRParameters`, exactly as in the
analytic model):

* the host alternates compute intervals and blocking local-NVM checkpoint
  writes (coordinated checkpointing — the application pauses);
* in the **host** strategy every ``ratio``-th checkpoint is additionally
  pushed to global I/O *by the host*, blocking for the full
  compression-overlapped commit;
* in the **ndp** strategy a background NDP process locks the newest
  undrained checkpoint in the NVM circular buffer, compresses and streams
  it to I/O (overlapped, so the drain rate is
  ``min(io_bw / (1 - factor), compress_rate)`` in uncompressed bytes/s),
  pausing whenever the host is writing to the NVM (Section 4.2.1) and
  whenever a recovery is reading from global I/O (Section 4.2.3);
* failures arrive as a Poisson process with mean ``mtti`` and interrupt
  whatever the host is doing; recovery restores from the newest completed
  local checkpoint with probability ``p_local_recovery`` (else from the
  newest completed I/O-level checkpoint, losing the NVM contents and
  aborting any in-flight drain), then re-executes lost work.

Every second of simulated time is charged to one of the paper's overhead
components, so :class:`SimulationResult.breakdown` is directly comparable
with the analytic model's output — that comparison (they agree within
Monte-Carlo noise under the ``"staleness"`` rerun accounting) is the
evidence that the analytic model is faithful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

from ..core.configs import NO_COMPRESSION, CompressionSpec, CRParameters
from .engine import Environment, Event, Interrupt
from .rng import StreamFactory
from .stats import SimulationResult, TimeAccounting
from .storage import CheckpointRecord, NVMBuffer
from .trace import TimelineRecorder

__all__ = ["SimConfig", "CRSimulation", "simulate", "STRATEGIES", "ENGINES"]

STRATEGIES = ("host", "ndp", "io-only", "local-only")

#: Simulation engines: the event-level DES (reference oracle) and the
#: vectorized renewal-segment fast path (:mod:`repro.simulation.fastpath`).
ENGINES = ("des", "fast")

_PAUSE = "pause"
_ABORT = "abort"


@dataclass(frozen=True)
class SimConfig:
    """Scenario knobs for one simulated run.

    Attributes
    ----------
    params:
        The C/R parameter bundle shared with the analytic model.
    strategy:
        One of ``"host"`` (multilevel, host pushes to I/O), ``"ndp"``
        (multilevel, NDP drains to I/O), ``"io-only"``, ``"local-only"``.
    ratio:
        Locally-saved : I/O-saved ratio for the ``"host"`` strategy.
    compression:
        Compression engine applied to I/O-level traffic.
    work:
        Useful work to complete, seconds.  Longer runs average over more
        failures; ~200 MTTIs gives <2% Monte-Carlo noise.
    seed:
        Root RNG seed (failures and recovery draws derive from it).
    nvm_capacity:
        NVM circular-buffer capacity in checkpoints.
    pause_ndp_during_local:
        Whether the NDP drain pauses while the host writes to NVM
        (Section 4.2.1; on by default).
    failure_shape:
        Weibull shape of the failure interarrival distribution.  1.0
        (default) is the paper's exponential assumption; ``< 1`` models
        bursty/infant-mortality failure processes observed on production
        machines, ``> 1`` wear-out-like regularity.  The scale is set so
        the mean interarrival equals ``params.mtti`` in every case.
    partner_every:
        Explicit partner level (the paper lumps local+partner into
        ``p_local_recovery``; this unbundles them): every
        ``partner_every``-th checkpoint is additionally copied to a
        partner node over the interconnect, blocking the host for
        ``size/partner_bandwidth``.  0 disables the partner level.
    partner_bandwidth:
        Interconnect bandwidth for partner copies, B/s (the projected
        50 GB/s by default).
    p_partner_recovery:
        Probability the partner copy is usable when the local one is not
        (conditional).  Recovery cascade: local -> partner -> I/O.
    failure_times:
        Optional explicit failure timestamps (absolute simulation
        seconds, ascending).  When set, the stochastic injector is
        replaced by an exact replay — for reproducing recorded failure
        logs or constructing adversarial schedules.  ``failure_shape`` is
        ignored.
    engine:
        ``"des"`` (default) walks the event-level simulator; ``"fast"``
        advances the trajectory failure-to-failure on the vectorized
        :mod:`~repro.simulation.fastpath` engine, drawing from the same
        named RNG streams.  The fast engine models the NVM ring
        per-slot and charges partner copies in closed form, so every
        strategy, capacity, and partner cadence is supported; only
        timeline tracing (which records individual events) transparently
        falls back to the DES.
    trace:
        Optional :class:`TimelineRecorder` for Figure-3-style timelines.
    """

    params: CRParameters
    strategy: str = "ndp"
    ratio: int = 1
    compression: CompressionSpec = NO_COMPRESSION
    work: float = 0.0
    seed: int = 0
    nvm_capacity: int = 8
    pause_ndp_during_local: bool = True
    failure_shape: float = 1.0
    partner_every: int = 0
    partner_bandwidth: float = 50e9
    p_partner_recovery: float = 0.0
    failure_times: Optional[tuple[float, ...]] = None
    engine: str = "des"
    trace: Optional[TimelineRecorder] = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(f"strategy must be one of {STRATEGIES}: {self.strategy!r}")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}: {self.engine!r}")
        if self.ratio < 1:
            raise ValueError("ratio must be >= 1")
        if self.work <= 0:
            raise ValueError("work must be positive (seconds of useful progress)")
        if self.failure_shape <= 0:
            raise ValueError("failure_shape must be positive")
        if self.partner_every < 0:
            raise ValueError("partner_every must be >= 0")
        if self.partner_bandwidth <= 0:
            raise ValueError("partner_bandwidth must be positive")
        if not 0.0 <= self.p_partner_recovery <= 1.0:
            raise ValueError("p_partner_recovery must be in [0, 1]")
        if self.failure_times is not None:
            if any(t <= 0 for t in self.failure_times):
                raise ValueError("failure_times must be positive")
            if list(self.failure_times) != sorted(self.failure_times):
                raise ValueError("failure_times must be ascending")


@dataclass
class _Failure:
    """Cause object carried by failure interrupts."""

    index: int
    time: float


class CRSimulation:
    """One simulated application run under a C/R strategy.

    Construct with a :class:`SimConfig`, call :meth:`run`.
    """

    def __init__(self, config: SimConfig):
        self.cfg = config
        self.p = config.params
        self.env = Environment()
        self.acct = TimeAccounting()
        self.nvm = NVMBuffer(config.nvm_capacity)
        self._streams = StreamFactory(config.seed)
        self._rng_fail = self._streams.get("failures")
        self._rng_recover = self._streams.get("recovery")

        # Host progress state.
        self.position = 0.0  # committed useful progress, seconds
        self._rerun_until = 0.0  # positions below this are re-execution
        self._rerun_attr = "rerun_local"  # level of most recent recovery
        self._pending_failure: Optional[_Failure] = None

        # Checkpoint bookkeeping.
        self._ckpt_counter = 0
        self._io_snapshots: list[tuple[float, float]] = []  # (position, done_time)

        # Counters.
        self.failures = 0
        self.recoveries_local = 0
        self.recoveries_partner = 0
        self.recoveries_io = 0
        self.io_checkpoints = 0
        self.local_checkpoints = 0
        self.partner_checkpoints = 0
        self.host_stall_time = 0.0

        # Partner level: newest snapshot copied to the partner node.
        self._partner_snapshot: Optional[float] = None
        self._delta_partner = self.p.checkpoint_size / config.partner_bandwidth

        # NDP coordination.
        self._host_proc = None
        self._ndp_proc = None
        self._ndp_wake: Optional[Event] = None
        self._ndp_pause_depth = 0
        self._drain_done_evt: Optional[Event] = None

        # Derived times.
        self._delta_l = self.p.local_commit_time
        self._delta_io = self.p.io_commit_time(config.compression)
        self._restore_l = self.p.local_restore_time + self.p.restart_overhead
        self._restore_io = self.p.io_restore_time(config.compression) + self.p.restart_overhead
        self._tau = self.p.tau
        # NDP drain wall time for one checkpoint while running unpaused
        # (compression overlaps the network write).
        self._drain_time = max(
            config.compression.compressed_size(self.p.checkpoint_size) / self.p.io_bandwidth,
            self.p.checkpoint_size / config.compression.compress_rate,
        )

    # -- public entry point --------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the scenario to completion and return statistics."""
        self._host_proc = self.env.process(self._host(), name="host")
        self.env.process(self._failure_injector(), name="failures")
        if self.cfg.strategy == "ndp":
            self._ndp_proc = self.env.process(self._ndp(), name="ndp")
        self.env.run(self._host_proc)
        wall = self.env.now
        return SimulationResult(
            work=self.cfg.work,
            wall_time=wall,
            efficiency=self.cfg.work / wall,
            breakdown=self.acct.breakdown(),
            failures=self.failures,
            recoveries_local=self.recoveries_local,
            recoveries_io=self.recoveries_io,
            recoveries_partner=self.recoveries_partner,
            io_checkpoints=self.io_checkpoints,
            local_checkpoints=self.local_checkpoints,
            partner_checkpoints=self.partner_checkpoints,
            host_stall_time=self.host_stall_time,
        )

    # -- failure injection -----------------------------------------------------

    def _failure_interarrival(self) -> float:
        """One interarrival draw: exponential or Weibull with mean MTTI."""
        shape = self.cfg.failure_shape
        if shape == 1.0:
            return float(self._rng_fail.exponential(self.p.mtti))
        scale = self.p.mtti / math.gamma(1.0 + 1.0 / shape)
        return float(self._rng_fail.weibull(shape)) * scale

    def _failure_injector(self) -> Generator[Event, None, None]:
        """Renewal failure process (or exact trace replay); each failure
        interrupts the host wherever it is."""
        if self.cfg.failure_times is not None:
            for t in self.cfg.failure_times:
                delay = t - self.env.now
                if delay > 0:
                    yield self.env.timeout(delay)
                if self._host_proc is None or not self._host_proc.is_alive:
                    return
                self.failures += 1
                self._host_proc.interrupt(_Failure(self.failures, self.env.now))
            return
        while True:
            yield self.env.timeout(self._failure_interarrival())
            if self._host_proc is None or not self._host_proc.is_alive:
                return
            self.failures += 1
            self._host_proc.interrupt(_Failure(self.failures, self.env.now))

    # -- host process ----------------------------------------------------------

    def _host(self) -> Generator[Event, None, None]:
        """Main application loop: recover if needed, compute, checkpoint."""
        while self.position < self.cfg.work:
            try:
                if self._pending_failure is not None:
                    yield from self._recover()
                    continue
                yield from self._compute_interval()
                if self.position >= self.cfg.work:
                    break
                yield from self._checkpoint_local()
                if (
                    self.cfg.partner_every
                    and self.cfg.strategy in ("host", "ndp", "local-only")
                    and self._ckpt_counter % self.cfg.partner_every == 0
                ):
                    yield from self._checkpoint_partner()
                if self.cfg.strategy == "host" and self._ckpt_counter % self.cfg.ratio == 0:
                    yield from self._checkpoint_io_host()
            except Interrupt as intr:
                self._pending_failure = intr.cause

    def _compute_interval(self) -> Generator[Event, None, None]:
        """Advance useful work by up to ``tau``, classifying rerun vs fresh.

        Work below ``_rerun_until`` is re-execution of lost progress and is
        charged to the rerun component of the most recent recovery's level;
        the rest is fresh compute.  A failure mid-interval still banks the
        progress made — re-execution is identical to first execution.
        """
        if self.cfg.strategy == "local-only":
            span = self._tau
        elif self.cfg.strategy == "io-only":
            span = self._tau
        else:
            span = self._tau
        remaining = min(span, self.cfg.work - self.position)
        while remaining > 1e-12:
            in_rerun = self.position < self._rerun_until
            chunk = min(remaining, self._rerun_until - self.position) if in_rerun else remaining
            category = self._rerun_attr if in_rerun else "compute"
            kind = "rerun" if in_rerun else "compute"
            start = self.env.now
            try:
                yield self.env.timeout(chunk)
            except Interrupt:
                elapsed = self.env.now - start
                self.position += elapsed
                self.acct.add(category, elapsed)
                self._emit("HOST", start, self.env.now, kind)
                raise
            self.position += chunk
            remaining -= chunk
            self.acct.add(category, chunk)
            self._emit("HOST", start, self.env.now, kind)

    def _checkpoint_local(self) -> Generator[Event, None, None]:
        """Blocking write of the current state to local NVM.

        For the ``io-only`` strategy this is instead a blocking write to
        global I/O (there is no local level).  The NDP pauses for the
        duration (all NVM bandwidth goes to the host write).
        """
        if self.cfg.strategy == "io-only":
            yield from self._checkpoint_io_host()
            return

        # Wait for buffer space; time spent here is a host stall.
        while not self.nvm.can_accept():
            start = self.env.now
            evt = self._drain_done_evt = self.env.event()
            try:
                yield evt
            except Interrupt:
                stalled = self.env.now - start
                self.host_stall_time += stalled
                self.acct.add("checkpoint_local", stalled)
                raise
            self.host_stall_time += self.env.now - start
            self.acct.add("checkpoint_local", self.env.now - start)

        rec = CheckpointRecord(ckpt_id=self._ckpt_counter + 1, position=self.position)
        self.nvm.admit(rec)
        if self.cfg.pause_ndp_during_local:
            self._ndp_pause()
        start = self.env.now
        try:
            yield self.env.timeout(self._delta_l)
        except Interrupt:
            self.acct.add("checkpoint_local", self.env.now - start)
            self._emit("HOST", start, self.env.now, "ckpt-local")
            # The in-flight checkpoint is incomplete and unusable.
            raise
        finally:
            if self.cfg.pause_ndp_during_local:
                self._ndp_resume()
        rec.local_done = self.env.now
        self._ckpt_counter += 1
        self.local_checkpoints += 1
        self.acct.add("checkpoint_local", self._delta_l)
        self._emit("HOST", start, self.env.now, "ckpt-local", f"c{rec.ckpt_id}")
        if self.cfg.strategy == "local-only":
            # No I/O tier: the record exists only locally.
            return
        self._ndp_notify()

    def _checkpoint_partner(self) -> Generator[Event, None, None]:
        """Blocking copy of the newest checkpoint to a partner node.

        Goes over the interconnect at ``partner_bandwidth``; the paper
        counts partner alongside local ("locally-saved"), so the cost is
        charged to ``checkpoint_local``.
        """
        snapshot = self.position
        start = self.env.now
        try:
            yield self.env.timeout(self._delta_partner)
        except Interrupt:
            self.acct.add("checkpoint_local", self.env.now - start)
            self._emit("HOST", start, self.env.now, "ckpt-local", "P")
            raise
        self._partner_snapshot = snapshot
        self.partner_checkpoints += 1
        self.acct.add("checkpoint_local", self._delta_partner)
        self._emit("HOST", start, self.env.now, "ckpt-local", "P")

    def _checkpoint_io_host(self) -> Generator[Event, None, None]:
        """Host-blocking (compression-overlapped) write to global I/O."""
        snapshot = self.position
        start = self.env.now
        try:
            yield self.env.timeout(self._delta_io)
        except Interrupt:
            self.acct.add("checkpoint_io", self.env.now - start)
            self._emit("HOST", start, self.env.now, "ckpt-io")
            raise
        self._io_snapshots.append((snapshot, self.env.now))
        self.io_checkpoints += 1
        if self.cfg.strategy == "io-only":
            self._ckpt_counter += 1
        self.acct.add("checkpoint_io", self._delta_io)
        self._emit("HOST", start, self.env.now, "ckpt-io")

    # -- recovery ---------------------------------------------------------------

    def _recover(self) -> Generator[Event, None, None]:
        """Restore from the appropriate level and set up re-execution.

        With probability ``p_local_recovery`` the newest completed local
        checkpoint is usable; otherwise the node's NVM contents are lost
        and recovery reads the newest completed I/O-level checkpoint
        (pausing any NDP drain for the duration, Section 4.2.3).  A
        further failure during restore abandons it and re-enters recovery.
        """
        failure = self._pending_failure
        assert failure is not None
        self._pending_failure = None
        fail_position = self.position

        use_local = False
        if self.cfg.strategy in ("host", "ndp", "local-only"):
            local_rec = self.nvm.latest_completed(self.env.now)
            if local_rec is not None:
                if self.cfg.strategy == "local-only":
                    use_local = True
                else:
                    use_local = float(self._rng_recover.random()) < self.p.p_local_recovery

        use_partner = False
        if not use_local and self.cfg.partner_every and self._partner_snapshot is not None:
            use_partner = (
                float(self._rng_recover.random()) < self.cfg.p_partner_recovery
            )

        if use_local:
            assert local_rec is not None
            start = self.env.now
            try:
                yield self.env.timeout(self._restore_l)
            except Interrupt as intr:
                self.acct.add("restore_local", self.env.now - start)
                self._emit("HOST", start, self.env.now, "restore")
                self._pending_failure = intr.cause
                return
            self.acct.add("restore_local", self._restore_l)
            self._emit("HOST", start, self.env.now, "restore")
            self.recoveries_local += 1
            self.position = local_rec.position
            self._rerun_attr = "rerun_local"
        elif use_partner:
            # Local level unusable but the partner copy survives: the
            # node's NVM contents are gone, the restore streams from the
            # partner over the interconnect.
            self._nvm_lost()
            snapshot = self._partner_snapshot
            assert snapshot is not None
            start = self.env.now
            try:
                yield self.env.timeout(self._delta_partner)
            except Interrupt as intr:
                self.acct.add("restore_local", self.env.now - start)
                self._emit("HOST", start, self.env.now, "restore")
                self._pending_failure = intr.cause
                return
            self.acct.add("restore_local", self._delta_partner)
            self._emit("HOST", start, self.env.now, "restore")
            self.recoveries_partner += 1
            self.position = snapshot
            self._rerun_attr = "rerun_local"
        else:
            # Local level unusable: NVM contents lost, drain aborted.
            self._nvm_lost()
            snapshot = self._io_snapshots[-1][0] if self._io_snapshots else 0.0
            restore_time = self._restore_io if self._io_snapshots else 0.0
            self._ndp_pause()  # drain pauses while recovery reads from I/O
            start = self.env.now
            try:
                yield self.env.timeout(restore_time)
            except Interrupt as intr:
                self.acct.add("restore_io", self.env.now - start)
                self._emit("HOST", start, self.env.now, "restore")
                self._pending_failure = intr.cause
                return
            finally:
                self._ndp_resume()
            self.acct.add("restore_io", restore_time)
            self._emit("HOST", start, self.env.now, "restore")
            self.recoveries_io += 1
            self.position = snapshot
            self._rerun_attr = "rerun_io"

        # A partner snapshot "ahead" of the rollback point captures state
        # the re-execution has not reached yet; discard it (real systems
        # invalidate rather than fast-forward).
        if self._partner_snapshot is not None and self._partner_snapshot > self.position:
            self._partner_snapshot = None
        self._rerun_until = max(self._rerun_until, fail_position)

    def _nvm_lost(self) -> None:
        """Drop NVM contents and abort any in-flight drain."""
        self.nvm.clear()
        if self._ndp_proc is not None and self._ndp_proc.is_alive:
            self._ndp_proc.interrupt(_ABORT)

    # -- NDP drain process --------------------------------------------------------

    def _ndp(self) -> Generator[Event, None, None]:
        """Background drain: newest undrained checkpoint -> global I/O.

        Interrupt causes: ``"pause"`` re-checks the pause gate; ``"abort"``
        abandons the current drain (NVM lost).  Progress made before a
        pause is kept — the drain resumes where it stopped.
        """
        while True:
            rec = self.nvm.newest_undrained()
            if rec is None:
                self._ndp_wake = self.env.event()
                try:
                    yield self._ndp_wake
                except Interrupt:
                    pass
                continue
            self.nvm.lock(rec)
            remaining = self._drain_time
            aborted = False
            while remaining > 1e-12:
                if self._ndp_pause_depth > 0:
                    gate = self._ndp_gate = self.env.event()
                    try:
                        yield gate
                    except Interrupt as intr:
                        if intr.cause == _ABORT:
                            aborted = True
                            break
                    continue
                start = self.env.now
                try:
                    yield self.env.timeout(remaining)
                    self._emit("NDP", start, self.env.now, "drain", f"c{rec.ckpt_id}")
                    remaining = 0.0
                except Interrupt as intr:
                    self._emit("NDP", start, self.env.now, "drain", f"c{rec.ckpt_id}")
                    remaining -= self.env.now - start
                    if intr.cause == _ABORT:
                        aborted = True
                        break
                    # pause: loop re-checks the gate
            if aborted:
                # Record may already be gone from the cleared buffer.
                if rec.locked:
                    rec.locked = False
                continue
            rec.io_done = self.env.now
            self.nvm.unlock(rec)
            self._io_snapshots.append((rec.position, self.env.now))
            self.io_checkpoints += 1
            if self._drain_done_evt is not None and not self._drain_done_evt.triggered:
                self._drain_done_evt.succeed()

    def _ndp_notify(self) -> None:
        """Host -> NDP doorbell: a new checkpoint is available."""
        if self._ndp_wake is not None and not self._ndp_wake.triggered:
            self._ndp_wake.succeed()

    def _ndp_pause(self) -> None:
        """Suspend the drain (host NVM write or I/O-level restore)."""
        self._ndp_pause_depth += 1
        if (
            self._ndp_pause_depth == 1
            and self._ndp_proc is not None
            and self._ndp_proc.is_alive
        ):
            self._ndp_proc.interrupt(_PAUSE)

    def _ndp_resume(self) -> None:
        """Release one pause level; reopen the gate at zero."""
        if self._ndp_pause_depth == 0:
            return
        self._ndp_pause_depth -= 1
        if self._ndp_pause_depth == 0:
            gate = getattr(self, "_ndp_gate", None)
            if gate is not None and not gate.triggered:
                gate.succeed()

    # -- tracing ---------------------------------------------------------------

    def _emit(self, lane: str, start: float, end: float, kind: str, label: str = "") -> None:
        if self.cfg.trace is not None:
            self.cfg.trace.emit(lane, start, end, kind, label)


def simulate(config: SimConfig) -> SimulationResult:
    """Run one simulation to completion on the config's engine."""
    if config.engine == "fast":
        from .fastpath import simulate_fast  # local import: avoids a cycle

        return simulate_fast(config)
    return CRSimulation(config).run()


def default_work(params: CRParameters, mttis: float = 200.0) -> float:
    """A work target spanning ``mttis`` mean-times-to-interrupt.

    Monte-Carlo noise on the efficiency estimate scales like
    ``1/sqrt(failures)``; 200 MTTIs keeps it under ~2% for the paper's
    scenarios.
    """
    if math.isinf(params.mtti):
        raise ValueError("mtti must be finite")
    return params.mtti * mttis
