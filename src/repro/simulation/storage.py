"""Storage models for the compute-node simulation.

Two pieces:

* :class:`CheckpointRecord` — a checkpoint snapshot's identity: which work
  position it captures and when each storage level finished committing it.
* :class:`NVMBuffer` — the node-local NVM organized, per Section 4.2.1, as
  a FIFO circular buffer of checkpoint slots.  Checkpoints being drained to
  global I/O by the NDP are *locked* against reuse (Section 4.2.2); a host
  write that would need a locked slot must wait (in practice the buffer is
  sized so this never happens, and the simulator records it as a stall if
  it does).

The buffer tracks *capacity in checkpoints* rather than bytes because every
checkpoint of a given run has the same size; a byte-sized variant would
change none of the dynamics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

__all__ = ["CheckpointRecord", "NVMBuffer"]


@dataclass
class CheckpointRecord:
    """One checkpoint snapshot and its per-level commit status.

    Attributes
    ----------
    ckpt_id:
        Monotone checkpoint number.
    position:
        Useful-work position (seconds of progress) the snapshot captures.
    local_done:
        Simulation time the local NVM commit finished (``None`` while in
        flight).
    io_done:
        Simulation time the global-I/O copy finished (``None`` if not
        drained / not written).
    locked:
        Whether the NDP has locked this checkpoint's NVM capacity while
        draining it.
    """

    ckpt_id: int
    position: float
    local_done: float | None = None
    io_done: float | None = None
    locked: bool = False

    @property
    def on_io(self) -> bool:
        """Whether a completed copy exists at the I/O level."""
        return self.io_done is not None


@dataclass
class NVMBuffer:
    """FIFO circular buffer of checkpoint slots in node-local NVM.

    ``capacity`` is the number of checkpoints the NVM can hold.  New
    checkpoints evict the oldest *unlocked* ones; if every slot is locked
    the write must stall (callers check :meth:`can_accept`).
    """

    capacity: int
    _slots: deque[CheckpointRecord] = field(default_factory=deque)
    stall_evictions_denied: int = 0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("NVM buffer needs capacity >= 1")

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def records(self) -> tuple[CheckpointRecord, ...]:
        """Current contents, oldest first."""
        return tuple(self._slots)

    def can_accept(self) -> bool:
        """Whether a new checkpoint can be admitted right now.

        True if there is a free slot or the oldest slot is evictable
        (unlocked).
        """
        if len(self._slots) < self.capacity:
            return True
        return any(not r.locked for r in self._slots)

    def admit(self, record: CheckpointRecord) -> list[CheckpointRecord]:
        """Admit a new checkpoint, evicting oldest unlocked slots if full.

        Returns the evicted records (possibly empty).  Raises if the
        buffer is full of locked checkpoints — callers must consult
        :meth:`can_accept` first; the simulator treats that as a host
        stall.
        """
        evicted: list[CheckpointRecord] = []
        while len(self._slots) >= self.capacity:
            victim = self._oldest_unlocked()
            if victim is None:
                self.stall_evictions_denied += 1
                raise BufferError("all NVM checkpoint slots are locked by the NDP")
            self._slots.remove(victim)
            evicted.append(victim)
        self._slots.append(record)
        return evicted

    def latest_completed(self, at: float) -> CheckpointRecord | None:
        """Newest checkpoint whose local commit finished by time ``at``."""
        for rec in reversed(self._slots):
            if rec.local_done is not None and rec.local_done <= at:
                return rec
        return None

    def newest_undrained(self) -> CheckpointRecord | None:
        """Newest locally-complete checkpoint not yet on I/O and unlocked.

        Section 4.2.2: the NDP always drains the *most recent* eligible
        checkpoint — draining stale ones would only increase the rerun
        distance of I/O-level recoveries.
        """
        for rec in reversed(self._slots):
            if rec.local_done is not None and not rec.on_io and not rec.locked:
                return rec
        return None

    def lock(self, record: CheckpointRecord) -> None:
        """Lock a checkpoint's capacity against reuse while draining."""
        if record.locked:
            raise ValueError(f"checkpoint {record.ckpt_id} already locked")
        record.locked = True

    def unlock(self, record: CheckpointRecord) -> None:
        """Release the drain lock (the paper's 'delete'/'reuse' arrow)."""
        if not record.locked:
            raise ValueError(f"checkpoint {record.ckpt_id} is not locked")
        record.locked = False

    def clear(self) -> None:
        """Drop all contents (used when simulating NVM loss)."""
        self._slots.clear()

    def _oldest_unlocked(self) -> CheckpointRecord | None:
        for rec in self._slots:
            if not rec.locked:
                return rec
        return None
