"""Wall-time accounting for the C/R simulation.

The simulator classifies every interval of simulated time into one of the
paper's Section 6.2 components (compute / checkpoint / restore / rerun,
each split by level) via :class:`TimeAccounting`, which converts to the
same :class:`~repro.core.breakdown.OverheadBreakdown` the analytic model
produces — making model-vs-simulation comparison a one-liner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.breakdown import OverheadBreakdown

__all__ = ["TimeAccounting", "SimulationResult"]

_CATEGORIES = OverheadBreakdown.component_names()


@dataclass
class TimeAccounting:
    """Accumulates seconds per activity category.

    Categories are the seven :class:`OverheadBreakdown` components.  The
    simulator calls :meth:`add` with whatever partial durations it
    completes (including work cut short by failures).
    """

    seconds: dict[str, float] = field(default_factory=lambda: {c: 0.0 for c in _CATEGORIES})

    def add(self, category: str, duration: float) -> None:
        """Charge ``duration`` seconds to ``category``."""
        if category not in self.seconds:
            raise KeyError(f"unknown category {category!r}; one of {_CATEGORIES}")
        if duration < 0:
            raise ValueError(f"negative duration: {duration}")
        self.seconds[category] += duration

    @property
    def total(self) -> float:
        """Total accounted wall time."""
        return sum(self.seconds.values())

    def breakdown(self) -> OverheadBreakdown:
        """Fractions-of-total view, comparable with the analytic model."""
        total = self.total
        if total <= 0:
            raise ValueError("no time accounted yet")
        return OverheadBreakdown(**{c: self.seconds[c] / total for c in _CATEGORIES})


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated run.

    Attributes
    ----------
    work:
        Useful work completed (seconds of progress) — the run target.
    wall_time:
        Total simulated wall-clock time.
    efficiency:
        ``work / wall_time`` (the progress rate).
    breakdown:
        Seven-way wall-time decomposition.
    failures:
        Total failures injected.
    recoveries_local, recoveries_partner, recoveries_io:
        Recoveries served from the node's own NVM, from a partner copy,
        and from global I/O.  (The paper's ``p_local_recovery`` lumps the
        first two; the simulator can model them separately.)
    io_checkpoints:
        Checkpoints whose I/O-level copy completed.
    local_checkpoints:
        Checkpoints committed to local NVM.
    host_stall_time:
        Time the host was blocked waiting for NVM buffer space
        (nonzero only with aggressively undersized buffers).
    """

    work: float
    wall_time: float
    efficiency: float
    breakdown: OverheadBreakdown
    failures: int
    recoveries_local: int
    recoveries_io: int
    io_checkpoints: int
    local_checkpoints: int
    host_stall_time: float
    recoveries_partner: int = 0
    partner_checkpoints: int = 0
