"""Whole experiment grids through one vectorized simulation pass.

The figure experiments sweep a strategy x parameter plane: five
sensitivity configurations x eight checkpoint sizes, four strategies x
four compression factors x four recovery probabilities, a (size x MTTI)
heatmap.  Run one config at a time and every cell pays the fast engine's
batch setup (stream seeding, array allocation, a private driver loop) by
itself — the Python driver iterations scale with the *sum* of segment
counts instead of the max.

:func:`simulate_grid` broadcasts the whole grid instead: every
(cell, seed) pair becomes one row of a single :func:`~.fastpath.simulate_batch`
call (per worker chunk), so compatible configs advance together and the
driver-loop cost is shared across the grid.  The grid's nesting
structure is preserved — results come back as numpy arrays shaped like
the input — and per-cell statistics (mean efficiency, Student-t 95%
half-width, mean breakdown components) are precomputed over the seed
axis.

The pass routes through :func:`~.pool.run_simulations`, so ``jobs`` and
an on-disk :class:`~.pool.ResultCache` compose with it; results are
bit-identical at any worker count because each row owns its seed's RNG
streams.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

import numpy as np

from .batch import _t95
from .pool import ChunkTiming, ResultCache, resolve_jobs, run_simulations
from .simulator import SimConfig, SimulationResult

__all__ = ["GridResult", "simulate_grid"]


def _flatten(grid: Any) -> tuple[tuple[int, ...], list[SimConfig]]:
    """Infer the (rectangular) shape of a nested config structure.

    A bare :class:`SimConfig` is a scalar cell (shape ``()``); sequences
    nest to arbitrary depth but must be rectangular — ragged rows would
    make the result arrays meaningless.
    """
    if isinstance(grid, SimConfig):
        return (), [grid]
    items = list(grid)
    if not items:
        raise ValueError("simulate_grid: empty grid axis")
    shapes_flats = [_flatten(item) for item in items]
    shape0 = shapes_flats[0][0]
    if any(shape != shape0 for shape, _ in shapes_flats):
        raise ValueError("simulate_grid: ragged grid (axes must be rectangular)")
    flat = [cfg for _, cell in shapes_flats for cfg in cell]
    return (len(items),) + shape0, flat


@dataclass(frozen=True)
class GridResult:
    """One simulated grid: per-cell statistics plus the raw results.

    Attributes
    ----------
    shape:
        The grid's shape (the nesting structure of the input configs).
    seeds:
        The seed axis every cell was replicated over.
    efficiency, ci95:
        Mean efficiency per cell and its 95% Student-t half-width over
        the seed axis, each shaped ``shape``.  With a single seed the
        half-width is ``inf`` (one draw carries no variance information).
    breakdown:
        Component name -> mean breakdown fraction per cell (``shape``).
    results:
        Object array of :class:`SimulationResult`, shaped
        ``shape + (len(seeds),)`` — the full per-seed detail.
    """

    shape: tuple[int, ...]
    seeds: tuple[int, ...]
    efficiency: np.ndarray
    ci95: np.ndarray
    breakdown: dict[str, np.ndarray]
    results: np.ndarray

    @property
    def n_cells(self) -> int:
        """Number of grid cells."""
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    def map(self, fn: Callable[[SimulationResult], float]) -> np.ndarray:
        """Apply ``fn`` to every result: a float array ``shape + (seeds,)``."""
        out = np.empty(self.results.shape, dtype=np.float64)
        flat_out, flat_res = out.reshape(-1), self.results.reshape(-1)
        for i, res in enumerate(flat_res):
            flat_out[i] = fn(res)
        return out

    def mean_of(self, fn: Callable[[SimulationResult], float]) -> np.ndarray:
        """Per-cell mean of ``fn`` over the seed axis (shaped ``shape``)."""
        return self.map(fn).mean(axis=-1)


def simulate_grid(
    configs: Any,
    seeds: Sequence[int] = (0,),
    *,
    engine: str | None = "fast",
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    timings: list[ChunkTiming] | None = None,
) -> GridResult:
    """Simulate a whole config grid in one vectorized pass.

    ``configs`` is a :class:`SimConfig` or an arbitrarily nested
    rectangular sequence of them; each cell is replicated once per seed
    in ``seeds`` (``replace(config, seed=s)``), and all (cell, seed)
    rows go through one :func:`~.pool.run_simulations` fan-out.  Any
    ``seed`` already on a grid config is overwritten — the seed axis is
    the grid's, not the cell's.

    ``engine`` overrides every config's engine (default ``"fast"``:
    the vectorized path is the point; pass ``None`` to keep per-config
    choices, or ``"des"`` to force the oracle).  ``jobs``/``cache``
    compose with the pool runtime as usual.  ``chunk_size`` defaults to
    an even split of the whole grid across workers so each worker runs
    one big batch instead of many small ones.
    """
    shape, flat = _flatten(configs)
    seeds = tuple(int(s) for s in seeds)
    if not seeds:
        raise ValueError("simulate_grid: need at least one seed")
    if engine is not None:
        flat = [replace(cfg, engine=engine) for cfg in flat]
    rows = [replace(cfg, seed=s) for cfg in flat for s in seeds]
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(rows) / resolve_jobs(jobs)))
    results = run_simulations(
        rows,
        jobs=jobs,
        cache=cache,
        chunk_size=chunk_size,
        progress=progress,
        timings=timings,
    )

    res_arr = np.empty(len(results), dtype=object)
    res_arr[:] = results
    res_arr = res_arr.reshape(shape + (len(seeds),))

    eff = np.fromiter(
        (r.efficiency for r in results), dtype=np.float64, count=len(results)
    ).reshape(shape + (len(seeds),))
    mean = eff.mean(axis=-1)
    if len(seeds) > 1:
        ci = eff.std(axis=-1, ddof=1) * (_t95(len(seeds) - 1) / math.sqrt(len(seeds)))
    else:
        ci = np.full(shape, np.inf)
    components = results[0].breakdown.component_names()
    breakdown = {
        name: np.fromiter(
            (getattr(r.breakdown, name) for r in results),
            dtype=np.float64,
            count=len(results),
        )
        .reshape(shape + (len(seeds),))
        .mean(axis=-1)
        for name in components
    }
    return GridResult(
        shape=shape,
        seeds=seeds,
        efficiency=mean,
        ci95=np.asarray(ci, dtype=np.float64),
        breakdown=breakdown,
        results=res_arr,
    )
