"""Monte-Carlo batch execution and paired statistical comparison.

One simulation run is one sample; claims like "NDP beats host multilevel"
deserve confidence intervals.  This module provides

* :func:`mc_run` — run a scenario over many seeds, returning mean
  efficiency with a Student-t confidence interval, and
* :func:`compare_strategies` — a *paired* comparison under common random
  numbers: both configurations see the identical failure sequence per
  seed, so the difference estimate cancels the dominant noise source and
  tight conclusions need far fewer runs (classic variance reduction).

Both fan their per-seed runs out over the :mod:`repro.simulation.pool`
runtime (``jobs`` workers, optional on-disk result cache).  Each seed's
RNG streams derive from that seed alone via
:class:`~repro.simulation.rng.StreamFactory`, so samples are bit-identical
at every worker count.

Used by the validation machinery and the simulation-study example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Sequence

import numpy as np

from .pool import ChunkTiming, ResultCache, run_simulations
from .simulator import SimConfig, SimulationResult

__all__ = ["MCResult", "PairedComparison", "mc_run", "compare_strategies"]

#: two-sided 95% Student-t critical values by degrees of freedom.  Sparse
#: above 20: :func:`_t95` uses the nearest lower entry inside the table's
#: gaps and the normal 1.96 beyond dof 30.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 25: 2.060, 30: 2.042,
}

_T95_MAX_DOF = max(_T95)


def _t95(dof: int) -> float:
    """Two-sided 95% Student-t critical value for ``dof`` degrees of freedom.

    Exact table entries where available; inside the table's gaps (e.g.
    dof 21..24) the nearest *lower* tabulated value (conservative: its
    critical value is larger); the normal-limit 1.96 beyond dof 30.
    """
    if dof <= 0:
        return float("inf")
    if dof in _T95:
        return _T95[dof]
    if dof > _T95_MAX_DOF:
        return 1.96
    return _T95[max(k for k in _T95 if k <= dof)]


@dataclass(frozen=True)
class MCResult:
    """Summary of a Monte-Carlo batch.

    Attributes
    ----------
    mean, ci95:
        Mean efficiency and the 95% confidence half-width.
    samples:
        Per-seed efficiencies, in seed order.
    results:
        Full per-seed :class:`SimulationResult` objects.
    """

    mean: float
    ci95: float
    samples: tuple[float, ...]
    results: tuple[SimulationResult, ...]

    @property
    def n(self) -> int:
        """Number of runs."""
        return len(self.samples)


def mc_run(
    config: SimConfig,
    seeds: Sequence[int],
    *,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    timings: list[ChunkTiming] | None = None,
    engine: str | None = None,
) -> MCResult:
    """Run ``config`` once per seed; summarize efficiency.

    ``seeds`` must be non-empty (an empty sequence raises ``ValueError``
    — there is nothing to estimate).  With exactly **one** seed the mean
    is that single sample and ``ci95`` is ``inf``: a single draw carries
    no variance information, and an infinite half-width is the honest
    statement of that (any finite value would fabricate certainty).

    ``jobs`` fans the seeds out over a worker pool (``None`` = one worker
    per core); samples are bit-identical to the serial path at any worker
    count, including both edge behaviors above.  ``cache`` is an optional
    :class:`~repro.simulation.pool.ResultCache` consulted per seed;
    ``progress``/``timings`` expose the pool's observability hooks.

    ``engine`` overrides ``config.engine`` for the whole batch
    (``"fast"`` runs each worker chunk as one vectorized
    :mod:`~repro.simulation.fastpath` batch; ``"des"`` forces the
    event-level oracle; ``None`` keeps whatever the config carries).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if engine is not None:
        config = replace(config, engine=engine)
    results = run_simulations(
        [replace(config, seed=s) for s in seeds],
        jobs=jobs,
        cache=cache,
        chunk_size=chunk_size,
        progress=progress,
        timings=timings,
    )
    samples = tuple(r.efficiency for r in results)
    arr = np.asarray(samples)
    mean = float(arr.mean())
    if len(samples) > 1:
        ci = _t95(len(samples) - 1) * float(arr.std(ddof=1)) / math.sqrt(len(samples))
    else:
        ci = float("inf")
    return MCResult(mean=mean, ci95=ci, samples=samples, results=results)


@dataclass(frozen=True)
class PairedComparison:
    """Paired (common-random-numbers) comparison of two scenarios.

    Attributes
    ----------
    mean_a, mean_b:
        Mean efficiencies.
    mean_diff, ci95_diff:
        Mean of the per-seed difference ``b - a`` and its 95% half-width.
    significant:
        Whether the 95% CI of the difference excludes zero.
    """

    mean_a: float
    mean_b: float
    mean_diff: float
    ci95_diff: float

    @property
    def significant(self) -> bool:
        """95%-level significance of the difference."""
        return abs(self.mean_diff) > self.ci95_diff


def compare_strategies(
    config_a: SimConfig,
    config_b: SimConfig,
    seeds: Sequence[int],
    transform: Callable[[SimulationResult], float] | None = None,
    *,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    progress: Callable[[int, int], None] | None = None,
    engine: str | None = None,
) -> PairedComparison:
    """Paired comparison: same seed => same failure sequence for both.

    ``transform`` selects the metric (default: efficiency).  Reports the
    mean per-seed difference ``metric(b) - metric(a)`` with its CI — under
    common random numbers the shared failure-timing noise cancels, so the
    difference CI is never worse (and often much tighter) than the
    unpaired difference's.

    ``jobs``/``cache``/``progress`` are forwarded to the batch pool; the
    2N runs (both configs, every seed) execute in one fan-out and the
    per-seed pairing is reassembled afterwards, bit-identical to the
    serial loop.  ``engine`` overrides both configs' engine choice (same
    semantics as :func:`mc_run`); pairing is preserved because the fast
    engine draws from the identical named RNG streams as the DES.
    """
    if len(seeds) < 2:
        raise ValueError("a paired comparison needs at least 2 seeds")
    if engine is not None:
        config_a = replace(config_a, engine=engine)
        config_b = replace(config_b, engine=engine)
    metric = transform or (lambda r: r.efficiency)
    configs = [replace(cfg, seed=s) for s in seeds for cfg in (config_a, config_b)]
    results = run_simulations(configs, jobs=jobs, cache=cache, progress=progress)
    a_vals = [metric(r) for r in results[0::2]]
    b_vals = [metric(r) for r in results[1::2]]
    d = np.asarray(b_vals) - np.asarray(a_vals)
    ci = _t95(len(d) - 1) * float(d.std(ddof=1)) / math.sqrt(len(d))
    return PairedComparison(
        mean_a=float(np.mean(a_vals)),
        mean_b=float(np.mean(b_vals)),
        mean_diff=float(d.mean()),
        ci95_diff=ci,
    )
