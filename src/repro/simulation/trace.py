"""Event-timeline recording and ASCII rendering (regenerates Figure 3).

The paper's Figure 3 shows the operational timeline of two-level
checkpointing with and without NDP across three lanes: HOST (compute +
checkpoint writes), NVM (the NDP's compress/drain activity) and I/O (the
global-I/O write in flight).  :class:`TimelineRecorder` captures the same
lanes from a simulation run and :func:`render_ascii` draws them, giving a
qualitative reproduction of the figure from actual simulated events.

Exported records use the repo-wide span schema
(:data:`repro.obs.trace.SPAN_FIELDS`), so simulator timelines and live
runtime traces feed the same tooling; :func:`records_to_spans` restores a
recorder from exported records (``spans_to_records`` round-trips).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.trace import SPAN_FIELDS, validate_record

__all__ = [
    "Span",
    "TimelineRecorder",
    "render_ascii",
    "spans_to_records",
    "records_to_spans",
    "write_csv",
]


@dataclass(frozen=True)
class Span:
    """One activity interval on one lane.

    ``label`` is a short tag shown in the rendering (e.g. a checkpoint
    letter); ``kind`` is the activity class (``compute``, ``ckpt-local``,
    ``ckpt-io``, ``drain``, ``restore``, ``rerun``, ``idle``).
    """

    lane: str
    start: float
    end: float
    kind: str
    label: str = ""

    @property
    def duration(self) -> float:
        """Span length in simulated seconds."""
        return self.end - self.start


@dataclass
class TimelineRecorder:
    """Collects :class:`Span` records emitted by the simulator.

    Recording is optional and cheap; the simulator only emits spans when a
    recorder is attached.  ``horizon`` truncates recording to an initial
    window so long runs don't accumulate unbounded traces.
    """

    horizon: float = float("inf")
    spans: list[Span] = field(default_factory=list)

    def emit(self, lane: str, start: float, end: float, kind: str, label: str = "") -> None:
        """Record one interval (clipped to the horizon; empty spans dropped)."""
        if start >= self.horizon or end <= start:
            return
        self.spans.append(Span(lane, start, min(end, self.horizon), kind, label))

    def lanes(self) -> list[str]:
        """Lane names in first-appearance order."""
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.lane, None)
        return list(seen)


def spans_to_records(recorder: TimelineRecorder) -> list[dict]:
    """Spans as plain dicts in :data:`SPAN_FIELDS` order.

    Every record validates against the shared span schema, so the export
    is directly consumable by ``tools/check_trace.py`` and the rest of
    the ``repro.obs`` tooling.
    """
    return [{name: getattr(s, name) for name in SPAN_FIELDS} for s in recorder.spans]


def records_to_spans(records) -> TimelineRecorder:
    """Rebuild a recorder from exported records (inverse of export).

    Accepts any iterable of schema-conformant dicts — the output of
    :func:`spans_to_records`, or a runtime trace loaded via
    :func:`repro.obs.trace.iter_file` (extra fields like ``attrs`` and
    ``pid`` are ignored).  ``records_to_spans(spans_to_records(r))``
    reproduces ``r.spans`` exactly.
    """
    recorder = TimelineRecorder()
    for rec in records:
        validate_record(rec)
        recorder.spans.append(
            Span(rec["lane"], rec["start"], rec["end"], rec["kind"], rec["label"])
        )
    return recorder


def write_csv(recorder: TimelineRecorder, path) -> int:
    """Write the timeline as CSV; returns the row count.

    The header is exactly :data:`SPAN_FIELDS`, in schema order — the
    column layout is deterministic and shared with the JSONL exports.
    The CSV round-trips into any plotting tool for a publication-quality
    Figure 3 (the ASCII renderer is for terminals).
    """
    import csv
    from pathlib import Path

    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(SPAN_FIELDS)
        for s in recorder.spans:
            writer.writerow([s.lane, f"{s.start:.6f}", f"{s.end:.6f}", s.kind, s.label])
    return len(recorder.spans)


_GLYPHS = {
    "compute": "=",
    "ckpt-local": "L",
    "ckpt-io": "W",
    "drain": "d",
    "compress": "c",
    "restore": "R",
    "rerun": "r",
    "idle": " ",
    "stall": "!",
}


def render_ascii(recorder: TimelineRecorder, width: int = 100, t_end: float | None = None) -> str:
    """Render the recorded lanes as a fixed-width ASCII chart.

    Each lane becomes one row of ``width`` characters; every character
    cell shows the activity occupying the majority of that time slice
    (``=`` compute, ``L`` local checkpoint write, ``W`` blocking I/O
    write, ``d`` NDP drain, ``R`` restore, ``r`` rerun).  A scale line and
    legend are appended.
    """
    spans = recorder.spans
    if not spans:
        return "(empty timeline)"
    end = t_end if t_end is not None else max(s.end for s in spans)
    start = 0.0
    if end <= start:
        raise ValueError("timeline end must exceed 0")
    cell = (end - start) / width

    rows: list[str] = []
    for lane in recorder.lanes():
        lane_spans = [s for s in spans if s.lane == lane]
        cells = []
        for i in range(width):
            lo, hi = start + i * cell, start + (i + 1) * cell
            # Majority activity within the cell.
            best_kind, best_overlap = "idle", 0.0
            for s in lane_spans:
                ov = min(s.end, hi) - max(s.start, lo)
                if ov > best_overlap:
                    best_overlap, best_kind = ov, s.kind
            cells.append(_GLYPHS.get(best_kind, "?"))
        rows.append(f"{lane:>6s} |{''.join(cells)}|")

    pad = max(width - 12, 1)
    scale = f"{'':>6s}  0{'':{pad}}t={end:,.0f}s"
    legend = (
        "legend: = compute   L write-ckpt-to-NVM   W host-write-to-I/O   "
        "d NDP-drain-to-I/O   R restore   r rerun-lost-work"
    )
    return "\n".join(rows + [scale, legend])
