"""Parallel batch-execution runtime for Monte-Carlo simulation sweeps.

The validation machinery runs the discrete-event simulator over many seeds
and many configurations; a 200-MTTI x many-seed sweep is embarrassingly
parallel but was historically executed in a serial Python loop.  This
module is the shared engine underneath :func:`repro.simulation.mc_run`,
:func:`repro.simulation.compare_strategies` and the validation/scorecard
experiments:

* :func:`run_simulations` — fan a sequence of :class:`SimConfig` out over
  a ``multiprocessing`` worker pool with chunked scheduling.  Every run
  derives its RNG streams from its own config seed via
  :class:`~repro.simulation.rng.StreamFactory`, so results are
  **bit-identical to the serial path at any worker count** — the pool only
  changes *where* a seed executes, never *what* it draws.
* :class:`ResultCache` — a keyed on-disk cache of
  :class:`~repro.simulation.stats.SimulationResult` summaries
  (config-hash -> JSON), so repeated figure/experiment runs skip seeds
  that already completed.
* :func:`parallel_map` — a thread/process map for non-simulation batch
  work (e.g. scorecard claim evaluation, where the tasks close over
  unpicklable state).
* lightweight observability: per-chunk :class:`ChunkTiming` records and a
  ``progress(done, total)`` callback.

Determinism contract: for any ``configs`` sequence,
``run_simulations(configs, jobs=k)`` returns the same tuple (sample for
sample, field for field) for every ``k`` — results are reassembled in
submission order regardless of completion order.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import math
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from ..core.breakdown import OverheadBreakdown
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .simulator import SimConfig, simulate
from .stats import SimulationResult

__all__ = [
    "ChunkTiming",
    "ResultCache",
    "chunk_indices",
    "config_key",
    "max_chunk",
    "parallel_map",
    "resolve_jobs",
    "run_simulations",
    "split_cached",
]

#: Bump to invalidate every cached result (simulator semantics change).
#: 2: ``SimConfig`` grew the ``engine`` field (DES vs vectorized fastpath);
#: the field lands in the hash automatically, but pre-engine entries were
#: keyed without it and must not be served for either engine.
#: 3: the fast engine became exact (per-slot NVM ring, partner charging,
#: real ``host_stall_time``); ``engine="fast"`` results recorded under
#: schema 2 came from the approximate closed form and must not be served.
CACHE_SCHEMA = 3

#: Baseline upper bound on seeds per chunk: small enough that progress
#: callbacks stay responsive, large enough to amortize pickling and IPC.
#: For large batches the effective cap scales up (see :func:`max_chunk`)
#: so a service-fused 10k-config batch is not shattered into hundreds of
#: tiny IPC chunks.
_CHUNK_BASE = 16

#: Environment override for the chunk cap (``REPRO_CHUNK=<n>``).
_CHUNK_ENV = "REPRO_CHUNK"


def max_chunk(total: int, jobs: int) -> int:
    """The chunk-size cap for a batch of ``total`` runs on ``jobs`` workers.

    ``REPRO_CHUNK`` overrides it outright.  Otherwise the cap is the
    baseline 16 for interactive-scale sweeps but grows with the batch so
    one batch never splits into more than ~16 chunks per worker: huge
    service-fused batches keep IPC chunks proportionally big (and each
    chunk's fast-engine configs run as **one** ``simulate_batch`` call,
    so bigger chunks mean bigger fused passes).  Chunking never affects
    results — only where each config executes.
    """
    env = os.environ.get(_CHUNK_ENV)
    if env:
        try:
            cap = int(env)
        except ValueError:
            raise ValueError(f"{_CHUNK_ENV} must be an integer: {env!r}") from None
        if cap < 1:
            raise ValueError(f"{_CHUNK_ENV} must be >= 1: {cap}")
        return cap
    return max(_CHUNK_BASE, math.ceil(total / (16 * max(1, jobs))))

# Batch-runtime counters: chunk/run volume plus result-cache traffic, so
# a sweep's parallel efficiency and cache hit rate show up in
# ``repro metrics`` snapshots without extra plumbing.
_CHUNKS = obs_metrics.REGISTRY.counter(
    "pool_chunks_total", "simulation chunks executed by the batch pool"
)
_RUNS = obs_metrics.REGISTRY.counter(
    "pool_runs_total", "simulations executed (cache misses) by the batch pool"
)
_CACHE_HITS = obs_metrics.REGISTRY.counter(
    "pool_cache_hits_total", "simulations served from the on-disk result cache"
)


# -- worker sizing and chunking -------------------------------------------------


def resolve_jobs(jobs: int | None) -> int:
    """Number of workers: ``None`` means one per available core.

    Uses the scheduler affinity mask when the platform exposes it (a
    cgroup-limited container may have fewer usable cores than
    ``os.cpu_count()`` reports).
    """
    if jobs is None:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux
            return max(1, os.cpu_count() or 1)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or None for auto): {jobs}")
    return jobs


def chunk_indices(total: int, jobs: int, chunk_size: int | None = None) -> list[range]:
    """Split ``range(total)`` into contiguous chunks for the pool.

    The default size aims at ~4 chunks per worker (load balancing against
    per-chunk overhead), capped by :func:`max_chunk` so progress reporting
    stays fine-grained on small sweeps while huge batches keep their
    chunks proportionally big.
    """
    if total < 0:
        raise ValueError("total must be >= 0")
    if total == 0:
        return []
    if chunk_size is None:
        chunk_size = max(
            1, min(max_chunk(total, jobs), math.ceil(total / (4 * max(1, jobs))))
        )
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1: {chunk_size}")
    return [range(lo, min(lo + chunk_size, total)) for lo in range(0, total, chunk_size)]


# -- config hashing and the on-disk result cache --------------------------------


def _canonical(obj: object) -> object:
    """A JSON-able canonical form of nested (frozen) dataclasses.

    Floats go through ``repr`` so the key distinguishes every distinct
    double (including ``inf``) and never depends on print precision.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        body["__type__"] = type(obj).__name__
        return body
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for cache keying")


def config_key(config: SimConfig) -> str:
    """Stable hash of everything that determines a simulation's outcome.

    The ``trace`` recorder is excluded (it observes the run, it does not
    alter it); the schema version is included so simulator changes
    invalidate stale cache entries wholesale.
    """
    body = {
        f.name: _canonical(getattr(config, f.name))
        for f in dataclasses.fields(config)
        if f.name != "trace"
    }
    body["__schema__"] = CACHE_SCHEMA
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _result_to_dict(result: SimulationResult) -> dict:
    out = dataclasses.asdict(result)
    out["breakdown"] = dataclasses.asdict(result.breakdown)
    return out


def _result_from_dict(data: dict) -> SimulationResult:
    data = dict(data)
    data["breakdown"] = OverheadBreakdown(**data["breakdown"])
    return SimulationResult(**data)


class ResultCache:
    """Keyed on-disk store of :class:`SimulationResult` summaries.

    One JSON file per (config-hash) key, sharded by the first two hex
    digits.  Entries are only ever valid for the exact config hash, which
    covers the full :class:`SimConfig` (including seed) plus the cache
    schema version — changing any scenario knob, the seed, or the
    simulator semantics (schema bump) misses the cache by construction.

    Corrupt or unreadable entries are treated as misses, never errors.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    @classmethod
    def default(cls) -> "ResultCache":
        """The conventional cache location (override via ``REPRO_CACHE_DIR``)."""
        env = os.environ.get("REPRO_CACHE_DIR")
        if env:
            return cls(env)
        return cls(Path.home() / ".cache" / "repro" / "simcache")

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        path = self._path(key)
        try:
            data = json.loads(path.read_text())
            result = _result_from_dict(data)
        except (OSError, ValueError, TypeError, KeyError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    #: Monotonic per-process tmp-name disambiguator (see :meth:`put`).
    _tmp_seq = itertools.count()

    def put(self, key: str, result: SimulationResult) -> None:
        """Store ``result`` under ``key`` (atomic rename, last writer wins).

        Safe under concurrent writers in *any* mix of processes and
        threads — prefork service workers share one cache directory, and
        each worker's batcher dispatches from a thread pool.  The write
        goes to a tmp file whose name is unique per (pid, thread,
        sequence), then lands via ``os.replace`` — atomic on POSIX, so a
        reader sees either the old complete entry or the new complete
        entry, never a partial write.  Concurrent identical puts both
        succeed; last writer wins, which is indistinguishable from one
        writer because equal keys imply equal bytes (determinism
        contract).
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(
            f".tmp.{os.getpid()}.{threading.get_ident()}.{next(self._tmp_seq)}"
        )
        tmp.write_text(json.dumps(_result_to_dict(result)))
        tmp.replace(path)

    def get_many(self, keys: Iterable[str]) -> dict[str, SimulationResult]:
        """One batched sweep: ``{key: result}`` for every key that hits.

        Duplicate keys (a zipfian service batch is mostly duplicates)
        cost **one** file open each — the hit/miss counters count unique
        keys, matching the I/O actually performed.  Missing keys are
        simply absent from the returned dict.
        """
        out: dict[str, SimulationResult] = {}
        for key in dict.fromkeys(keys):  # preserves order, dedups
            hit = self.get(key)
            if hit is not None:
                out[key] = hit
        return out

    def put_many(self, items: Iterable[tuple[str, SimulationResult]]) -> None:
        """Store a batch of ``(key, result)`` pairs, one write per unique key.

        Later duplicates win (irrelevant in practice: equal keys imply
        equal results by the determinism contract).
        """
        unique: dict[str, SimulationResult] = dict(items)
        for key, result in unique.items():
            self.put(key, result)


# -- observability ---------------------------------------------------------------


@dataclass(frozen=True)
class ChunkTiming:
    """Wall-clock record for one executed chunk of simulations."""

    chunk: int
    size: int
    seconds: float
    worker_pid: int

    @property
    def per_run(self) -> float:
        """Mean seconds per simulation in this chunk."""
        return self.seconds / max(1, self.size)


# -- the pool itself -------------------------------------------------------------


def _simulate_chunk(
    chunk: list[tuple[int, SimConfig]],
    tctx: tuple[str, str] | None = None,
) -> tuple[list[tuple[int, SimulationResult]], float, int]:
    """Worker entry point: run one chunk, report wall time and pid.

    Fast-engine configs in the chunk execute as **one** vectorized
    :func:`~repro.simulation.fastpath.simulate_batch` call — that is where
    the batch engine's speedup comes from — while DES configs run through
    the per-config :func:`simulate` loop.  Results are re-keyed by their
    original indices, so the split is invisible to the caller.

    ``tctx`` is an optional ``(trace_id, chunk_ctx_id)`` request-tree
    hand-off: the chunk's pre-allocated context id is installed as the
    ambient trace context so spans emitted *inside* the worker (the
    fastpath's per-group records) parent under the chunk node the parent
    process will emit from :func:`run_simulations`.
    """
    if tctx is not None and obs_trace.enabled():
        with obs_trace.use_context(obs_trace.TraceContext(tctx[0], tctx[1])):
            return _simulate_chunk(chunk, None)
    t0 = time.perf_counter()
    fast = [(i, cfg) for i, cfg in chunk if cfg.engine == "fast"]
    slow = [(i, cfg) for i, cfg in chunk if cfg.engine != "fast"]
    out = [(i, simulate(cfg)) for i, cfg in slow]
    if fast:
        from .fastpath import simulate_batch

        out.extend(zip((i for i, _ in fast), simulate_batch([c for _, c in fast])))
    out.sort(key=lambda pair: pair[0])
    return out, time.perf_counter() - t0, os.getpid()


def _chunk_task(
    payload: tuple[list[tuple[int, SimConfig]], tuple[str, str] | None],
) -> tuple[list[tuple[int, SimulationResult]], float, int, tuple[str, str] | None]:
    """Picklable single-argument wrapper for ``imap_unordered``: runs the
    chunk under its trace context and echoes the context back so the
    parent can pin the chunk span's id under unordered completion."""
    chunk, tctx = payload
    ran, seconds, pid = _simulate_chunk(chunk, tctx)
    return ran, seconds, pid, tctx


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork when the platform offers it (cheap, inherits imports)."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - fork-less platforms
        return multiprocessing.get_context("spawn")


def split_cached(
    configs: Sequence[SimConfig], cache: ResultCache | None
) -> tuple[
    list[SimulationResult | None],
    list[tuple[int, SimConfig]],
    list[str | None],
]:
    """Slice a batch against the result cache *before* engine dispatch.

    Returns ``(results, pending, keys)``: a full-width result list with
    every cache hit filled in (misses stay ``None``), the ``(index,
    config)`` pairs that still need an engine, and each config's cache
    key (``None`` for traced configs, which are never cached, and for
    every entry when ``cache`` is ``None``).  One batched
    :meth:`ResultCache.get_many` sweep performs all the I/O, so
    duplicate configs cost one file open each.  Both the pool and the
    service batcher use this to keep warm configs out of fused
    ``simulate_batch`` passes — miss-only slicing never changes results,
    only which rows an engine actually advances.
    """
    results: list[SimulationResult | None] = [None] * len(configs)
    keys: list[str | None] = [None] * len(configs)
    if cache is None:
        return results, list(enumerate(configs)), keys
    for i, cfg in enumerate(configs):
        if cfg.trace is None:
            keys[i] = config_key(cfg)
    hits = cache.get_many(k for k in keys if k is not None)
    pending: list[tuple[int, SimConfig]] = []
    for i, cfg in enumerate(configs):
        hit = hits.get(keys[i]) if keys[i] is not None else None
        if hit is not None:
            results[i] = hit
        else:
            pending.append((i, cfg))
    return results, pending, keys


def run_simulations(
    configs: Sequence[SimConfig],
    *,
    jobs: int | None = 1,
    cache: ResultCache | None = None,
    chunk_size: int | None = None,
    progress: Callable[[int, int], None] | None = None,
    timings: list[ChunkTiming] | None = None,
) -> tuple[SimulationResult, ...]:
    """Run every config, in order, over a worker pool.

    Parameters
    ----------
    jobs:
        Worker processes; 1 (the default) runs inline with no pool,
        ``None`` uses every available core.  The returned tuple is
        identical for every value — parallelism is an execution detail.
    cache:
        Optional :class:`ResultCache`; completed runs are looked up by
        :func:`config_key` before any worker is spawned and stored as
        they finish.
    chunk_size:
        Seeds per work unit (default: auto, ~4 chunks per worker).
    progress:
        Called as ``progress(done, total)`` after every completed chunk
        and once for the cache-served portion.
    timings:
        Optional list that receives one :class:`ChunkTiming` per executed
        chunk — per-chunk wall time and the worker pid that ran it.

    Configs carrying a ``trace`` recorder are always executed inline (the
    recorder mutates in-process state that cannot cross a process
    boundary) and are never cached (the cache stores summaries only, and
    a cache hit would leave the recorder empty).
    """
    configs = list(configs)
    total = len(configs)
    if total == 0:
        return ()

    # Serve what we can from the cache first (one batched get_many
    # sweep); only the misses go anywhere near an engine.
    results, pending, keys = split_cached(configs, cache)
    if len(pending) < total:
        _CACHE_HITS.inc(total - len(pending))
        if progress is not None:
            progress(total - len(pending), total)

    n_jobs = resolve_jobs(jobs)
    traced = any(cfg.trace is not None for _, cfg in pending)
    chunks = [
        [pending[i] for i in block]
        for block in chunk_indices(len(pending), n_jobs, chunk_size)
    ]
    done = total - len(pending)

    # Request-tree hand-off: pre-allocate each chunk's context id so the
    # workers' fastpath group spans can parent under the chunk node the
    # parent process emits after absorption.
    req_ctx = obs_trace.current_context() if obs_trace.enabled() else None
    chunk_tctx: list[tuple[str, str] | None] = [None] * len(chunks)
    if req_ctx is not None:
        chunk_tctx = [
            (req_ctx.trace_id, obs_trace.new_ctx_id() or "") for _ in chunks
        ]

    def _absorb(
        chunk_no: int,
        ran: list[tuple[int, SimulationResult]],
        seconds: float,
        pid: int,
        tctx: tuple[str, str] | None = None,
    ) -> None:
        nonlocal done
        for i, res in ran:
            results[i] = res
        if cache is not None:
            # One batched store per chunk (keys were hashed in the sweep;
            # traced configs carry no key and are never cached).
            cache.put_many((keys[i], res) for i, res in ran if keys[i] is not None)
        done += len(ran)
        _CHUNKS.inc()
        _RUNS.inc(len(ran))
        if obs_trace.enabled():
            # The chunk was timed inside the worker; emit it as a
            # pre-timed interval ending now on the tracer's clock, pinned
            # to the pre-allocated context id the worker parented under.
            end = time.monotonic()
            obs_trace.emit(
                "pool",
                end - seconds,
                end,
                "chunk",
                label=f"chunk-{chunk_no}",
                attrs={"size": len(ran), "seconds": seconds, "pid": pid},
                ctx=req_ctx,
                ctx_id=tctx[1] if tctx else None,
            )
        if timings is not None:
            timings.append(
                ChunkTiming(chunk=chunk_no, size=len(ran), seconds=seconds, worker_pid=pid)
            )
        if progress is not None:
            progress(done, total)

    if n_jobs == 1 or len(pending) <= 1 or traced:
        for chunk_no, chunk in enumerate(chunks):
            _absorb(chunk_no, *_simulate_chunk(chunk, chunk_tctx[chunk_no]), chunk_tctx[chunk_no])
    else:
        ctx = _pool_context()
        payloads = list(zip(chunks, chunk_tctx))
        with ctx.Pool(processes=min(n_jobs, len(chunks))) as pool:
            # Unordered completion is fine: every item carries its index
            # (and its own trace context, echoed back by the worker).
            for chunk_no, (ran, seconds, pid, tctx) in enumerate(
                pool.imap_unordered(_chunk_task, payloads)
            ):
                _absorb(chunk_no, ran, seconds, pid, tctx)

    assert all(r is not None for r in results)
    return tuple(results)  # type: ignore[arg-type]


# -- generic batch map (threads for unpicklable work) ----------------------------


def parallel_map(
    fn: Callable,
    items: Iterable,
    *,
    jobs: int | None = None,
    backend: str = "thread",
) -> list:
    """``[fn(x) for x in items]`` evaluated concurrently, order preserved.

    ``backend="thread"`` suits closures and numpy-bound work (the GIL is
    released inside numpy; lambdas need not pickle); ``"process"`` suits
    picklable CPU-bound functions; ``"serial"`` is the plain loop.
    """
    if backend not in ("thread", "process", "serial"):
        raise ValueError(f"unknown backend {backend!r}: thread | process | serial")
    items = list(items)
    n_jobs = min(resolve_jobs(jobs), max(1, len(items)))
    if backend == "serial" or n_jobs == 1 or len(items) <= 1:
        return [fn(x) for x in items]
    if backend == "thread":
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=n_jobs) as pool:
            return list(pool.map(fn, items))
    with _pool_context().Pool(processes=n_jobs) as pool:
        return pool.map(fn, items)
