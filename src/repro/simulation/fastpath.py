"""Vectorized renewal-segment Monte-Carlo engine for the C/R simulator.

The discrete-event simulator (:mod:`repro.simulation.simulator`) walks one
event at a time through a schedule that is *deterministic between
failures*: compute intervals, local commits and I/O pushes repeat with a
fixed super-period, and the NDP drain advances at a fixed rate whenever it
is unpaused.  This module exploits that renewal structure: instead of
yielding through every event, it advances **a whole batch of trajectories
failure-to-failure in closed form** with numpy, inverting the piecewise-
periodic timeline arithmetically to find each trajectory's position,
accounting charges and checkpoint state at its next failure instant.

Exactness contract (the DES stays the reference oracle):

* ``host``, ``io-only`` and ``local-only`` are reproduced *exactly* —
  every failure lands on the same schedule, consumes the same RNG draws
  and produces the same seven-way accounting, up to float-association
  noise (closed-form ``p0 + k*tau`` versus the DES's sequential adds).
* ``ndp`` uses the drain-rate bound ``min(io_bw/(1-factor),
  compress_rate)`` with the pause-during-local cadence, tracked in the
  *unpaused-time* coordinate, so drain completions and the resulting
  I/O snapshots match the DES cadence.  One documented corner differs:
  when the newest checkpoint is already drained the DES may re-drain an
  older *stale* record (see ``NVMBuffer.newest_undrained``); the fast
  engine treats the drain as idle instead.  Stale drains only arise in
  transients where the drain outruns production and almost never
  complete before being superseded, so the divergence is confined to a
  sub-percent fraction of seeds and vanishes in distribution (the
  matched-seed suite in ``tests/simulation/test_fastpath.py`` pins the
  agreement with paired confidence intervals).

RNG stream compatibility: each trajectory draws from the same named
:class:`~repro.simulation.rng.StreamFactory` streams as the DES
(``"failures"`` for interarrivals, ``"recovery"`` for level draws), in
blocks — numpy ``Generator`` draws of size ``n`` consume the stream
identically to ``n`` scalar draws, so a fast-engine run sees *the same
failure times and the same recovery decisions* as the DES run with the
same seed.

Configurations the closed form cannot represent fall back to the DES per
config (and are counted on the ``fastpath_fallbacks_total`` metric):
timeline tracing, an explicit partner level, and ``ndp`` with an NVM
buffer of fewer than two checkpoint slots (where host writes can stall
behind the drain lock).
"""

from __future__ import annotations

import math
import time
from typing import Sequence

import numpy as np

from ..core.breakdown import OverheadBreakdown
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .rng import StreamFactory
from .simulator import CRSimulation, SimConfig
from .stats import SimulationResult

__all__ = ["simulate_fast", "simulate_batch", "unsupported_reason"]

_COMPONENTS = OverheadBreakdown.component_names()
_I_COMPUTE = _COMPONENTS.index("compute")
_I_CKPT_L = _COMPONENTS.index("checkpoint_local")
_I_CKPT_IO = _COMPONENTS.index("checkpoint_io")
_I_REST_L = _COMPONENTS.index("restore_local")
_I_REST_IO = _COMPONENTS.index("restore_io")
_I_RERUN_L = _COMPONENTS.index("rerun_local")
_I_RERUN_IO = _COMPONENTS.index("rerun_io")

_RUNNING, _RESTORING, _DONE = 0, 1, 2

#: RNG draws buffered per trajectory per refill (a refill consumes the
#: underlying stream exactly like that many scalar draws would).
_BLOCK = 128

#: Hard ceiling on outer iterations (each live trajectory advances at
#: least one failure-or-completion window per iteration; a run needs
#: roughly ``2.2 * failures`` of them).
_MAX_ITER = 2_000_000

_BATCHES = obs_metrics.REGISTRY.counter(
    "fastpath_batches_total", "vectorized trajectory batches executed"
)
_TRAJECTORIES = obs_metrics.REGISTRY.counter(
    "fastpath_trajectories_total", "trajectories simulated by the fast engine"
)
_FALLBACKS = obs_metrics.REGISTRY.counter(
    "fastpath_fallbacks_total", "configs the fast engine handed back to the DES"
)


def unsupported_reason(config: SimConfig) -> str | None:
    """Why ``config`` needs the event-level DES, or ``None`` if fast-capable."""
    if config.trace is not None:
        return "timeline tracing records individual events"
    if config.partner_every:
        return "explicit partner level interleaves extra RNG draws"
    if config.strategy == "ndp" and config.nvm_capacity < 3:
        # With one slot locked by the drain, a 2-slot buffer evicts the
        # newest *completed* checkpoint to admit the next write, so local
        # recovery can land on the old locked record (and a single slot
        # can stall the host outright) — event-level dynamics the closed
        # form does not model.
        return "NVM buffer too small: eviction races the drain lock"
    return None


# -- batched engine ---------------------------------------------------------------


class _FastBatch:
    """One vectorized batch: trajectories sharing strategy/pause/replay mode.

    Every per-scenario quantity (MTTI, work target, commit times, ratio,
    Weibull shape, ...) is a per-trajectory array, so heterogeneous
    configs batch together as long as the *schedule shape* matches.
    """

    def __init__(self, configs: Sequence[SimConfig]):
        cfg0 = configs[0]
        self.strategy = cfg0.strategy
        self.pause = cfg0.pause_ndp_during_local
        self.is_ndp = self.strategy == "ndp"
        self.has_push = self.strategy == "host"
        self.io_write = self.strategy == "io-only"
        self.has_local_level = self.strategy != "io-only"
        self.draws_recovery = self.strategy in ("host", "ndp")
        if cfg0.failure_times is not None:
            # Shared replay schedule (part of the batch group key).
            self.times: np.ndarray | None = np.append(
                np.asarray(cfg0.failure_times, dtype=float), np.inf
            )
        else:
            self.times = None

        B = self.B = len(configs)
        p = [c.params for c in configs]
        self.mtti = np.array([x.mtti for x in p])
        self.W = np.array([c.work for c in configs])
        self.tau = np.array([x.tau for x in p])
        self.delta_l = np.array([x.local_commit_time for x in p])
        self.delta_io = np.array(
            [x.io_commit_time(c.compression) for x, c in zip(p, configs)]
        )
        self.restore_l = np.array(
            [x.local_restore_time + x.restart_overhead for x in p]
        )
        self.restore_io = np.array(
            [x.io_restore_time(c.compression) + x.restart_overhead for x, c in zip(p, configs)]
        )
        self.p_local = np.array([x.p_local_recovery for x in p])
        self.ratio = np.array([c.ratio for c in configs], dtype=np.int64)
        self.shape = np.array([c.failure_shape for c in configs])
        # Drain wall time for one checkpoint while unpaused — the
        # min(io_bw/(1-f), compress_rate) bound expressed as seconds.
        self.t_raw = np.array(
            [
                max(
                    c.compression.compressed_size(x.checkpoint_size) / x.io_bandwidth,
                    x.checkpoint_size / c.compression.compress_rate,
                )
                for x, c in zip(p, configs)
            ]
        )
        # Per-cycle commit charge: io-only commits straight to I/O.
        self.delta_c = self.delta_io if self.io_write else self.delta_l
        self.cycle = self.tau + self.delta_c
        self.commit_cat = _I_CKPT_IO if self.io_write else _I_CKPT_L

        # Trajectory state.
        self.t = np.zeros(B)
        self.pos = np.zeros(B)
        self.R = np.zeros(B)  # positions below this are re-execution
        self.attr_io = np.zeros(B, dtype=bool)  # rerun attributed to I/O level?
        self.c = np.zeros(B, dtype=np.int64)  # checkpoint counter
        self.state = np.zeros(B, dtype=np.int8)
        self.acct = np.zeros((B, len(_COMPONENTS)))
        self.L = np.full(B, -1.0)  # newest completed local ckpt position
        self.S = np.full(B, -1.0)  # newest completed I/O snapshot position
        self.next_fail = np.zeros(B)
        self.decide_mask = np.zeros(B, dtype=bool)

        # Counters mirrored onto SimulationResult.
        self.failures = np.zeros(B, dtype=np.int64)
        self.rec_l = np.zeros(B, dtype=np.int64)
        self.rec_io = np.zeros(B, dtype=np.int64)
        self.io_ck = np.zeros(B, dtype=np.int64)
        self.loc_ck = np.zeros(B, dtype=np.int64)

        # In-flight restore (state == _RESTORING).
        self.rest_rem = np.zeros(B)
        self.rest_cat_io = np.zeros(B, dtype=bool)
        self.rollback = np.zeros(B)

        # NDP drain state: busy flag, unpaused-seconds remaining, the
        # position being drained, and the newest completed-but-undrained
        # checkpoint position carried across windows (-1 = none).
        self.dr_busy = np.zeros(B, dtype=bool)
        self.dr_rho = np.zeros(B)
        self.dr_q = np.full(B, -1.0)
        self.dr_nu = np.full(B, -1.0)

        # Named per-seed streams — identical to the DES's.
        streams = [StreamFactory(c.seed) for c in configs]
        self._rng_fail = [s.get("failures") for s in streams]
        self._rng_rec = [s.get("recovery") for s in streams]
        self._fail_buf = np.zeros((B, _BLOCK))
        self._fail_ptr = np.full(B, _BLOCK, dtype=np.int64)
        self._rec_buf = np.zeros((B, _BLOCK))
        self._rec_ptr = np.full(B, _BLOCK, dtype=np.int64)
        self._times_ptr = np.zeros(B, dtype=np.int64)

    # -- RNG plumbing ------------------------------------------------------------

    def _fail_draws(self, idx: np.ndarray) -> np.ndarray:
        """One failure-interarrival draw per trajectory in ``idx``."""
        need = idx[self._fail_ptr[idx] >= _BLOCK]
        for i in need:
            rng = self._rng_fail[i]
            shape = self.shape[i]
            if shape == 1.0:
                self._fail_buf[i] = rng.exponential(self.mtti[i], size=_BLOCK)
            else:
                scale = self.mtti[i] / math.gamma(1.0 + 1.0 / shape)
                self._fail_buf[i] = rng.weibull(shape, size=_BLOCK) * scale
            self._fail_ptr[i] = 0
        out = self._fail_buf[idx, self._fail_ptr[idx]]
        self._fail_ptr[idx] += 1
        return out

    def _rec_draws(self, idx: np.ndarray) -> np.ndarray:
        """One recovery-level uniform per trajectory in ``idx``."""
        need = idx[self._rec_ptr[idx] >= _BLOCK]
        for i in need:
            self._rec_buf[i] = self._rng_rec[i].random(_BLOCK)
            self._rec_ptr[i] = 0
        out = self._rec_buf[idx, self._rec_ptr[idx]]
        self._rec_ptr[idx] += 1
        return out

    def _set_next_fail(self, idx: np.ndarray) -> None:
        if self.times is not None:
            ptr = np.minimum(self._times_ptr[idx], len(self.times) - 1)
            self.next_fail[idx] = np.maximum(self.t[idx], self.times[ptr])
            self._times_ptr[idx] += 1
        else:
            self.next_fail[idx] = self.t[idx] + self._fail_draws(idx)

    # -- NDP drain arithmetic ------------------------------------------------------

    def _drain_window(
        self,
        idx: np.ndarray,
        D: np.ndarray,
        producing: bool,
        p0: np.ndarray,
        n_wr: np.ndarray,
    ) -> None:
        """Advance the drain through one window of length ``D`` per row.

        ``producing`` windows follow the compute/commit cadence (new
        writes promote an idle drain; with ``pause_ndp_during_local`` the
        drain clock stops during writes); restore windows are pure
        unpaused time with no production.  ``p0`` is the window-start
        position, ``n_wr`` the number of local writes the segment can
        complete (promotion cap).
        """
        busy = self.dr_busy[idx].copy()
        rho = self.dr_rho[idx].copy()
        q = self.dr_q[idx].copy()
        nu = self.dr_nu[idx].copy()
        tau = self.tau[idx]
        cyc = self.cycle[idx]
        t_raw = self.t_raw[idx]
        paused_writes = self.pause and producing

        if paused_writes:
            jD = np.floor(D / cyc)
            U_end = jD * tau + np.minimum(D - jD * cyc, tau)
        else:
            U_end = D.astype(float).copy()
        t_cur = np.zeros(len(idx))
        u_cur = np.zeros(len(idx))
        io_add = np.zeros(len(idx), dtype=np.int64)
        active = np.ones(len(idx), dtype=bool)

        while active.any():
            idle = active & ~busy
            if producing and idle.any():
                nxt = np.floor(t_cur / cyc).astype(np.int64) + 1
                t_w = nxt * cyc
                can = idle & (nxt <= n_wr) & (t_w < D)
                if can.any():
                    busy[can] = True
                    q[can] = p0[can] + nxt[can] * tau[can]
                    rho[can] = t_raw[can]
                    t_cur[can] = t_w[can]
                    u_cur[can] = nxt[can] * tau[can] if paused_writes else t_w[can]
                active &= ~(idle & ~can)
            elif idle.any():
                active &= ~idle
            b = active & busy
            if not b.any():
                break
            u_comp = u_cur + rho
            fits = b & (u_comp < U_end)
            nofit = b & ~fits
            if nofit.any():
                rho[nofit] -= U_end[nofit] - u_cur[nofit]
                active[nofit] = False
            if not fits.any():
                continue
            if paused_writes:
                j = np.floor(u_comp / tau)
                off = u_comp - j * tau
                t_c = np.where(
                    off > 0.0,
                    j * cyc + off,
                    np.maximum((j - 1.0) * cyc + tau, 0.0),
                )
            else:
                t_c = u_comp
            # One drain finishes: record the I/O snapshot and either take
            # the newest completed-but-undrained checkpoint or go idle.
            self.S[idx[fits]] = q[fits]
            io_add[fits] += 1
            if producing:
                k_c = np.minimum(np.floor(t_c / cyc).astype(np.int64), n_wr)
            else:
                k_c = np.zeros(len(idx), dtype=np.int64)
            cand = np.where(k_c >= 1, p0 + k_c * tau, -1.0)
            cand = np.maximum(cand, nu)
            newer = fits & (cand > q)
            q[newer] = cand[newer]
            rho[newer] = t_raw[newer]
            stop = fits & ~newer
            busy[stop] = False
            rho[stop] = 0.0
            nu[fits] = -1.0
            t_cur[fits] = t_c[fits]
            u_cur[fits] = u_comp[fits]

        self.io_ck[idx] += io_add
        self.dr_busy[idx] = busy
        self.dr_rho[idx] = rho
        self.dr_q[idx] = q
        self.dr_nu[idx] = nu

    def _drain_close_window(self, idx: np.ndarray, cand_end: np.ndarray) -> None:
        """End-of-window ν bookkeeping: the newest undrained checkpoint.

        ``cand_end`` is the newest write completed inside the window
        (-1 if none).  An idle drain has, by construction, consumed every
        eligible checkpoint, so ν only survives on busy rows and only
        while it is ahead of the drain position.
        """
        nu = np.maximum(self.dr_nu[idx], cand_end)
        keep = self.dr_busy[idx] & (nu > self.dr_q[idx])
        self.dr_nu[idx] = np.where(keep, nu, -1.0)

    # -- one restore window --------------------------------------------------------

    def _step_restoring(self) -> None:
        idx = np.nonzero(self.state == _RESTORING)[0]
        if idx.size == 0:
            return
        rem = self.rest_rem[idx]
        nf = self.next_fail[idx]
        interrupted = nf < self.t[idx] + rem
        dur = np.where(interrupted, nf - self.t[idx], rem)
        cat = np.where(self.rest_cat_io[idx], _I_REST_IO, _I_REST_L)
        np.add.at(self.acct, (idx, cat), dur)
        if self.is_ndp:
            # The drain runs unpaused during local restores; I/O-path
            # restores already aborted it at decision time (busy=False).
            self._drain_window(
                idx, dur, producing=False, p0=self.pos[idx],
                n_wr=np.zeros(idx.size, dtype=np.int64),
            )
            self._drain_close_window(idx, np.full(idx.size, -1.0))
        self.t[idx] = np.where(interrupted, nf, self.t[idx] + rem)
        comp = idx[~interrupted]
        if comp.size:
            # Mirrors the tail of CRSimulation._recover: the failure
            # position (unchanged through interrupted restores) extends
            # the rerun region, then the rollback lands.
            self.R[comp] = np.maximum(self.R[comp], self.pos[comp])
            self.pos[comp] = self.rollback[comp]
            self.attr_io[comp] = self.rest_cat_io[comp]
            self.rec_io[comp[self.rest_cat_io[comp]]] += 1
            self.rec_l[comp[~self.rest_cat_io[comp]]] += 1
            self.state[comp] = _RUNNING
        self.decide_mask[idx[interrupted]] = True

    # -- one running window --------------------------------------------------------

    def _layout(
        self, dt: np.ndarray, sub: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Invert the running timeline at offset ``dt`` from segment start.

        Returns ``(k, in_write, in_push, off, off_push)``: completed local
        writes, whether the instant lands inside a write / an I/O push,
        the offset into the current cycle and into the current push.
        """
        cyc = self.cycle[sub]
        if not self.has_push:
            jj = np.floor(dt / cyc)
            off = np.maximum(dt - jj * cyc, 0.0)
            k = jj.astype(np.int64)
            zero = np.zeros(len(sub))
            return k, off >= self.tau[sub], np.zeros(len(sub), dtype=bool), off, zero
        r = self.ratio[sub]
        d_io = self.delta_io[sub]
        b = r - self.c[sub] % r  # checkpoints until (and including) first push
        head_cycles = b * cyc
        period = r * cyc + d_io
        lt_head_c = dt < head_cycles
        lt_head = dt < head_cycles + d_io
        dt2 = np.maximum(dt - (head_cycles + d_io), 0.0)
        qper = np.floor(dt2 / period)
        rem = dt2 - qper * period
        in_per_c = rem < r * cyc
        j_head = np.floor(dt / cyc)
        j_rem = np.floor(rem / cyc)
        jj = np.where(
            lt_head_c,
            j_head,
            np.where(lt_head, b, b + qper * r + np.where(in_per_c, j_rem, r)),
        )
        in_push = (~lt_head_c & lt_head) | (~lt_head & ~in_per_c)
        off = np.maximum(
            np.where(lt_head_c, dt - j_head * cyc, rem - j_rem * cyc), 0.0
        )
        off_push = np.maximum(
            np.where(lt_head & ~lt_head_c, dt - head_cycles, rem - r * cyc), 0.0
        )
        in_write = ~in_push & (off >= self.tau[sub])
        return jj.astype(np.int64), in_write, in_push, off, np.where(in_push, off_push, 0.0)

    def _charge_running(
        self,
        sub: np.ndarray,
        compute_adv: np.ndarray,
        commit: np.ndarray,
        push: np.ndarray,
    ) -> None:
        """Charge one running window's compute/rerun/commit/push seconds."""
        p0 = self.pos[sub]
        rerun = np.clip(np.minimum(self.R[sub], p0 + compute_adv) - p0, 0.0, None)
        cat = np.where(self.attr_io[sub], _I_RERUN_IO, _I_RERUN_L)
        np.add.at(self.acct, (sub, cat), rerun)
        self.acct[sub, _I_COMPUTE] += compute_adv - rerun
        self.acct[sub, self.commit_cat] += commit
        if self.has_push:
            self.acct[sub, _I_CKPT_IO] += push

    def _step_running(self) -> None:
        idx = np.nonzero(self.state == _RUNNING)[0]
        if idx.size == 0:
            return
        tau = self.tau[idx]
        d_c = self.delta_c[idx]
        p0 = self.pos[idx].copy()
        w_rem = self.W[idx] - p0
        # Intervals to finish the work; the epsilon guards exact multiples
        # of tau against one-ulp float drift.
        n_int = np.maximum(np.ceil(w_rem / tau - 1e-9).astype(np.int64), 1)
        n_ck = n_int - 1
        c0 = self.c[idx]
        if self.has_push:
            n_push = (c0 + n_ck) // self.ratio[idx] - c0 // self.ratio[idx]
            T_done = w_rem + n_ck * d_c + n_push * self.delta_io[idx]
        else:
            n_push = np.zeros(idx.size, dtype=np.int64)
            T_done = w_rem + n_ck * d_c
        dt_f = self.next_fail[idx] - self.t[idx]
        done = dt_f >= T_done

        dsub = idx[done]
        if dsub.size:
            sel = done
            self._charge_running(
                dsub,
                w_rem[sel],
                n_ck[sel] * d_c[sel],
                n_push[sel] * self.delta_io[idx][sel] if self.has_push else n_push[sel],
            )
            if self.io_write:
                self.io_ck[dsub] += n_ck[sel]
            else:
                self.loc_ck[dsub] += n_ck[sel]
                self.io_ck[dsub] += n_push[sel]
            self.c[dsub] += n_ck[sel]
            if self.is_ndp:
                self._drain_window(
                    dsub, T_done[sel], producing=True, p0=p0[sel], n_wr=n_ck[sel]
                )
            self.t[dsub] += T_done[sel]
            self.pos[dsub] = self.W[dsub]
            self.state[dsub] = _DONE

        fsub = idx[~done]
        if fsub.size:
            sel = ~done
            dt = dt_f[sel]
            k, in_write, in_push, off, off_push = self._layout(dt, fsub)
            tau_f = tau[sel]
            compute_adv = k * tau_f + np.where(
                in_write, tau_f, np.where(in_push, 0.0, np.minimum(off, tau_f))
            )
            commit = k * d_c[sel] + np.where(in_write, off - tau_f, 0.0)
            if self.has_push:
                r_f = self.ratio[fsub]
                c0_f = c0[sel]
                n_push_done = (c0_f + k) // r_f - c0_f // r_f - in_push
                push = n_push_done * self.delta_io[fsub] + off_push
            else:
                n_push_done = np.zeros(fsub.size, dtype=np.int64)
                push = np.zeros(fsub.size)
            self._charge_running(fsub, compute_adv, commit, push)
            p0_f = p0[sel]
            if self.io_write:
                self.io_ck[fsub] += k
                got = k >= 1
                self.S[fsub[got]] = (p0_f + k * tau_f)[got]
            else:
                self.loc_ck[fsub] += k
                got = k >= 1
                self.L[fsub[got]] = (p0_f + k * tau_f)[got]
                if self.has_push:
                    self.io_ck[fsub] += n_push_done
                    pushed = n_push_done >= 1
                    last_mult = (c0_f // r_f + n_push_done) * r_f
                    self.S[fsub[pushed]] = (p0_f + (last_mult - c0_f) * tau_f)[pushed]
            self.c[fsub] += k
            if self.is_ndp:
                self._drain_window(
                    fsub, dt, producing=True, p0=p0_f, n_wr=n_ck[sel]
                )
                self._drain_close_window(
                    fsub, np.where(k >= 1, p0_f + k * tau_f, -1.0)
                )
            self.pos[fsub] = p0_f + compute_adv
            self.t[fsub] = self.next_fail[fsub]
            self.decide_mask[fsub] = True

    # -- recovery decision ---------------------------------------------------------

    def _decide(self, idx: np.ndarray) -> None:
        """Pick each failed trajectory's recovery level (same draws as DES)."""
        self.failures[idx] += 1
        use_local = np.zeros(idx.size, dtype=bool)
        if self.has_local_level:
            has_local = self.L[idx] >= 0.0
            if self.strategy == "local-only":
                use_local = has_local
            else:
                dsub = idx[has_local]
                if dsub.size:
                    u = self._rec_draws(dsub)
                    use_local[has_local] = u < self.p_local[dsub]
        usub = idx[use_local]
        isub = idx[~use_local]
        if usub.size:
            self.rollback[usub] = self.L[usub]
            self.rest_rem[usub] = self.restore_l[usub]
            self.rest_cat_io[usub] = False
        if isub.size:
            # NVM contents are lost at decision time; any in-flight drain
            # aborts (CRSimulation._nvm_lost).
            if self.has_local_level:
                self.L[isub] = -1.0
            if self.is_ndp:
                self.dr_busy[isub] = False
                self.dr_rho[isub] = 0.0
                self.dr_q[isub] = -1.0
                self.dr_nu[isub] = -1.0
            has_s = self.S[isub] >= 0.0
            self.rollback[isub] = np.where(has_s, self.S[isub], 0.0)
            self.rest_rem[isub] = np.where(has_s, self.restore_io[isub], 0.0)
            self.rest_cat_io[isub] = True
        self.state[idx] = _RESTORING
        self._set_next_fail(idx)

    # -- driver --------------------------------------------------------------------

    def run(self) -> list[SimulationResult]:
        self._set_next_fail(np.arange(self.B))
        for _ in range(_MAX_ITER):
            if not (self.state != _DONE).any():
                break
            self.decide_mask[:] = False
            self._step_restoring()
            self._step_running()
            pending = np.nonzero(self.decide_mask)[0]
            if pending.size:
                self._decide(pending)
        else:  # pragma: no cover - pathological configs only
            raise RuntimeError(
                "fastpath did not converge; the scenario makes essentially "
                "no forward progress (use the DES engine to inspect it)"
            )
        totals = self.acct.sum(axis=1)
        out = []
        for i in range(self.B):
            frac = self.acct[i] / totals[i]
            out.append(
                SimulationResult(
                    work=float(self.W[i]),
                    wall_time=float(self.t[i]),
                    efficiency=float(self.W[i] / self.t[i]),
                    breakdown=OverheadBreakdown(**dict(zip(_COMPONENTS, map(float, frac)))),
                    failures=int(self.failures[i]),
                    recoveries_local=int(self.rec_l[i]),
                    recoveries_io=int(self.rec_io[i]),
                    io_checkpoints=int(self.io_ck[i]),
                    local_checkpoints=int(self.loc_ck[i]),
                    host_stall_time=0.0,
                )
            )
        return out


# -- public entry points ----------------------------------------------------------


def _group_key(config: SimConfig) -> tuple:
    return (config.strategy, config.pause_ndp_during_local, config.failure_times)


def simulate_batch(configs: Sequence[SimConfig]) -> list[SimulationResult]:
    """Simulate every config, batching compatible ones into numpy passes.

    Configs the closed form cannot represent (see
    :func:`unsupported_reason`) run on the event-level DES individually;
    everything else is grouped by schedule shape and advanced together.
    Results come back in input order and are bit-for-bit independent of
    the batch composition (each trajectory owns its seed's streams).
    """
    configs = list(configs)
    results: list[SimulationResult | None] = [None] * len(configs)
    groups: dict[tuple, list[int]] = {}
    for i, cfg in enumerate(configs):
        if unsupported_reason(cfg) is not None:
            _FALLBACKS.inc()
            results[i] = CRSimulation(cfg).run()
        else:
            groups.setdefault(_group_key(cfg), []).append(i)
    for members in groups.values():
        t0 = time.perf_counter()
        batch = _FastBatch([configs[i] for i in members])
        for i, res in zip(members, batch.run()):
            results[i] = res
        _BATCHES.inc()
        _TRAJECTORIES.inc(len(members))
        if obs_trace.enabled():
            end = time.monotonic()
            obs_trace.emit(
                "fastpath",
                end - (time.perf_counter() - t0),
                end,
                "batch",
                label=f"{batch.strategy}x{len(members)}",
                attrs={"size": len(members), "strategy": batch.strategy},
            )
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def simulate_fast(config: SimConfig) -> SimulationResult:
    """Run one config on the fast engine (DES fallback if unsupported)."""
    return simulate_batch([config])[0]
