"""Vectorized renewal-segment Monte-Carlo engine for the C/R simulator.

The discrete-event simulator (:mod:`repro.simulation.simulator`) walks one
event at a time through a schedule that is *deterministic between
failures*: compute intervals, local commits, partner copies and I/O pushes
repeat with a fixed super-period, and the NDP drain advances at a fixed
rate whenever it is unpaused.  This module exploits that renewal
structure: instead of yielding through every event, it advances **a whole
batch of trajectories failure-to-failure** with numpy.

Two vectorized paths share the batch state:

* a **closed form** for ``host``, ``io-only`` and ``local-only`` without a
  partner level: the piecewise-periodic timeline is inverted
  arithmetically to find each trajectory's position, accounting charges
  and checkpoint state at its next failure instant.  Dead NVM slots left
  by interrupted writes are tracked with a per-trajectory counter so the
  FIFO eviction of the newest completed checkpoint (the small-buffer
  corner) reproduces the DES at every ``nvm_capacity`` >= 1.
* an **exact segment walker** for ``ndp`` and for any strategy with an
  explicit partner level: the NVM circular buffer is modeled per slot
  (in-flight / completed / drain-locked / on-I/O), mirroring
  :class:`~repro.simulation.storage.NVMBuffer` — admission evicts the
  oldest unlocked slot, the drain always locks the newest undrained
  record (so *stale drains* of older records, and the resulting
  regressing I/O snapshots, happen exactly as in the DES), and a full
  buffer of locked slots stalls the host, charging real
  ``host_stall_time``.  Partner copies consume the ``"recovery"`` stream
  in DES order (the local draw first, the conditional partner draw
  second).  Segments are still advanced for the whole batch at once; the
  walker is vectorized over trajectories, not over events.

Exactness contract (the DES stays the reference oracle): ``host``,
``io-only``, ``local-only`` and every partner-level config are reproduced
*exactly* — every failure lands on the same schedule, consumes the same
RNG draws and produces the same seven-way accounting, up to
float-association noise (closed-form ``p0 + k*tau`` versus the DES's
sequential adds).  ``ndp`` follows the same op-for-op schedule; the only
freedom left is sub-ulp association in the drain-progress arithmetic
(the walker subtracts per segment where the DES subtracts per contiguous
unpaused span), which can flip a comparison only when a failure lands
within one ulp of a drain boundary — the matched-seed suite in
``tests/simulation/test_fastpath.py`` pins >= 80% bit-exact seeds and
paired-CI agreement on the rest.

RNG stream compatibility: each trajectory draws from the same named
:class:`~repro.simulation.rng.StreamFactory` streams as the DES
(``"failures"`` for interarrivals, ``"recovery"`` for level draws), in
blocks — numpy ``Generator`` draws of size ``n`` consume the stream
identically to ``n`` scalar draws, so a fast-engine run sees *the same
failure times and the same recovery decisions* as the DES run with the
same seed.

Cost is proportional to **live** trajectories, not batch width:

* **Active-set compaction** — heterogeneous work targets and MTTIs make
  trajectories finish at very different iteration counts; once the live
  fraction of a batch drops below :data:`COMPACT_THRESHOLD`, finished
  rows are scattered onto an input-order result store and every
  per-trajectory array (parameters, accounting, ring slots, RNG buffers
  and stream cursors) is gathered onto the survivors.  Every array
  operation in the driver is elementwise across rows, so compaction is
  bit-identical by construction — each trajectory owns its named
  streams and its row of state, wherever that row lives.
* **Cross-capacity group fusion** — exact-walker batches share one ring
  slot dimension sized to the *group maximum* ``nvm_capacity``; rows
  with smaller buffers carry inert ``_S_PAD`` slots that admission,
  drain and recovery all ignore, so one walker advances mixed-capacity
  sweeps (fig6–fig9 grids, zipfian service traffic) in a single pass.

The only configuration that still needs the event-level DES is timeline
tracing (``config.trace``), which by definition records individual
events; those fall back per config and are counted on the
``fastpath_fallbacks_total{reason=...}`` metric.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

import numpy as np

from ..core.breakdown import OverheadBreakdown
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .rng import StreamFactory
from .simulator import CRSimulation, SimConfig
from .stats import SimulationResult

__all__ = ["fallback_total", "simulate_fast", "simulate_batch", "unsupported_reason"]

_COMPONENTS = OverheadBreakdown.component_names()
_I_COMPUTE = _COMPONENTS.index("compute")
_I_CKPT_L = _COMPONENTS.index("checkpoint_local")
_I_CKPT_IO = _COMPONENTS.index("checkpoint_io")
_I_REST_L = _COMPONENTS.index("restore_local")
_I_REST_IO = _COMPONENTS.index("restore_io")
_I_RERUN_L = _COMPONENTS.index("rerun_local")
_I_RERUN_IO = _COMPONENTS.index("rerun_io")

_RUNNING, _RESTORING, _DONE = 0, 1, 2

# Restore categories (mirrors CRSimulation._recover's three paths).
_R_LOCAL, _R_PARTNER, _R_IO = 0, 1, 2

# NVM slot states in the exact walker's per-slot ring model.  _S_PAD
# marks the inert columns a smaller-capacity row carries when fused into
# a group padded to the group-max capacity: never admitted into, never
# drained, never a recovery source, and never evictable.
_S_EMPTY, _S_INFLIGHT, _S_COMPLETED, _S_LOCKED, _S_ONIO, _S_PAD = 0, 1, 2, 3, 4, 5

# Walker phases: the host's position inside one checkpoint cycle.
_P_COMPUTE, _P_STALL, _P_WRITE, _P_PARTNER, _P_PUSH = 0, 1, 2, 3, 4

#: RNG draws buffered per trajectory per refill (a refill consumes the
#: underlying stream exactly like that many scalar draws would).
_BLOCK = 128

#: Hard ceiling on outer iterations.  Closed-form batches advance one
#: failure-or-completion window per iteration (roughly ``2.2 * failures``
#: needed); exact-walker batches advance one cycle micro-segment per
#: iteration (a few tens per window).
_MAX_ITER = 2_000_000

#: Compact the active set when the live fraction of a batch drops below
#: this.  0.5 keeps total compaction work geometric (each compaction at
#: least halves the width); 0.0 disables compaction outright (every row
#: rides full-width arrays to the end — the pre-compaction behavior, and
#: what the equivalence tests compare against).
COMPACT_THRESHOLD = 0.5

_BATCHES = obs_metrics.REGISTRY.counter(
    "fastpath_batches_total", "vectorized trajectory batches executed"
)
_TRAJECTORIES = obs_metrics.REGISTRY.counter(
    "fastpath_trajectories_total", "trajectories simulated by the fast engine"
)
_FALLBACKS = obs_metrics.REGISTRY.counter(
    "fastpath_fallbacks_total",
    "configs the fast engine handed back to the DES, by reason",
)
_LIVE_FRACTION = obs_metrics.REGISTRY.histogram(
    "fastpath_live_fraction",
    "live-trajectory fraction of a batch at each compaction point",
    buckets=(0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
)
_OCCUPANCY = obs_metrics.REGISTRY.gauge(
    "fastpath_batch_occupancy",
    "row-iterations / (width x iterations) of the last executed batch",
)

#: Human-readable fallback reasons -> the short ``reason`` label value.
_FALLBACK_LABELS = {"timeline tracing records individual events": "trace"}


def fallback_total() -> float:
    """Total DES fallbacks summed across every ``reason`` label."""
    return float(sum(value for _, value in _FALLBACKS.samples()))


def unsupported_reason(config: SimConfig) -> str | None:
    """Why ``config`` needs the event-level DES, or ``None`` if fast-capable."""
    if config.trace is not None:
        return "timeline tracing records individual events"
    return None


def _needs_exact(config: SimConfig) -> bool:
    """Whether ``config`` takes the per-slot segment walker.

    ``ndp`` always does (drain locks, stalls and stale drains live in the
    ring); a partner level does for every strategy that has one (the
    partner copy breaks the uniform cycle the closed form inverts).
    """
    return config.strategy == "ndp" or (
        config.partner_every > 0 and config.strategy != "io-only"
    )


#: Per-trajectory outputs scattered into the input-order result store
#: when a row retires from the active set.
_FIN_FIELDS = (
    "t", "acct", "failures", "rec_l", "rec_p", "rec_io",
    "io_ck", "loc_ck", "partner_ck", "stall",
)

#: Every per-trajectory array gathered onto the survivors at a
#: compaction (exact-walker batches add their ring/phase arrays).
_ROW_ARRAYS = (
    "mtti", "W", "tau", "delta_l", "delta_io", "delta_c", "cycle",
    "restore_l", "restore_io", "p_local", "ratio", "shape", "cap_arr",
    "t_raw", "partner_every", "delta_partner", "p_partner",
    "t", "pos", "R", "attr_io", "c", "state", "acct", "L", "S",
    "partner_snap", "next_fail", "decide_mask", "n_dead",
    "failures", "rec_l", "rec_p", "rec_io", "io_ck", "loc_ck",
    "partner_ck", "stall", "rest_rem", "rest_cat", "rollback",
    "dr_busy", "dr_rho", "dr_slot",
    "_fail_buf", "_fail_ptr", "_rec_buf", "_rec_ptr", "_times_ptr",
    "orig",
)


# -- batched engine ---------------------------------------------------------------


class _FastBatch:
    """One vectorized batch: trajectories sharing strategy/pause/replay mode.

    Every per-scenario quantity (MTTI, work target, commit times, ratio,
    Weibull shape, NVM capacity, ...) is a per-trajectory array, so
    heterogeneous configs batch together as long as the *schedule shape*
    matches.  Exact-walker batches pad their ring arrays to the group's
    maximum capacity (inert ``_S_PAD`` slots), so mixed capacities fuse
    into one group.

    ``idx`` selects the batch's rows out of ``configs`` — the group
    index array built once by :func:`simulate_batch`; the constructor
    reads straight through it (one pass, no intermediate per-group
    config lists).  As trajectories finish, :meth:`_retire` scatters
    their results back to input order and compacts every per-row array
    onto the survivors.
    """

    def __init__(self, configs: Sequence[SimConfig], idx: np.ndarray | None = None):
        if idx is None:
            idx = np.arange(len(configs), dtype=np.intp)
        cfg0 = configs[int(idx[0])]
        self.strategy = cfg0.strategy
        self.pause = cfg0.pause_ndp_during_local
        self.is_ndp = self.strategy == "ndp"
        self.has_push = self.strategy == "host"
        self.io_write = self.strategy == "io-only"
        self.has_local_level = self.strategy != "io-only"
        self.exact = _needs_exact(cfg0)
        if cfg0.failure_times is not None:
            # Shared replay schedule (part of the batch group key).
            self.times: np.ndarray | None = np.append(
                np.asarray(cfg0.failure_times, dtype=float), np.inf
            )
        else:
            self.times = None

        B = self.B = int(idx.size)
        self.mtti = np.empty(B)
        self.W = np.empty(B)
        self.tau = np.empty(B)
        self.delta_l = np.empty(B)
        self.delta_io = np.empty(B)
        self.restore_l = np.empty(B)
        self.restore_io = np.empty(B)
        self.p_local = np.empty(B)
        self.ratio = np.empty(B, dtype=np.int64)
        self.shape = np.empty(B)
        self.cap_arr = np.empty(B, dtype=np.int64)
        # Drain wall time for one checkpoint while unpaused — the
        # min(io_bw/(1-f), compress_rate) bound expressed as seconds.
        self.t_raw = np.empty(B)
        # Partner level (walker-only; 0 disables per trajectory).
        self.partner_every = np.empty(B, dtype=np.int64)
        self.delta_partner = np.empty(B)
        self.p_partner = np.empty(B)
        # Named per-seed streams — identical to the DES's.
        self._rng_fail = []
        self._rng_rec = []
        for row in range(B):
            c = configs[int(idx[row])]
            x = c.params
            self.mtti[row] = x.mtti
            self.W[row] = c.work
            self.tau[row] = x.tau
            self.delta_l[row] = x.local_commit_time
            self.delta_io[row] = x.io_commit_time(c.compression)
            self.restore_l[row] = x.local_restore_time + x.restart_overhead
            self.restore_io[row] = x.io_restore_time(c.compression) + x.restart_overhead
            self.p_local[row] = x.p_local_recovery
            self.ratio[row] = c.ratio
            self.shape[row] = c.failure_shape
            self.cap_arr[row] = c.nvm_capacity
            self.t_raw[row] = max(
                c.compression.compressed_size(x.checkpoint_size) / x.io_bandwidth,
                x.checkpoint_size / c.compression.compress_rate,
            )
            self.partner_every[row] = c.partner_every
            self.delta_partner[row] = x.checkpoint_size / c.partner_bandwidth
            self.p_partner[row] = c.p_partner_recovery
            streams = StreamFactory(c.seed)
            self._rng_fail.append(streams.get("failures"))
            self._rng_rec.append(streams.get("recovery"))
        self.has_partner = bool((self.partner_every > 0).any())
        # Per-cycle commit charge: io-only commits straight to I/O.
        self.delta_c = self.delta_io if self.io_write else self.delta_l
        self.cycle = self.tau + self.delta_c
        self.commit_cat = _I_CKPT_IO if self.io_write else _I_CKPT_L

        # Trajectory state.
        self.t = np.zeros(B)
        self.pos = np.zeros(B)
        self.R = np.zeros(B)  # positions below this are re-execution
        self.attr_io = np.zeros(B, dtype=bool)  # rerun attributed to I/O level?
        self.c = np.zeros(B, dtype=np.int64)  # checkpoint counter
        self.state = np.zeros(B, dtype=np.int8)
        self.acct = np.zeros((B, len(_COMPONENTS)))
        self.L = np.full(B, -1.0)  # newest completed local ckpt position
        self.S = np.full(B, -1.0)  # newest completed I/O snapshot position
        self.partner_snap = np.full(B, -1.0)  # newest partner copy position
        self.next_fail = np.zeros(B)
        self.decide_mask = np.zeros(B, dtype=bool)
        # Dead NVM slots newer than the newest completed checkpoint
        # (closed form only): an interrupted write leaves its record in
        # the buffer forever, so ``cap - 1`` consecutive dead writes push
        # the newest completed record out of the FIFO at the next admit.
        self.n_dead = np.zeros(B, dtype=np.int64)

        # Counters mirrored onto SimulationResult.
        self.failures = np.zeros(B, dtype=np.int64)
        self.rec_l = np.zeros(B, dtype=np.int64)
        self.rec_p = np.zeros(B, dtype=np.int64)
        self.rec_io = np.zeros(B, dtype=np.int64)
        self.io_ck = np.zeros(B, dtype=np.int64)
        self.loc_ck = np.zeros(B, dtype=np.int64)
        self.partner_ck = np.zeros(B, dtype=np.int64)
        self.stall = np.zeros(B)

        # In-flight restore (state == _RESTORING).
        self.rest_rem = np.zeros(B)
        self.rest_cat = np.zeros(B, dtype=np.int8)
        self.rollback = np.zeros(B)

        # Exact walker: the NVM ring, one row of slots per trajectory
        # (oldest first, slots >= ring_n empty), padded to the group-max
        # capacity with inert _S_PAD columns, plus the drain's target
        # slot and its remaining unpaused wall seconds.  The walker's
        # cycle phase persists across driver iterations so every row
        # advances one micro-segment per step (no stragglers).
        if self.exact:
            self.cap = int(self.cap_arr.max())
            self._pad = np.arange(self.cap)[None, :] >= self.cap_arr[:, None]
            self._uniform_multi = bool((self.cap_arr > 1).all())
            self.ring_pos = np.zeros((B, self.cap))
            self.ring_state = np.where(self._pad, _S_PAD, _S_EMPTY).astype(np.int8)
            self.ring_n = np.zeros(B, dtype=np.int64)
            self.ph = np.zeros(B, dtype=np.int8)
            self.comp_rem = np.minimum(self.tau, self.W)
            self.seg_rem = np.zeros(B)
        self.dr_busy = np.zeros(B, dtype=bool)
        self.dr_rho = np.zeros(B)
        self.dr_slot = np.full(B, -1, dtype=np.int64)

        # Blocked draws off the named streams (refills consume the
        # underlying stream exactly like that many scalar draws would).
        self._fail_buf = np.zeros((B, _BLOCK))
        self._fail_ptr = np.full(B, _BLOCK, dtype=np.int64)
        self._rec_buf = np.zeros((B, _BLOCK))
        self._rec_ptr = np.full(B, _BLOCK, dtype=np.int64)
        self._times_ptr = np.zeros(B, dtype=np.int64)

        # Active-set compaction: ``orig`` maps the current row to its
        # input position; finished rows scatter their outputs into the
        # full-width ``_fin`` store and every array below is gathered
        # onto the survivors.  ``_W0`` keeps the input-order work targets
        # for the final result assembly.
        self.orig = np.arange(B, dtype=np.intp)
        self._W0 = self.W.copy()
        self._fin = {name: np.zeros_like(getattr(self, name)) for name in _FIN_FIELDS}
        self._row_arrays = list(_ROW_ARRAYS)
        if self.exact:
            self._row_arrays += ["ring_pos", "ring_state", "ring_n", "ph",
                                 "comp_rem", "seg_rem", "_pad"]
        self.occupancy = 1.0

    # -- RNG plumbing ------------------------------------------------------------

    def _fail_draws(self, idx: np.ndarray) -> np.ndarray:
        """One failure-interarrival draw per trajectory in ``idx``."""
        need = idx[self._fail_ptr[idx] >= _BLOCK]
        for i in need:
            rng = self._rng_fail[i]
            shape = self.shape[i]
            if shape == 1.0:
                self._fail_buf[i] = rng.exponential(self.mtti[i], size=_BLOCK)
            else:
                scale = self.mtti[i] / math.gamma(1.0 + 1.0 / shape)
                self._fail_buf[i] = rng.weibull(shape, size=_BLOCK) * scale
            self._fail_ptr[i] = 0
        out = self._fail_buf[idx, self._fail_ptr[idx]]
        self._fail_ptr[idx] += 1
        return out

    def _rec_draws(self, idx: np.ndarray) -> np.ndarray:
        """One recovery-level uniform per trajectory in ``idx``."""
        need = idx[self._rec_ptr[idx] >= _BLOCK]
        for i in need:
            self._rec_buf[i] = self._rng_rec[i].random(_BLOCK)
            self._rec_ptr[i] = 0
        out = self._rec_buf[idx, self._rec_ptr[idx]]
        self._rec_ptr[idx] += 1
        return out

    def _set_next_fail(self, idx: np.ndarray) -> None:
        if self.times is not None:
            ptr = np.minimum(self._times_ptr[idx], len(self.times) - 1)
            self.next_fail[idx] = np.maximum(self.t[idx], self.times[ptr])
            self._times_ptr[idx] += 1
        else:
            self.next_fail[idx] = self.t[idx] + self._fail_draws(idx)

    # -- the per-slot NVM ring (exact walker) --------------------------------------

    def _ring_admit(self, g: np.ndarray) -> None:
        """Admit a new in-flight record at the current position.

        Mirrors :meth:`NVMBuffer.admit`: a full buffer (per-row capacity
        ``cap_arr``) evicts the oldest unlocked record (callers have
        already checked ``can_accept``).  The eviction shift is over the
        padded group-max slot axis; a pad column transiently shifted
        into a real slot is overwritten by the admission below, and the
        columns past a row's capacity stay inert pads.
        """
        C = self.cap
        full = self.ring_n[g] >= self.cap_arr[g]
        f = g[full]
        if f.size:
            # argmax finds the oldest unlocked REAL slot: the gate
            # guaranteed one exists, and real columns precede the pads.
            j = np.argmax(self.ring_state[f] != _S_LOCKED, axis=1)
            cols = np.arange(C)[None, :]
            src = np.minimum(cols + (cols >= j[:, None]), C - 1)
            self.ring_pos[f] = np.take_along_axis(self.ring_pos[f], src, axis=1)
            self.ring_state[f] = np.take_along_axis(self.ring_state[f], src, axis=1)
            self.dr_slot[f] = self.dr_slot[f] - (self.dr_slot[f] > j)
            self.ring_n[f] = self.cap_arr[f] - 1
        slot = self.ring_n[g]
        self.ring_pos[g, slot] = self.pos[g]
        self.ring_state[g, slot] = _S_INFLIGHT
        self.ring_n[g] = slot + 1

    def _drain_pick(self, g: np.ndarray) -> None:
        """Lock the newest undrained completed record, or go idle.

        Mirrors :meth:`NVMBuffer.newest_undrained` — when only *older*
        completed records remain, the drain locks one of those (a stale
        drain) and the eventual I/O snapshot regresses, exactly as in the
        DES.
        """
        if g.size == 0:
            return
        mask = self.ring_state[g] == _S_COMPLETED
        has = mask.any(axis=1)
        j = self.cap - 1 - np.argmax(mask[:, ::-1], axis=1)
        h = g[has]
        jh = j[has]
        self.dr_slot[h] = jh
        self.ring_state[h, jh] = _S_LOCKED
        self.dr_rho[h] = self.t_raw[h]
        self.dr_busy[h] = True
        nh = g[~has]
        self.dr_busy[nh] = False
        self.dr_rho[nh] = 0.0
        self.dr_slot[nh] = -1

    def _drain_advance(self, g: np.ndarray, dur: np.ndarray) -> None:
        """Advance the drain by ``dur`` unpaused wall seconds per row.

        Completions land first (a drain finishing exactly at a window end
        is processed before the host resumes — the stall path relies on
        it), record the I/O snapshot, and re-pick from the ring.
        """
        if not self.is_ndp or g.size == 0:
            return
        rem = np.asarray(dur, dtype=float).copy()
        while True:
            fin = self.dr_busy[g] & (self.dr_rho[g] <= rem)
            if not fin.any():
                break
            f = g[fin]
            rem[fin] -= self.dr_rho[f]
            slots = self.dr_slot[f]
            self.ring_state[f, slots] = _S_ONIO
            self.S[f] = self.ring_pos[f, slots]
            self.io_ck[f] += 1
            self._drain_pick(f)
        busy = self.dr_busy[g]
        gb = g[busy]
        self.dr_rho[gb] = self.dr_rho[gb] - rem[busy]

    def _nvm_lost(self, g: np.ndarray) -> None:
        """Drop NVM contents and abort any in-flight drain (DES `_nvm_lost`)."""
        if self.has_local_level:
            self.L[g] = -1.0
            self.n_dead[g] = 0
        if self.exact:
            self.ring_n[g] = 0
            self.ring_state[g] = np.where(
                self._pad[g], _S_PAD, _S_EMPTY
            ).astype(np.int8)
        self.dr_busy[g] = False
        self.dr_rho[g] = 0.0
        self.dr_slot[g] = -1

    # -- one restore window --------------------------------------------------------

    def _step_restoring(self) -> None:
        idx = np.nonzero(self.state == _RESTORING)[0]
        if idx.size == 0:
            return
        rem = self.rest_rem[idx]
        nf = self.next_fail[idx]
        interrupted = nf < self.t[idx] + rem
        dur = np.where(interrupted, nf - self.t[idx], rem)
        # Partner restores are charged to restore_local like the DES
        # (the paper lumps partner with the locally-saved level).
        cat = np.where(self.rest_cat[idx] == _R_IO, _I_REST_IO, _I_REST_L)
        self.acct[idx, cat] += dur
        # The drain runs unpaused during local restores; partner and I/O
        # recoveries aborted it at decision time, so advancing is a no-op.
        self._drain_advance(idx, dur)
        self.t[idx] = np.where(interrupted, nf, self.t[idx] + rem)
        comp = idx[~interrupted]
        if comp.size:
            # Mirrors the tail of CRSimulation._recover: the failure
            # position (unchanged through interrupted restores) extends
            # the rerun region, then the rollback lands, then a partner
            # snapshot ahead of the new position is invalidated.
            self.R[comp] = np.maximum(self.R[comp], self.pos[comp])
            cat_c = self.rest_cat[comp]
            self.pos[comp] = self.rollback[comp]
            self.attr_io[comp] = cat_c == _R_IO
            self.rec_l[comp[cat_c == _R_LOCAL]] += 1
            self.rec_p[comp[cat_c == _R_PARTNER]] += 1
            self.rec_io[comp[cat_c == _R_IO]] += 1
            if self.has_partner:
                stale = comp[self.partner_snap[comp] > self.pos[comp]]
                self.partner_snap[stale] = -1.0
            self.state[comp] = _RUNNING
            if self.exact:
                # the host loop restarts at a fresh compute interval
                self.ph[comp] = _P_COMPUTE
                self.comp_rem[comp] = np.minimum(
                    self.tau[comp], self.W[comp] - self.pos[comp]
                )
        self.decide_mask[idx[interrupted]] = True

    # -- one running window: closed form -------------------------------------------

    def _layout(
        self, dt: np.ndarray, sub: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Invert the running timeline at offset ``dt`` from segment start.

        Returns ``(k, in_write, in_push, off, off_push)``: completed local
        writes, whether the instant lands inside a write / an I/O push,
        the offset into the current cycle and into the current push.
        """
        cyc = self.cycle[sub]
        if not self.has_push:
            jj = np.floor(dt / cyc)
            off = np.maximum(dt - jj * cyc, 0.0)
            k = jj.astype(np.int64)
            zero = np.zeros(len(sub))
            return k, off >= self.tau[sub], np.zeros(len(sub), dtype=bool), off, zero
        r = self.ratio[sub]
        d_io = self.delta_io[sub]
        b = r - self.c[sub] % r  # checkpoints until (and including) first push
        head_cycles = b * cyc
        period = r * cyc + d_io
        lt_head_c = dt < head_cycles
        lt_head = dt < head_cycles + d_io
        dt2 = np.maximum(dt - (head_cycles + d_io), 0.0)
        qper = np.floor(dt2 / period)
        rem = dt2 - qper * period
        in_per_c = rem < r * cyc
        j_head = np.floor(dt / cyc)
        j_rem = np.floor(rem / cyc)
        jj = np.where(
            lt_head_c,
            j_head,
            np.where(lt_head, b, b + qper * r + np.where(in_per_c, j_rem, r)),
        )
        in_push = (~lt_head_c & lt_head) | (~lt_head & ~in_per_c)
        off = np.maximum(
            np.where(lt_head_c, dt - j_head * cyc, rem - j_rem * cyc), 0.0
        )
        off_push = np.maximum(
            np.where(lt_head & ~lt_head_c, dt - head_cycles, rem - r * cyc), 0.0
        )
        in_write = ~in_push & (off >= self.tau[sub])
        return jj.astype(np.int64), in_write, in_push, off, np.where(in_push, off_push, 0.0)

    def _charge_running(
        self,
        sub: np.ndarray,
        compute_adv: np.ndarray,
        commit: np.ndarray,
        push: np.ndarray,
    ) -> None:
        """Charge one running window's compute/rerun/commit/push seconds."""
        p0 = self.pos[sub]
        rerun = np.clip(np.minimum(self.R[sub], p0 + compute_adv) - p0, 0.0, None)
        cat = np.where(self.attr_io[sub], _I_RERUN_IO, _I_RERUN_L)
        np.add.at(self.acct, (sub, cat), rerun)
        self.acct[sub, _I_COMPUTE] += compute_adv - rerun
        self.acct[sub, self.commit_cat] += commit
        if self.has_push:
            self.acct[sub, _I_CKPT_IO] += push

    def _step_running(self) -> None:
        idx = np.nonzero(self.state == _RUNNING)[0]
        if idx.size == 0:
            return
        tau = self.tau[idx]
        d_c = self.delta_c[idx]
        p0 = self.pos[idx].copy()
        w_rem = self.W[idx] - p0
        # Intervals to finish the work; the epsilon guards exact multiples
        # of tau against one-ulp float drift.
        n_int = np.maximum(np.ceil(w_rem / tau - 1e-9).astype(np.int64), 1)
        n_ck = n_int - 1
        c0 = self.c[idx]
        if self.has_push:
            n_push = (c0 + n_ck) // self.ratio[idx] - c0 // self.ratio[idx]
            T_done = w_rem + n_ck * d_c + n_push * self.delta_io[idx]
        else:
            n_push = np.zeros(idx.size, dtype=np.int64)
            T_done = w_rem + n_ck * d_c
        dt_f = self.next_fail[idx] - self.t[idx]
        done = dt_f >= T_done

        dsub = idx[done]
        if dsub.size:
            sel = done
            self._charge_running(
                dsub,
                w_rem[sel],
                n_ck[sel] * d_c[sel],
                n_push[sel] * self.delta_io[idx][sel] if self.has_push else n_push[sel],
            )
            if self.io_write:
                self.io_ck[dsub] += n_ck[sel]
            else:
                self.loc_ck[dsub] += n_ck[sel]
                self.io_ck[dsub] += n_push[sel]
            self.c[dsub] += n_ck[sel]
            self.t[dsub] += T_done[sel]
            self.pos[dsub] = self.W[dsub]
            self.state[dsub] = _DONE

        fsub = idx[~done]
        if fsub.size:
            sel = ~done
            dt = dt_f[sel]
            k, in_write, in_push, off, off_push = self._layout(dt, fsub)
            tau_f = tau[sel]
            compute_adv = k * tau_f + np.where(
                in_write, tau_f, np.where(in_push, 0.0, np.minimum(off, tau_f))
            )
            commit = k * d_c[sel] + np.where(in_write, off - tau_f, 0.0)
            if self.has_push:
                r_f = self.ratio[fsub]
                c0_f = c0[sel]
                n_push_done = (c0_f + k) // r_f - c0_f // r_f - in_push
                push = n_push_done * self.delta_io[fsub] + off_push
            else:
                n_push_done = np.zeros(fsub.size, dtype=np.int64)
                push = np.zeros(fsub.size)
            self._charge_running(fsub, compute_adv, commit, push)
            p0_f = p0[sel]
            if self.io_write:
                self.io_ck[fsub] += k
                got = k >= 1
                self.S[fsub[got]] = (p0_f + k * tau_f)[got]
            else:
                self.loc_ck[fsub] += k
                got = k >= 1
                self.L[fsub[got]] = (p0_f + k * tau_f)[got]
                if self.has_push:
                    r_f = self.ratio[fsub]
                    c0_f = c0[sel]
                    self.io_ck[fsub] += n_push_done
                    pushed = n_push_done >= 1
                    last_mult = (c0_f // r_f + n_push_done) * r_f
                    self.S[fsub[pushed]] = (p0_f + (last_mult - c0_f) * tau_f)[pushed]
                # Dead-slot bookkeeping: an interrupted write's record
                # occupies a slot forever; once ``cap - 1`` dead records
                # sit above the newest completed one, this admit evicted
                # it, so local recovery has nothing to land on.
                nd = np.where(got, 0, self.n_dead[fsub])
                evict = in_write & (nd >= self.cap_arr[fsub] - 1) & (self.L[fsub] >= 0.0)
                self.L[fsub[evict]] = -1.0
                self.n_dead[fsub] = nd + in_write
            self.c[fsub] += k
            self.pos[fsub] = p0_f + compute_adv
            self.t[fsub] = self.next_fail[fsub]
            self.decide_mask[fsub] = True

    # -- one running window: exact segment walker ------------------------------------

    def _to_next(self, g: np.ndarray, *, partner: bool, push: bool) -> None:
        """Route rows leaving a completed segment to their next phase."""
        if partner and self.has_partner and g.size:
            due = (self.partner_every[g] > 0) & (
                self.c[g] % np.maximum(self.partner_every[g], 1) == 0
            )
            pg = g[due]
            self.ph[pg] = _P_PARTNER
            self.seg_rem[pg] = self.delta_partner[pg]
            g = g[~due]
        if push and self.has_push and g.size:
            due = self.c[g] % self.ratio[g] == 0
            hg = g[due]
            self.ph[hg] = _P_PUSH
            self.seg_rem[hg] = self.delta_io[hg]
            g = g[~due]
        self.ph[g] = _P_COMPUTE
        self.comp_rem[g] = np.minimum(self.tau[g], self.W[g] - self.pos[g])

    def _live(self, phase: int) -> np.ndarray:
        """Running rows in ``phase`` that have not failed this step."""
        return np.nonzero(
            (self.state == _RUNNING) & ~self.decide_mask & (self.ph == phase)
        )[0]

    def _step_running_exact(self) -> None:
        """Advance every running trajectory by one cycle micro-segment.

        Mirrors ``CRSimulation._host`` op for op: compute chunks split at
        the rerun boundary, the stall-admit-write sequence against the
        per-slot ring, then the partner copy and the host I/O push when
        due.  Phase state persists on the batch, so each driver iteration
        moves all rows one segment — a failed row is retired to
        ``_decide`` the same iteration, a finished one to ``_DONE``.
        """
        # -- compute chunks (CRSimulation._compute_interval) --------
        g = self._live(_P_COMPUTE)
        if g.size:
            run = g[self.comp_rem[g] > 1e-12]
            if run.size:
                pos = self.pos[run]
                in_rerun = pos < self.R[run]
                chunk = np.where(
                    in_rerun,
                    np.minimum(self.comp_rem[run], self.R[run] - pos),
                    self.comp_rem[run],
                )
                failed = self.next_fail[run] < self.t[run] + chunk
                adv = np.where(failed, self.next_fail[run] - self.t[run], chunk)
                cat = np.where(
                    in_rerun,
                    np.where(self.attr_io[run], _I_RERUN_IO, _I_RERUN_L),
                    _I_COMPUTE,
                )
                self.acct[run, cat] += adv
                self._drain_advance(run, adv)
                self.pos[run] = pos + adv
                self.t[run] = self.t[run] + adv
                self.comp_rem[run] -= adv
                self.decide_mask[run[failed]] = True
            # Interval exhausted (including just now): finish the run or
            # enter the local write — same pass, so a full compute/write
            # cycle costs one driver iteration.
            g = self._live(_P_COMPUTE)
            over = g[self.comp_rem[g] <= 1e-12]
            if over.size:
                fin = self.pos[over] >= self.W[over]
                self.state[over[fin]] = _DONE
                self.ph[over[~fin]] = _P_STALL

        # -- admission gate (CRSimulation._checkpoint_local head) ----
        g = self._live(_P_STALL)
        if g.size:
            if self._uniform_multi:
                # at most one slot is ever drain-locked, so a buffer with
                # two or more real slots always has a free or evictable one
                can = np.ones(g.size, dtype=bool)
            else:
                st = self.ring_state[g]
                can = (self.ring_n[g] < self.cap_arr[g]) | (
                    (st != _S_LOCKED) & (st != _S_PAD)
                ).any(axis=1)
            gc = g[can]
            if gc.size:
                self._ring_admit(gc)
                self.ph[gc] = _P_WRITE
                self.seg_rem[gc] = self.delta_l[gc]
            gs = g[~can]
            if gs.size:
                # Every slot is drain-locked: the host blocks until the
                # in-flight drain finishes (its completion is processed
                # first), charging a stall; survivors re-check the gate.
                rho = self.dr_rho[gs]
                failed = self.next_fail[gs] < self.t[gs] + rho
                dur = np.where(failed, self.next_fail[gs] - self.t[gs], rho)
                self.stall[gs] += dur
                self.acct[gs, _I_CKPT_L] += dur
                self._drain_advance(gs, dur)
                self.t[gs] = self.t[gs] + dur
                self.decide_mask[gs[failed]] = True

        # -- the local write (or its death by interrupt) -------------
        g = self._live(_P_WRITE)
        if g.size:
            d = self.seg_rem[g]
            failed = self.next_fail[g] < self.t[g] + d
            dur = np.where(failed, self.next_fail[g] - self.t[g], d)
            self.acct[g, _I_CKPT_L] += dur
            if not self.pause:
                self._drain_advance(g, dur)
            self.t[g] = self.t[g] + dur
            # an interrupted write's record stays in-flight (dead)
            self.decide_mask[g[failed]] = True
            go = g[~failed]
            if go.size:
                self.ring_state[go, self.ring_n[go] - 1] = _S_COMPLETED
                self.c[go] += 1
                self.loc_ck[go] += 1
                if self.is_ndp:
                    # doorbell: an idle drain locks the new record
                    self._drain_pick(go[~self.dr_busy[go]])
                self._to_next(go, partner=True, push=True)

        # -- the partner copy (CRSimulation._checkpoint_partner) -----
        g = self._live(_P_PARTNER) if self.has_partner else np.empty(0, dtype=np.int64)
        if g.size:
            d = self.seg_rem[g]
            failed = self.next_fail[g] < self.t[g] + d
            dur = np.where(failed, self.next_fail[g] - self.t[g], d)
            self.acct[g, _I_CKPT_L] += dur
            self._drain_advance(g, dur)
            self.t[g] = self.t[g] + dur
            self.decide_mask[g[failed]] = True
            go = g[~failed]
            if go.size:
                self.partner_snap[go] = self.pos[go]
                self.partner_ck[go] += 1
                self._to_next(go, partner=False, push=True)

        # -- the host I/O push (host strategy; no drain exists) ------
        g = self._live(_P_PUSH) if self.has_push else np.empty(0, dtype=np.int64)
        if g.size:
            d = self.seg_rem[g]
            failed = self.next_fail[g] < self.t[g] + d
            dur = np.where(failed, self.next_fail[g] - self.t[g], d)
            self.acct[g, _I_CKPT_IO] += dur
            self.t[g] = self.t[g] + dur
            self.decide_mask[g[failed]] = True
            go = g[~failed]
            if go.size:
                self.S[go] = self.pos[go]
                self.io_ck[go] += 1
                self._to_next(go, partner=False, push=False)

    # -- recovery decision ---------------------------------------------------------

    def _decide(self, idx: np.ndarray) -> None:
        """Pick each failed trajectory's recovery level (same draws as DES).

        Draw order per trajectory matches ``CRSimulation._recover``: the
        local uniform only when a completed local record exists (and the
        strategy draws at all), then the partner uniform only when local
        lost out and a partner snapshot exists.
        """
        self.failures[idx] += 1
        if self.exact:
            st = self.ring_state[idx]
            mask = (st >= _S_COMPLETED) & (st != _S_PAD)
            has_local = mask.any(axis=1)
            j = self.cap - 1 - np.argmax(mask[:, ::-1], axis=1)
            lpos = np.where(has_local, self.ring_pos[idx, j], -1.0)
        else:
            lpos = self.L[idx]
            has_local = lpos >= 0.0
        use_local = np.zeros(idx.size, dtype=bool)
        if self.has_local_level:
            if self.strategy == "local-only":
                use_local = has_local
            else:
                dsub = idx[has_local]
                if dsub.size:
                    u = self._rec_draws(dsub)
                    use_local[has_local] = u < self.p_local[dsub]
        use_partner = np.zeros(idx.size, dtype=bool)
        if self.has_partner:
            elig = (
                ~use_local
                & (self.partner_every[idx] > 0)
                & (self.partner_snap[idx] >= 0.0)
            )
            esub = idx[elig]
            if esub.size:
                u2 = self._rec_draws(esub)
                use_partner[elig] = u2 < self.p_partner[esub]
        usub = idx[use_local]
        if usub.size:
            self.rollback[usub] = lpos[use_local]
            self.rest_rem[usub] = self.restore_l[usub]
            self.rest_cat[usub] = _R_LOCAL
        psub = idx[use_partner]
        if psub.size:
            # NVM contents are lost; the restore streams from the partner
            # over the interconnect (charged like a local restore).
            self._nvm_lost(psub)
            self.rollback[psub] = self.partner_snap[psub]
            self.rest_rem[psub] = self.delta_partner[psub]
            self.rest_cat[psub] = _R_PARTNER
        io = ~use_local & ~use_partner
        isub = idx[io]
        if isub.size:
            self._nvm_lost(isub)
            has_s = self.S[isub] >= 0.0
            self.rollback[isub] = np.where(has_s, self.S[isub], 0.0)
            self.rest_rem[isub] = np.where(has_s, self.restore_io[isub], 0.0)
            self.rest_cat[isub] = _R_IO
        self.state[idx] = _RESTORING
        self._set_next_fail(idx)

    # -- active-set compaction -----------------------------------------------------

    def _retire(self, done: np.ndarray) -> None:
        """Scatter finished rows to the input-order store, keep survivors.

        ``done`` is a boolean mask over the *current* rows.  Every driver
        operation is elementwise per row (each trajectory owns its named
        streams, its RNG buffers and its row of state), so the survivors'
        trajectories are bit-identical wherever their rows live.
        """
        o = self.orig[done]
        for name in _FIN_FIELDS:
            self._fin[name][o] = getattr(self, name)[done]
        keep = np.nonzero(~done)[0]
        for name in self._row_arrays:
            setattr(self, name, getattr(self, name)[keep])
        self._rng_fail = [self._rng_fail[i] for i in keep]
        self._rng_rec = [self._rng_rec[i] for i in keep]

    # -- driver --------------------------------------------------------------------

    def run(self) -> list[SimulationResult]:
        self._set_next_fail(np.arange(self.B))
        step_running = self._step_running_exact if self.exact else self._step_running
        iters = 0
        row_iters = 0
        for _ in range(_MAX_ITER):
            live = self.state != _DONE
            n_live = int(live.sum())
            if n_live == 0:
                break
            n = live.size
            if n - n_live and n_live < COMPACT_THRESHOLD * n:
                # Finished rows pay for every vectorized op below; gather
                # the survivors once the live fraction crosses the knob.
                _LIVE_FRACTION.observe(n_live / n)
                self._retire(~live)
                n = n_live
            iters += 1
            row_iters += n
            self.decide_mask[:] = False
            self._step_restoring()
            step_running()
            pending = np.nonzero(self.decide_mask)[0]
            if pending.size:
                self._decide(pending)
        else:  # pragma: no cover - pathological configs only
            raise RuntimeError(
                "fastpath did not converge; the scenario makes essentially "
                "no forward progress (use the DES engine to inspect it)"
            )
        if self.orig.size:
            self._retire(np.ones(self.orig.size, dtype=bool))
        self.occupancy = row_iters / (self.B * iters) if iters else 1.0
        _OCCUPANCY.set(self.occupancy)
        t = self._fin["t"]
        acct = self._fin["acct"]
        totals = acct.sum(axis=1)
        out = []
        for i in range(self.B):
            # Failure behavior on degenerate state matches the DES run()
            # argument order: the efficiency division raises
            # ZeroDivisionError on a zero wall time first, then an empty
            # accounting raises like TimeAccounting.breakdown.
            efficiency = float(self._W0[i]) / float(t[i])
            if totals[i] <= 0.0:
                raise ValueError("no time accounted yet")
            frac = acct[i] / totals[i]
            out.append(
                SimulationResult(
                    work=float(self._W0[i]),
                    wall_time=float(t[i]),
                    efficiency=efficiency,
                    breakdown=OverheadBreakdown(**dict(zip(_COMPONENTS, map(float, frac)))),
                    failures=int(self._fin["failures"][i]),
                    recoveries_local=int(self._fin["rec_l"][i]),
                    recoveries_io=int(self._fin["rec_io"][i]),
                    recoveries_partner=int(self._fin["rec_p"][i]),
                    io_checkpoints=int(self._fin["io_ck"][i]),
                    local_checkpoints=int(self._fin["loc_ck"][i]),
                    partner_checkpoints=int(self._fin["partner_ck"][i]),
                    host_stall_time=float(self._fin["stall"][i]),
                )
            )
        return out


# -- public entry points ----------------------------------------------------------


def _group_key(config: SimConfig) -> tuple:
    """Schedule-shape key: configs sharing it fuse into one walker.

    ``nvm_capacity`` is deliberately absent — exact-walker rings are
    padded to the group maximum, so mixed capacities share a batch.
    """
    return (
        config.strategy,
        config.pause_ndp_during_local,
        config.failure_times,
        _needs_exact(config),
    )


def _group_sort_key(key: tuple) -> tuple:
    """Total order over group keys for deterministic trace output."""
    strategy, pause, times, exact = key
    return (strategy, bool(pause), bool(exact), times is not None, times or ())


def simulate_batch(configs: Sequence[SimConfig]) -> list[SimulationResult]:
    """Simulate every config, batching compatible ones into numpy passes.

    Configs the fast engine cannot represent (timeline tracing, see
    :func:`unsupported_reason`) run on the event-level DES individually;
    everything else is grouped by schedule shape and advanced together.
    Groups are index arrays into ``configs`` (no per-group config lists)
    and run in a deterministic sorted order.  Results come back in input
    order and are bit-for-bit independent of the batch composition (each
    trajectory owns its seed's streams).
    """
    configs = list(configs)
    results: list[SimulationResult | None] = [None] * len(configs)
    groups: dict[tuple, list[int]] = {}
    for i, cfg in enumerate(configs):
        reason = unsupported_reason(cfg)
        if reason is not None:
            _FALLBACKS.inc(reason=_FALLBACK_LABELS.get(reason, "other"))
            results[i] = CRSimulation(cfg).run()
        else:
            groups.setdefault(_group_key(cfg), []).append(i)
    for key in sorted(groups, key=_group_sort_key):
        members = groups[key]
        t0 = time.monotonic()
        batch = _FastBatch(configs, np.asarray(members, dtype=np.intp))
        for i, res in zip(members, batch.run()):
            results[i] = res
        _BATCHES.inc()
        _TRAJECTORIES.inc(len(members))
        if obs_trace.enabled():
            obs_trace.emit(
                "fastpath",
                t0,
                time.monotonic(),
                "batch",
                label=f"{batch.strategy}x{len(members)}",
                attrs={
                    "size": len(members),
                    "strategy": batch.strategy,
                    "occupancy": round(batch.occupancy, 4),
                },
            )
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def simulate_fast(config: SimConfig) -> SimulationResult:
    """Run one config on the fast engine (DES fallback if unsupported)."""
    return simulate_batch([config])[0]
