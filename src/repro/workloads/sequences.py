"""Checkpoint time series: how checkpoint data evolves across a run.

Delta encoding, dedup and incremental checkpointing all depend on the
*temporal* statistics of checkpoint data — how many bytes change between
consecutive snapshots, and how compressible the change is.  This module
builds those datasets from the proxy apps and computes the statistics the
NDP future-work analyses need:

* :func:`checkpoint_sequence` — N consecutive checkpoints of one app,
  ``steps_between`` apart;
* :func:`change_statistics` — per-transition dirty-byte fraction,
  dirty-4K-block fraction, and XOR-delta gzip factor;
* :class:`SequenceStats` — the aggregate view (means and worst case).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..compression.delta import xor_delta
from .miniapps import make_app

__all__ = ["checkpoint_sequence", "TransitionStats", "SequenceStats", "change_statistics"]


def checkpoint_sequence(
    name: str,
    count: int = 5,
    steps_between: int = 1,
    seed: int = 0,
    warmup_steps: int = 3,
    calibrated: bool = False,
    **app_kwargs: object,
) -> list[bytes]:
    """``count`` consecutive checkpoints of one proxy app.

    Full precision by default: temporal-change analysis wants the raw
    state evolution, not the calibration quantization (pass
    ``calibrated=True`` to study the quantized stream instead).
    """
    if count < 2:
        raise ValueError("a sequence needs at least 2 checkpoints")
    if steps_between < 1:
        raise ValueError("steps_between must be >= 1")
    from .calibration import CALIBRATED_PRECISION

    bits = CALIBRATED_PRECISION.get(name, 52.0) if calibrated else 52.0
    app = make_app(name, seed=seed, precision_bits=bits, **app_kwargs)
    app.run(warmup_steps)
    out = [app.checkpoint_bytes()]
    for _ in range(count - 1):
        app.run(steps_between)
        out.append(app.checkpoint_bytes())
    return out


@dataclass(frozen=True)
class TransitionStats:
    """Change statistics for one consecutive-checkpoint transition.

    Attributes
    ----------
    dirty_byte_fraction:
        Fraction of bytes that differ from the previous checkpoint.
    dirty_block_fraction:
        Fraction of 4 KiB blocks containing at least one changed byte
        (what page-granular incremental checkpointing would write).
    delta_gzip_factor:
        gzip(1) compression factor of the XOR delta.
    raw_gzip_factor:
        gzip(1) factor of the checkpoint itself, for comparison.
    """

    dirty_byte_fraction: float
    dirty_block_fraction: float
    delta_gzip_factor: float
    raw_gzip_factor: float


@dataclass(frozen=True)
class SequenceStats:
    """Aggregate change statistics over a checkpoint sequence."""

    transitions: tuple[TransitionStats, ...]

    @property
    def mean_dirty_bytes(self) -> float:
        """Mean dirty-byte fraction across transitions."""
        return float(np.mean([t.dirty_byte_fraction for t in self.transitions]))

    @property
    def mean_dirty_blocks(self) -> float:
        """Mean dirty-4K-block fraction across transitions."""
        return float(np.mean([t.dirty_block_fraction for t in self.transitions]))

    @property
    def mean_delta_gain(self) -> float:
        """Mean (delta factor - raw factor): the headroom delta encoding buys."""
        return float(
            np.mean(
                [t.delta_gzip_factor - t.raw_gzip_factor for t in self.transitions]
            )
        )


def change_statistics(sequence: list[bytes], block_size: int = 4096) -> SequenceStats:
    """Per-transition change statistics over a checkpoint sequence."""
    if len(sequence) < 2:
        raise ValueError("need at least 2 checkpoints")
    if block_size < 256:
        raise ValueError("block_size must be >= 256")
    transitions = []
    for prev, curr in zip(sequence, sequence[1:]):
        n = min(len(prev), len(curr))
        a = np.frombuffer(prev, dtype=np.uint8, count=n)
        b = np.frombuffer(curr, dtype=np.uint8, count=n)
        changed = a != b
        dirty_bytes = float(changed.mean())
        n_blocks = (n + block_size - 1) // block_size
        padded = np.zeros(n_blocks * block_size, dtype=bool)
        padded[:n] = changed
        dirty_blocks = float(
            padded.reshape(n_blocks, block_size).any(axis=1).mean()
        )
        delta = xor_delta(prev, curr)
        transitions.append(
            TransitionStats(
                dirty_byte_fraction=dirty_bytes,
                dirty_block_fraction=dirty_blocks,
                delta_gzip_factor=1.0 - len(zlib.compress(delta, 1)) / len(delta),
                raw_gzip_factor=1.0 - len(zlib.compress(curr, 1)) / len(curr),
            )
        )
    return SequenceStats(transitions=tuple(transitions))
