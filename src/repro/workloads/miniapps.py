"""Mantevo mini-app proxy kernels (Section 5.1.1 workloads).

Seven miniature-but-real numerical kernels stand in for the Mantevo
mini-apps whose BLCR checkpoints the paper compresses.  Each proxy
implements the same numerical method family as its namesake:

========== ==========================================================
CoMD       Lennard-Jones molecular dynamics (velocity Verlet)
HPCCG      conjugate gradient on a 27-point 3-D Poisson stencil
miniFE     CG on a variable-coefficient FE-style diffusion operator
miniMD     Lennard-Jones MD at a different density, with atom types
miniSMAC2D 2-D incompressible flow, SMAC-style staggered grid
miniAero   2-D finite-volume compressible Euler (Rusanov fluxes)
pHPCCG     HPCCG variant (scaled operator / right-hand side)
========== ==========================================================

State arrays are the checkpoint payload; sizes are set so a "rank" is a
few hundred kB to a few MB and a 16-rank run gives study-scale data.  All
kernels are vectorized numpy; a step costs milliseconds.
"""

from __future__ import annotations

import numpy as np

from .base import MiniApp

__all__ = [
    "CoMDProxy",
    "HPCCGProxy",
    "PHPCCGProxy",
    "MiniFEProxy",
    "MiniMDProxy",
    "MiniSMAC2DProxy",
    "MiniAeroProxy",
    "APP_REGISTRY",
    "make_app",
]


class _LennardJonesMD(MiniApp):
    """Shared velocity-Verlet Lennard-Jones kernel (CoMD/miniMD base).

    All-pairs force evaluation with a cutoff and a minimum-distance clamp
    for numerical robustness, on a periodic cube.  O(n^2) vectorized —
    fine for proxy sizes (thousands of atoms).
    """

    density = 0.8
    temperature = 0.7
    dt = 0.004
    cutoff = 2.5

    def __init__(self, n_atoms: int = 1024, seed: int = 0, precision_bits: float = 52.0):
        super().__init__(seed, precision_bits)
        self.n = int(n_atoms)
        self.box = (self.n / self.density) ** (1.0 / 3.0)
        # Initialize on a jittered simple-cubic lattice to avoid overlaps.
        side = int(np.ceil(self.n ** (1.0 / 3.0)))
        grid = np.stack(
            np.meshgrid(*([np.arange(side)] * 3), indexing="ij"), axis=-1
        ).reshape(-1, 3)[: self.n]
        spacing = self.box / side
        self.pos = (grid + 0.5) * spacing + self.rng.normal(0, 0.05 * spacing, (self.n, 3))
        self.vel = self.rng.normal(0, np.sqrt(self.temperature), (self.n, 3))
        self.vel -= self.vel.mean(axis=0)  # zero net momentum
        self.force = np.zeros((self.n, 3))
        self._compute_forces()

    def _compute_forces(self) -> None:
        delta = self.pos[:, None, :] - self.pos[None, :, :]
        delta -= self.box * np.round(delta / self.box)  # minimum image
        r2 = np.einsum("ijk,ijk->ij", delta, delta)
        np.fill_diagonal(r2, np.inf)
        r2 = np.maximum(r2, 0.64)  # clamp to 0.8 sigma: soft core
        within = r2 < self.cutoff**2
        inv2 = np.where(within, 1.0 / r2, 0.0)
        inv6 = inv2**3
        # dU/dr / r for LJ: 24 eps (2 (s/r)^12 - (s/r)^6) / r^2
        coeff = 24.0 * (2.0 * inv6 * inv6 - inv6) * inv2
        self.force[...] = np.einsum("ij,ijk->ik", coeff, delta)

    def step(self) -> None:
        """One velocity-Verlet timestep."""
        self.vel += 0.5 * self.dt * self.force
        self.pos += self.dt * self.vel
        self.pos %= self.box
        self._compute_forces()
        self.vel += 0.5 * self.dt * self.force

    def kinetic_energy(self) -> float:
        """Total kinetic energy (diagnostic used by the examples)."""
        return float(0.5 * np.einsum("ij,ij->", self.vel, self.vel))

    def potential_energy(self) -> float:
        """Total (clamped, truncated) Lennard-Jones potential energy.

        Uses the same soft-core clamp and cutoff as the force kernel, so
        kinetic + potential is conserved by the Verlet integrator up to
        the clamp/truncation discontinuities (tested with a small dt).
        """
        delta = self.pos[:, None, :] - self.pos[None, :, :]
        delta -= self.box * np.round(delta / self.box)
        r2 = np.einsum("ijk,ijk->ij", delta, delta)
        np.fill_diagonal(r2, np.inf)
        r2 = np.maximum(r2, 0.64)
        within = r2 < self.cutoff**2
        inv6 = np.where(within, (1.0 / r2) ** 3, 0.0)
        pair = 4.0 * (inv6 * inv6 - inv6)
        return float(pair.sum() / 2.0)  # each pair counted twice

    def total_energy(self) -> float:
        """Kinetic + potential energy (conservation diagnostic)."""
        return self.kinetic_energy() + self.potential_energy()

    def _raw_state(self) -> dict[str, np.ndarray]:
        return {"positions": self.pos, "velocities": self.vel, "forces": self.force}


class CoMDProxy(_LennardJonesMD):
    """CoMD proxy: LJ molecular dynamics at moderate density."""

    name = "CoMD"


class MiniMDProxy(_LennardJonesMD):
    """miniMD proxy: denser, hotter LJ system plus per-atom type array."""

    name = "miniMD"
    density = 1.0
    temperature = 1.44

    def __init__(self, n_atoms: int = 1024, seed: int = 0, precision_bits: float = 52.0):
        super().__init__(n_atoms, seed, precision_bits)
        self.types = self.rng.integers(0, 4, self.n, dtype=np.int32)

    def _raw_state(self) -> dict[str, np.ndarray]:
        state = super()._raw_state()
        state["types"] = self.types
        return state


class _StencilCG(MiniApp):
    """Conjugate gradient on a 27-point periodic stencil (HPCCG family).

    The operator is ``A = diag_weight*I - offdiag_weight*S27`` where
    ``S27`` sums the 26 neighbours; diagonal dominance keeps it SPD.  One
    :meth:`step` is one CG iteration; state is the classic 4-vector CG
    working set plus the right-hand side.
    """

    diag_weight = 26.5
    offdiag_weight = 1.0
    rhs_scale = 1.0
    #: HPCCG manufactures its RHS so the exact solution is all-ones
    #: (``b = A @ 1``), making real HPCCG checkpoints highly redundant;
    #: miniFE uses a rough source term instead.
    smooth_rhs = False

    def __init__(self, grid: int = 28, seed: int = 0, precision_bits: float = 52.0):
        super().__init__(seed, precision_bits)
        self.grid = int(grid)
        shape = (self.grid,) * 3
        if self.smooth_rhs:
            ones = np.ones(shape)
            self.b = self.rhs_scale * (
                self._matvec(ones) + 1e-4 * self.rng.standard_normal(shape)
            )
        else:
            self.b = self.rhs_scale * self.rng.standard_normal(shape)
        self.x = np.zeros(shape)
        self.r = self.b - self._matvec(self.x)
        self.p = self.r.copy()
        self._rs = float(np.vdot(self.r, self.r).real)

    def _matvec(self, v: np.ndarray) -> np.ndarray:
        acc = np.zeros_like(v)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    acc += np.roll(np.roll(np.roll(v, dx, 0), dy, 1), dz, 2)
        return self.diag_weight * v - self.offdiag_weight * acc / 26.0

    def step(self) -> None:
        """One CG iteration (restarts automatically on convergence)."""
        if self._rs < 1e-24:
            # Converged: perturb the RHS to keep the kernel busy, as a
            # long-running solve sequence would.
            self.b += 0.01 * self.rng.standard_normal(self.b.shape)
            self.r = self.b - self._matvec(self.x)
            self.p = self.r.copy()
            self._rs = float(np.vdot(self.r, self.r).real)
        ap = self._matvec(self.p)
        alpha = self._rs / float(np.vdot(self.p, ap).real)
        self.x += alpha * self.p
        self.r -= alpha * ap
        rs_new = float(np.vdot(self.r, self.r).real)
        self.p = self.r + (rs_new / self._rs) * self.p
        self._rs = rs_new

    def residual_norm(self) -> float:
        """Current residual 2-norm (diagnostic)."""
        return float(np.sqrt(self._rs))

    def _raw_state(self) -> dict[str, np.ndarray]:
        return {"x": self.x, "r": self.r, "p": self.p, "b": self.b}

    def restore(self, state: dict[str, np.ndarray]) -> None:
        super().restore(state)
        self._rs = float(np.vdot(self.r, self.r).real)


class HPCCGProxy(_StencilCG):
    """HPCCG proxy: CG on the 27-point Poisson-like stencil."""

    name = "HPCCG"
    smooth_rhs = True


class PHPCCGProxy(_StencilCG):
    """pHPCCG proxy: the HPCCG variant with a rescaled operator."""

    name = "pHPCCG"
    diag_weight = 27.5
    rhs_scale = 100.0
    smooth_rhs = True


class MiniFEProxy(_StencilCG):
    """miniFE proxy: CG on a variable-coefficient diffusion operator.

    A smooth spatially-varying coefficient field multiplies the stencil,
    mimicking an assembled finite-element operator; the field itself is
    part of the checkpoint (as miniFE's mesh/matrix data is).
    """

    name = "miniFE"

    def __init__(self, grid: int = 26, seed: int = 0, precision_bits: float = 52.0):
        # Coefficient field must exist before the base computes r = b - Ax.
        g = int(grid)
        axis = np.linspace(0.0, 2.0 * np.pi, g, endpoint=False)
        xx, yy, zz = np.meshgrid(axis, axis, axis, indexing="ij")
        self.coeff = 1.0 + 0.5 * np.sin(xx) * np.cos(yy) * np.sin(zz)
        super().__init__(grid=g, seed=seed, precision_bits=precision_bits)

    def _matvec(self, v: np.ndarray) -> np.ndarray:
        return self.coeff * super()._matvec(v)

    def _raw_state(self) -> dict[str, np.ndarray]:
        state = super()._raw_state()
        state["coeff"] = self.coeff
        return state


class MiniSMAC2DProxy(MiniApp):
    """miniSMAC2D proxy: 2-D incompressible lid-driven cavity flow.

    Explicit advection-diffusion for (u, v) plus Jacobi pressure
    relaxation on a collocated grid — the simplified-MAC (SMAC) update
    pattern.  Turbulent-ish fine structure develops, which is why the
    paper measures this app's checkpoints as the least compressible.
    """

    name = "miniSMAC2D"
    reynolds = 400.0
    dt = 0.002

    def __init__(self, grid: int = 192, seed: int = 0, precision_bits: float = 52.0):
        super().__init__(seed, precision_bits)
        self.grid = int(grid)
        shape = (self.grid, self.grid)
        self.u = 0.01 * self.rng.standard_normal(shape)
        self.v = 0.01 * self.rng.standard_normal(shape)
        self.pressure = np.zeros(shape)
        self.h = 1.0 / self.grid

    def _lap(self, f: np.ndarray) -> np.ndarray:
        return (
            np.roll(f, 1, 0) + np.roll(f, -1, 0) + np.roll(f, 1, 1) + np.roll(f, -1, 1) - 4 * f
        ) / self.h**2

    def _ddx(self, f: np.ndarray) -> np.ndarray:
        return (np.roll(f, -1, 0) - np.roll(f, 1, 0)) / (2 * self.h)

    def _ddy(self, f: np.ndarray) -> np.ndarray:
        return (np.roll(f, -1, 1) - np.roll(f, 1, 1)) / (2 * self.h)

    def step(self) -> None:
        """One SMAC-style fractional step: predict, project, correct."""
        nu = 1.0 / self.reynolds
        u, v, dt = self.u, self.v, self.dt
        # Predictor: advection + diffusion.
        u_star = u + dt * (-u * self._ddx(u) - v * self._ddy(u) + nu * self._lap(u))
        v_star = v + dt * (-u * self._ddx(v) - v * self._ddy(v) + nu * self._lap(v))
        # Lid forcing along the top rows.
        u_star[:, -2:] += dt * 5.0 * (1.0 - u_star[:, -2:])
        # Pressure: a few Jacobi sweeps on the Poisson equation.
        div = (self._ddx(u_star) + self._ddy(v_star)) / dt
        p = self.pressure
        for _ in range(8):
            p = (
                np.roll(p, 1, 0) + np.roll(p, -1, 0) + np.roll(p, 1, 1) + np.roll(p, -1, 1)
                - self.h**2 * div
            ) / 4.0
        self.pressure = p
        # Corrector.
        self.u = u_star - dt * self._ddx(p)
        self.v = v_star - dt * self._ddy(p)

    def max_divergence(self) -> float:
        """Max |div(u)| after projection (diagnostic)."""
        return float(np.abs(self._ddx(self.u) + self._ddy(self.v)).max())

    def _raw_state(self) -> dict[str, np.ndarray]:
        return {"u": self.u, "v": self.v, "pressure": self.pressure}

    def restore(self, state: dict[str, np.ndarray]) -> None:
        # u/v/pressure are rebound by step(); assign rather than copy-into.
        for name in ("u", "v", "pressure"):
            setattr(self, name, state[name].copy())


class MiniAeroProxy(MiniApp):
    """miniAero proxy: 2-D compressible Euler with Rusanov fluxes.

    Evolves (rho, rho*u, rho*v, E) from a diagonal Sod-style shock-tube
    initial condition on a periodic grid — discontinuities plus smooth
    rarefactions give the mixed-compressibility state typical of
    aerodynamics checkpoints.
    """

    name = "miniAero"
    gamma = 1.4
    cfl = 0.4

    def __init__(self, grid: int = 160, seed: int = 0, precision_bits: float = 52.0):
        super().__init__(seed, precision_bits)
        self.grid = int(grid)
        shape = (self.grid, self.grid)
        xx, yy = np.meshgrid(
            np.linspace(0, 1, self.grid, endpoint=False),
            np.linspace(0, 1, self.grid, endpoint=False),
            indexing="ij",
        )
        left = (xx + yy) < 1.0
        rho = np.where(left, 1.0, 0.125)
        pres = np.where(left, 1.0, 0.1)
        rho += 0.01 * self.rng.standard_normal(shape)
        self.rho = rho
        self.mx = np.zeros(shape)
        self.my = np.zeros(shape)
        self.energy = pres / (self.gamma - 1.0)
        self.h = 1.0 / self.grid

    def _pressure(self) -> np.ndarray:
        kinetic = 0.5 * (self.mx**2 + self.my**2) / self.rho
        return np.maximum((self.gamma - 1.0) * (self.energy - kinetic), 1e-8)

    def step(self) -> None:
        """One Rusanov (local Lax-Friedrichs) finite-volume update."""
        rho, mx, my, en = self.rho, self.mx, self.my, self.energy
        p = self._pressure()
        u, v = mx / rho, my / rho
        c = np.sqrt(self.gamma * p / rho)
        smax = float((np.abs(u) + c).max() + (np.abs(v) + c).max()) + 1e-12
        dt = self.cfl * self.h / smax

        def flux_x(q, f):
            fl = 0.5 * (f + np.roll(f, -1, 0)) - 0.5 * smax * (np.roll(q, -1, 0) - q)
            return (fl - np.roll(fl, 1, 0)) / self.h

        def flux_y(q, f):
            fl = 0.5 * (f + np.roll(f, -1, 1)) - 0.5 * smax * (np.roll(q, -1, 1) - q)
            return (fl - np.roll(fl, 1, 1)) / self.h

        d_rho = flux_x(rho, mx) + flux_y(rho, my)
        d_mx = flux_x(mx, mx * u + p) + flux_y(mx, mx * v)
        d_my = flux_x(my, my * u) + flux_y(my, my * v + p)
        d_en = flux_x(en, (en + p) * u) + flux_y(en, (en + p) * v)
        self.rho = np.maximum(rho - dt * d_rho, 1e-8)
        self.mx = mx - dt * d_mx
        self.my = my - dt * d_my
        self.energy = np.maximum(en - dt * d_en, 1e-8)

    def total_mass(self) -> float:
        """Conserved total mass (diagnostic; constant up to flux rounding)."""
        return float(self.rho.sum() * self.h**2)

    def _raw_state(self) -> dict[str, np.ndarray]:
        return {"rho": self.rho, "mx": self.mx, "my": self.my, "energy": self.energy}

    def restore(self, state: dict[str, np.ndarray]) -> None:
        for name in ("rho", "mx", "my", "energy"):
            setattr(self, name, state[name].copy())


#: name -> proxy class, in the paper's Table 2 row order.
APP_REGISTRY: dict[str, type[MiniApp]] = {
    "CoMD": CoMDProxy,
    "HPCCG": HPCCGProxy,
    "miniFE": MiniFEProxy,
    "miniMD": MiniMDProxy,
    "miniSMAC2D": MiniSMAC2DProxy,
    "miniAero": MiniAeroProxy,
    "pHPCCG": PHPCCGProxy,
}


def make_app(name: str, seed: int = 0, precision_bits: float = 52.0, **kwargs: object) -> MiniApp:
    """Instantiate a registered proxy by its paper name."""
    try:
        cls = APP_REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown mini-app {name!r}; one of {sorted(APP_REGISTRY)}") from None
    return cls(seed=seed, precision_bits=precision_bits, **kwargs)  # type: ignore[call-arg]
