"""Mini-app proxy infrastructure: the base class, state serialization, and
the precision knob used to calibrate checkpoint compressibility.

The paper collects BLCR checkpoints of seven Mantevo mini-apps; we cannot
run BLCR, so each mini-app is replaced by a small *proxy kernel* — a real
(if miniature) implementation of the same numerical method whose state
arrays form the checkpoint.  Physics state at laptop scale does not
automatically exhibit the same compressibility as the paper's production-
size checkpoints, so each proxy exposes a continuous *precision* knob: the
fraction of float mantissa bits carrying physical signal.  Masking the
remaining bits is exactly what lossy-precision checkpoint studies observe
in practice (trailing mantissa bits of converged solvers are noise) and
gives a monotone handle that :mod:`repro.workloads.calibration` bisects to
match each app's published gzip(1) compression factor.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "MiniApp",
    "quantize_mantissa",
    "serialize_state",
    "deserialize_state",
    "state_nbytes",
]

_MAGIC = b"RPST"  # "repro state"


def quantize_mantissa(a: np.ndarray, keep_bits: float) -> np.ndarray:
    """Zero the low mantissa bits of a float64 array, keeping ``keep_bits``.

    ``keep_bits`` may be fractional: with ``keep_bits = k + f`` a fraction
    ``f`` of elements (deterministically, by index stride) keeps ``k+1``
    bits and the rest keep ``k``.  This makes compressibility a continuous,
    monotone function of the knob, which the calibration bisection needs.
    """
    if a.dtype != np.float64:
        raise TypeError(f"quantize_mantissa expects float64, got {a.dtype}")
    if not 0.0 <= keep_bits <= 52.0:
        raise ValueError(f"keep_bits must be in [0, 52]: {keep_bits}")
    k = int(keep_bits)
    frac = keep_bits - k
    bits = a.ravel().view(np.uint64).copy()
    mask_lo = np.uint64(0xFFFFFFFFFFFFFFFF) << np.uint64(52 - k)
    if frac > 0 and k < 52:
        mask_hi = np.uint64(0xFFFFFFFFFFFFFFFF) << np.uint64(52 - (k + 1))
        # Every element whose index falls below frac*N (in a strided
        # shuffle-free pattern) keeps the extra bit.
        idx = np.arange(bits.size)
        extra = (idx * 2654435761 % 2**32) < frac * 2**32
        bits[extra] &= mask_hi
        bits[~extra] &= mask_lo
    else:
        bits &= mask_lo
    return bits.view(np.float64).reshape(a.shape)


def serialize_state(state: dict[str, np.ndarray]) -> bytes:
    """Serialize a state dict to bytes (the proxy 'checkpoint file').

    Simple self-describing format: magic, count, then per array a
    length-prefixed name, dtype string, shape, and raw C-order bytes.
    This stands in for the BLCR process context file.
    """
    parts = [_MAGIC, struct.pack("<I", len(state))]
    for name, arr in state.items():
        arr = np.ascontiguousarray(arr)
        name_b = name.encode("utf-8")
        dtype_b = arr.dtype.str.encode("ascii")
        parts.append(struct.pack("<H", len(name_b)))
        parts.append(name_b)
        parts.append(struct.pack("<H", len(dtype_b)))
        parts.append(dtype_b)
        parts.append(struct.pack("<B", arr.ndim))
        parts.append(struct.pack(f"<{arr.ndim}q", *arr.shape))
        raw = arr.tobytes()
        parts.append(struct.pack("<Q", len(raw)))
        parts.append(raw)
    return b"".join(parts)


def deserialize_state(blob: bytes) -> dict[str, np.ndarray]:
    """Invert :func:`serialize_state`."""
    if blob[:4] != _MAGIC:
        raise ValueError("not a serialized proxy state (bad magic)")
    (count,) = struct.unpack_from("<I", blob, 4)
    off = 8
    state: dict[str, np.ndarray] = {}
    for _ in range(count):
        (nlen,) = struct.unpack_from("<H", blob, off)
        off += 2
        name = blob[off : off + nlen].decode("utf-8")
        off += nlen
        (dlen,) = struct.unpack_from("<H", blob, off)
        off += 2
        dtype = np.dtype(blob[off : off + dlen].decode("ascii"))
        off += dlen
        (ndim,) = struct.unpack_from("<B", blob, off)
        off += 1
        shape = struct.unpack_from(f"<{ndim}q", blob, off)
        off += 8 * ndim
        (rawlen,) = struct.unpack_from("<Q", blob, off)
        off += 8
        arr = np.frombuffer(blob[off : off + rawlen], dtype=dtype).reshape(shape)
        off += rawlen
        state[name] = arr.copy()
    return state


def state_nbytes(state: dict[str, np.ndarray]) -> int:
    """Total payload bytes of a state dict (excluding format framing)."""
    return int(sum(a.nbytes for a in state.values()))


class MiniApp(ABC):
    """A Mantevo mini-app proxy: a steppable kernel with checkpointable state.

    Subclasses implement :meth:`step` (advance the physics) and
    :meth:`_raw_state` (the live arrays).  The public :meth:`state` applies
    the precision knob to float64 arrays; :meth:`checkpoint_bytes`
    serializes the result — that byte stream is what the compression study
    compresses and what the C/R runtime stores.

    Parameters
    ----------
    seed:
        Deterministic initialization seed.
    precision_bits:
        Mantissa bits of physical signal retained in checkpoints
        (the calibration knob; 52 = full precision).
    """

    #: mini-app name matching the paper's Table 2 row.
    name: str = "miniapp"

    def __init__(self, seed: int = 0, precision_bits: float = 52.0):
        self.rng = np.random.default_rng(seed)
        self.precision_bits = precision_bits
        self.steps_taken = 0

    @abstractmethod
    def step(self) -> None:
        """Advance the kernel by one timestep/iteration."""

    @abstractmethod
    def _raw_state(self) -> dict[str, np.ndarray]:
        """The live state arrays (not yet precision-filtered)."""

    def run(self, steps: int) -> None:
        """Advance ``steps`` timesteps."""
        for _ in range(steps):
            self.step()
            self.steps_taken += 1

    def state(self) -> dict[str, np.ndarray]:
        """Checkpointable state with the precision knob applied."""
        out: dict[str, np.ndarray] = {}
        for name, arr in self._raw_state().items():
            if arr.dtype == np.float64 and self.precision_bits < 52.0:
                out[name] = quantize_mantissa(arr, self.precision_bits)
            else:
                out[name] = np.ascontiguousarray(arr)
        return out

    def restore(self, state: dict[str, np.ndarray]) -> None:
        """Overwrite live arrays from a checkpointed state dict.

        Default implementation writes back into the arrays returned by
        :meth:`_raw_state` (which must therefore be the live buffers).
        """
        live = self._raw_state()
        for name, arr in state.items():
            if name not in live:
                raise KeyError(f"{self.name}: unknown state array {name!r}")
            if live[name].shape != arr.shape:
                raise ValueError(
                    f"{self.name}: shape mismatch for {name!r}: "
                    f"{live[name].shape} vs {arr.shape}"
                )
            live[name][...] = arr

    def checkpoint_bytes(self) -> bytes:
        """Serialized checkpoint of the current state."""
        return serialize_state(self.state())

    @property
    def checkpoint_size(self) -> int:
        """Size of :meth:`checkpoint_bytes` payload, bytes."""
        return state_nbytes(self._raw_state())
