"""Mantevo mini-app proxy workloads and checkpoint-data generation.

Seven runnable numerical kernels (MD, CG, FE, CFD, aero) whose serialized
state serves as checkpoint data for the compression study and the C/R
runtime examples, with a precision knob calibrated against the paper's
per-app gzip(1) compression factors.
"""

from .base import (
    MiniApp,
    deserialize_state,
    quantize_mantissa,
    serialize_state,
    state_nbytes,
)
from .calibration import (
    CALIBRATED_PRECISION,
    calibrate_precision,
    calibrated_app,
    gzip1_factor,
)
from .generator import checkpoint_chunks, rank_apps, study_datasets
from .sequences import SequenceStats, TransitionStats, change_statistics, checkpoint_sequence
from .miniapps import (
    APP_REGISTRY,
    CoMDProxy,
    HPCCGProxy,
    MiniAeroProxy,
    MiniFEProxy,
    MiniMDProxy,
    MiniSMAC2DProxy,
    PHPCCGProxy,
    make_app,
)

__all__ = [
    "MiniApp",
    "serialize_state",
    "deserialize_state",
    "state_nbytes",
    "quantize_mantissa",
    "APP_REGISTRY",
    "make_app",
    "CoMDProxy",
    "HPCCGProxy",
    "PHPCCGProxy",
    "MiniFEProxy",
    "MiniMDProxy",
    "MiniSMAC2DProxy",
    "MiniAeroProxy",
    "gzip1_factor",
    "calibrate_precision",
    "calibrated_app",
    "CALIBRATED_PRECISION",
    "checkpoint_chunks",
    "rank_apps",
    "study_datasets",
    "checkpoint_sequence",
    "change_statistics",
    "SequenceStats",
    "TransitionStats",
]
