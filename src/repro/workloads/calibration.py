"""Calibrating proxy checkpoints to the paper's compression factors.

The model consumes only a checkpoint's *compression factor*, so the one
property the synthetic mini-app checkpoints must reproduce is Table 2's
gzip(1) column.  :func:`calibrate_precision` bisects each proxy's
mantissa-precision knob (see :mod:`repro.workloads.base`) until its
serialized checkpoint hits the target factor; :data:`CALIBRATED_PRECISION`
caches the result for the default proxy sizes so the study harness starts
from a good point without re-running the search.
"""

from __future__ import annotations

import zlib
from typing import Callable

from ..compression.study import paper_factor
from .base import MiniApp
from .miniapps import APP_REGISTRY, make_app

__all__ = [
    "gzip1_factor",
    "calibrate_precision",
    "calibrated_app",
    "CALIBRATED_PRECISION",
]


def gzip1_factor(blob: bytes) -> float:
    """gzip level-1 compression factor of a byte string."""
    if not blob:
        raise ValueError("empty input")
    return 1.0 - len(zlib.compress(blob, 1)) / len(blob)


def calibrate_precision(
    app_factory: Callable[[float], MiniApp],
    target_factor: float,
    warmup_steps: int = 5,
    tol: float = 0.01,
    max_iter: int = 14,
) -> float:
    """Find the precision (mantissa bits) whose checkpoint hits the target.

    ``app_factory(precision_bits)`` must build a fresh app; it is warmed up
    ``warmup_steps`` steps and its checkpoint's gzip(1) factor compared
    against ``target_factor``.  The factor is monotonically decreasing in
    retained precision, so plain bisection converges; the achievable range
    is clamped (a physics checkpoint cannot be made arbitrarily
    (in)compressible), and the closest endpoint is returned when the target
    lies outside it.
    """
    if not 0.0 <= target_factor < 1.0:
        raise ValueError(f"target_factor must be in [0, 1): {target_factor}")

    def factor_at(bits: float) -> float:
        app = app_factory(bits)
        app.run(warmup_steps)
        return gzip1_factor(app.checkpoint_bytes())

    lo, hi = 0.0, 52.0  # factor(lo) is the max achievable, factor(hi) the min
    f_lo = factor_at(lo)
    f_hi = factor_at(hi)
    if target_factor >= f_lo:
        return lo
    if target_factor <= f_hi:
        return hi
    for _ in range(max_iter):
        mid = (lo + hi) / 2.0
        f_mid = factor_at(mid)
        if abs(f_mid - target_factor) <= tol:
            return mid
        if f_mid > target_factor:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


#: Pre-computed precision knobs for the default proxy sizes, targeting the
#: paper's gzip(1) factors (regenerate with
#: ``python -m repro calibrate``).  Values are mantissa bits retained.
CALIBRATED_PRECISION: dict[str, float] = {
    "CoMD": 0.81,
    "HPCCG": 1.63,
    "miniFE": 6.5,
    "miniMD": 14.63,
    "miniSMAC2D": 27.63,
    "miniAero": 19.5,
    "pHPCCG": 1.63,
}


def calibrated_app(name: str, seed: int = 0, recalibrate: bool = False) -> MiniApp:
    """A proxy app whose checkpoints match the paper's gzip(1) factor.

    Uses the cached :data:`CALIBRATED_PRECISION` knob unless
    ``recalibrate`` forces a fresh bisection (slow: ~10 gzip passes).
    """
    if name not in APP_REGISTRY:
        raise KeyError(f"unknown mini-app {name!r}")
    if recalibrate or name not in CALIBRATED_PRECISION:
        bits = calibrate_precision(
            lambda b: make_app(name, seed=seed, precision_bits=b),
            paper_factor(name, "gzip(1)"),
        )
    else:
        bits = CALIBRATED_PRECISION[name]
    return make_app(name, seed=seed, precision_bits=bits)
