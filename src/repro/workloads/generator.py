"""Checkpoint-data generation for the compression study (Section 5.1.1).

The paper checkpoints each mini-app as 16 MPI ranks, producing one BLCR
context file per rank; the study compresses those files.  The proxy
equivalent: run ``ranks`` independently-seeded instances of a mini-app
proxy and serialize each one's state — :func:`checkpoint_chunks` returns
that list of per-rank blobs, and :func:`study_datasets` assembles the full
seven-app dataset the Table-2 harness consumes.
"""

from __future__ import annotations

from .base import MiniApp
from .calibration import CALIBRATED_PRECISION, calibrated_app
from .miniapps import APP_REGISTRY, make_app

__all__ = ["checkpoint_chunks", "study_datasets", "rank_apps"]


def rank_apps(
    name: str,
    ranks: int = 16,
    seed: int = 0,
    warmup_steps: int = 5,
    calibrated: bool = True,
) -> list[MiniApp]:
    """``ranks`` independently-seeded, warmed-up instances of a mini-app.

    Each instance models one MPI rank of the paper's 16-process runs;
    seeds derive from ``seed`` and the rank index.  ``calibrated`` applies
    the precision knob matching the paper's gzip(1) factor.
    """
    if ranks < 1:
        raise ValueError("ranks must be >= 1")
    apps: list[MiniApp] = []
    for r in range(ranks):
        rank_seed = seed * 1000 + r
        if calibrated:
            app = make_app(
                name, seed=rank_seed, precision_bits=CALIBRATED_PRECISION.get(name, 52.0)
            )
        else:
            app = make_app(name, seed=rank_seed)
        app.run(warmup_steps)
        apps.append(app)
    return apps


def checkpoint_chunks(
    name: str,
    ranks: int = 16,
    seed: int = 0,
    warmup_steps: int = 5,
    calibrated: bool = True,
) -> list[bytes]:
    """Per-rank checkpoint blobs for one mini-app (one study dataset)."""
    return [
        app.checkpoint_bytes()
        for app in rank_apps(name, ranks, seed, warmup_steps, calibrated)
    ]


def study_datasets(
    apps: list[str] | None = None,
    ranks: int = 4,
    seed: int = 0,
    warmup_steps: int = 5,
    calibrated: bool = True,
) -> dict[str, list[bytes]]:
    """Datasets for :func:`repro.compression.study.run_study`.

    Defaults to 4 ranks per app (a few MB each) so the full 7x7 study —
    including the slow xz(6) and pure-Python lz4 columns — completes in
    minutes; pass ``ranks=16`` for paper-shaped data.
    """
    names = list(APP_REGISTRY) if apps is None else apps
    return {
        name: checkpoint_chunks(name, ranks, seed, warmup_steps, calibrated)
        for name in names
    }


def _calibrated_factory(name: str, seed: int = 0):
    """Factory of calibrated apps (handy for scripting)."""
    return lambda: calibrated_app(name, seed=seed)
