"""Throughput and factor measurement for codecs (Section 5.1.2 methodology).

Measures single-thread compression speed (uncompressed MB/s) and
compression factor over checkpoint data, mirroring the paper's per-utility,
per-mini-app measurements.  Decompression speed is measured too (the model
needs it for the restore path).

The paper measures on an in-memory pipeline backed by a fast SSD so codec
speed, not storage, is the bottleneck; measuring ``bytes -> bytes`` in
memory reproduces that setup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .codecs import Codec

__all__ = ["Measurement", "measure_codec", "scale_threads"]


@dataclass(frozen=True)
class Measurement:
    """Result of measuring one codec on one dataset.

    Attributes
    ----------
    codec:
        The ``utility(level)`` label.
    input_bytes, output_bytes:
        Total uncompressed / compressed sizes.
    compress_seconds, decompress_seconds:
        Wall time spent in the codec.
    """

    codec: str
    input_bytes: int
    output_bytes: int
    compress_seconds: float
    decompress_seconds: float

    @property
    def factor(self) -> float:
        """Compression factor ``1 - compressed/uncompressed``."""
        return 1.0 - self.output_bytes / self.input_bytes

    @property
    def compress_speed(self) -> float:
        """Single-thread compression speed, uncompressed bytes/second."""
        return self.input_bytes / self.compress_seconds

    @property
    def decompress_speed(self) -> float:
        """Single-thread decompression speed, uncompressed bytes/second."""
        return self.input_bytes / self.decompress_seconds


def measure_codec(codec: Codec, chunks: list[bytes], verify: bool = True) -> Measurement:
    """Measure ``codec`` over checkpoint data split into ``chunks``.

    Chunked processing mirrors how the study compresses one context file
    per MPI rank.  With ``verify`` each chunk is round-tripped and checked
    (costs one extra decompression pass, which is also how decompression
    speed is measured).
    """
    if not chunks or not any(chunks):
        raise ValueError("need non-empty input data")
    in_total = 0
    out_total = 0
    c_time = 0.0
    d_time = 0.0
    for chunk in chunks:
        if not chunk:
            continue
        t0 = time.perf_counter()
        comp = codec.compress(chunk)
        c_time += time.perf_counter() - t0
        t0 = time.perf_counter()
        back = codec.decompress(comp)
        d_time += time.perf_counter() - t0
        if verify and back != chunk:
            raise AssertionError(f"{codec.name} round-trip mismatch on {len(chunk)}-byte chunk")
        in_total += len(chunk)
        out_total += len(comp)
    return Measurement(
        codec=codec.name,
        input_bytes=in_total,
        output_bytes=out_total,
        compress_seconds=max(c_time, 1e-12),
        decompress_seconds=max(d_time, 1e-12),
    )


def scale_threads(single_thread_speed: float, threads: int, efficiency: float = 1.0) -> float:
    """Aggregate speed of ``threads`` independent compression threads.

    Checkpoint compression parallelizes embarrassingly across per-rank
    context files, so the paper assumes linear scaling (``efficiency=1``);
    a derating factor is available for sensitivity studies.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")
    if not 0.0 < efficiency <= 1.0:
        raise ValueError("efficiency must be in (0, 1]")
    return single_thread_speed * threads * efficiency
