"""Checkpoint delta encoding and block deduplication (paper's future work).

The paper's conclusion singles out "compar[ing] data for consecutive
checkpoints" as the next NDP optimization.  This module implements the two
standard flavours so the ablation bench can quantify the headroom:

* :func:`xor_delta` / :func:`apply_xor_delta` — byte-wise XOR against the
  previous checkpoint.  Unchanged regions become zero runs, which any
  downstream codec (or :func:`zero_rle`) collapses.
* :class:`BlockDeduper` — content-hash deduplication at a fixed block
  size: blocks already present in the previous checkpoint are replaced by
  references, as in checkpoint-dedup systems (Kaiser et al., Nicolae).

Both are pure functions of checkpoint bytes, so the NDP drain daemon in
:mod:`repro.ckpt.ndp_daemon` can apply them before its codec.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "xor_delta",
    "apply_xor_delta",
    "zero_rle",
    "zero_rle_ref",
    "zero_rle_decode",
    "BlockDeduper",
    "DedupResult",
]


def xor_delta(previous, current, *, strict: bool = False) -> bytes:
    """Byte-wise XOR of ``current`` against ``previous``.

    Checkpoints may grow or shrink: the overlapping prefix is XORed, the
    tail of ``current`` passes through verbatim.  Unchanged bytes become
    zero, making the delta highly compressible for slowly-evolving state.

    With ``strict=True`` a length mismatch raises :class:`ValueError`
    instead — the NDP drain path uses this so a resized rank state can
    never be silently encoded against the wrong base.
    """
    prev = np.frombuffer(previous, dtype=np.uint8)
    curr = np.frombuffer(current, dtype=np.uint8)
    if strict and len(prev) != len(curr):
        raise ValueError(
            f"xor_delta length mismatch: previous={len(prev)} current={len(curr)}"
        )
    n = min(len(prev), len(curr))
    out = np.empty(len(curr), dtype=np.uint8)
    np.bitwise_xor(prev[:n], curr[:n], out=out[:n])
    out[n:] = curr[n:]
    return out.tobytes()


def apply_xor_delta(previous, delta, *, strict: bool = False) -> bytes:
    """Invert :func:`xor_delta`: reconstruct ``current``."""
    prev = np.frombuffer(previous, dtype=np.uint8)
    dlt = np.frombuffer(delta, dtype=np.uint8)
    if strict and len(prev) != len(dlt):
        raise ValueError(
            f"apply_xor_delta length mismatch: previous={len(prev)} delta={len(dlt)}"
        )
    n = min(len(prev), len(dlt))
    out = np.empty(len(dlt), dtype=np.uint8)
    np.bitwise_xor(prev[:n], dlt[:n], out=out[:n])
    out[n:] = dlt[n:]
    return out.tobytes()


def zero_rle(data, min_run: int = 8) -> bytes:
    """Collapse zero runs: a cheap NDP-friendly encoding for XOR deltas.

    Format: a stream of records, each either ``0x00 + varint(run_length)``
    for a zero run of >= ``min_run`` bytes, or ``0x01 + varint(length) +
    literal bytes``.  Runs shorter than ``min_run`` stay literal (record
    overhead would exceed the saving).  ``min_run`` larger than the input
    therefore yields a single literal record.

    Only the qualifying zero runs are visited in Python; everything
    between two of them (including short zero runs) is one literal record
    copied as a single slice.  Output is byte-identical to
    :func:`zero_rle_ref`.
    """
    if min_run < 1:
        raise ValueError("min_run must be >= 1")
    src = data if isinstance(data, (bytes, memoryview)) else memoryview(data)
    arr = np.frombuffer(src, dtype=np.uint8)
    n = len(arr)
    if n == 0:
        return b""
    out = bytearray()
    is_zero = arr == 0
    dif = np.diff(is_zero.view(np.int8))
    zs = np.flatnonzero(dif == 1) + 1
    ze = np.flatnonzero(dif == -1) + 1
    if is_zero[0]:
        zs = np.concatenate(([0], zs))
    if is_zero[-1]:
        ze = np.concatenate((ze, [n]))
    keep = (ze - zs) >= min_run
    prev = 0
    for s, e in zip(zs[keep].tolist(), ze[keep].tolist()):
        if s > prev:
            out.append(0x01)
            out += _varint(s - prev)
            out += src[prev:s]
        out.append(0x00)
        out += _varint(e - s)
        prev = e
    if prev < n:
        out.append(0x01)
        out += _varint(n - prev)
        out += src[prev:n]
    return bytes(out)


def zero_rle_ref(data, min_run: int = 8) -> bytes:
    """Per-run scalar :func:`zero_rle` (executable spec + bench baseline)."""
    if min_run < 1:
        raise ValueError("min_run must be >= 1")
    arr = np.frombuffer(data, dtype=np.uint8)
    out = bytearray()
    # Boundaries of zero/nonzero runs via diff of the zero mask.
    is_zero = arr == 0
    if len(arr) == 0:
        return bytes(out)
    changes = np.flatnonzero(np.diff(is_zero.view(np.int8)))
    starts = np.concatenate(([0], changes + 1))
    ends = np.concatenate((changes + 1, [len(arr)]))
    pending_literal: list[bytes] = []

    def flush_literal() -> None:
        if not pending_literal:
            return
        blob = b"".join(pending_literal)
        pending_literal.clear()
        out.append(0x01)
        out.extend(_varint(len(blob)))
        out.extend(blob)

    for s, e in zip(starts, ends):
        run = bytes(data[s:e])
        if is_zero[s] and (e - s) >= min_run:
            flush_literal()
            out.append(0x00)
            out.extend(_varint(e - s))
        else:
            pending_literal.append(run)
    flush_literal()
    return bytes(out)


def zero_rle_decode(encoded: bytes) -> bytes:
    """Invert :func:`zero_rle`."""
    out = bytearray()
    i = 0
    n = len(encoded)
    while i < n:
        tag = encoded[i]
        i += 1
        length, i = _read_varint(encoded, i)
        if tag == 0x00:
            out.extend(bytes(length))
        elif tag == 0x01:
            if i + length > n:
                raise ValueError("truncated literal record")
            out.extend(encoded[i : i + length])
            i += length
        else:
            raise ValueError(f"bad record tag {tag:#x} at offset {i - 1}")
    return bytes(out)


def _varint(value: int) -> bytes:
    """LEB128 unsigned varint."""
    out = bytearray()
    while True:
        b = value & 0x7F
        value >>= 7
        if value:
            out.append(b | 0x80)
        else:
            out.append(b)
            return bytes(out)


def _read_varint(data: bytes, i: int) -> tuple[int, int]:
    value = 0
    shift = 0
    while True:
        if i >= len(data):
            raise ValueError("truncated varint")
        b = data[i]
        i += 1
        value |= (b & 0x7F) << shift
        if not b & 0x80:
            return value, i
        shift += 7


@dataclass(frozen=True)
class DedupResult:
    """Outcome of deduplicating one checkpoint against its predecessor.

    Attributes
    ----------
    unique_blocks:
        Blocks not present in the previous checkpoint (must be stored).
    total_blocks:
        Total blocks in the current checkpoint.
    dedup_factor:
        Fraction of data eliminated: ``1 - unique/total`` (block-count
        based; the last partial block counts as one block).
    """

    unique_blocks: int
    total_blocks: int

    @property
    def dedup_factor(self) -> float:
        """Fraction of blocks eliminated by deduplication."""
        if self.total_blocks == 0:
            return 0.0
        return 1.0 - self.unique_blocks / self.total_blocks


class BlockDeduper:
    """Fixed-block content-hash deduplication across consecutive checkpoints.

    Keeps the block-hash set of the most recent checkpoint; ``push`` of the
    next checkpoint reports how many of its blocks are new.  SHA-1 is used
    as the content hash (collision-safe at simulation scales and fast in
    CPython).
    """

    def __init__(self, block_size: int = 4096):
        if block_size < 16:
            raise ValueError("block_size must be >= 16")
        self.block_size = block_size
        self._previous: set[bytes] = set()

    def push(self, checkpoint: bytes) -> DedupResult:
        """Dedup ``checkpoint`` against the previously pushed one."""
        bs = self.block_size
        hashes = [
            hashlib.sha1(checkpoint[i : i + bs]).digest()
            for i in range(0, len(checkpoint), bs)
        ]
        unique = sum(1 for h in hashes if h not in self._previous)
        self._previous = set(hashes)
        return DedupResult(unique_blocks=unique, total_blocks=len(hashes))
