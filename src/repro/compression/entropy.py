"""Entropy analysis of checkpoint data: how much compression is possible.

Complements the measurement-driven study with information-theoretic
context: the order-0 byte entropy bounds what any memoryless coder can do,
and the gap between that bound and the achieved factor shows how much of a
codec's win comes from *structure* (matches/repeats) rather than symbol
skew.  Used to sanity-check the proxy-checkpoint calibration: a calibrated
checkpoint must not claim a compression factor beyond what its own
statistics support.

All functions are vectorized numpy over byte buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "byte_entropy",
    "entropy_factor_bound",
    "block_entropy_profile",
    "CompressibilityReport",
    "analyze",
]


def byte_entropy(data: bytes) -> float:
    """Order-0 Shannon entropy of the byte distribution, bits/byte.

    0 for constant data, 8 for uniformly random bytes.
    """
    if not data:
        raise ValueError("empty input")
    arr = np.frombuffer(data, dtype=np.uint8)
    counts = np.bincount(arr, minlength=256).astype(float)
    probs = counts[counts > 0] / arr.size
    return float(-(probs * np.log2(probs)).sum())


def entropy_factor_bound(data: bytes) -> float:
    """Upper bound on the compression factor for any order-0 coder.

    ``1 - H/8``: a memoryless entropy coder cannot beat this; dictionary
    codecs (gzip/lz4) can, by exploiting repeats the order-0 statistic
    does not see.
    """
    return 1.0 - byte_entropy(data) / 8.0


def block_entropy_profile(data: bytes, block_size: int = 4096) -> np.ndarray:
    """Per-block order-0 entropy (bits/byte) across the buffer.

    Checkpoints are heterogeneous — zero pages, dense float mantissas,
    metadata; the profile shows where the compressible regions live.
    """
    if block_size < 256:
        raise ValueError("block_size must be >= 256")
    if not data:
        raise ValueError("empty input")
    arr = np.frombuffer(data, dtype=np.uint8)
    n_blocks = (arr.size + block_size - 1) // block_size
    out = np.empty(n_blocks)
    for i in range(n_blocks):
        block = arr[i * block_size : (i + 1) * block_size]
        counts = np.bincount(block, minlength=256).astype(float)
        probs = counts[counts > 0] / block.size
        out[i] = -(probs * np.log2(probs)).sum()
    return out


@dataclass(frozen=True)
class CompressibilityReport:
    """Entropy statistics of one checkpoint buffer.

    Attributes
    ----------
    nbytes:
        Buffer size.
    entropy:
        Global order-0 entropy, bits/byte.
    order0_bound:
        Compression-factor ceiling for memoryless coders (``1 - H/8``).
    block_entropy_mean, block_entropy_min, block_entropy_max:
        Statistics of the per-block entropy profile.
    zero_fraction:
        Fraction of zero bytes (zero pages dominate many checkpoints).
    """

    nbytes: int
    entropy: float
    order0_bound: float
    block_entropy_mean: float
    block_entropy_min: float
    block_entropy_max: float
    zero_fraction: float


def analyze(data: bytes, block_size: int = 4096) -> CompressibilityReport:
    """Full entropy report for a checkpoint buffer."""
    arr = np.frombuffer(data, dtype=np.uint8)
    profile = block_entropy_profile(data, block_size)
    return CompressibilityReport(
        nbytes=len(data),
        entropy=byte_entropy(data),
        order0_bound=entropy_factor_bound(data),
        block_entropy_mean=float(profile.mean()),
        block_entropy_min=float(profile.min()),
        block_entropy_max=float(profile.max()),
        zero_fraction=float((arr == 0).mean()),
    )
