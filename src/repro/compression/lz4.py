"""A from-scratch LZ4 block-format codec.

The paper's compression study includes lz4, which the Python standard
library does not provide, so this module implements the LZ4 *block* format
(https://github.com/lz4/lz4/blob/dev/doc/lz4_Block_format.md) from scratch:

* a greedy hash-chain-free compressor in the spirit of the reference
  "fast" mode — a 4-byte hash table finds the most recent prior occurrence
  of the next 4 bytes and extends the match forward, and
* a decompressor implementing token / extended-length / offset decoding,
  including overlapping-copy semantics for ``offset < match_length`` (the
  RLE trick).

Format rules enforced (and property-tested):

* every sequence is ``[token][literal-len*][literals][offset(2, LE)]
  [match-len*]``; match length is stored minus the 4-byte minimum,
* the final sequence is literals-only,
* the last 5 bytes of the block are always literals and no match may start
  within the last 12 bytes (mfLimit) — blocks shorter than 13 bytes are
  stored as pure literals,
* offsets are in ``[1, 65535]``.

Being pure Python, throughput is orders of magnitude below the C
implementation; the compression *factor* is comparable to ``lz4 -1``
(same format, similar greedy parse), which is what the study consumes.
Speeds for the paper-parity tables come from the calibrated
``PAPER_TABLE2`` constants (see :mod:`repro.compression.study`).
"""

from __future__ import annotations

__all__ = ["compress", "decompress", "LZ4DecodeError", "MIN_MATCH", "MF_LIMIT"]

MIN_MATCH = 4
#: No match may begin within this many bytes of the end of the block.
MF_LIMIT = 12
#: The final literal run must cover at least this many bytes.
LAST_LITERALS = 5

_HASH_LOG = 16
_HASH_MASK = (1 << _HASH_LOG) - 1
_MAX_OFFSET = 65535


class LZ4DecodeError(ValueError):
    """Raised when a block does not decode as valid LZ4."""


def _hash32(word: int) -> int:
    """Fibonacci hash of a 32-bit little-endian word to _HASH_LOG bits."""
    return ((word * 2654435761) >> (32 - _HASH_LOG)) & _HASH_MASK


def compress(data: bytes) -> bytes:
    """Compress ``data`` into an LZ4 block.

    Worst case output is ``len(data) + len(data)//255 + 16`` bytes
    (incompressible input costs the literal-length extensions only).
    """
    src = bytes(data)
    n = len(src)
    out = bytearray()
    if n == 0:
        return b"\x00"  # single empty-literal token
    if n < MF_LIMIT + 1:
        _emit_last_literals(out, src, 0, n)
        return bytes(out)

    # Hash table: position of the most recent occurrence of each 4-byte
    # prefix hash.  -1 = empty.
    table = [-1] * (1 << _HASH_LOG)
    match_limit = n - LAST_LITERALS
    search_limit = n - MF_LIMIT

    anchor = 0  # start of the pending literal run
    i = 0
    while i < search_limit:
        word = int.from_bytes(src[i : i + 4], "little")
        h = _hash32(word)
        cand = table[h]
        table[h] = i
        if (
            cand < 0
            or i - cand > _MAX_OFFSET
            or src[cand : cand + 4] != src[i : i + 4]
        ):
            i += 1
            continue
        # Extend the match forward as far as allowed.
        m = i + MIN_MATCH
        c = cand + MIN_MATCH
        while m < match_limit and src[m] == src[c]:
            m += 1
            c += 1
        match_len = m - i
        _emit_sequence(out, src, anchor, i, i - cand, match_len)
        # Index a couple of positions inside the match to improve the
        # next search (cheap approximation of the reference behaviour).
        step_end = min(m, search_limit)
        for j in range(i + 1, step_end, max(1, match_len // 4)):
            w = int.from_bytes(src[j : j + 4], "little")
            table[_hash32(w)] = j
        i = m
        anchor = m
    _emit_last_literals(out, src, anchor, n)
    return bytes(out)


def _emit_length(out: bytearray, length: int) -> None:
    """Emit the 255-run extension bytes for a length >= 15."""
    length -= 15
    while length >= 255:
        out.append(255)
        length -= 255
    out.append(length)


def _emit_sequence(
    out: bytearray, src: bytes, anchor: int, i: int, offset: int, match_len: int
) -> None:
    """Emit one literal-run + match sequence."""
    lit_len = i - anchor
    ml = match_len - MIN_MATCH
    token = (min(lit_len, 15) << 4) | min(ml, 15)
    out.append(token)
    if lit_len >= 15:
        _emit_length(out, lit_len)
    out += src[anchor:i]
    out += offset.to_bytes(2, "little")
    if ml >= 15:
        _emit_length(out, ml)


def _emit_last_literals(out: bytearray, src: bytes, anchor: int, end: int) -> None:
    """Emit the final literals-only sequence."""
    lit_len = end - anchor
    out.append(min(lit_len, 15) << 4)
    if lit_len >= 15:
        _emit_length(out, lit_len)
    out += src[anchor:end]


def decompress(block: bytes, expected_size: int | None = None) -> bytes:
    """Decode an LZ4 block; optionally verify the decoded size.

    Raises :class:`LZ4DecodeError` on malformed input (truncated
    sequences, zero/overlarge offsets, or a size mismatch).
    """
    src = bytes(block)
    n = len(src)
    out = bytearray()
    i = 0
    if n == 0:
        raise LZ4DecodeError("empty input is not a valid LZ4 block")
    while True:
        if i >= n:
            raise LZ4DecodeError("truncated block: missing token")
        token = src[i]
        i += 1
        lit_len = token >> 4
        if lit_len == 15:
            lit_len, i = _read_length(src, i, lit_len)
        if i + lit_len > n:
            raise LZ4DecodeError("truncated block: literals run past end")
        out += src[i : i + lit_len]
        i += lit_len
        if i == n:
            # Final literals-only sequence.
            break
        if i + 2 > n:
            raise LZ4DecodeError("truncated block: missing match offset")
        offset = int.from_bytes(src[i : i + 2], "little")
        i += 2
        if offset == 0:
            raise LZ4DecodeError("invalid zero match offset")
        if offset > len(out):
            raise LZ4DecodeError(
                f"match offset {offset} exceeds decoded length {len(out)}"
            )
        match_len = token & 0xF
        if match_len == 15:
            match_len, i = _read_length(src, i, match_len)
        match_len += MIN_MATCH
        # Overlapping copy: byte-by-byte semantics when offset < length.
        start = len(out) - offset
        if offset >= match_len:
            out += out[start : start + match_len]
        else:
            for k in range(match_len):
                out.append(out[start + k])
    if expected_size is not None and len(out) != expected_size:
        raise LZ4DecodeError(
            f"decoded size {len(out)} != expected {expected_size}"
        )
    return bytes(out)


def _read_length(src: bytes, i: int, base: int) -> tuple[int, int]:
    """Read 255-run extension bytes; returns (length, new_index)."""
    length = base
    while True:
        if i >= len(src):
            raise LZ4DecodeError("truncated block: unterminated length run")
        b = src[i]
        i += 1
        length += b
        if b != 255:
            return length, i
